package expansion

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
)

// TestEquivalenceExpansionWorkerCounts is the determinism contract for
// the expansion measurement: a bit-for-bit identical Result at every
// worker count (the per-source level sequences are folded into the keyed
// summaries sequentially in source order).
func TestEquivalenceExpansionWorkerCounts(t *testing.T) {
	g, err := gen.BarabasiAlbert(500, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := SampledSources(g, 120, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		r, err := Measure(context.Background(), g, Config{Sources: srcs, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: Result differs from workers=1 (including float bit patterns)", workers)
		}
	}
}

// TestEquivalenceExpansionRace drives the pooled-scratch fan-out under
// the race detector: overlapping Measure calls sharing nothing but the
// graph, each with more workers than GOMAXPROCS.
func TestEquivalenceExpansionRace(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Measure(context.Background(), g, Config{Workers: 16}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
