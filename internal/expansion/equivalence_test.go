package expansion

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// TestEquivalenceExpansionWorkerCounts is the determinism contract for
// the expansion measurement: a bit-for-bit identical Result at every
// worker count (the per-source level sequences are folded into the keyed
// summaries sequentially in source order).
func TestEquivalenceExpansionWorkerCounts(t *testing.T) {
	g, err := gen.BarabasiAlbert(500, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := SampledSources(g, 120, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		r, err := Measure(context.Background(), g, Config{Sources: srcs, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: Result differs from workers=1 (including float bit patterns)", workers)
		}
	}
}

// TestEquivalenceBFSBatchWidths is the bit-parallel kernel contract: a
// bit-for-bit identical Result at every BFS batch width (1 = scalar
// pooled workers) and worker count, on a random graph, a disconnected
// graph with isolated cores, and a star graph.
func TestEquivalenceBFSBatchWidths(t *testing.T) {
	ba, err := gen.BarabasiAlbert(400, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	star, err := gen.Star(90)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(40)
	for v := graph.NodeID(1); v < 18; v++ {
		if err := b.AddEdge(0, v); err != nil { // hub component
			t.Fatal(err)
		}
	}
	for v := graph.NodeID(20); v < 38; v++ {
		if err := b.AddEdge(v, v+1); err != nil { // path component; 18, 19, 39 isolated
			t.Fatal(err)
		}
	}
	disconnected := b.Build()

	for name, g := range map[string]*graph.Graph{"ba": ba, "star": star, "disconnected": disconnected} {
		run := func(batch, workers int) *Result {
			r, err := Measure(context.Background(), g, Config{Workers: workers, BFSBatch: batch})
			if err != nil {
				t.Fatalf("%s batch=%d workers=%d: %v", name, batch, workers, err)
			}
			return r
		}
		want := run(1, 1)
		for _, batch := range []int{2, 7, 64} {
			for _, workers := range []int{1, 3, 8} {
				if got := run(batch, workers); !reflect.DeepEqual(want, got) {
					t.Errorf("%s: BFSBatch=%d workers=%d differs from scalar", name, batch, workers)
				}
			}
		}
	}
	if _, err := Measure(context.Background(), ba, Config{BFSBatch: 65}); err == nil {
		t.Error("BFSBatch=65: want error")
	}
}

// TestEquivalenceExpansionRace drives the pooled-scratch fan-out under
// the race detector: overlapping Measure calls sharing nothing but the
// graph, each with more workers than GOMAXPROCS.
func TestEquivalenceExpansionRace(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Measure(context.Background(), g, Config{Workers: 16}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
