package expansion

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trustnet/trustnet/internal/graph"
)

// exactConnectedVertexExpansion enumerates every connected set S with
// |S| <= n/2 and returns min |N(S)|/|S| — the true α of Eq. 3 under
// GateKeeper's connectivity restriction. Exponential; tiny graphs only.
func exactConnectedVertexExpansion(g *graph.Graph) (float64, bool) {
	n := g.NumNodes()
	best := math.Inf(1)
	found := false
	for mask := 1; mask < 1<<n; mask++ {
		size := 0
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				size++
			}
		}
		if size > n/2 {
			continue
		}
		if !maskConnected(g, mask, n) {
			continue
		}
		// |N(S)|: nodes outside S adjacent to S.
		neighbors := 0
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				continue
			}
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if mask&(1<<u) != 0 {
					neighbors++
					break
				}
			}
		}
		alpha := float64(neighbors) / float64(size)
		if alpha < best {
			best = alpha
			found = true
		}
	}
	return best, found
}

func maskConnected(g *graph.Graph, mask, n int) bool {
	start := -1
	for b := 0; b < n; b++ {
		if mask&(1<<b) != 0 {
			start = b
			break
		}
	}
	if start < 0 {
		return false
	}
	seen := 1 << start
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			ub := 1 << int(u)
			if mask&ub != 0 && seen&ub == 0 {
				seen |= ub
				stack = append(stack, int(u))
			}
		}
	}
	return seen == mask
}

// Property: the envelope-based measurement explores a subset of the
// connected sets, so its minimum α can never fall below the exact
// minimum over all connected sets.
func TestEnvelopeAlphaUpperBoundsExactQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8) // <= 11 nodes: 2^11 subsets
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdgeSafe(graph.NodeID(v), graph.NodeID(rng.Intn(v)))
		}
		for i := 0; i < n; i++ {
			b.AddEdgeSafe(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.Build()
		exact, okExact := exactConnectedVertexExpansion(g)
		res, err := Measure(context.Background(), g, Config{Workers: 1})
		if err != nil {
			return false
		}
		measured, okMeasured := res.VertexExpansion(n)
		if !okExact || !okMeasured {
			return okExact == okMeasured || !okMeasured
		}
		return measured >= exact-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// On highly symmetric graphs the envelope measurement is exact: every
// connected set that minimizes α appears as some BFS envelope.
func TestEnvelopeAlphaExactOnPath(t *testing.T) {
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	exact, ok := exactConnectedVertexExpansion(g)
	if !ok {
		t.Fatal("no exact value")
	}
	res, err := Measure(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	measured, ok := res.VertexExpansion(6)
	if !ok {
		t.Fatal("no measured value")
	}
	// A path's minimizing set is a prefix of 3 nodes with 1 neighbor
	// (alpha = 1/3), which is exactly the envelope of an endpoint.
	if math.Abs(exact-1.0/3) > 1e-12 {
		t.Errorf("exact = %v, want 1/3", exact)
	}
	if math.Abs(measured-exact) > 1e-12 {
		t.Errorf("measured = %v, want exact %v", measured, exact)
	}
}
