package expansion

import (
	"context"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
)

func BenchmarkMeasureAllSources(b *testing.B) {
	g, err := gen.BarabasiAlbert(1500, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Measure(ctx, g, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasureSampled(b *testing.B) {
	g, err := gen.BarabasiAlbert(5000, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	srcs, err := SampledSources(g, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Measure(ctx, g, Config{Sources: srcs}); err != nil {
			b.Fatal(err)
		}
	}
}
