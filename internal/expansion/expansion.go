// Package expansion implements the graph-expansion measurement of §III-D
// of the paper, in the restricted connected-set form GateKeeper assumes:
// for every node as "core", a breadth-first-search tree is grown; the
// envelope Env_i is all nodes within distance i of the core, its expansion
// Exp_i is the next BFS level, and the expansion factor is
//
//	α_i = L_{i+1} / Σ_{j<=i} L_j        (Eq. 4)
//
// Aggregating (|Env_i|, |Exp_i|) pairs over all cores by unique envelope
// size gives the min/mean/max scatter of Figure 3; aggregating α over all
// sets of equal size gives the expected-expansion curves of Figure 4.
//
// Complexity: one core's scalar BFS is O(m); the full measurement over k
// cores is O(k·m) — the paper's exact O(nm) when every node is a core. On
// large graphs the cores advance 64 at a time through the bit-parallel
// BFS kernel (kernels.BFSBatch, uint64 frontier/visited masks, exact
// integer level sizes), cutting the adjacency scans by up to ~64×; small
// graphs keep the scalar loop with frontier/visited scratch drawn from a
// graph.BFSPool. Batches fan out across parallel workers for
// O(k·m/(64·workers)) wall clock; each core's envelope observations are
// collected independently and folded into the stats.KeyedSummary
// aggregates sequentially in source order, so the result is bit-for-bit
// identical at any worker count and batch width (BFS is integer — batch
// composition cannot perturb a single level count).
package expansion

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kernels"
	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/parallel"
	"github.com/trustnet/trustnet/internal/stats"
)

// Observability instruments for the expansion measurement, resolved once
// at init. Counting happens per core / per batch / per Measure call, not
// inside the BFS inner loops, so the kernels are untouched and results
// stay bit-identical with metrics enabled.
var (
	obsScalarSources = obs.Default().Counter("expansion.bfs.scalar_sources")
	obsBatches       = obs.Default().Counter("expansion.bfs.batches")
	obsPoolHits      = obs.Default().Counter("expansion.pool.hits")
	obsPoolMisses    = obs.Default().Counter("expansion.pool.misses")
)

// Config controls a measurement run.
type Config struct {
	// Sources limits the number of BFS cores. Zero means every node (the
	// paper's exact O(nm) measurement); a positive value samples the first
	// Sources nodes of a deterministic shuffle — see SampledSources.
	Sources []graph.NodeID
	// Workers is the parallelism; defaults to GOMAXPROCS when <= 0. The
	// naive algorithm is O(nm) total, embarrassingly parallel per source.
	Workers int
	// BFSBatch selects the BFS kernel. 0 auto-selects: 64-wide
	// bit-parallel batches (kernels.BFSBatch) on graphs with at least
	// kernels.MinKernelNodes nodes, scalar per-core BFS otherwise. 1
	// forces the scalar loop; values in [2, 64] force that batch width.
	// Every setting produces identical integer results.
	BFSBatch int
}

// batchWidth resolves the BFSBatch knob against the graph size.
func (c Config) batchWidth(g graph.View) (int, error) {
	switch {
	case c.BFSBatch == 0:
		if g.NumNodes() >= kernels.MinKernelNodes {
			return kernels.BFSBatchWidth, nil
		}
		return 1, nil
	case c.BFSBatch < 0 || c.BFSBatch > kernels.BFSBatchWidth:
		return 0, fmt.Errorf("expansion: BFSBatch %d outside [0, %d]", c.BFSBatch, kernels.BFSBatchWidth)
	default:
		return c.BFSBatch, nil
	}
}

// Result aggregates an expansion measurement across sources.
type Result struct {
	// NeighborsBySetSize maps each observed envelope size |Env| to the
	// min/mean/max of |Exp| over all (core, i) pairs with that envelope
	// size — the Figure 3 scatter.
	NeighborsBySetSize *stats.KeyedSummary
	// FactorBySetSize maps envelope size to the summary of expansion
	// factors α — the Figure 4 curve uses its means.
	FactorBySetSize *stats.KeyedSummary
	// Sources is the number of BFS cores measured.
	Sources int
	// MaxEccentricity is the largest BFS depth observed (a diameter lower
	// bound when all nodes are used as sources).
	MaxEccentricity int
}

// VertexExpansion returns the minimum observed expansion factor over every
// measured envelope with size at most half the graph — the sampled,
// connected-set analogue of the vertex expansion α in Eq. 3.
func (r *Result) VertexExpansion(n int) (float64, bool) {
	found := false
	best := 0.0
	for _, size := range r.FactorBySetSize.Keys() {
		if size > int64(n)/2 {
			continue
		}
		s, ok := r.FactorBySetSize.Get(size)
		if !ok || s.Count() == 0 {
			continue
		}
		if !found || s.Min() < best {
			best = s.Min()
			found = true
		}
	}
	return best, found
}

// Measure runs the envelope measurement from every configured source
// (every node when cfg.Sources is nil). The context cancels the run early;
// a cancelled run returns ctx.Err().
//
// It accepts any graph.View. Below the kernel cutoff the scalar BFS runs
// directly over the view; on the bit-parallel kernel path a non-CSR view
// is materialized once (graph.Materialize, cached by the view) and the
// copy is amortized across all cores. Results are identical either way.
func Measure(ctx context.Context, g graph.View, cfg Config) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("expansion: empty graph")
	}
	sources := cfg.Sources
	if sources == nil {
		sources = make([]graph.NodeID, n)
		for v := range sources {
			sources[v] = graph.NodeID(v)
		}
	}
	for _, s := range sources {
		if !g.Valid(s) {
			return nil, fmt.Errorf("expansion: source %d out of range", s)
		}
	}
	// levels[i] is source i's BFS level-size sequence — everything the
	// fold needs. Cores run either one per task through pooled scalar
	// BFS workers or 64 per task through the bit-parallel kernel; both
	// produce the same integer level sizes, and the per-source results
	// are folded sequentially in source order below, so the keyed
	// summaries are bit-for-bit identical at any worker count and batch
	// width.
	width, err := cfg.batchWidth(g)
	if err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "expansion.measure")
	defer span.End()
	var levels [][]int64
	if width <= 1 {
		pool := graph.NewBFSPool(g)
		defer recordPoolStats(pool.Stats)
		obsScalarSources.Add(int64(len(sources)))
		levels, err = parallel.Map(ctx, cfg.Workers, len(sources), func(_, i int) ([]int64, error) {
			bfs := pool.Get()
			defer pool.Put(bfs)
			r, err := bfs.Run(sources[i])
			if err != nil {
				return nil, err
			}
			// r aliases pooled scratch (see BFSWorker.Run); keep only a
			// copy of the level sizes, which is all the fold reads.
			return append([]int64(nil), r.LevelSizes...), nil
		})
	} else {
		blocks := parallel.Blocks(len(sources), width)
		pool := kernels.NewBFSBatchPool(graph.Materialize(g))
		defer recordPoolStats(pool.Stats)
		obsBatches.Add(int64(len(blocks)))
		var parts [][][]int64
		parts, err = parallel.Map(ctx, cfg.Workers, len(blocks), func(_, b int) ([][]int64, error) {
			batch := pool.Get()
			defer pool.Put(batch)
			return batch.Run(sources[blocks[b].Start:blocks[b].End])
		})
		if err == nil {
			levels = make([][]int64, 0, len(sources))
			for _, p := range parts {
				levels = append(levels, p...)
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("expansion: %w", err)
	}

	res := &Result{
		NeighborsBySetSize: stats.NewKeyedSummary(),
		FactorBySetSize:    stats.NewKeyedSummary(),
		Sources:            len(sources),
	}
	for _, ls := range levels {
		if ecc := len(ls) - 1; ecc > res.MaxEccentricity {
			res.MaxEccentricity = ecc
		}
		// For each depth i with a non-empty next level, the envelope is
		// the first i+1 levels and the expansion is level i+1.
		var envelope int64
		for i := 0; i+1 < len(ls); i++ {
			envelope += ls[i]
			next := ls[i+1]
			res.NeighborsBySetSize.Add(envelope, float64(next))
			res.FactorBySetSize.Add(envelope, float64(next)/float64(envelope))
		}
	}
	return res, nil
}

// recordPoolStats folds one pool's get/new counts into the shared hit
// and miss counters; both BFS pools expose the same Stats signature.
func recordPoolStats(stats func() (gets, news int64)) {
	gets, news := stats()
	obsPoolHits.Add(gets - news)
	obsPoolMisses.Add(news)
}

// SampledSources returns k seeded uniform distinct sources for large
// graphs where the exact O(nm) measurement is too slow. It shares the
// seeded sampler (graph.SampleNodes) with walk.SampleSources so both
// measurements draw comparable source sets from one root seed; BFS cores
// may be isolated nodes, so no degree filter is applied.
func SampledSources(g graph.View, k int, seed int64) ([]graph.NodeID, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("expansion: empty graph")
	}
	out, err := graph.SampleNodes(g, k, seed, false)
	if err != nil {
		return nil, fmt.Errorf("expansion: %w", err)
	}
	return out, nil
}
