// Package expansion implements the graph-expansion measurement of §III-D
// of the paper, in the restricted connected-set form GateKeeper assumes:
// for every node as "core", a breadth-first-search tree is grown; the
// envelope Env_i is all nodes within distance i of the core, its expansion
// Exp_i is the next BFS level, and the expansion factor is
//
//	α_i = L_{i+1} / Σ_{j<=i} L_j        (Eq. 4)
//
// Aggregating (|Env_i|, |Exp_i|) pairs over all cores by unique envelope
// size gives the min/mean/max scatter of Figure 3; aggregating α over all
// sets of equal size gives the expected-expansion curves of Figure 4.
//
// Complexity: one core's scalar BFS is O(m); the full measurement over k
// cores is O(k·m) — the paper's exact O(nm) when every node is a core. On
// large graphs the cores advance 64 at a time through the bit-parallel
// BFS kernel (kernels.BFSBatch, uint64 frontier/visited masks, exact
// integer level sizes), cutting the adjacency scans by up to ~64×; small
// graphs keep the scalar loop with frontier/visited scratch drawn from a
// graph.BFSPool. Batches fan out across parallel workers for
// O(k·m/(64·workers)) wall clock; each core's envelope observations are
// collected independently and folded into the stats.KeyedSummary
// aggregates sequentially in source order, so the result is bit-for-bit
// identical at any worker count and batch width (BFS is integer — batch
// composition cannot perturb a single level count).
package expansion

import (
	"context"
	"errors"
	"fmt"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kernels"
	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/parallel"
	"github.com/trustnet/trustnet/internal/stats"
)

// Observability instruments for the expansion measurement, resolved once
// at init. Counting happens per core / per batch / per Measure call, not
// inside the BFS inner loops, so the kernels are untouched and results
// stay bit-identical with metrics enabled.
var (
	obsScalarSources = obs.Default().Counter("expansion.bfs.scalar_sources")
	obsBatches       = obs.Default().Counter("expansion.bfs.batches")
	obsPoolHits      = obs.Default().Counter("expansion.pool.hits")
	obsPoolMisses    = obs.Default().Counter("expansion.pool.misses")
	obsPartial       = obs.Default().Counter("expansion.partial")
	obsResumed       = obs.Default().Counter("expansion.resumed_sources")
)

// Config controls a measurement run.
type Config struct {
	// Sources limits the number of BFS cores. Zero means every node (the
	// paper's exact O(nm) measurement); a positive value samples the first
	// Sources nodes of a deterministic shuffle — see SampledSources.
	Sources []graph.NodeID
	// Workers is the parallelism; defaults to GOMAXPROCS when <= 0. The
	// naive algorithm is O(nm) total, embarrassingly parallel per source.
	Workers int
	// BFSBatch selects the BFS kernel. 0 auto-selects: 64-wide
	// bit-parallel batches (kernels.BFSBatch) on graphs with at least
	// kernels.MinKernelNodes nodes, scalar per-core BFS otherwise. 1
	// forces the scalar loop; values in [2, 64] force that batch width.
	// Every setting produces identical integer results.
	BFSBatch int
	// BestEffort salvages a deadline-hit measurement: when ctx is
	// canceled or times out mid-run, Measure aggregates the cores
	// completed so far (Result.Partial true, Coverage < 1) instead of
	// returning the context error, as long as at least one core
	// finished. BFS is integer, so every completed core's levels are
	// identical to the uninterrupted run's.
	BestEffort bool
	// Resume seeds the measurement with level sequences completed by an
	// earlier (interrupted) run over the *same* source list: cores whose
	// checkpoint entry is non-nil are not re-measured. A checkpoint
	// whose sources differ from this run's is stale state and an error.
	Resume *Checkpoint
}

// Checkpoint is the resumable progress of an expansion measurement: the
// BFS cores and, per core, the completed level-size sequence (nil for
// cores not yet measured). BFS levels are integers, so the JSON round
// trip through internal/resilience's store is exact and a resumed run
// reproduces the uninterrupted result bit-for-bit.
type Checkpoint struct {
	Sources []graph.NodeID `json:"sources"`
	Levels  [][]int64      `json:"levels"`
}

// matches reports whether the checkpoint belongs to a measurement over
// these sources.
func (c *Checkpoint) matches(sources []graph.NodeID) bool {
	if len(c.Sources) != len(sources) || len(c.Levels) != len(sources) {
		return false
	}
	for i, s := range c.Sources {
		if s != sources[i] {
			return false
		}
	}
	return true
}

// batchWidth resolves the BFSBatch knob against the graph size.
func (c Config) batchWidth(g graph.View) (int, error) {
	switch {
	case c.BFSBatch == 0:
		if g.NumNodes() >= kernels.MinKernelNodes {
			return kernels.BFSBatchWidth, nil
		}
		return 1, nil
	case c.BFSBatch < 0 || c.BFSBatch > kernels.BFSBatchWidth:
		return 0, fmt.Errorf("expansion: BFSBatch %d outside [0, %d]", c.BFSBatch, kernels.BFSBatchWidth)
	default:
		return c.BFSBatch, nil
	}
}

// Result aggregates an expansion measurement across sources.
type Result struct {
	// NeighborsBySetSize maps each observed envelope size |Env| to the
	// min/mean/max of |Exp| over all (core, i) pairs with that envelope
	// size — the Figure 3 scatter.
	NeighborsBySetSize *stats.KeyedSummary
	// FactorBySetSize maps envelope size to the summary of expansion
	// factors α — the Figure 4 curve uses its means.
	FactorBySetSize *stats.KeyedSummary
	// Sources is the number of configured BFS cores.
	Sources int
	// Completed counts the cores whose BFS finished; it equals Sources
	// on a complete run.
	Completed int
	// Partial reports that a best-effort run was cut short: the
	// aggregates cover only Completed of Sources cores.
	Partial bool
	// MaxEccentricity is the largest BFS depth observed (a diameter lower
	// bound when all nodes are used as sources).
	MaxEccentricity int

	// sourceList and levels retain the per-core state Checkpoint needs.
	sourceList []graph.NodeID
	levels     [][]int64
}

// Coverage is the fraction of configured cores with a completed BFS —
// 1 for a complete measurement, in (0, 1) for a salvaged partial one.
func (r *Result) Coverage() float64 {
	if r.Sources == 0 {
		return 0
	}
	return float64(r.Completed) / float64(r.Sources)
}

// Checkpoint returns the result's resumable state. The checkpoint
// aliases the result's internal slices — serialize it before reuse.
func (r *Result) Checkpoint() *Checkpoint {
	return &Checkpoint{Sources: r.sourceList, Levels: r.levels}
}

// VertexExpansion returns the minimum observed expansion factor over every
// measured envelope with size at most half the graph — the sampled,
// connected-set analogue of the vertex expansion α in Eq. 3.
func (r *Result) VertexExpansion(n int) (float64, bool) {
	found := false
	best := 0.0
	for _, size := range r.FactorBySetSize.Keys() {
		if size > int64(n)/2 {
			continue
		}
		s, ok := r.FactorBySetSize.Get(size)
		if !ok || s.Count() == 0 {
			continue
		}
		if !found || s.Min() < best {
			best = s.Min()
			found = true
		}
	}
	return best, found
}

// Measure runs the envelope measurement from every configured source
// (every node when cfg.Sources is nil). The context cancels the run early;
// a cancelled run returns ctx.Err().
//
// It accepts any graph.View. Below the kernel cutoff the scalar BFS runs
// directly over the view; on the bit-parallel kernel path a non-CSR view
// is materialized once (graph.Materialize, cached by the view) and the
// copy is amortized across all cores. Results are identical either way.
func Measure(ctx context.Context, g graph.View, cfg Config) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("expansion: empty graph")
	}
	sources := cfg.Sources
	if sources == nil {
		sources = make([]graph.NodeID, n)
		for v := range sources {
			sources[v] = graph.NodeID(v)
		}
	}
	for _, s := range sources {
		if !g.Valid(s) {
			return nil, fmt.Errorf("expansion: source %d out of range", s)
		}
	}
	// levels[i] is source i's BFS level-size sequence — everything the
	// fold needs. Cores run either one per task through pooled scalar
	// BFS workers or 64 per task through the bit-parallel kernel; both
	// produce the same integer level sizes, and the per-source results
	// are folded sequentially in source order below, so the keyed
	// summaries are bit-for-bit identical at any worker count and batch
	// width.
	width, err := cfg.batchWidth(g)
	if err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "expansion.measure")
	defer span.End()

	// levels[i] belongs to sources[i]; resumed cores are merged up front
	// and todo holds the indices still to measure. Each worker task owns
	// distinct level slots, and parallel.ForEach joins every worker
	// before returning, so the post-fan-out read is race-free even when
	// a deadline stops the run mid-flight.
	levels := make([][]int64, len(sources))
	if cfg.Resume != nil {
		if !cfg.Resume.matches(sources) {
			return nil, fmt.Errorf("expansion: resume checkpoint does not match this source list")
		}
		copy(levels, cfg.Resume.Levels)
		for _, ls := range levels {
			if ls != nil {
				obsResumed.Inc()
			}
		}
	}
	todo := make([]int, 0, len(sources))
	for i, ls := range levels {
		if ls == nil {
			todo = append(todo, i)
		}
	}

	var runErr error
	if width <= 1 {
		pool := graph.NewBFSPool(g)
		defer recordPoolStats(pool.Stats)
		obsScalarSources.Add(int64(len(todo)))
		runErr = parallel.ForEach(ctx, cfg.Workers, len(todo), func(_, k int) error {
			bfs := pool.Get()
			defer pool.Put(bfs)
			r, err := bfs.Run(sources[todo[k]])
			if err != nil {
				return err
			}
			// r aliases pooled scratch (see BFSWorker.Run); keep only a
			// copy of the level sizes, which is all the fold reads.
			levels[todo[k]] = append([]int64(nil), r.LevelSizes...)
			return nil
		})
	} else if len(todo) > 0 {
		todoSources := make([]graph.NodeID, len(todo))
		for k, i := range todo {
			todoSources[k] = sources[i]
		}
		blocks := parallel.Blocks(len(todo), width)
		obsBatches.Add(int64(len(blocks)))
		if sg, ok := graph.AsSharded(g); ok {
			// Sharded substrate: parallelism moves inside each batch (one
			// worker per shard per BFS superstep), so the outer batch loop
			// runs inline and no Materialize flattens the shards. Levels
			// are integers, so the fold below sees identical values.
			batch := kernels.NewShardedBFSBatch(sg)
			runErr = parallel.ForEach(ctx, 1, len(blocks), func(_, b int) error {
				part, err := batch.Run(ctx, todoSources[blocks[b].Start:blocks[b].End], cfg.Workers)
				if err != nil {
					return err
				}
				for j, ls := range part {
					levels[todo[blocks[b].Start+j]] = ls
				}
				return nil
			})
		} else {
			pool := kernels.NewBFSBatchPool(graph.Materialize(g))
			defer recordPoolStats(pool.Stats)
			runErr = parallel.ForEach(ctx, cfg.Workers, len(blocks), func(_, b int) error {
				batch := pool.Get()
				defer pool.Put(batch)
				part, err := batch.Run(todoSources[blocks[b].Start:blocks[b].End])
				if err != nil {
					return err
				}
				for j, ls := range part {
					levels[todo[blocks[b].Start+j]] = ls
				}
				return nil
			})
		}
	}

	res := &Result{
		NeighborsBySetSize: stats.NewKeyedSummary(),
		FactorBySetSize:    stats.NewKeyedSummary(),
		Sources:            len(sources),
		sourceList:         sources,
		levels:             levels,
	}
	if runErr != nil {
		if !cfg.BestEffort || !isInterrupt(runErr) {
			return nil, fmt.Errorf("expansion: %w", runErr)
		}
		// Deadline or cancellation in best-effort mode: salvage whatever
		// completed. Zero coverage has nothing to salvage.
		obsPartial.Inc()
		res.Partial = true
	}
	for _, ls := range levels {
		if ls == nil {
			continue
		}
		res.Completed++
		if ecc := len(ls) - 1; ecc > res.MaxEccentricity {
			res.MaxEccentricity = ecc
		}
		// For each depth i with a non-empty next level, the envelope is
		// the first i+1 levels and the expansion is level i+1.
		var envelope int64
		for i := 0; i+1 < len(ls); i++ {
			envelope += ls[i]
			next := ls[i+1]
			res.NeighborsBySetSize.Add(envelope, float64(next))
			res.FactorBySetSize.Add(envelope, float64(next)/float64(envelope))
		}
	}
	if res.Completed == 0 {
		if runErr != nil {
			return nil, fmt.Errorf("expansion: %w", runErr)
		}
		return nil, fmt.Errorf("expansion: no cores measured")
	}
	return res, nil
}

// isInterrupt reports whether err is a context cancellation or deadline
// — the two failure classes best-effort mode may salvage a partial
// result from.
func isInterrupt(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// recordPoolStats folds one pool's get/new counts into the shared hit
// and miss counters; both BFS pools expose the same Stats signature.
func recordPoolStats(stats func() (gets, news int64)) {
	gets, news := stats()
	obsPoolHits.Add(gets - news)
	obsPoolMisses.Add(news)
}

// SampledSources returns k seeded uniform distinct sources for large
// graphs where the exact O(nm) measurement is too slow. It shares the
// seeded sampler (graph.SampleNodes) with walk.SampleSources so both
// measurements draw comparable source sets from one root seed; BFS cores
// may be isolated nodes, so no degree filter is applied.
func SampledSources(g graph.View, k int, seed int64) ([]graph.NodeID, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("expansion: empty graph")
	}
	out, err := graph.SampleNodes(g, k, seed, false)
	if err != nil {
		return nil, fmt.Errorf("expansion: %w", err)
	}
	return out, nil
}
