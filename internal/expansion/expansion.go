// Package expansion implements the graph-expansion measurement of §III-D
// of the paper, in the restricted connected-set form GateKeeper assumes:
// for every node as "core", a breadth-first-search tree is grown; the
// envelope Env_i is all nodes within distance i of the core, its expansion
// Exp_i is the next BFS level, and the expansion factor is
//
//	α_i = L_{i+1} / Σ_{j<=i} L_j        (Eq. 4)
//
// Aggregating (|Env_i|, |Exp_i|) pairs over all cores by unique envelope
// size gives the min/mean/max scatter of Figure 3; aggregating α over all
// sets of equal size gives the expected-expansion curves of Figure 4.
package expansion

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/stats"
)

// Config controls a measurement run.
type Config struct {
	// Sources limits the number of BFS cores. Zero means every node (the
	// paper's exact O(nm) measurement); a positive value samples the first
	// Sources nodes of a deterministic shuffle — see SampledSources.
	Sources []graph.NodeID
	// Workers is the parallelism; defaults to GOMAXPROCS when <= 0. The
	// naive algorithm is O(nm) total, embarrassingly parallel per source.
	Workers int
}

// Result aggregates an expansion measurement across sources.
type Result struct {
	// NeighborsBySetSize maps each observed envelope size |Env| to the
	// min/mean/max of |Exp| over all (core, i) pairs with that envelope
	// size — the Figure 3 scatter.
	NeighborsBySetSize *stats.KeyedSummary
	// FactorBySetSize maps envelope size to the summary of expansion
	// factors α — the Figure 4 curve uses its means.
	FactorBySetSize *stats.KeyedSummary
	// Sources is the number of BFS cores measured.
	Sources int
	// MaxEccentricity is the largest BFS depth observed (a diameter lower
	// bound when all nodes are used as sources).
	MaxEccentricity int
}

// VertexExpansion returns the minimum observed expansion factor over every
// measured envelope with size at most half the graph — the sampled,
// connected-set analogue of the vertex expansion α in Eq. 3.
func (r *Result) VertexExpansion(n int) (float64, bool) {
	found := false
	best := 0.0
	for _, size := range r.FactorBySetSize.Keys() {
		if size > int64(n)/2 {
			continue
		}
		s, ok := r.FactorBySetSize.Get(size)
		if !ok || s.Count() == 0 {
			continue
		}
		if !found || s.Min() < best {
			best = s.Min()
			found = true
		}
	}
	return best, found
}

// Measure runs the envelope measurement from every configured source
// (every node when cfg.Sources is nil). The context cancels the run early;
// a cancelled run returns ctx.Err().
func Measure(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("expansion: empty graph")
	}
	sources := cfg.Sources
	if sources == nil {
		sources = make([]graph.NodeID, n)
		for v := range sources {
			sources[v] = graph.NodeID(v)
		}
	}
	for _, s := range sources {
		if !g.Valid(s) {
			return nil, fmt.Errorf("expansion: source %d out of range", s)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		workers = 1
	}

	type partial struct {
		neighbors *stats.KeyedSummary
		factors   *stats.KeyedSummary
		maxEcc    int
		err       error
	}
	work := make(chan graph.NodeID)
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			p := partial{
				neighbors: stats.NewKeyedSummary(),
				factors:   stats.NewKeyedSummary(),
			}
			bfs := graph.NewBFSWorker(g)
			for src := range work {
				r, err := bfs.Run(src)
				if err != nil {
					p.err = err
					break
				}
				accumulate(r, &p.maxEcc, p.neighbors, p.factors)
			}
			parts[slot] = p
		}(w)
	}

	var sendErr error
feed:
	for _, src := range sources {
		select {
		case work <- src:
		case <-ctx.Done():
			sendErr = ctx.Err()
			break feed
		}
	}
	close(work)
	wg.Wait()
	if sendErr != nil {
		return nil, fmt.Errorf("expansion: %w", sendErr)
	}

	res := &Result{
		NeighborsBySetSize: stats.NewKeyedSummary(),
		FactorBySetSize:    stats.NewKeyedSummary(),
		Sources:            len(sources),
	}
	for _, p := range parts {
		if p.err != nil {
			return nil, fmt.Errorf("expansion: %w", p.err)
		}
		res.NeighborsBySetSize.Merge(p.neighbors)
		res.FactorBySetSize.Merge(p.factors)
		if p.maxEcc > res.MaxEccentricity {
			res.MaxEccentricity = p.maxEcc
		}
	}
	return res, nil
}

// accumulate folds one BFS tree into the keyed summaries: for each depth i
// with a non-empty next level, the envelope is the first i+1 levels and
// the expansion is level i+1.
func accumulate(r *graph.BFSResult, maxEcc *int, neighbors, factors *stats.KeyedSummary) {
	if e := r.Eccentricity(); e > *maxEcc {
		*maxEcc = e
	}
	var envelope int64
	for i := 0; i+1 < len(r.LevelSizes); i++ {
		envelope += r.LevelSizes[i]
		next := r.LevelSizes[i+1]
		neighbors.Add(envelope, float64(next))
		factors.Add(envelope, float64(next)/float64(envelope))
	}
}

// SampledSources returns k deterministic pseudo-random distinct sources
// for large graphs where the exact O(nm) measurement is too slow. The
// sequence is a fixed-stride probe of the node space, which is unbiased
// for the aggregate statistics because node IDs carry no meaning.
func SampledSources(g *graph.Graph, k int) ([]graph.NodeID, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("expansion: empty graph")
	}
	if k < 1 {
		return nil, fmt.Errorf("expansion: sample size %d must be >= 1", k)
	}
	if k > n {
		k = n
	}
	// A co-prime stride visits all nodes before repeating.
	stride := n/2 + 1
	for gcd(stride, n) != 1 {
		stride++
	}
	out := make([]graph.NodeID, k)
	cur := 0
	for i := 0; i < k; i++ {
		out[i] = graph.NodeID(cur)
		cur = (cur + stride) % n
	}
	return out, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
