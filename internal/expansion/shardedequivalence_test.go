package expansion

import (
	"reflect"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// TestEquivalenceShardedExpansion measures BFS envelopes on a ShardedGraph
// at 1, 2 and 7 shards and requires results identical to the monolithic
// measurement — on the bit-parallel batch path (which routes through
// kernels.ShardedBFSBatch) and the scalar pooled path.
func TestEquivalenceShardedExpansion(t *testing.T) {
	for _, tc := range []struct {
		name     string
		g        *graph.Graph
		bfsBatch int
	}{
		// BFSBatch 64 forces the batch kernel even on a small graph.
		{"ba-batch", mustBA(t, 600, 3, 51), 64},
		// BFSBatch 1 forces the scalar path over the sharded view.
		{"ba-scalar", mustBA(t, 250, 3, 52), 1},
		{"clustered-batch", mustClusteredPA(t, 3, 90, 3, 1, 53), 64},
	} {
		srcs, err := SampledSources(tc.g, 96, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 7} {
			sg, err := graph.NewSharded(tc.g, shards)
			if err != nil {
				t.Fatal(err)
			}
			// Source sampling is degree-driven and must not see the shards.
			srcsSharded, err := SampledSources(sg, 96, 9)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(srcs, srcsSharded) {
				t.Fatalf("%s shards=%d: sampled sources diverge", tc.name, shards)
			}
			t.Run(tc.name, func(t *testing.T) {
				checkExpansionIdentical(t, sg, tc.g,
					Config{Sources: srcs, Workers: 4, BFSBatch: tc.bfsBatch})
			})
		}
	}
}

func mustBA(t *testing.T, n, attach int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, attach, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustClusteredPA(t *testing.T, comms, size, attach, bridges int, seed int64) *graph.Graph {
	t.Helper()
	g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: comms, CommunitySize: size, Attach: attach, Bridges: bridges, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}
