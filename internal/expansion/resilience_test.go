package expansion

import (
	"context"
	"encoding/json"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/stats"
)

// countCtx is a context whose Err() flips to DeadlineExceeded after a
// fixed number of calls. With Workers=1 the measurement is sequential
// and consults Err() at deterministic points (once per fan-out item),
// so the interruption lands at exactly the same place on every run —
// unlike a wall-clock deadline.
type countCtx struct {
	context.Context
	calls   atomic.Int64
	budget  int64
	expired atomic.Bool
}

func newCountCtx(budget int64) *countCtx {
	return &countCtx{Context: context.Background(), budget: budget}
}

func (c *countCtx) Err() error {
	if c.calls.Add(1) > c.budget || c.expired.Load() {
		c.expired.Store(true)
		return context.DeadlineExceeded
	}
	return nil
}

func (c *countCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// sameSummaries compares two keyed summaries field by field (count, min,
// max, mean, variance) over identical key sets.
func sameSummaries(a, b *stats.KeyedSummary) bool {
	ka, kb := a.Keys(), b.Keys()
	if !reflect.DeepEqual(ka, kb) {
		return false
	}
	for _, k := range ka {
		sa, _ := a.Get(k)
		sb, _ := b.Get(k)
		if sa.Count() != sb.Count() || sa.Min() != sb.Min() || sa.Max() != sb.Max() ||
			sa.Mean() != sb.Mean() || sa.Variance() != sb.Variance() {
			return false
		}
	}
	return true
}

func TestMeasureBestEffortPartial(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 1, BFSBatch: 1, BestEffort: true}
	// Err() is consulted once per core on the scalar path: a budget of
	// 25 completes roughly 25 of the 80 cores.
	r, err := Measure(newCountCtx(25), g, cfg)
	if err != nil {
		t.Fatalf("best-effort run returned error: %v", err)
	}
	if !r.Partial {
		t.Fatal("interrupted run not flagged Partial")
	}
	if r.Completed <= 0 || r.Completed >= r.Sources {
		t.Fatalf("Completed = %d of %d, want strictly between", r.Completed, r.Sources)
	}
	if cov := r.Coverage(); cov <= 0 || cov >= 1 {
		t.Fatalf("Coverage() = %v, want in (0, 1)", cov)
	}

	// Without BestEffort the same interruption is an error.
	cfg.BestEffort = false
	if _, err := Measure(newCountCtx(25), g, cfg); err == nil || !isInterrupt(err) {
		t.Fatalf("without BestEffort, interrupted run = %v, want deadline error", err)
	}

	// Zero coverage has nothing to salvage even in best-effort mode.
	cfg.BestEffort = true
	if _, err := Measure(newCountCtx(0), g, cfg); err == nil || !isInterrupt(err) {
		t.Fatalf("zero-coverage best-effort run = %v, want deadline error", err)
	}
}

// The resilience contract: interrupt a run, checkpoint it through a JSON
// round-trip (as internal/resilience would), resume, and the final
// result is bit-identical to the never-interrupted measurement.
func TestMeasureResumeBitIdentical(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 1, BFSBatch: 1}
	ref, err := Measure(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cut := cfg
	cut.BestEffort = true
	partial, err := Measure(newCountCtx(30), g, cut)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || partial.Completed == 0 {
		t.Fatalf("setup: expected a partial result, got %+v", partial)
	}

	data, err := json.Marshal(partial.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	var ckpt Checkpoint
	if err := json.Unmarshal(data, &ckpt); err != nil {
		t.Fatal(err)
	}

	resumed := cfg
	resumed.Resume = &ckpt
	got, err := Measure(context.Background(), g, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || got.Completed != got.Sources || got.Coverage() != 1 {
		t.Fatalf("resumed run incomplete: completed %d of %d", got.Completed, got.Sources)
	}
	if got.MaxEccentricity != ref.MaxEccentricity {
		t.Fatalf("MaxEccentricity = %d, want %d", got.MaxEccentricity, ref.MaxEccentricity)
	}
	if !sameSummaries(ref.NeighborsBySetSize, got.NeighborsBySetSize) {
		t.Fatal("NeighborsBySetSize differs between resumed and uninterrupted runs")
	}
	if !sameSummaries(ref.FactorBySetSize, got.FactorBySetSize) {
		t.Fatal("FactorBySetSize differs between resumed and uninterrupted runs")
	}
}

// Resume on the bit-parallel kernel path, where the cut lands between
// 64-core batches.
func TestMeasureResumeKernelPath(t *testing.T) {
	g, err := gen.BarabasiAlbert(600, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 1}
	ref, err := Measure(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := cfg
	cut.BestEffort = true
	// Err() is consulted once per 64-wide batch: budget 4 cuts the run
	// after roughly 256 of the 600 cores.
	partial, err := Measure(newCountCtx(4), g, cut)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial {
		t.Fatalf("setup: expected a partial result, got coverage %v", partial.Coverage())
	}
	resumed := cfg
	resumed.Resume = partial.Checkpoint()
	got, err := Measure(context.Background(), g, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSummaries(ref.FactorBySetSize, got.FactorBySetSize) {
		t.Fatal("kernel-path aggregates differ between resumed and uninterrupted runs")
	}
}

func TestMeasureResumeMismatchRejected(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	sources, err := SampledSources(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Measure(context.Background(), g, Config{Sources: sources, Workers: 1, BFSBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	other, err := SampledSources(g, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(context.Background(), g, Config{
		Sources: other, Workers: 1, BFSBatch: 1, Resume: r.Checkpoint(),
	}); err == nil {
		t.Fatal("stale checkpoint (different sources) accepted")
	}
}
