package expansion

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// churnView mirrors the walk package's helper: deterministic node churn
// plus edge drops, with an independent Builder rebuild as the reference.
func churnView(t *testing.T, g *graph.Graph, seed int64) (*graph.MaskedView, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mv := graph.NewMaskedView(g)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if rng.Float64() < 0.15 {
			mv.SetAlive(v, false)
		}
	}
	edges := g.Edges()
	for i := 0; i < len(edges)/20; i++ {
		e := edges[rng.Intn(len(edges))]
		mv.DropEdge(e.U, e.V)
	}
	b := graph.NewBuilder(g.NumNodes())
	mv.VisitEdges(func(e graph.Edge) bool {
		b.AddEdgeSafe(e.U, e.V)
		return true
	})
	return mv, b.Build()
}

func checkExpansionIdentical(t *testing.T, a, b graph.View, cfg Config) {
	t.Helper()
	ra, err := Measure(context.Background(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Measure(context.Background(), b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("expansion results diverge between view and rebuilt copy:\n%+v\nvs\n%+v", ra, rb)
	}
}

// TestEquivalenceViewExpansionMasked checks the BFS envelopes measured on
// a churned MaskedView against the rebuilt CSR, on the scalar path (small)
// and the bit-parallel batch path (large, materialized once).
func TestEquivalenceViewExpansionMasked(t *testing.T) {
	small, err := gen.BarabasiAlbert(300, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	mv, rebuilt := churnView(t, small, 1)
	srcs, err := SampledSources(mv, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	srcsRebuilt, err := SampledSources(rebuilt, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srcs, srcsRebuilt) {
		t.Fatal("sampled sources differ between view and rebuilt copy")
	}
	checkExpansionIdentical(t, mv, rebuilt, Config{Sources: srcs, Workers: 8})

	big, err := gen.BarabasiAlbert(5000, 4, 22)
	if err != nil {
		t.Fatal(err)
	}
	mvBig, rebuiltBig := churnView(t, big, 2)
	srcsBig, err := SampledSources(mvBig, 192, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkExpansionIdentical(t, mvBig, rebuiltBig, Config{Sources: srcsBig, Workers: 8})
}

// TestEquivalenceViewExpansionInduced does the same for an induced subset.
func TestEquivalenceViewExpansionInduced(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var nodes []graph.NodeID
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if rng.Float64() < 0.6 {
			nodes = append(nodes, v)
		}
	}
	iv, err := graph.NewInducedView(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	checkExpansionIdentical(t, iv, graph.InducedSubgraph(g, nodes), Config{Workers: 8})
}
