package expansion

import (
	"context"
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func measureAll(t *testing.T, g *graph.Graph) *Result {
	t.Helper()
	r, err := Measure(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMeasureCompleteGraph(t *testing.T) {
	g, err := gen.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	r := measureAll(t, g)
	if r.Sources != 10 {
		t.Errorf("Sources = %d, want 10", r.Sources)
	}
	if r.MaxEccentricity != 1 {
		t.Errorf("MaxEccentricity = %d, want 1", r.MaxEccentricity)
	}
	// Every BFS has levels [1, 9]: envelope size 1 with 9 neighbors.
	s, ok := r.NeighborsBySetSize.Get(1)
	if !ok {
		t.Fatal("no envelope of size 1 recorded")
	}
	if s.Count() != 10 || s.Min() != 9 || s.Max() != 9 {
		t.Errorf("envelope-1 stats = %+v, want 10 observations of 9", s)
	}
	f, ok := r.FactorBySetSize.Get(1)
	if !ok || math.Abs(f.Mean()-9) > 1e-12 {
		t.Errorf("alpha at size 1 = %v, want 9", f.Mean())
	}
}

func TestMeasureCycle(t *testing.T) {
	g, err := gen.Cycle(9)
	if err != nil {
		t.Fatal(err)
	}
	r := measureAll(t, g)
	// Levels from any source on C9: [1,2,2,2,2]; envelopes 1,3,5,7 with
	// expansions 2,2,2,2.
	for _, size := range []int64{1, 3, 5, 7} {
		s, ok := r.NeighborsBySetSize.Get(size)
		if !ok {
			t.Fatalf("no envelope of size %d", size)
		}
		if s.Min() != 2 || s.Max() != 2 || s.Count() != 9 {
			t.Errorf("envelope %d stats = %+v, want exactly 2 neighbors ×9", size, s)
		}
		f, _ := r.FactorBySetSize.Get(size)
		want := 2 / float64(size)
		if math.Abs(f.Mean()-want) > 1e-12 {
			t.Errorf("alpha at %d = %v, want %v", size, f.Mean(), want)
		}
	}
	if r.MaxEccentricity != 4 {
		t.Errorf("MaxEccentricity = %d, want 4", r.MaxEccentricity)
	}
}

func TestMeasureStarAsymmetry(t *testing.T) {
	g, err := gen.Star(6)
	if err != nil {
		t.Fatal(err)
	}
	r := measureAll(t, g)
	// From hub: envelope 1 -> 5 neighbors. From each leaf: envelope 1 -> 1
	// neighbor, envelope 2 -> 4 neighbors.
	s, ok := r.NeighborsBySetSize.Get(1)
	if !ok || s.Count() != 6 {
		t.Fatalf("envelope-1 stats = %+v", s)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("envelope-1 min/max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	s2, ok := r.NeighborsBySetSize.Get(2)
	if !ok || s2.Count() != 5 || s2.Mean() != 4 {
		t.Errorf("envelope-2 stats = %+v, want 5 observations of 4", s2)
	}
}

func TestMeasureExplicitSources(t *testing.T) {
	g, err := gen.Cycle(12)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Measure(context.Background(), g, Config{Sources: []graph.NodeID{0, 3}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sources != 2 {
		t.Errorf("Sources = %d, want 2", r.Sources)
	}
	s, _ := r.NeighborsBySetSize.Get(1)
	if s.Count() != 2 {
		t.Errorf("envelope-1 count = %d, want 2", s.Count())
	}
}

func TestMeasureErrors(t *testing.T) {
	var empty graph.Graph
	if _, err := Measure(context.Background(), &empty, Config{}); err == nil {
		t.Error("Measure(empty): want error")
	}
	g, err := gen.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(context.Background(), g, Config{Sources: []graph.NodeID{99}}); err == nil {
		t.Error("Measure(bad source): want error")
	}
}

func TestMeasureCancellation(t *testing.T) {
	g, err := gen.BarabasiAlbert(2000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Measure(ctx, g, Config{Workers: 1}); err == nil {
		t.Error("Measure(cancelled): want error")
	}
}

func TestVertexExpansionHypercubeVsClustered(t *testing.T) {
	// The hypercube is a good expander; the clustered community graph is
	// not. Their minimum connected-set expansion factors should reflect it.
	hc, err := gen.Hypercube(8) // 256 nodes, degree 8
	if err != nil {
		t.Fatal(err)
	}
	clustered, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 4, CommunitySize: 64, Attach: 4, Bridges: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rh := measureAll(t, hc)
	rc := measureAll(t, clustered)
	ah, ok := rh.VertexExpansion(hc.NumNodes())
	if !ok {
		t.Fatal("no expansion measured on hypercube")
	}
	ac, ok := rc.VertexExpansion(clustered.NumNodes())
	if !ok {
		t.Fatal("no expansion measured on clustered graph")
	}
	if ah <= ac {
		t.Errorf("expander alpha %v <= clustered alpha %v, want expander to dominate", ah, ac)
	}
	if ac > 0.2 {
		t.Errorf("clustered graph min alpha = %v, expected bottleneck < 0.2", ac)
	}
}

func TestVertexExpansionNoSmallSets(t *testing.T) {
	// With only two nodes, the only envelope has size 1 = n/2, so a
	// measurement exists; check the boundary behaves.
	g, err := gen.Path(2)
	if err != nil {
		t.Fatal(err)
	}
	r := measureAll(t, g)
	a, ok := r.VertexExpansion(2)
	if !ok || a != 1 {
		t.Errorf("VertexExpansion(P2) = %v,%v, want 1,true", a, ok)
	}
}

func TestSampledSources(t *testing.T) {
	g, err := gen.Cycle(100)
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := SampledSources(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 10 {
		t.Fatalf("len = %d, want 10", len(srcs))
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range srcs {
		if !g.Valid(s) {
			t.Errorf("invalid source %d", s)
		}
		if seen[s] {
			t.Errorf("duplicate source %d", s)
		}
		seen[s] = true
	}
	// Oversampling clamps to n.
	all, err := SampledSources(g, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 100 {
		t.Errorf("oversample len = %d, want 100", len(all))
	}
	if _, err := SampledSources(g, 0, 1); err == nil {
		t.Error("SampledSources(0): want error")
	}
	var empty graph.Graph
	if _, err := SampledSources(&empty, 5, 1); err == nil {
		t.Error("SampledSources(empty): want error")
	}
}

func TestMeasureWorkerCountsAgree(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Measure(context.Background(), g, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Measure(context.Background(), g, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MaxEccentricity != r8.MaxEccentricity {
		t.Errorf("eccentricity differs by worker count: %d vs %d", r1.MaxEccentricity, r8.MaxEccentricity)
	}
	k1, k8 := r1.NeighborsBySetSize.Keys(), r8.NeighborsBySetSize.Keys()
	if len(k1) != len(k8) {
		t.Fatalf("key counts differ: %d vs %d", len(k1), len(k8))
	}
	for i := range k1 {
		if k1[i] != k8[i] {
			t.Fatalf("keys differ at %d: %d vs %d", i, k1[i], k8[i])
		}
		s1, _ := r1.NeighborsBySetSize.Get(k1[i])
		s8, _ := r8.NeighborsBySetSize.Get(k8[i])
		if s1.Count() != s8.Count() || math.Abs(s1.Mean()-s8.Mean()) > 1e-9 {
			t.Fatalf("summaries differ at size %d: %+v vs %+v", k1[i], s1, s8)
		}
	}
}
