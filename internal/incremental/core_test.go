package incremental

import (
	"testing"

	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kcore"
)

func sweepGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(3000, 6, 41)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkCoresExact(t *testing.T, epoch int, cm *CoreMaintainer, view *graph.MaskedView) {
	t.Helper()
	dec, err := kcore.Decompose(view)
	if err != nil {
		t.Fatal(err)
	}
	want := dec.CorenessValues()
	got := cm.Cores()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("epoch %d: core(%d) = %d, full recompute says %d", epoch, v, got[v], want[v])
		}
	}
}

// TestEquivalenceCoreMaintainerDriftSweep drives a drifting fault model
// for several epochs and checks the maintained cores are bit-identical
// to a full Batagelj–Zaveršnik decomposition at every epoch.
func TestEquivalenceCoreMaintainerDriftSweep(t *testing.T) {
	g := sweepGraph(t)
	m, err := faults.New(g, faults.Config{Churn: 0.1, EdgeLoss: 0.05, Drift: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCoreMaintainer(m.View())
	if err != nil {
		t.Fatal(err)
	}
	checkCoresExact(t, 0, cm, m.View())

	var d *faults.EpochDelta
	incremental := 0
	for e := 1; e <= 8; e++ {
		d = m.AdvanceEpochDelta(d)
		if cm.Apply(d) {
			incremental++
		}
		checkCoresExact(t, e, cm, m.View())
	}
	// A BA graph is one giant max-core plateau, so insertions may
	// legitimately blow the subcore budget and fall back — exactness at
	// every epoch is the invariant, the path taken is informational.
	t.Logf("%d/8 epochs repaired incrementally", incremental)
}

// cliqueChain builds a graph whose coreness is spread out: count
// cliques with sizes cycling 4..12 (coreness 3..11), linked into a
// chain by single bridge edges (coreness 1). Insertion subcores stay
// clique-sized — a tiny fraction of the graph — so the incremental
// path must hold without falling back.
func cliqueChain(t *testing.T, count int) *graph.Graph {
	t.Helper()
	size := func(i int) int { return 4 + i%9 }
	n := 0
	for i := 0; i < count; i++ {
		n += size(i)
	}
	b := graph.NewBuilder(n)
	base := 0
	prev := -1
	for c := 0; c < count; c++ {
		s := size(c)
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				b.AddEdgeSafe(graph.NodeID(base+i), graph.NodeID(base+j))
			}
		}
		if prev >= 0 {
			b.AddEdgeSafe(graph.NodeID(prev), graph.NodeID(base))
		}
		prev = base
		base += s
	}
	return b.Build()
}

// TestEquivalenceCoreMaintainerDiverseCores sweeps a drifting model
// over a coreness-diverse graph where every delta's subcores are small,
// and requires the incremental path to carry every epoch.
func TestEquivalenceCoreMaintainerDiverseCores(t *testing.T) {
	g := cliqueChain(t, 400)
	m, err := faults.New(g, faults.Config{Churn: 0.05, EdgeLoss: 0.03, Drift: 0.01, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCoreMaintainer(m.View())
	if err != nil {
		t.Fatal(err)
	}
	var d *faults.EpochDelta
	incremental := 0
	for e := 1; e <= 10; e++ {
		d = m.AdvanceEpochDelta(d)
		if cm.Apply(d) {
			incremental++
		}
		checkCoresExact(t, e, cm, m.View())
	}
	if incremental < 8 {
		t.Fatalf("only %d/10 epochs repaired incrementally on a subcore-friendly graph", incremental)
	}
}

// TestEquivalenceCoreMaintainerRedrawFallsBack checks that without
// drift — where consecutive epochs are independent redraws — Apply
// detects the oversized delta, falls back to a full recompute, and
// still lands on the exact decomposition.
func TestEquivalenceCoreMaintainerRedrawFallsBack(t *testing.T) {
	g := sweepGraph(t)
	m, err := faults.New(g, faults.Config{Churn: 0.2, EdgeLoss: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCoreMaintainer(m.View())
	if err != nil {
		t.Fatal(err)
	}
	var d *faults.EpochDelta
	for e := 1; e <= 3; e++ {
		d = m.AdvanceEpochDelta(d)
		cm.Apply(d)
		checkCoresExact(t, e, cm, m.View())
	}
}

// TestEquivalenceCoreMaintainerEdgeCases exercises targeted deltas —
// single edge loss, single edge gain, node down, node revival — against
// full recomputes.
func TestEquivalenceCoreMaintainerEdgeCases(t *testing.T) {
	g := sweepGraph(t)
	mv := graph.NewMaskedView(g)
	cm, err := NewCoreMaintainer(mv)
	if err != nil {
		t.Fatal(err)
	}
	var snap *graph.MaskSnapshot
	var delta faults.EpochDelta
	step := func(name string, mutate func()) {
		t.Helper()
		snap = mv.Snapshot(snap)
		mutate()
		mv.DiffSnapshot(snap, &delta.MaskDelta)
		cm.Apply(&delta)
		checkCoresExact(t, -1, cm, mv)
	}

	var e0 graph.Edge
	g.VisitEdges(func(e graph.Edge) bool { e0 = e; return false })
	step("drop edge", func() { mv.DropEdge(e0.U, e0.V) })
	step("restore edge", func() { mv.RestoreEdge(e0.U, e0.V) })
	step("node down", func() { mv.SetAlive(42, false) })
	step("node revive", func() { mv.SetAlive(42, true) })
	step("mixed", func() {
		mv.SetAlive(7, false)
		mv.SetAlive(9, false)
		mv.DropEdge(e0.U, e0.V)
		mv.SetAlive(7, true)
	})
}
