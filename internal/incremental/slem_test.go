package incremental

import (
	"context"
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/spectral"
)

// TestEquivalenceSLEMMaintainerDriftSweep checks that warm-started
// epoch measurements agree with cold starts within tolerance at every
// epoch, and that carrying the eigenvector saves iterations overall.
func TestEquivalenceSLEMMaintainerDriftSweep(t *testing.T) {
	g := sweepGraph(t)
	m, err := faults.New(g, faults.Config{Churn: 0.05, EdgeLoss: 0.03, Drift: 0.01, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	cfg := spectral.Config{Seed: 7, Workers: 1}
	sm := NewSLEMMaintainer(m.View(), cfg)
	ctx := context.Background()

	warmIters, coldIters := 0, 0
	var d *faults.EpochDelta
	for e := 0; e <= 6; e++ {
		if e > 0 {
			d = m.AdvanceEpochDelta(d)
		}
		res, size, err := sm.Measure(ctx)
		if err != nil {
			t.Fatalf("epoch %d: warm measure: %v", e, err)
		}
		comp, nodes := graph.LargestComponentView(m.View())
		if size != len(nodes) {
			t.Fatalf("epoch %d: component size %d, want %d", e, size, len(nodes))
		}
		cold, err := spectral.SLEMContext(ctx, comp, cfg)
		if err != nil {
			t.Fatalf("epoch %d: cold measure: %v", e, err)
		}
		if !res.Converged || !cold.Converged {
			t.Fatalf("epoch %d: converged warm=%v cold=%v", e, res.Converged, cold.Converged)
		}
		if diff := math.Abs(res.SLEM - cold.SLEM); diff > 1e-6 {
			t.Fatalf("epoch %d: warm SLEM %.12f vs cold %.12f (diff %.3g)", e, res.SLEM, cold.SLEM, diff)
		}
		if e > 0 {
			warmIters += res.Iterations
			coldIters += cold.Iterations
		}
	}
	if warmIters > coldIters {
		t.Fatalf("warm starts used more iterations than cold: %d > %d", warmIters, coldIters)
	}
	t.Logf("iterations across drift epochs: warm %d, cold %d", warmIters, coldIters)
}

// TestEquivalenceSLEMMaintainerFirstMeasureIsCold checks the first
// measurement (no carried vector) is bit-identical to a plain cold
// start with the same configuration.
func TestEquivalenceSLEMMaintainerFirstMeasureIsCold(t *testing.T) {
	g := sweepGraph(t)
	mv := graph.NewMaskedView(g)
	cfg := spectral.Config{Seed: 3, Workers: 1}
	sm := NewSLEMMaintainer(mv, cfg)
	res, _, err := sm.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := graph.LargestComponentView(mv)
	cold, err := spectral.SLEMContext(context.Background(), comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLEM != cold.SLEM || res.Iterations != cold.Iterations {
		t.Fatalf("first measure diverged from cold start: %.15f/%d vs %.15f/%d",
			res.SLEM, res.Iterations, cold.SLEM, cold.Iterations)
	}
}
