package incremental

import (
	"context"
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
)

func engineModel(t *testing.T, g *graph.Graph) *faults.Model {
	t.Helper()
	m, err := faults.New(g, faults.Config{Churn: 0.08, EdgeLoss: 0.04, Drift: 0.015, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// epochRecord is the comparable footprint of one epoch's measurement.
type epochRecord struct {
	cores      []int
	degeneracy int
	levels     [][]int64
	slem       float64
	compSize   int
}

func recordEpoch(t *testing.T, en *Engine) epochRecord {
	t.Helper()
	meas, err := en.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ck := meas.Expansion.Checkpoint()
	levels := make([][]int64, len(ck.Levels))
	for i, ls := range ck.Levels {
		levels[i] = append([]int64(nil), ls...)
	}
	return epochRecord{
		cores:      append([]int(nil), en.Cores()...),
		degeneracy: meas.Degeneracy,
		levels:     levels,
		slem:       meas.SLEM.SLEM,
		compSize:   meas.ComponentSize,
	}
}

func compareEpochRecords(t *testing.T, epoch int, a, b epochRecord) {
	t.Helper()
	for v := range a.cores {
		if a.cores[v] != b.cores[v] {
			t.Fatalf("epoch %d: core(%d) diverged: %d vs %d", epoch, v, a.cores[v], b.cores[v])
		}
	}
	if a.degeneracy != b.degeneracy {
		t.Fatalf("epoch %d: degeneracy diverged: %d vs %d", epoch, a.degeneracy, b.degeneracy)
	}
	for i := range a.levels {
		if len(a.levels[i]) != len(b.levels[i]) {
			t.Fatalf("epoch %d source %d: level counts diverged: %v vs %v", epoch, i, a.levels[i], b.levels[i])
		}
		for d := range a.levels[i] {
			if a.levels[i][d] != b.levels[i][d] {
				t.Fatalf("epoch %d source %d level %d: %d vs %d", epoch, i, d, a.levels[i][d], b.levels[i][d])
			}
		}
	}
	if diff := math.Abs(a.slem - b.slem); diff > 1e-6 {
		t.Fatalf("epoch %d: SLEM diverged: %.12f vs %.12f (diff %.3g)", epoch, a.slem, b.slem, diff)
	}
	if a.compSize != b.compSize {
		t.Fatalf("epoch %d: component size diverged: %d vs %d", epoch, a.compSize, b.compSize)
	}
}

// TestKillAndResumeEngineEquivalence kills a sweep mid-flight and
// resumes it cold: the fault schedule replays to the kill epoch with
// SetEpoch, a fresh Engine rebuilds there, and the resumed epochs must
// match the uninterrupted run — bit-identical cores and expansion,
// SLEM within tolerance (the warm-start lineage differs, the
// convergence target does not).
func TestKillAndResumeEngineEquivalence(t *testing.T) {
	g := sweepGraph(t)
	cfg := EngineConfig{Sources: expansionSources(t, g, 8), Workers: 1}

	// Uninterrupted run: epochs 0..8.
	m1 := engineModel(t, g)
	en1, err := NewEngine(m1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	records := make([]epochRecord, 0, 9)
	records = append(records, recordEpoch(t, en1))
	for e := 1; e <= 8; e++ {
		en1.Advance()
		records = append(records, recordEpoch(t, en1))
	}

	// "Killed" at epoch 4: replay the schedule, rebuild, continue.
	const killAt = 4
	m2 := engineModel(t, g)
	if err := m2.SetEpoch(killAt); err != nil {
		t.Fatal(err)
	}
	en2, err := NewEngine(m2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareEpochRecords(t, killAt, records[killAt], recordEpoch(t, en2))
	for e := killAt + 1; e <= 8; e++ {
		en2.Advance()
		if en2.Epoch() != e {
			t.Fatalf("resumed engine at epoch %d, want %d", en2.Epoch(), e)
		}
		compareEpochRecords(t, e, records[e], recordEpoch(t, en2))
	}
}

// TestEquivalenceEngineVsFullSweep validates every engine epoch
// against the from-scratch MeasureFull baseline on the same view.
func TestEquivalenceEngineVsFullSweep(t *testing.T) {
	g := sweepGraph(t)
	cfg := EngineConfig{Sources: expansionSources(t, g, 8), Workers: 1}
	m := engineModel(t, g)
	en, err := NewEngine(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e <= 6; e++ {
		if e > 0 {
			en.Advance()
		}
		got, err := en.Measure(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want, err := MeasureFull(context.Background(), m.View(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Degeneracy != want.Degeneracy {
			t.Fatalf("epoch %d: degeneracy %d, full says %d", e, got.Degeneracy, want.Degeneracy)
		}
		gl, wl := got.Expansion.Checkpoint().Levels, want.Expansion.Checkpoint().Levels
		for i := range wl {
			if len(gl[i]) != len(wl[i]) {
				t.Fatalf("epoch %d source %d: levels %v, full says %v", e, i, gl[i], wl[i])
			}
			for d := range wl[i] {
				if gl[i][d] != wl[i][d] {
					t.Fatalf("epoch %d source %d level %d: %d, full says %d", e, i, d, gl[i][d], wl[i][d])
				}
			}
		}
		if diff := math.Abs(got.SLEM.SLEM - want.SLEM.SLEM); diff > 1e-6 {
			t.Fatalf("epoch %d: SLEM %.12f, full says %.12f", e, got.SLEM.SLEM, want.SLEM.SLEM)
		}
		if got.ComponentSize != want.ComponentSize {
			t.Fatalf("epoch %d: component %d, full says %d", e, got.ComponentSize, want.ComponentSize)
		}
	}
}
