package incremental

import (
	"context"
	"fmt"
	"math"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/obs"
)

// Observability instruments for the incremental expansion maintenance,
// written once per Apply outside the repair loops.
var (
	obsExpApplies  = obs.Default().Counter("incremental.expansion.applies")
	obsExpRepaired = obs.Default().Counter("incremental.expansion.repaired_sources")
	obsExpRebuilt  = obs.Default().Counter("incremental.expansion.rebuilt_sources")
	obsExpOrphans  = obs.Default().Counter("incremental.expansion.orphaned_nodes")
)

// infDist is the tentative-distance sentinel during repair sweeps.
const infDist = int32(math.MaxInt32)

// ExpansionMaintainer keeps per-source BFS distance fields and level
// counts current across epoch deltas, so the §III-D envelope
// measurement never re-runs an untouched BFS. Each Apply repairs every
// source with a batched unit-weight Ramalingam–Reps pass: deletions
// first on the intermediate topology (old minus losses — equal to the
// new view with gained edges masked out), by orphaning nodes whose
// every shortest-path parent died and re-leveling them from the clean
// boundary; then insertions on the new topology as a bucketed
// multi-source relaxation seeded at the gained edges. Distances only
// grow in the first phase and only shrink in the second, which is what
// makes both sweeps linear in the size of the affected region rather
// than the graph.
//
// The maintained state is exact: after every Apply, each source's
// level counts are bit-identical to a fresh BFS on the current view,
// and Measure folds them through expansion.Measure's resume path so
// the aggregate Result is bit-identical to the from-scratch
// measurement. Memory is O(len(sources) · n) for the distance fields.
// Not safe for concurrent use.
type ExpansionMaintainer struct {
	view    *graph.MaskedView
	sources []graph.NodeID
	dist    [][]int32
	levels  [][]int64

	pending map[uint64]bool
	srcFlip map[graph.NodeID]bool
	orphan  []bool
	fixed   []bool
	tent    []int32
	orphans []graph.NodeID
	touched []graph.NodeID
	buckets [][]graph.NodeID
	nbuf    []graph.NodeID
	queue   []graph.NodeID

	// Flat adjacency snapshots shared by every source's repair within
	// one Apply: the repairs scan the same frozen topology up to a
	// thousand times (once per source), so one O(n+m) materialization
	// replaces per-edge alive/drop bitmap checks and pending-map
	// filters with plain slice walks. ioff/iadj hold the intermediate
	// topology (view minus pending gains), noff/nadj the new view.
	ioff, noff []int32
	iadj, nadj []graph.NodeID

	// pendTouch marks nodes incident to a pending gained edge, so the
	// hot neighbor scans skip the pending-map filter for the vast
	// majority of nodes the delta never touched.
	pendTouch []bool
	// nsup memoizes each node's surviving shortest-path parent count
	// during one repairDeletions pass (valid iff supStamp matches
	// stampGen); proc marks orphans whose children have been visited.
	// Together they make the orphan cascade O(region·deg): each touched
	// node is scanned once, later parent deaths are O(1) decrements.
	nsup     []int32
	supStamp []int32
	stampGen int32
	proc     []bool

	repaired, rebuilt, orphaned int64
}

// NewExpansionMaintainer runs the initial BFS for every source on the
// view's current topology and returns a maintainer positioned at it.
func NewExpansionMaintainer(view *graph.MaskedView, sources []graph.NodeID) (*ExpansionMaintainer, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("incremental: expansion needs at least one source")
	}
	n := view.NumNodes()
	em := &ExpansionMaintainer{
		view:    view,
		sources: append([]graph.NodeID(nil), sources...),
		dist:    make([][]int32, len(sources)),
		levels:  make([][]int64, len(sources)),
		pending: make(map[uint64]bool),
		srcFlip: make(map[graph.NodeID]bool),
		orphan:  make([]bool, n),
		fixed:   make([]bool, n),
		tent:    make([]int32, n),

		pendTouch: make([]bool, n),
		nsup:      make([]int32, n),
		supStamp:  make([]int32, n),
		proc:      make([]bool, n),
	}
	for v := range em.tent {
		em.tent[v] = infDist
	}
	em.buildAdjacency()
	for i, s := range sources {
		if !view.Valid(s) {
			return nil, fmt.Errorf("incremental: expansion source %d out of range", s)
		}
		em.dist[i] = make([]int32, n)
		em.rebuild(i)
	}
	return em, nil
}

// buildAdjacency materializes the two per-Apply topology snapshots
// from the view's current masks: nadj is the live adjacency as the
// view reports it, iadj the same minus pending gained edges.
func (em *ExpansionMaintainer) buildAdjacency() {
	n := em.view.NumNodes()
	em.ioff = append(em.ioff[:0], 0)
	em.noff = append(em.noff[:0], 0)
	em.iadj = em.iadj[:0]
	em.nadj = em.nadj[:0]
	for v := graph.NodeID(0); int(v) < n; v++ {
		em.nbuf = em.view.AppendNeighbors(v, em.nbuf[:0])
		filter := len(em.pending) != 0 && em.pendTouch[v]
		for _, u := range em.nbuf {
			em.nadj = append(em.nadj, u)
			if !filter || !em.pending[packEdge(v, u)] {
				em.iadj = append(em.iadj, u)
			}
		}
		em.ioff = append(em.ioff, int32(len(em.iadj)))
		em.noff = append(em.noff, int32(len(em.nadj)))
	}
}

// Sources returns the maintained source list (owned by the maintainer).
func (em *ExpansionMaintainer) Sources() []graph.NodeID { return em.sources }

// Levels returns source i's maintained BFS level counts, valid until
// the next Apply and not to be modified.
func (em *ExpansionMaintainer) Levels(i int) []int64 { return em.levels[i] }

// neighborsI lists v's neighbors in the intermediate topology (the
// view minus pending gained edges), as a read-only slice of the
// per-Apply snapshot.
func (em *ExpansionMaintainer) neighborsI(v graph.NodeID) []graph.NodeID {
	return em.iadj[em.ioff[v]:em.ioff[v+1]]
}

// neighborsN lists v's neighbors in the new topology, as a read-only
// slice of the per-Apply snapshot.
func (em *ExpansionMaintainer) neighborsN(v graph.NodeID) []graph.NodeID {
	return em.nadj[em.noff[v]:em.noff[v+1]]
}

// rebuild re-runs source i's BFS from scratch on the intermediate
// topology, mirroring graph.BFSWorker.Run exactly (a down source keeps
// distance 0 and a single level of size 1).
func (em *ExpansionMaintainer) rebuild(i int) {
	dist := em.dist[i]
	for v := range dist {
		dist[v] = -1
	}
	src := em.sources[i]
	dist[src] = 0
	levels := append(em.levels[i][:0], 1)
	em.queue = append(em.queue[:0], src)
	for head := 0; head < len(em.queue); head++ {
		v := em.queue[head]
		dv := dist[v]
		for _, u := range em.neighborsI(v) {
			if dist[u] < 0 {
				dist[u] = dv + 1
				em.queue = append(em.queue, u)
				if int(dv+1) == len(levels) {
					levels = append(levels, 0)
				}
				levels[dv+1]++
			}
		}
	}
	em.queue = em.queue[:0]
	em.levels[i] = levels
}

// Apply repairs every source's distance field and level counts across
// one epoch delta. The view must already hold the post-advance
// topology (AdvanceEpochDelta, then Apply).
func (em *ExpansionMaintainer) Apply(d *faults.EpochDelta) {
	obsExpApplies.Inc()
	em.repaired, em.rebuilt, em.orphaned = 0, 0, 0
	defer func() {
		obsExpRepaired.Add(em.repaired)
		obsExpRebuilt.Add(em.rebuilt)
		obsExpOrphans.Add(em.orphaned)
	}()

	for _, e := range d.EdgesGained {
		em.pending[packEdge(e.U, e.V)] = true
		em.pendTouch[e.U], em.pendTouch[e.V] = true, true
	}
	for _, v := range d.NodesDown {
		em.srcFlip[v] = true
	}
	for _, v := range d.NodesUp {
		em.srcFlip[v] = true
	}
	em.buildAdjacency()

	for i := range em.sources {
		em.repairDeletions(i, d)
	}
	for _, e := range d.EdgesGained {
		em.pendTouch[e.U], em.pendTouch[e.V] = false, false
	}
	for k := range em.pending {
		delete(em.pending, k)
	}
	for i := range em.sources {
		em.applyInsertions(i, d)
	}
	for k := range em.srcFlip {
		delete(em.srcFlip, k)
	}
}

// supportCount returns how many shortest-path parents v retains in the
// intermediate topology: neighbors one level closer that are either
// non-orphaned or marked orphans whose children have not been visited
// yet (those still decrement the memoized count exactly once when they
// are). The first call per repair pass scans v's neighbors; later
// calls are O(1).
func (em *ExpansionMaintainer) supportCount(v graph.NodeID, dist []int32) int32 {
	if em.supStamp[v] == em.stampGen {
		return em.nsup[v]
	}
	em.supStamp[v] = em.stampGen
	dv := dist[v]
	cnt := int32(0)
	for _, x := range em.neighborsI(v) {
		if dist[x] == dv-1 && (!em.orphan[x] || !em.proc[x]) {
			cnt++
		}
	}
	em.nsup[v] = cnt
	return cnt
}

// markOrphan flags v and queues it for cascade processing.
func (em *ExpansionMaintainer) markOrphan(v graph.NodeID) {
	em.orphan[v] = true
	em.orphans = append(em.orphans, v)
	em.queue = append(em.queue, v)
}

// repairDeletions brings source i from the old topology to the
// intermediate one (losses applied, gains still masked): orphan every
// node whose shortest-path tree support died, then re-level the orphan
// region from its clean boundary with a bucketed unit-weight sweep.
func (em *ExpansionMaintainer) repairDeletions(i int, d *faults.EpochDelta) {
	src := em.sources[i]
	if em.srcFlip[src] {
		// The source's own aliveness flipped — its whole tree appears or
		// collapses; the plain BFS is the cheap and exact answer.
		em.rebuild(i)
		em.rebuilt++
		return
	}
	dist := em.dist[i]
	em.stampGen++
	if em.stampGen == math.MaxInt32 {
		for v := range em.supStamp {
			em.supStamp[v] = 0
		}
		em.stampGen = 1
	}

	// Seed orphans from lost edges: the farther endpoint of a
	// parent-child edge that has no surviving parent.
	em.orphans = em.orphans[:0]
	em.queue = em.queue[:0]
	for _, e := range d.EdgesLost {
		u, v := e.U, e.V
		for r := 0; r < 2; r++ {
			if dist[u] >= 0 && dist[v] == dist[u]+1 && !em.orphan[v] && em.supportCount(v, dist) == 0 {
				em.markOrphan(v)
			}
			u, v = v, u
		}
	}
	// Cascade: an orphaned node may have been its children's only
	// support. Visiting each orphan's children once is sound because a
	// child's memoized count still includes every marked-but-unvisited
	// orphan parent, and each such parent decrements it exactly once
	// when its own children are visited (proc set first, so the child's
	// first-touch scan never counts the current orphan and then gets
	// decremented for it too).
	for head := 0; head < len(em.queue); head++ {
		o := em.queue[head]
		em.proc[o] = true
		do := dist[o]
		for _, c := range em.neighborsI(o) {
			if em.orphan[c] || dist[c] != do+1 {
				continue
			}
			if em.supStamp[c] == em.stampGen {
				if em.nsup[c]--; em.nsup[c] == 0 {
					em.markOrphan(c)
				}
			} else if em.supportCount(c, dist) == 0 {
				em.markOrphan(c)
			}
		}
	}
	em.queue = em.queue[:0]
	if len(em.orphans) == 0 {
		return
	}
	em.repaired++
	em.orphaned += int64(len(em.orphans))
	levels := em.levels[i]

	// Re-level the orphans from the clean boundary: tentative distance
	// is one past the best non-orphan neighbor, then a bucket sweep
	// fixes nodes in increasing distance and relaxes orphan neighbors.
	// Deletions never shrink a distance, so the sweep starts at the
	// smallest tentative and every fix is final.
	dmin, dmax := infDist, int32(0)
	for _, o := range em.orphans {
		t := infDist
		for _, x := range em.neighborsI(o) {
			if !em.orphan[x] && dist[x] >= 0 && dist[x]+1 < t {
				t = dist[x] + 1
			}
		}
		em.tent[o] = t
		if t < dmin {
			dmin = t
		}
	}
	remaining := len(em.orphans)
	if dmin < infDist {
		for _, o := range em.orphans {
			if em.tent[o] < infDist {
				em.bucketPush(em.tent[o], o)
				if em.tent[o] > dmax {
					dmax = em.tent[o]
				}
			}
		}
		for di := dmin; di <= dmax && remaining > 0; di++ {
			if int(di) >= len(em.buckets) {
				break
			}
			for bi := 0; bi < len(em.buckets[di]); bi++ {
				o := em.buckets[di][bi]
				if em.fixed[o] || em.tent[o] != di {
					continue
				}
				em.fixed[o] = true
				remaining--
				levels[dist[o]]--
				for int(di) >= len(levels) {
					levels = append(levels, 0)
				}
				levels[di]++
				dist[o] = di
				for _, w := range em.neighborsI(o) {
					if em.orphan[w] && !em.fixed[w] && em.tent[w] > di+1 {
						em.tent[w] = di + 1
						em.bucketPush(di+1, w)
						if di+1 > dmax {
							dmax = di + 1
						}
					}
				}
			}
		}
		for di := dmin; di <= dmax && int(di) < len(em.buckets); di++ {
			em.buckets[di] = em.buckets[di][:0]
		}
	}
	// Orphans with no path back are unreachable now.
	for _, o := range em.orphans {
		if !em.fixed[o] {
			levels[dist[o]]--
			dist[o] = -1
		}
		em.orphan[o] = false
		em.fixed[o] = false
		em.proc[o] = false
		em.tent[o] = infDist
	}
	em.orphans = em.orphans[:0]
	for len(levels) > 1 && levels[len(levels)-1] == 0 {
		levels = levels[:len(levels)-1]
	}
	em.levels[i] = levels
}

// bucketPush appends v to the distance-d bucket, growing the bucket
// list as needed.
func (em *ExpansionMaintainer) bucketPush(d int32, v graph.NodeID) {
	for int(d) >= len(em.buckets) {
		em.buckets = append(em.buckets, nil)
	}
	em.buckets[d] = append(em.buckets[d], v)
}

// applyInsertions brings source i from the intermediate topology to
// the new one: a bucketed multi-source relaxation seeded at the gained
// edges. Insertions only shrink distances, so each improvement is
// processed at most once per level it lands on.
func (em *ExpansionMaintainer) applyInsertions(i int, d *faults.EpochDelta) {
	dist := em.dist[i]
	em.touched = em.touched[:0]
	dmin, dmax := infDist, int32(0)
	seed := func(u, v graph.NodeID) {
		if dist[u] < 0 {
			return
		}
		nd := dist[u] + 1
		if (dist[v] < 0 || dist[v] > nd) && em.tent[v] > nd {
			if em.tent[v] == infDist {
				em.touched = append(em.touched, v)
			}
			em.tent[v] = nd
			em.bucketPush(nd, v)
			if nd < dmin {
				dmin = nd
			}
			if nd > dmax {
				dmax = nd
			}
		}
	}
	for _, e := range d.EdgesGained {
		seed(e.U, e.V)
		seed(e.V, e.U)
	}
	if dmin == infDist {
		return
	}
	em.repaired++
	levels := em.levels[i]
	for di := dmin; di <= dmax; di++ {
		if int(di) >= len(em.buckets) {
			break
		}
		for bi := 0; bi < len(em.buckets[di]); bi++ {
			v := em.buckets[di][bi]
			if em.tent[v] != di || (dist[v] >= 0 && dist[v] <= di) {
				continue
			}
			if dist[v] >= 0 {
				levels[dist[v]]--
			}
			for int(di) >= len(levels) {
				levels = append(levels, 0)
			}
			levels[di]++
			dist[v] = di
			for _, w := range em.neighborsN(v) {
				nd := di + 1
				if (dist[w] < 0 || dist[w] > nd) && em.tent[w] > nd {
					if em.tent[w] == infDist {
						em.touched = append(em.touched, w)
					}
					em.tent[w] = nd
					em.bucketPush(nd, w)
					if nd > dmax {
						dmax = nd
					}
				}
			}
		}
	}
	for di := dmin; di <= dmax && int(di) < len(em.buckets); di++ {
		em.buckets[di] = em.buckets[di][:0]
	}
	for _, v := range em.touched {
		em.tent[v] = infDist
	}
	em.touched = em.touched[:0]
	for len(levels) > 1 && levels[len(levels)-1] == 0 {
		levels = levels[:len(levels)-1]
	}
	em.levels[i] = levels
}

// Measure folds the maintained level counts into the standard
// expansion aggregates by running expansion.Measure with a fully
// populated resume checkpoint: every source is already measured, so
// the call is a pure fold and the Result is bit-identical to a
// from-scratch measurement on the current view.
func (em *ExpansionMaintainer) Measure(ctx context.Context, workers int) (*expansion.Result, error) {
	ck := &expansion.Checkpoint{
		Sources: em.sources,
		Levels:  make([][]int64, len(em.levels)),
	}
	for i, ls := range em.levels {
		ck.Levels[i] = append([]int64(nil), ls...)
	}
	return expansion.Measure(ctx, em.view, expansion.Config{
		Sources: em.sources,
		Workers: workers,
		Resume:  ck,
	})
}
