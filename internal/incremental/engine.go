package incremental

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/spectral"
)

// Observability instruments for the epoch engine.
var (
	obsEngineAdvances = obs.Default().Counter("incremental.engine.advances")
	obsEngineCoreInc  = obs.Default().Counter("incremental.engine.core_incremental")
)

// EngineConfig configures an epoch measurement engine.
type EngineConfig struct {
	// Sources are the BFS sources for the expansion envelope. Required.
	Sources []graph.NodeID
	// Spectral configures the SLEM power iteration (Warm, KeepVector,
	// and Resume are managed by the engine).
	Spectral spectral.Config
	// Workers bounds per-measurement parallelism for the expansion fold.
	Workers int
}

// EpochMeasurement is one epoch's structural snapshot: the three
// paper metrics plus the epoch they were taken at.
type EpochMeasurement struct {
	// Epoch is the fault-model epoch the measurement describes.
	Epoch int
	// Degeneracy is the maximum coreness on the current view (§III-B).
	Degeneracy int
	// CoreIncremental reports whether the epoch's coreness repair ran
	// incrementally (false on epoch 0 and on budget fallbacks).
	CoreIncremental bool
	// Expansion is the folded BFS envelope measurement (§III-D).
	Expansion *expansion.Result
	// SLEM is the mixing measurement on the largest component (§III-C).
	SLEM *spectral.Result
	// ComponentSize is the largest-component node count the SLEM ran on.
	ComponentSize int
}

// Engine drives the three incremental maintainers in lockstep with a
// fault model: each Advance moves the model one epoch and repairs the
// maintained coreness and BFS state from the epoch delta; Measure
// snapshots all three metrics on the current view, warm-starting the
// SLEM from the previous epoch's eigenvector.
//
// An interrupted sweep resumes by rebuilding: faults.Model.SetEpoch
// replays the schedule to any epoch deterministically, and a fresh
// Engine constructed there produces measurements equivalent to the
// uninterrupted run — bit-identical cores and expansion (both are
// exact at every epoch regardless of the repair path taken), and
// SLEM within tolerance (the warm-start history differs, the
// convergence target does not). Not safe for concurrent use.
type Engine struct {
	model *faults.Model
	cores *CoreMaintainer
	exp   *ExpansionMaintainer
	slem  *SLEMMaintainer
	cfg   EngineConfig
	delta *faults.EpochDelta
}

// NewEngine builds the three maintainers against the model's current
// view and epoch.
func NewEngine(m *faults.Model, cfg EngineConfig) (*Engine, error) {
	if len(cfg.Sources) == 0 {
		return nil, fmt.Errorf("incremental: engine needs expansion sources")
	}
	cm, err := NewCoreMaintainer(m.View())
	if err != nil {
		return nil, err
	}
	em, err := NewExpansionMaintainer(m.View(), cfg.Sources)
	if err != nil {
		return nil, err
	}
	return &Engine{
		model: m,
		cores: cm,
		exp:   em,
		slem:  NewSLEMMaintainer(m.View(), cfg.Spectral),
		cfg:   cfg,
	}, nil
}

// Epoch returns the fault-model epoch the maintained state describes.
func (en *Engine) Epoch() int { return en.model.Epoch() }

// Cores exposes the maintained coreness array (owned by the engine,
// valid until the next Advance).
func (en *Engine) Cores() []int { return en.cores.Cores() }

// Advance moves the fault model one epoch and repairs all maintained
// state from the delta. It reports whether the coreness repair ran
// incrementally.
func (en *Engine) Advance() bool {
	obsEngineAdvances.Inc()
	en.delta = en.model.AdvanceEpochDelta(en.delta)
	inc := en.cores.Apply(en.delta)
	if inc {
		obsEngineCoreInc.Inc()
	}
	en.exp.Apply(en.delta)
	return inc
}

// Measure snapshots the three structural metrics on the current view.
// The coreness and expansion parts are bit-identical to from-scratch
// measurements; the SLEM is warm-started and tolerance-equal.
func (en *Engine) Measure(ctx context.Context) (*EpochMeasurement, error) {
	exp, err := en.exp.Measure(ctx, en.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("incremental: expansion at epoch %d: %w", en.Epoch(), err)
	}
	slem, compSize, err := en.slem.Measure(ctx)
	if err != nil {
		return nil, fmt.Errorf("incremental: slem at epoch %d: %w", en.Epoch(), err)
	}
	return &EpochMeasurement{
		Epoch:         en.Epoch(),
		Degeneracy:    en.cores.Degeneracy(),
		Expansion:     exp,
		SLEM:          slem,
		ComponentSize: compSize,
	}, nil
}

// kcoreDecompose runs the full decomposition and returns its
// degeneracy — the baseline for the maintained coreness.
func kcoreDecompose(view *graph.MaskedView) (int, error) {
	dec, err := kcore.Decompose(view)
	if err != nil {
		return 0, fmt.Errorf("incremental: full decompose: %w", err)
	}
	return dec.Degeneracy(), nil
}

// MeasureFull computes the same snapshot from scratch on an arbitrary
// view — the non-incremental baseline the engine's results are
// validated (and benchmarked) against.
func MeasureFull(ctx context.Context, view *graph.MaskedView, cfg EngineConfig) (*EpochMeasurement, error) {
	dec, err := kcoreDecompose(view)
	if err != nil {
		return nil, err
	}
	exp, err := expansion.Measure(ctx, view, expansion.Config{
		Sources: cfg.Sources,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("incremental: full expansion: %w", err)
	}
	comp, nodes := graph.LargestComponentView(view)
	scfg := cfg.Spectral
	scfg.Warm, scfg.Resume, scfg.KeepVector = nil, nil, false
	slem, err := spectral.SLEMContext(ctx, comp, scfg)
	if err != nil {
		return nil, fmt.Errorf("incremental: full slem: %w", err)
	}
	return &EpochMeasurement{
		Degeneracy:    dec,
		Expansion:     exp,
		SLEM:          slem,
		ComponentSize: len(nodes),
	}, nil
}
