package incremental

import (
	"context"
	"testing"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
)

func expansionSources(t *testing.T, g *graph.Graph, k int) []graph.NodeID {
	t.Helper()
	srcs, err := expansion.SampledSources(g, k, 99)
	if err != nil {
		t.Fatal(err)
	}
	return srcs
}

// checkExpansionExact compares the maintainer's folded Result against a
// from-scratch expansion.Measure on the same view: per-source level
// counts bit-identical, and the derived aggregates equal.
func checkExpansionExact(t *testing.T, epoch int, em *ExpansionMaintainer, view *graph.MaskedView) {
	t.Helper()
	ctx := context.Background()
	got, err := em.Measure(ctx, 1)
	if err != nil {
		t.Fatalf("epoch %d: incremental measure: %v", epoch, err)
	}
	want, err := expansion.Measure(ctx, view, expansion.Config{Sources: em.Sources(), Workers: 1})
	if err != nil {
		t.Fatalf("epoch %d: full measure: %v", epoch, err)
	}
	gl, wl := got.Checkpoint().Levels, want.Checkpoint().Levels
	for i := range wl {
		if len(gl[i]) != len(wl[i]) {
			t.Fatalf("epoch %d source %d: %d levels maintained, full BFS says %d (maintained %v, want %v)",
				epoch, em.Sources()[i], len(gl[i]), len(wl[i]), gl[i], wl[i])
		}
		for d := range wl[i] {
			if gl[i][d] != wl[i][d] {
				t.Fatalf("epoch %d source %d level %d: %d maintained, full BFS says %d",
					epoch, em.Sources()[i], d, gl[i][d], wl[i][d])
			}
		}
	}
	if got.MaxEccentricity != want.MaxEccentricity {
		t.Fatalf("epoch %d: MaxEccentricity %d != %d", epoch, got.MaxEccentricity, want.MaxEccentricity)
	}
	if got.Completed != want.Completed || got.Sources != want.Sources {
		t.Fatalf("epoch %d: completed %d/%d != %d/%d",
			epoch, got.Completed, got.Sources, want.Completed, want.Sources)
	}
}

// TestEquivalenceExpansionMaintainerDriftSweep drives a drifting fault
// model and checks the maintained BFS state folds to a Result
// bit-identical to a from-scratch measurement at every epoch.
func TestEquivalenceExpansionMaintainerDriftSweep(t *testing.T) {
	g := sweepGraph(t)
	srcs := expansionSources(t, g, 16)
	m, err := faults.New(g, faults.Config{Churn: 0.1, EdgeLoss: 0.05, Drift: 0.02, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	em, err := NewExpansionMaintainer(m.View(), srcs)
	if err != nil {
		t.Fatal(err)
	}
	checkExpansionExact(t, 0, em, m.View())
	var d *faults.EpochDelta
	for e := 1; e <= 8; e++ {
		d = m.AdvanceEpochDelta(d)
		em.Apply(d)
		checkExpansionExact(t, e, em, m.View())
	}
}

// TestEquivalenceExpansionMaintainerRedrawSweep runs without drift, so
// consecutive epochs are independent redraws and the deltas are huge —
// a stress test of the orphan cascade and re-level sweep. The repair
// has no fallback budget; it must stay exact at any delta size.
func TestEquivalenceExpansionMaintainerRedrawSweep(t *testing.T) {
	g := sweepGraph(t)
	srcs := expansionSources(t, g, 8)
	m, err := faults.New(g, faults.Config{Churn: 0.2, EdgeLoss: 0.1, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	em, err := NewExpansionMaintainer(m.View(), srcs)
	if err != nil {
		t.Fatal(err)
	}
	var d *faults.EpochDelta
	for e := 1; e <= 3; e++ {
		d = m.AdvanceEpochDelta(d)
		em.Apply(d)
		checkExpansionExact(t, e, em, m.View())
	}
}

// TestEquivalenceExpansionMaintainerEdgeCases exercises targeted deltas
// including a source going down and coming back.
func TestEquivalenceExpansionMaintainerEdgeCases(t *testing.T) {
	g := sweepGraph(t)
	srcs := expansionSources(t, g, 6)
	mv := graph.NewMaskedView(g)
	em, err := NewExpansionMaintainer(mv, srcs)
	if err != nil {
		t.Fatal(err)
	}
	var snap *graph.MaskSnapshot
	var delta faults.EpochDelta
	step := func(mutate func()) {
		t.Helper()
		snap = mv.Snapshot(snap)
		mutate()
		mv.DiffSnapshot(snap, &delta.MaskDelta)
		em.Apply(&delta)
		checkExpansionExact(t, -1, em, mv)
	}

	var e0 graph.Edge
	g.VisitEdges(func(e graph.Edge) bool { e0 = e; return false })
	step(func() { mv.DropEdge(e0.U, e0.V) })
	step(func() { mv.RestoreEdge(e0.U, e0.V) })
	step(func() { mv.SetAlive(srcs[0], false) })
	step(func() { mv.SetAlive(srcs[0], true) })
	step(func() { mv.SetAlive(42, false) })
	step(func() { mv.SetAlive(42, true) })
	step(func() {
		mv.SetAlive(7, false)
		mv.SetAlive(9, false)
		mv.DropEdge(e0.U, e0.V)
		mv.SetAlive(7, true)
	})
}
