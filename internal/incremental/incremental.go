// Package incremental maintains the paper's three structural
// measurements — k-core decomposition (§III-B), BFS expansion envelopes
// (§III-D), and the SLEM/mixing bound (§III-C) — across fault-schedule
// epochs without recomputing them from scratch. The fault model reports
// each epoch advance as a faults.EpochDelta (the exact live-topology
// symmetric difference); the maintainers in this package consume that
// delta and repair only the state the delta actually invalidates:
//
//   - CoreMaintainer re-evaluates coreness only inside the affected
//     subcores, per the Batagelj–Zaveršnik generalized-core update
//     rules: a monotone h-operator descent for removals and a per-edge
//     subcore traversal for insertions.
//   - ExpansionMaintainer repairs each BFS source's distance field with
//     a batched Ramalingam–Reps pass (deletions first, then insertions
//     as a multi-source relaxation), keeping per-level counts exact.
//   - SLEMMaintainer warm-starts the power iteration with the previous
//     epoch's eigenvector, carried across the delta by original node ID.
//
// Every maintainer produces results equal to its from-scratch
// counterpart — bit-identical for the integer measurements (cores,
// expansion level counts), tolerance-equal for the SLEM — and falls
// back to the full recomputation when a delta is too large for the
// repair to be cheaper (the budgets are documented per maintainer).
// Deltas are only small when the fault schedule evolves rather than
// redraws, so pair these with faults.Config.Drift.
package incremental
