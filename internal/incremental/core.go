package incremental

import (
	"fmt"

	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/obs"
)

// Observability instruments for the incremental core maintenance,
// resolved once at init. Counters are bumped per Apply, outside the
// repair loops, so maintained cores stay bit-identical with metrics on.
var (
	obsCoreApplies = obs.Default().Counter("incremental.core.applies")
	obsCoreFull    = obs.Default().Counter("incremental.core.full_recomputes")
	obsCoreDirty   = obs.Default().Counter("incremental.core.reevaluated_nodes")
)

// CoreMaintainer keeps the per-node coreness of a fault model's masked
// view current across epoch deltas. Removals are handled by a monotone
// h-operator descent seeded at the endpoints of lost edges: coreness is
// the largest fixpoint of the operator H(x)(v) = max k such that v has
// at least k neighbors u with x(u) >= k, the old coreness is a pointwise
// upper bound after deletions, and iterating x <- min(x, H(x)) from any
// upper bound converges exactly to the new coreness (Batagelj–Zaveršnik
// generalized cores). Insertions are then applied one gained edge at a
// time with the subcore traversal rule: only nodes of coreness
// k = min(core(u), core(v)) reachable from the edge through coreness-k
// nodes can rise, each by at most one, and they rise exactly when they
// survive a peel at threshold k+1 inside that candidate set.
//
// The maintainer is exact: after every Apply, Cores equals what
// kcore.Decompose would return on the current view, value for value.
// When a delta's repair work exceeds the work budget it falls back to
// that full decomposition instead (see Apply). Not safe for concurrent
// use.
type CoreMaintainer struct {
	view  *graph.MaskedView
	cores []int

	// pending masks gained edges not yet applied, so traversals during
	// the removal phase and the one-at-a-time insertion phase see the
	// exact intermediate topology (old minus losses, then each gain in
	// canonical order).
	pending map[uint64]bool
	queue   []graph.NodeID
	inQ     []bool
	cnt     []int
	nbuf    []graph.NodeID
	cand    []graph.NodeID
	inCand  []bool
	cd      []int
	work    int
	dirty   int64
}

// packEdge packs a canonical (min, max) node pair into one map key.
func packEdge(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// NewCoreMaintainer decomposes the view's current topology and returns
// a maintainer positioned at it.
func NewCoreMaintainer(view *graph.MaskedView) (*CoreMaintainer, error) {
	dec, err := kcore.Decompose(view)
	if err != nil {
		return nil, fmt.Errorf("incremental: %w", err)
	}
	n := view.NumNodes()
	return &CoreMaintainer{
		view:    view,
		cores:   dec.CorenessValues(),
		pending: make(map[uint64]bool),
		inQ:     make([]bool, n),
		cnt:     make([]int, n+1),
		inCand:  make([]bool, n),
		cd:      make([]int, n),
	}, nil
}

// Cores returns the maintained coreness array, indexed by node ID. The
// slice is owned by the maintainer and must not be modified; it is
// valid until the next Apply.
func (cm *CoreMaintainer) Cores() []int { return cm.cores }

// Degeneracy returns the largest maintained coreness.
func (cm *CoreMaintainer) Degeneracy() int {
	max := 0
	for _, c := range cm.cores {
		if c > max {
			max = c
		}
	}
	return max
}

// budget is the repair-work ceiling. A full decomposition touches
// every node and both endpoints of every live edge, so n + 2m is its
// work in the same units the repair loops count (neighbor-list entries
// scanned); repairs are allowed up to half that before falling back.
func (cm *CoreMaintainer) budget() int {
	return (cm.view.NumNodes() + 2*int(cm.view.NumEdges())) / 2
}

// Apply repairs the maintained coreness across one epoch delta. The
// view must already hold the post-advance topology (the normal order:
// AdvanceEpochDelta, then Apply). It reports whether the repair ran
// incrementally; false means the delta blew the work budget and the
// cores were recomputed from scratch — either way the maintained state
// is exact afterward.
func (cm *CoreMaintainer) Apply(d *faults.EpochDelta) bool {
	obsCoreApplies.Inc()
	cm.work = 0
	cm.dirty = 0
	defer func() { obsCoreDirty.Add(cm.dirty) }()
	budget := cm.budget()
	// A delta touching a large fraction of the edges is a redraw in
	// disguise; skip straight to the full decomposition.
	if 4*(len(d.EdgesLost)+len(d.EdgesGained)) > budget {
		cm.full()
		return false
	}

	for _, e := range d.EdgesGained {
		cm.pending[packEdge(e.U, e.V)] = true
	}

	// Removal phase: the view minus pending gains is exactly the old
	// topology minus the losses, where the old coreness is a pointwise
	// upper bound. Descend to the fixpoint from the endpoints of every
	// loss (a node that went down has all its previously-live edges in
	// EdgesLost, so it is seeded here and descends to zero).
	for _, e := range d.EdgesLost {
		cm.push(e.U)
		cm.push(e.V)
	}
	for _, v := range d.NodesDown {
		cm.push(v)
	}
	for len(cm.queue) > 0 {
		v := cm.queue[0]
		cm.queue = cm.queue[1:]
		cm.inQ[v] = false
		h := cm.hval(v)
		if h < cm.cores[v] {
			cm.cores[v] = h
			cm.dirty++
			for _, u := range cm.nbuf {
				if cm.cores[u] > h {
					cm.push(u)
				}
			}
		}
		if cm.work > budget {
			cm.drainAndFull()
			return false
		}
	}

	// Insertion phase: apply each gained edge in canonical order,
	// unmasking it and lifting its subcore. Every intermediate state is
	// an exact decomposition, so the per-edge rule composes.
	for _, e := range d.EdgesGained {
		delete(cm.pending, packEdge(e.U, e.V))
		cm.insertEdge(e.U, e.V)
		if cm.work > budget {
			cm.drainAndFull()
			return false
		}
	}
	return true
}

// push enqueues v for h-descent re-evaluation once.
func (cm *CoreMaintainer) push(v graph.NodeID) {
	if !cm.inQ[v] {
		cm.inQ[v] = true
		cm.queue = append(cm.queue, v)
	}
}

// neighbors lists v's live neighbors minus pending gains — the exact
// adjacency of the intermediate topology — into cm.nbuf.
func (cm *CoreMaintainer) neighbors(v graph.NodeID) []graph.NodeID {
	cm.nbuf = cm.view.AppendNeighbors(v, cm.nbuf[:0])
	cm.work += len(cm.nbuf) + 1
	if len(cm.pending) == 0 {
		return cm.nbuf
	}
	w := 0
	for _, u := range cm.nbuf {
		if !cm.pending[packEdge(v, u)] {
			cm.nbuf[w] = u
			w++
		}
	}
	cm.nbuf = cm.nbuf[:w]
	return cm.nbuf
}

// hval evaluates min(cores[v], H(cores)(v)) on the intermediate
// topology: the largest k <= cores[v] with at least k neighbors of
// coreness >= k. Clamping at the current value is exactly the descent
// update, so the counting array never needs more than cores[v]+1 slots.
func (cm *CoreMaintainer) hval(v graph.NodeID) int {
	ns := cm.neighbors(v)
	cap := cm.cores[v]
	if cap == 0 {
		return 0
	}
	cnt := cm.cnt[:cap+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, u := range ns {
		c := cm.cores[u]
		if c > cap {
			c = cap
		}
		cnt[c]++
	}
	sum := 0
	for k := cap; k >= 1; k-- {
		sum += cnt[k]
		if sum >= k {
			return k
		}
	}
	return 0
}

// insertEdge lifts the subcore the edge (u, v) lands in: collect the
// coreness-k nodes reachable from the min-coreness endpoint through
// coreness-k paths, peel the set at threshold k+1, and promote the
// survivors. The edge must already be unmasked.
func (cm *CoreMaintainer) insertEdge(u, v graph.NodeID) {
	k := cm.cores[u]
	root := u
	if cm.cores[v] < k {
		k = cm.cores[v]
		root = v
	}

	// Candidate traversal. The inserted edge itself is live, so when
	// both endpoints sit at coreness k the walk from one reaches the
	// other through it.
	cm.cand = cm.cand[:0]
	cm.cand = append(cm.cand, root)
	cm.inCand[root] = true
	for i := 0; i < len(cm.cand); i++ {
		for _, x := range cm.neighbors(cm.cand[i]) {
			if cm.cores[x] == k && !cm.inCand[x] {
				cm.inCand[x] = true
				cm.cand = append(cm.cand, x)
			}
		}
	}

	// cd(w) counts the neighbors that could support w at level k+1:
	// anything already above k, plus fellow candidates.
	for _, w := range cm.cand {
		c := 0
		for _, x := range cm.neighbors(w) {
			if cm.cores[x] > k || cm.inCand[x] {
				c++
			}
		}
		cm.cd[w] = c
	}

	// Peel: drop candidates that cannot reach k+1 support, cascading
	// through the set; cm.queue doubles as the removal queue.
	cm.queue = cm.queue[:0]
	for _, w := range cm.cand {
		if cm.cd[w] <= k {
			cm.queue = append(cm.queue, w)
			cm.inCand[w] = false
		}
	}
	for len(cm.queue) > 0 {
		w := cm.queue[0]
		cm.queue = cm.queue[1:]
		for _, x := range cm.neighbors(w) {
			if cm.inCand[x] {
				cm.cd[x]--
				if cm.cd[x] == k {
					cm.inCand[x] = false
					cm.queue = append(cm.queue, x)
				}
			}
		}
	}

	for _, w := range cm.cand {
		if cm.inCand[w] {
			cm.cores[w] = k + 1
			cm.dirty++
			cm.inCand[w] = false
		}
	}
}

// drainAndFull clears mid-repair worklist state and recomputes from
// scratch — the budget-blowout path.
func (cm *CoreMaintainer) drainAndFull() {
	for _, v := range cm.queue {
		cm.inQ[v] = false
	}
	cm.queue = cm.queue[:0]
	for _, w := range cm.cand {
		cm.inCand[w] = false
	}
	cm.cand = cm.cand[:0]
	cm.full()
}

// full recomputes the maintained cores with kcore.Decompose on the
// current view and clears the pending-gain mask.
func (cm *CoreMaintainer) full() {
	obsCoreFull.Inc()
	dec, err := kcore.Decompose(cm.view)
	if err != nil {
		// Unreachable: the constructor already decomposed a view with
		// the same (nonzero) node count.
		panic(fmt.Sprintf("incremental: full recompute: %v", err))
	}
	copy(cm.cores, dec.CorenessValues())
	for k := range cm.pending {
		delete(cm.pending, k)
	}
}
