package incremental

import (
	"context"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/spectral"
)

// Observability instruments for the warm-started SLEM maintenance.
var (
	obsSLEMMeasures = obs.Default().Counter("incremental.slem.measures")
	obsSLEMWarmed   = obs.Default().Counter("incremental.slem.warmed")
	obsSLEMColdFull = obs.Default().Counter("incremental.slem.cold_starts")
)

// SLEMMaintainer carries the SLEM power iteration's eigenvector across
// epochs so each epoch's measurement warm-starts from the previous
// one's. Unlike the core and expansion maintainers it has no delta to
// repair — the power iteration itself is the repair — so there is no
// Apply: after each epoch advance, call Measure on the current view.
//
// The eigenvector is stored indexed by original node ID, because the
// measurement runs on the view's largest connected component and the
// component (hence the local ID space) shifts between epochs. Nodes
// that enter the component start at zero in the warm vector, which the
// deflation and normalization inside spectral.SLEMContext absorb; if
// the warm vector degenerates (component turned over entirely), the
// iteration falls back to its seeded random start — either way the
// result satisfies the same Tolerance as a cold start, so warm
// starting affects iteration count, never correctness. Not safe for
// concurrent use.
type SLEMMaintainer struct {
	view *graph.MaskedView
	cfg  spectral.Config
	// warm is the previous epoch's eigenvector by original node ID;
	// nil until the first successful Measure.
	warm []float64
	// local is scratch for the component-local warm vector.
	local []float64
}

// NewSLEMMaintainer returns a maintainer measuring SLEM on view's
// largest connected component with cfg (Warm, KeepVector, and Resume
// are overridden per measurement).
func NewSLEMMaintainer(view *graph.MaskedView, cfg spectral.Config) *SLEMMaintainer {
	cfg.Resume = nil
	return &SLEMMaintainer{view: view, cfg: cfg}
}

// Measure computes the SLEM of the view's current largest connected
// component, warm-starting from the previous epoch's eigenvector when
// one is available. On success the final iterate is stored for the
// next call. The returned component size lets callers weigh the
// measurement.
func (sm *SLEMMaintainer) Measure(ctx context.Context) (*spectral.Result, int, error) {
	obsSLEMMeasures.Inc()
	comp, nodes := graph.LargestComponentView(sm.view)

	cfg := sm.cfg
	cfg.KeepVector = true
	if sm.warm != nil {
		if cap(sm.local) < len(nodes) {
			sm.local = make([]float64, len(nodes))
		}
		sm.local = sm.local[:len(nodes)]
		for l, orig := range nodes {
			sm.local[l] = sm.warm[orig]
		}
		cfg.Warm = sm.local
		obsSLEMWarmed.Inc()
	} else {
		obsSLEMColdFull.Inc()
	}

	res, err := spectral.SLEMContext(ctx, comp, cfg)
	if err != nil {
		return nil, 0, err
	}
	if ev := res.Eigenvector(); ev != nil && !res.Partial {
		if sm.warm == nil {
			sm.warm = make([]float64, sm.view.NumNodes())
		}
		// Zero stale entries so nodes leaving and re-entering the
		// component don't inject an old epoch's values.
		for i := range sm.warm {
			sm.warm[i] = 0
		}
		for l, orig := range nodes {
			sm.warm[orig] = ev[l]
		}
	}
	return res, len(nodes), nil
}
