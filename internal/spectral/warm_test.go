package spectral

import (
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func warmTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(1500, 5, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEquivalenceWarmVsColdStart is the warm-start correctness gate: a
// warm-started run on a slightly perturbed graph must converge to the
// same SLEM as a cold start within tolerance, in no more (and in
// practice far fewer) iterations.
func TestEquivalenceWarmVsColdStart(t *testing.T) {
	g := warmTestGraph(t)

	first, err := SLEM(g, Config{Seed: 1, KeepVector: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.Eigenvector() == nil {
		t.Fatal("KeepVector run returned no eigenvector")
	}

	// Perturb the topology slightly — the epoch-advance shape — and
	// measure the largest component warm and cold.
	mv := graph.NewMaskedView(g)
	dropped := 0
	g.VisitEdges(func(e graph.Edge) bool {
		if (int(e.U)+int(e.V))%97 == 0 {
			if mv.DropEdge(e.U, e.V) {
				dropped++
			}
		}
		return true
	})
	if dropped == 0 {
		t.Fatal("perturbation dropped no edges")
	}
	lcc, nodes := graph.LargestComponentView(mv)

	// Transfer the old vector through the induced-view node mapping.
	warm := make([]float64, lcc.NumNodes())
	for local, orig := range nodes {
		warm[local] = first.Eigenvector()[orig]
	}

	cold, err := SLEM(lcc, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := SLEM(lcc, Config{Seed: 1, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Converged || !hot.Converged {
		t.Fatalf("convergence: cold %v hot %v", cold.Converged, hot.Converged)
	}
	// Successive-estimate tolerance is 1e-10; the two runs approach the
	// same eigenvalue from different iterates, so allow slack above it.
	if diff := math.Abs(cold.SLEM - hot.SLEM); diff > 1e-6 {
		t.Fatalf("warm SLEM %v vs cold %v: diff %v above tolerance", hot.SLEM, cold.SLEM, diff)
	}
	if hot.Iterations > cold.Iterations {
		t.Fatalf("warm start took %d iterations, cold took %d — warm vector hurt convergence",
			hot.Iterations, cold.Iterations)
	}
	t.Logf("cold %d iterations, warm %d", cold.Iterations, hot.Iterations)
}

// TestWarmDegenerateFallsBackToColdStart feeds warm vectors with no
// second-eigenvector signal (φ itself, zeros, wrong length) and checks
// each falls back to the seeded random start, bit-identical to cold.
func TestWarmDegenerateFallsBackToColdStart(t *testing.T) {
	g := warmTestGraph(t)
	cold, err := SLEM(g, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	n := g.NumNodes()
	phi := make([]float64, n)
	for v := 0; v < n; v++ {
		phi[v] = math.Sqrt(float64(g.Degree(graph.NodeID(v))))
	}
	for name, warm := range map[string][]float64{
		"phi-parallel": phi,
		"zeros":        make([]float64, n),
		"wrong-length": make([]float64, n/2),
	} {
		hot, err := SLEM(g, Config{Seed: 1, Warm: warm})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if hot.SLEM != cold.SLEM || hot.Iterations != cold.Iterations {
			t.Fatalf("%s: fallback run (%v, %d its) differs from cold start (%v, %d its)",
				name, hot.SLEM, hot.Iterations, cold.SLEM, cold.Iterations)
		}
	}
}

// TestKeepVectorDoesNotLeakCheckpoint checks that KeepVector on a
// complete run retains the eigenvector without making the result look
// resumable.
func TestKeepVectorDoesNotLeakCheckpoint(t *testing.T) {
	g := warmTestGraph(t)
	r, err := SLEM(g, Config{Seed: 1, KeepVector: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoint() != nil {
		t.Fatal("complete KeepVector run must not expose a resume checkpoint")
	}
	vec := r.Eigenvector()
	if len(vec) != g.NumNodes() {
		t.Fatalf("eigenvector has %d entries, want %d", len(vec), g.NumNodes())
	}
	norm := 0.0
	for _, x := range vec {
		norm += x * x
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Fatalf("retained eigenvector is not unit norm: %v", math.Sqrt(norm))
	}
}
