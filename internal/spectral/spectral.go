// Package spectral computes the second largest eigenvalue modulus (SLEM)
// μ of the random-walk transition matrix P and the Sinclair mixing-time
// bounds the paper uses in §III-C:
//
//	(μ/(1-μ))·log(1/2ε)  <=  T(ε)  <=  (log n + log(1/ε)) / (1-μ)
//
// P = D⁻¹A is similar to the symmetric N = D^(-1/2) A D^(-1/2), so its
// eigenvalues are real and can be extracted with power iteration on N.
// The top eigenvector of N is known in closed form (φ_v ∝ √deg(v), with
// eigenvalue 1 on a connected graph), so the SLEM is obtained by deflating
// φ and power-iterating; because eigenvalues may be negative, convergence
// targets |λ₂|, which is exactly the modulus the bound needs.
//
// Complexity: each power iteration is one sparse mat-vec, O(m), plus O(n)
// deflation and normalization; k iterations cost O(k·(m+n)). The mat-vec
// is row-partitioned across parallel workers in gather form — worker w
// computes y[v] = Σ_{u∈N(v)} x[u]/√(deg u · deg v) for a contiguous block
// of rows v — so every row's neighbor sum is accumulated by exactly one
// worker in a fixed order and the iteration is bit-for-bit identical at
// any worker count.
package spectral

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/parallel"
)

// Observability instruments for the SLEM measurement, resolved once at
// init. The iteration counter and residual gauge are written once per
// SLEM call — never inside the power iteration — so the mat-vec stays
// untouched and results are bit-identical with metrics enabled.
var (
	obsSLEMIterations = obs.Default().Counter("spectral.slem.iterations")
	obsSLEMConverged  = obs.Default().Counter("spectral.slem.converged")
	obsSLEMPartial    = obs.Default().Counter("spectral.slem.partial")
	obsSLEMResumed    = obs.Default().Counter("spectral.slem.resumed_iterations")
	obsSLEMWarm       = obs.Default().Counter("spectral.slem.warm_starts")
	obsSLEMWarmFallbk = obs.Default().Counter("spectral.slem.warm_fallbacks")
	obsSLEMResidual   = obs.Default().Gauge("spectral.slem.residual")
)

// Config controls the power iteration.
type Config struct {
	// Tolerance is the convergence threshold on successive eigenvalue
	// estimates. Defaults to 1e-10 when zero.
	Tolerance float64
	// MaxIterations bounds the iteration count. Defaults to 10000 when 0.
	MaxIterations int
	// Seed drives the random starting vector.
	Seed int64
	// Workers bounds the row-partitioned mat-vec parallelism; <= 0 uses
	// GOMAXPROCS. The SLEM is bit-for-bit identical at any worker count.
	Workers int
	// BestEffort salvages a deadline-hit run: when ctx is canceled or
	// times out mid-iteration, SLEMContext returns the current estimate
	// (Result.Partial true, Coverage < 1) instead of the context error,
	// as long as at least one iteration completed.
	BestEffort bool
	// Resume warm-starts the power iteration from a checkpoint taken by
	// an earlier (interrupted) run of the *same* graph and configuration.
	// The checkpointed vector is used verbatim — already deflated and
	// normalized — so the resumed trajectory is bit-identical to the
	// uninterrupted one.
	Resume *Checkpoint
	// Warm seeds the starting vector with an approximate eigenvector —
	// typically the previous epoch's, carried across a small topology
	// delta — instead of a random draw. Unlike Resume it is only a hint:
	// the vector is deflated against the current graph's φ and
	// re-normalized, the iteration count starts at zero, and convergence
	// is judged by the usual successive-estimate test, so the result
	// meets the same Tolerance as a cold start (eigenvalue error is
	// quadratic in eigenvector error, which is what makes a good warm
	// vector converge in a handful of iterations). A degenerate warm
	// vector (wrong length, or ~0 norm after deflation) falls back to
	// the seeded random start. Ignored when Resume is set.
	Warm []float64
	// KeepVector retains the final iterate on the Result so callers can
	// feed it back as the next epoch's Warm vector via Eigenvector().
	KeepVector bool
}

// Checkpoint is the resumable state of a power iteration: the iterate
// after Iterations completed steps (deflated, unit-norm) and the last
// eigenvalue estimate. It is only produced after at least one iteration,
// so Prev is always finite and the state survives a JSON round trip
// through internal/resilience's store bit-for-bit.
type Checkpoint struct {
	Vector     []float64 `json:"vector"`
	Prev       float64   `json:"prev"`
	Iterations int       `json:"iterations"`
}

func (c *Config) fill() {
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-10
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 50000
	}
}

// ErrNotConnected is returned when the graph is not connected: the SLEM of
// a disconnected graph is 1 and the walk never mixes, so measuring it is
// almost always a caller bug.
var ErrNotConnected = errors.New("spectral: graph is not connected")

// Result carries the SLEM measurement.
type Result struct {
	// SLEM is μ, the second largest eigenvalue modulus of P.
	SLEM float64
	// Iterations is the number of power iterations performed, including
	// any resumed from a checkpoint.
	Iterations int
	// Converged reports whether successive estimates got within Tolerance
	// before MaxIterations.
	Converged bool
	// Partial reports that a best-effort run was cut short: SLEM is the
	// estimate after Iterations of the configured budget.
	Partial bool
	// Coverage is the fraction of the iteration budget spent — 1 on a
	// complete (converged or budget-exhausted) run, in (0, 1) on a
	// salvaged partial one.
	Coverage float64

	// vector and prev retain the iterate Checkpoint needs; set only on
	// partial results.
	vector []float64
	prev   float64
	// eigvec retains the final iterate when Config.KeepVector is set.
	eigvec []float64
}

// Checkpoint returns the resumable state of a partial result, or nil for
// a complete run (which has nothing left to resume).
func (r *Result) Checkpoint() *Checkpoint {
	if r.vector == nil {
		return nil
	}
	return &Checkpoint{Vector: r.vector, Prev: r.prev, Iterations: r.Iterations}
}

// Eigenvector returns the final power-iteration iterate — an
// approximation of the eigenvector behind the SLEM — when the run was
// configured with KeepVector, and nil otherwise. The slice is owned by
// the Result and must not be modified; copy it before reuse.
func (r *Result) Eigenvector() []float64 { return r.eigvec }

// SLEM computes the second largest eigenvalue modulus of the transition
// matrix of the simple random walk on g. It accepts any graph.View;
// because power iteration streams the whole adjacency per iteration,
// non-CSR views are materialized once up front (graph.Materialize, cached
// by the view) and the copy is amortized across all iterations.
func SLEM(v graph.View, cfg Config) (*Result, error) {
	return SLEMContext(context.Background(), v, cfg)
}

// SLEMContext is SLEM under a context: cancellation is honored between
// power iterations, and with cfg.BestEffort a deadline-hit run returns
// its current estimate as a resumable partial result instead of an
// error. Resuming from the checkpoint of an interrupted run continues
// the exact trajectory: the final estimate is bit-identical to the
// uninterrupted computation.
func SLEMContext(ctx context.Context, v graph.View, cfg Config) (*Result, error) {
	cfg.fill()
	ctx, span := obs.StartSpan(ctx, "spectral.slem")
	defer span.End()
	n := v.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("spectral: need >= 2 nodes, got %d", n)
	}
	if v.NumEdges() == 0 {
		return nil, errors.New("spectral: graph has no edges")
	}
	// The iteration needs aliased neighbor slices. A sharded substrate
	// already serves them shard by shard; anything else is materialized
	// once and the copy amortized across all iterations.
	var g graph.NeighborSlicer
	sg, sharded := graph.AsSharded(v)
	if sharded {
		g = sg
	} else {
		g = graph.Materialize(v)
	}
	if !graph.IsConnected(g) {
		return nil, ErrNotConnected
	}

	// φ = sqrt(deg)/||sqrt(deg)||: the top eigenvector of N.
	phi := make([]float64, n)
	norm := 0.0
	for v := 0; v < n; v++ {
		phi[v] = math.Sqrt(float64(g.Degree(graph.NodeID(v))))
		norm += phi[v] * phi[v]
	}
	norm = math.Sqrt(norm)
	for v := range phi {
		phi[v] /= norm
	}

	// The iterate: a fresh seeded random vector deflated against φ, or —
	// when resuming — the checkpointed vector VERBATIM. The checkpoint
	// was taken after deflation and normalization; re-applying either
	// would perturb the floats and break bit-identical resume.
	x := make([]float64, n)
	startIt := 0
	prev := math.Inf(1)
	if cfg.Resume != nil {
		if len(cfg.Resume.Vector) != n {
			return nil, fmt.Errorf("spectral: resume checkpoint has %d entries, graph has %d nodes", len(cfg.Resume.Vector), n)
		}
		if cfg.Resume.Iterations < 1 || !(math.Abs(cfg.Resume.Prev) < math.Inf(1)) {
			return nil, fmt.Errorf("spectral: resume checkpoint is malformed (iterations %d, prev %v)", cfg.Resume.Iterations, cfg.Resume.Prev)
		}
		copy(x, cfg.Resume.Vector)
		startIt = cfg.Resume.Iterations
		prev = cfg.Resume.Prev
		obsSLEMResumed.Add(int64(startIt))
	} else {
		warmed := false
		if cfg.Warm != nil && len(cfg.Warm) == n {
			// A warm vector is a hint, not a trajectory: deflate against
			// the CURRENT graph's φ and re-normalize, then converge by the
			// ordinary tolerance test. Degeneracy is judged relative to
			// the incoming norm — a nearly-φ-parallel vector deflates to
			// pure rounding noise, which carries no second-eigenvector
			// signal and would start the iteration from garbage.
			copy(x, cfg.Warm)
			in := 0.0
			for _, e := range x {
				in += e * e
			}
			deflate(x, phi)
			if out := normalize(x); out > 1e-8*math.Sqrt(in) && out > 0 {
				warmed = true
				obsSLEMWarm.Inc()
			} else {
				obsSLEMWarmFallbk.Inc()
			}
		} else if cfg.Warm != nil {
			obsSLEMWarmFallbk.Inc()
		}
		if !warmed {
			rng := rand.New(rand.NewSource(cfg.Seed))
			for v := range x {
				x[v] = rng.NormFloat64()
			}
			deflate(x, phi)
			if normalize(x) == 0 {
				return nil, errors.New("spectral: degenerate starting vector")
			}
		}
	}

	y := make([]float64, n)
	invSqrtDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		invSqrtDeg[v] = 1 / math.Sqrt(float64(g.Degree(graph.NodeID(v))))
	}

	// Row-partitioned y = N x, N_uv = 1/sqrt(deg u deg v) per edge, in
	// gather form: each block [lo, hi) is the only writer of its y rows,
	// and every row's neighbor sum is accumulated in adjacency order
	// whatever the partition — so the result is bit-for-bit identical at
	// any block or worker count. On a sharded substrate the partition
	// follows the shard ranges (one block per shard, the shards' natural
	// locality); otherwise the rows split into equal blocks. Below
	// parallelThreshold rows the fan-out runs on one worker: the
	// per-iteration goroutine spawn would cost more than the mat-vec, and
	// the gather order (hence the result) is the same either way.
	const parallelThreshold = 4096
	var spanLo, spanHi []int
	if sharded {
		for s := 0; s < sg.NumShards(); s++ {
			lo, hi := sg.Range(s)
			spanLo = append(spanLo, int(lo))
			spanHi = append(spanHi, int(hi))
		}
	} else {
		blocks := parallel.Workers(cfg.Workers, n)
		if n < parallelThreshold {
			blocks = 1
		}
		blockSize := (n + blocks - 1) / blocks
		for b := 0; b < blocks; b++ {
			lo := b * blockSize
			hi := lo + blockSize
			if hi > n {
				hi = n
			}
			spanLo = append(spanLo, lo)
			spanHi = append(spanHi, hi)
		}
	}
	workers := parallel.Workers(cfg.Workers, len(spanLo))
	if n < parallelThreshold {
		workers = 1
	}
	matVec := func(x, y []float64) {
		// ForEach with a background context cannot fail here: the only
		// error sources are fn errors and cancellation.
		_ = parallel.ForEach(context.Background(), workers, len(spanLo), func(_, b int) error {
			for v := spanLo[b]; v < spanHi[b]; v++ {
				sum := 0.0
				for _, u := range g.Neighbors(graph.NodeID(v)) {
					sum += x[u] * invSqrtDeg[u]
				}
				y[v] = sum * invSqrtDeg[v]
			}
			return nil
		})
	}

	res := &Result{Iterations: startIt, Coverage: 1}
	resid := math.Inf(1)
	defer func() {
		obsSLEMIterations.Add(int64(res.Iterations - startIt))
		obsSLEMResidual.Set(resid)
		if res.Converged {
			obsSLEMConverged.Inc()
		}
	}()
	for it := startIt; it < cfg.MaxIterations; it++ {
		if err := ctx.Err(); err != nil {
			if !cfg.BestEffort || res.Iterations == 0 {
				return nil, fmt.Errorf("spectral: %w", err)
			}
			// Salvage the running estimate and the iterate so the caller
			// can checkpoint and later resume the exact trajectory.
			obsSLEMPartial.Inc()
			res.SLEM = prev
			res.Partial = true
			res.Coverage = float64(res.Iterations) / float64(cfg.MaxIterations)
			res.vector = append([]float64(nil), x...)
			res.prev = prev
			if cfg.KeepVector {
				res.eigvec = res.vector
			}
			return res, nil
		}
		res.Iterations = it + 1
		matVec(x, y)
		deflate(y, phi)
		lambda := normalize(y)
		x, y = y, x
		resid = math.Abs(lambda - prev)
		if resid < cfg.Tolerance {
			res.SLEM = lambda
			res.Converged = true
			if cfg.KeepVector {
				res.eigvec = append([]float64(nil), x...)
			}
			return res, nil
		}
		prev = lambda
	}
	res.SLEM = prev
	if cfg.KeepVector {
		res.eigvec = append([]float64(nil), x...)
	}
	return res, nil
}

// deflate removes the component of x along the unit vector phi.
func deflate(x, phi []float64) {
	dot := 0.0
	for i := range x {
		dot += x[i] * phi[i]
	}
	for i := range x {
		x[i] -= dot * phi[i]
	}
}

// normalize scales x to unit 2-norm and returns the previous norm.
func normalize(x []float64) float64 {
	norm := 0.0
	for _, v := range x {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return 0
	}
	for i := range x {
		x[i] /= norm
	}
	return norm
}

// Bounds holds the Sinclair mixing-time bounds derived from μ.
type Bounds struct {
	Lower float64
	Upper float64
}

// CheegerLower returns the Cheeger lower bound on graph conductance
// implied by the spectral gap: every cut of the graph has conductance at
// least (1-λ₂)/2, where λ₂ is the second eigenvalue of the transition
// matrix. Since μ >= λ₂, (1-μ)/2 is a valid (possibly weaker) bound, and
// that is what this function computes from the measured SLEM. It ties the
// mixing measurement to the expansion measurement: a fast mixer provably
// has no sparse cuts.
func CheegerLower(mu float64) (float64, error) {
	if mu < 0 || mu > 1 {
		return 0, fmt.Errorf("spectral: cheeger bound needs mu in [0,1], got %v", mu)
	}
	return (1 - mu) / 2, nil
}

// MixingBounds evaluates the Sinclair bounds for a graph with n nodes,
// SLEM mu, and variation-distance target eps.
func MixingBounds(n int, mu, eps float64) (Bounds, error) {
	if n < 2 {
		return Bounds{}, fmt.Errorf("spectral: bounds need n >= 2, got %d", n)
	}
	if mu <= 0 || mu >= 1 {
		return Bounds{}, fmt.Errorf("spectral: bounds need mu in (0,1), got %v", mu)
	}
	if eps <= 0 || eps >= 1 {
		return Bounds{}, fmt.Errorf("spectral: bounds need eps in (0,1), got %v", eps)
	}
	return Bounds{
		Lower: mu / (1 - mu) * math.Log(1/(2*eps)),
		Upper: (math.Log(float64(n)) + math.Log(1/eps)) / (1 - mu),
	}, nil
}
