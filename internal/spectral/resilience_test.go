package spectral

import (
	"context"
	"encoding/json"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/trustnet/trustnet/internal/gen"
)

// countCtx is a context whose Err() flips to DeadlineExceeded after a
// fixed number of calls. SLEMContext consults Err() exactly once per
// power iteration, so the interruption lands at the same iteration on
// every run — unlike a wall-clock deadline.
type countCtx struct {
	context.Context
	calls   atomic.Int64
	budget  int64
	expired atomic.Bool
}

func newCountCtx(budget int64) *countCtx {
	return &countCtx{Context: context.Background(), budget: budget}
}

func (c *countCtx) Err() error {
	if c.calls.Add(1) > c.budget || c.expired.Load() {
		c.expired.Store(true)
		return context.DeadlineExceeded
	}
	return nil
}

func (c *countCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func TestSLEMContextBestEffortPartial(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 5, Workers: 1, MaxIterations: 500, Tolerance: 1e-300}
	cfg.BestEffort = true
	r, err := SLEMContext(newCountCtx(40), g, cfg)
	if err != nil {
		t.Fatalf("best-effort run returned error: %v", err)
	}
	if !r.Partial || r.Converged {
		t.Fatalf("interrupted run: Partial=%v Converged=%v", r.Partial, r.Converged)
	}
	if r.Iterations != 40 {
		t.Fatalf("Iterations = %d, want exactly 40 (one Err() check per iteration)", r.Iterations)
	}
	if cov := r.Coverage; cov <= 0 || cov >= 1 {
		t.Fatalf("Coverage = %v, want in (0, 1)", cov)
	}
	if math.IsInf(r.SLEM, 0) || math.IsNaN(r.SLEM) {
		t.Fatalf("salvaged SLEM estimate = %v", r.SLEM)
	}
	if ckpt := r.Checkpoint(); ckpt == nil || ckpt.Iterations != 40 || len(ckpt.Vector) != 200 {
		t.Fatalf("Checkpoint() = %+v", ckpt)
	}

	// Without BestEffort the same interruption is an error.
	cfg.BestEffort = false
	if _, err := SLEMContext(newCountCtx(40), g, cfg); err == nil {
		t.Fatal("without BestEffort, interrupted run returned no error")
	}

	// Zero completed iterations has nothing to salvage.
	cfg.BestEffort = true
	if _, err := SLEMContext(newCountCtx(0), g, cfg); err == nil {
		t.Fatal("zero-iteration best-effort run returned no error")
	}
}

// The resilience contract: interrupt the power iteration, checkpoint the
// iterate through a JSON round-trip (as internal/resilience would),
// resume, and the final eigenvalue is bit-identical to the
// never-interrupted computation.
func TestSLEMContextResumeBitIdentical(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 5, Workers: 1, MaxIterations: 2000}
	ref, err := SLEM(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cut := cfg
	cut.BestEffort = true
	partial, err := SLEMContext(newCountCtx(25), g, cut)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial {
		t.Fatal("setup: expected a partial result")
	}

	data, err := json.Marshal(partial.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	var ckpt Checkpoint
	if err := json.Unmarshal(data, &ckpt); err != nil {
		t.Fatal(err)
	}

	resumed := cfg
	resumed.Resume = &ckpt
	got, err := SLEMContext(context.Background(), g, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || !got.Converged || got.Coverage != 1 {
		t.Fatalf("resumed run: %+v", got)
	}
	if math.Float64bits(got.SLEM) != math.Float64bits(ref.SLEM) {
		t.Fatalf("resumed SLEM %x differs from uninterrupted %x",
			math.Float64bits(got.SLEM), math.Float64bits(ref.SLEM))
	}
	if got.Iterations != ref.Iterations {
		t.Fatalf("resumed total iterations %d, uninterrupted %d", got.Iterations, ref.Iterations)
	}
	if got.Checkpoint() != nil {
		t.Fatal("complete result produced a checkpoint")
	}
}

// A partial result can itself be resumed and cut again; chaining partial
// runs still lands on the exact uninterrupted trajectory.
func TestSLEMContextResumeChained(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 2, Workers: 1, MaxIterations: 2000}
	ref, err := SLEM(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := cfg
	cut.BestEffort = true
	r, err := SLEMContext(newCountCtx(10), g, cut)
	if err != nil {
		t.Fatal(err)
	}
	for hops := 0; r.Partial; hops++ {
		if hops > 50 {
			t.Fatal("resume chain did not terminate")
		}
		next := cut
		next.Resume = r.Checkpoint()
		// Each hop advances at most 100 iterations (one Err() call each).
		if r, err = SLEMContext(newCountCtx(100), g, next); err != nil {
			t.Fatal(err)
		}
	}
	if math.Float64bits(r.SLEM) != math.Float64bits(ref.SLEM) || r.Iterations != ref.Iterations {
		t.Fatalf("chained resume: SLEM %v after %d iterations, want %v after %d",
			r.SLEM, r.Iterations, ref.SLEM, ref.Iterations)
	}
}

func TestSLEMContextResumeMalformedRejected(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 1}
	cfg.Resume = &Checkpoint{Vector: make([]float64, 7), Prev: 0.5, Iterations: 3}
	if _, err := SLEMContext(context.Background(), g, cfg); err == nil {
		t.Fatal("wrong-size resume vector accepted")
	}
	cfg.Resume = &Checkpoint{Vector: make([]float64, 100), Prev: 0.5, Iterations: 0}
	if _, err := SLEMContext(context.Background(), g, cfg); err == nil {
		t.Fatal("zero-iteration resume checkpoint accepted")
	}
	cfg.Resume = &Checkpoint{Vector: make([]float64, 100), Prev: math.Inf(1), Iterations: 3}
	if _, err := SLEMContext(context.Background(), g, cfg); err == nil {
		t.Fatal("infinite Prev in resume checkpoint accepted")
	}
}
