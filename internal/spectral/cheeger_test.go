package spectral

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trustnet/trustnet/internal/community"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func TestCheegerLowerValidation(t *testing.T) {
	if _, err := CheegerLower(-0.1); err == nil {
		t.Error("CheegerLower(-0.1): want error")
	}
	if _, err := CheegerLower(1.1); err == nil {
		t.Error("CheegerLower(1.1): want error")
	}
	b, err := CheegerLower(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.1) > 1e-12 {
		t.Errorf("CheegerLower(0.8) = %v, want 0.1", b)
	}
}

// Cross-package invariant: no cut of a graph can have conductance below
// the Cheeger lower bound (1-μ)/2 derived from the measured SLEM. We
// check it against random cuts and against label-propagation communities
// on both a fast and a slow mixer.
func TestCheegerBoundHoldsForMeasuredCuts(t *testing.T) {
	graphs := map[string]*graph.Graph{}
	fast, err := gen.BarabasiAlbert(300, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	graphs["fast"] = fast
	slow, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 6, CommunitySize: 50, Attach: 3, Bridges: 1, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	graphs["slow"] = slow

	for name, g := range graphs {
		sr, err := SLEM(g, Config{Tolerance: 1e-7, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bound, err := CheegerLower(sr.SLEM)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkCut := func(member []bool, what string) {
			phi, err := community.Conductance(g, member)
			if err != nil {
				return // degenerate cut; conductance undefined
			}
			if phi < bound-1e-9 {
				t.Errorf("%s/%s: conductance %v below Cheeger bound %v (mu=%v)",
					name, what, phi, bound, sr.SLEM)
			}
		}
		// Random cuts.
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 20; trial++ {
			member := make([]bool, g.NumNodes())
			for v := range member {
				member[v] = rng.Intn(2) == 0
			}
			checkCut(member, "random")
		}
		// Community cuts: each detected community against the rest.
		labels, err := community.LabelPropagation(g, 50, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for lbl := range community.Sizes(labels) {
			member := make([]bool, g.NumNodes())
			for v, l := range labels {
				member[v] = l == lbl
			}
			checkCut(member, "community")
		}
	}
}
