package spectral

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
)

// TestEquivalenceSLEMWorkerCounts is the determinism contract for the
// row-partitioned power iteration: the SLEM and the iteration count are
// bit-for-bit identical at every worker count, because each row's
// neighbor sum is accumulated by exactly one worker in adjacency order.
// The graph is sized above the package's small-graph sequential
// threshold so the parallel path actually runs.
func TestEquivalenceSLEMWorkerCounts(t *testing.T) {
	g, err := gen.BarabasiAlbert(5000, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	// A loose tolerance keeps the iteration count test-sized; bit-level
	// equality across worker counts is what matters, not convergence.
	run := func(workers int) *Result {
		r, err := SLEM(g, Config{Seed: 2, Tolerance: 1e-4, MaxIterations: 400, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	want := run(1)
	for _, workers := range []int{2, 4, 7} {
		got := run(workers)
		if got.SLEM != want.SLEM {
			t.Errorf("workers=%d: SLEM %v != workers=1 SLEM %v (bit-level)", workers, got.SLEM, want.SLEM)
		}
		if got.Iterations != want.Iterations || got.Converged != want.Converged {
			t.Errorf("workers=%d: iterations/converged %d/%v != %d/%v",
				workers, got.Iterations, got.Converged, want.Iterations, want.Converged)
		}
	}
}
