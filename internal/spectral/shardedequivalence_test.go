package spectral

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// TestEquivalenceShardedSLEM power-iterates on a ShardedGraph at 1, 2 and
// 7 shards and requires the SLEM, iteration count and convergence flag to
// be bit-identical to the monolithic run: the mat-vec's per-row gather
// order does not depend on the row partition.
func TestEquivalenceShardedSLEM(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", mustBA(t, 900, 3, 61)},
		{"clustered", mustClusteredPA(t, 3, 100, 3, 2, 62)},
	} {
		cfg := Config{Tolerance: 1e-9, MaxIterations: 4000, Seed: 17, Workers: 3}
		ref, err := SLEM(tc.g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 7} {
			sg, err := graph.NewSharded(tc.g, shards)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SLEM(sg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.SLEM != ref.SLEM {
				t.Fatalf("%s shards=%d: SLEM %v != %v (must be bit-identical)",
					tc.name, shards, got.SLEM, ref.SLEM)
			}
			if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
				t.Fatalf("%s shards=%d: trajectory diverged (%d its, conv %v) vs (%d its, conv %v)",
					tc.name, shards, got.Iterations, got.Converged, ref.Iterations, ref.Converged)
			}
		}
	}
}

func mustBA(t *testing.T, n, attach int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, attach, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustClusteredPA(t *testing.T, comms, size, attach, bridges int, seed int64) *graph.Graph {
	t.Helper()
	g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: comms, CommunitySize: size, Attach: attach, Bridges: bridges, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}
