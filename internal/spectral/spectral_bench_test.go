package spectral

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
)

func BenchmarkSLEMFastMixer(b *testing.B) {
	g, err := gen.BarabasiAlbert(3000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SLEM(g, Config{Tolerance: 1e-8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSLEMSlowMixer(b *testing.B) {
	// Clustered spectra converge slowly: this benchmark tracks the cost
	// of the hard case.
	g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 8, CommunitySize: 100, Attach: 4, Bridges: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SLEM(g, Config{Tolerance: 1e-6, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
