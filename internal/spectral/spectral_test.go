package spectral

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/walk"
)

func slemOf(t *testing.T, g *graph.Graph) float64 {
	t.Helper()
	return slemWith(t, g, Config{Seed: 1})
}

// slemWith runs SLEM with an explicit config; graphs whose spectrum has a
// cluster of eigenvalues near λ₂ (e.g. multi-community graphs) need a
// looser tolerance because power iteration separates the cluster slowly.
func slemWith(t *testing.T, g *graph.Graph, cfg Config) float64 {
	t.Helper()
	r, err := SLEM(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("power iteration did not converge in %d iterations", r.Iterations)
	}
	return r.SLEM
}

func TestSLEMCompleteGraph(t *testing.T) {
	// K_n has P-eigenvalues {1, -1/(n-1)}: SLEM = 1/(n-1).
	for _, n := range []int{4, 10, 25} {
		g, err := gen.Complete(n)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / float64(n-1)
		if got := slemOf(t, g); math.Abs(got-want) > 1e-6 {
			t.Errorf("SLEM(K%d) = %v, want %v", n, got, want)
		}
	}
}

func TestSLEMOddCycle(t *testing.T) {
	// C_n (odd) has SLEM cos(π/n), achieved by the most negative eigenvalue.
	for _, n := range []int{5, 9, 15} {
		g, err := gen.Cycle(n)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Cos(math.Pi / float64(n))
		if got := slemOf(t, g); math.Abs(got-want) > 1e-6 {
			t.Errorf("SLEM(C%d) = %v, want %v", n, got, want)
		}
	}
}

func TestSLEMBipartiteIsOne(t *testing.T) {
	// Bipartite graphs have eigenvalue -1: SLEM = 1.
	g, err := gen.Star(10)
	if err != nil {
		t.Fatal(err)
	}
	if got := slemOf(t, g); math.Abs(got-1) > 1e-6 {
		t.Errorf("SLEM(star) = %v, want 1", got)
	}
	g, err = gen.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := slemOf(t, g); math.Abs(got-1) > 1e-6 {
		t.Errorf("SLEM(C8) = %v, want 1", got)
	}
}

func TestSLEMFastVsSlowGraphs(t *testing.T) {
	fast, err := gen.BarabasiAlbert(300, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 6, CommunitySize: 50, Attach: 3, Bridges: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	muFast := slemOf(t, fast)
	muSlow := slemWith(t, slow, Config{Seed: 1, Tolerance: 1e-7})
	if muFast >= muSlow {
		t.Errorf("SLEM fast=%v >= slow=%v; community graph should be closer to 1", muFast, muSlow)
	}
	if muSlow < 0.9 {
		t.Errorf("SLEM(slow community graph) = %v, expected > 0.9", muSlow)
	}
}

func TestSLEMErrors(t *testing.T) {
	if _, err := SLEM(graph.NewBuilder(1).Build(), Config{}); err == nil {
		t.Error("SLEM(single node): want error")
	}
	if _, err := SLEM(graph.NewBuilder(3).Build(), Config{}); err == nil {
		t.Error("SLEM(no edges): want error")
	}
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := SLEM(b.Build(), Config{}); !errors.Is(err, ErrNotConnected) {
		t.Errorf("SLEM(disconnected) = %v, want ErrNotConnected", err)
	}
}

func TestSLEMDeterministicAcrossSeeds(t *testing.T) {
	// Different random starting vectors must converge to the same value.
	g, err := gen.BarabasiAlbert(150, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var base float64
	for i, seed := range []int64{1, 2, 99} {
		r, err := SLEM(g, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = r.SLEM
			continue
		}
		if math.Abs(r.SLEM-base) > 1e-6 {
			t.Errorf("seed %d: SLEM = %v, want %v", seed, r.SLEM, base)
		}
	}
}

func TestMixingBounds(t *testing.T) {
	b, err := MixingBounds(1000, 0.9, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower <= 0 || b.Upper <= b.Lower {
		t.Errorf("bounds = %+v, want 0 < lower < upper", b)
	}
	for _, bad := range []struct {
		n       int
		mu, eps float64
	}{{1, 0.5, 0.1}, {10, 0, 0.1}, {10, 1, 0.1}, {10, 0.5, 0}, {10, 0.5, 1}} {
		if _, err := MixingBounds(bad.n, bad.mu, bad.eps); err == nil {
			t.Errorf("MixingBounds(%+v): want error", bad)
		}
	}
}

func TestSLEMUpperBoundDominatesSampledMixing(t *testing.T) {
	// The Sinclair upper bound is for the worst source, so the sampled
	// mixing time must not exceed it (integration check between the
	// spectral and sampling measurements).
	g, err := gen.BarabasiAlbert(250, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	mu := slemOf(t, g)
	eps := 0.05
	bounds, err := MixingBounds(g.NumNodes(), mu, eps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := walk.MeasureMixing(context.Background(), g, walk.MixingConfig{MaxSteps: 200, Sources: 15, Lazy: false, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tmix, ok := res.MixingTime(eps)
	if !ok {
		t.Fatalf("graph did not mix to %v within 200 steps (mu=%v)", eps, mu)
	}
	if float64(tmix) > math.Ceil(bounds.Upper) {
		t.Errorf("sampled mixing time %d exceeds Sinclair upper bound %v", tmix, bounds.Upper)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	x := []float64{0, 0, 0}
	if got := normalize(x); got != 0 {
		t.Errorf("normalize(0) = %v, want 0", got)
	}
}

func TestDeflateOrthogonalizes(t *testing.T) {
	phi := []float64{1 / math.Sqrt2, 1 / math.Sqrt2}
	x := []float64{3, 1}
	deflate(x, phi)
	dot := x[0]*phi[0] + x[1]*phi[1]
	if math.Abs(dot) > 1e-12 {
		t.Errorf("deflated dot = %v, want 0", dot)
	}
}
