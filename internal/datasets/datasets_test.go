package datasets

import (
	"strings"
	"testing"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/spectral"
)

func TestRegistryComplete(t *testing.T) {
	specs := All()
	if len(specs) != 15 {
		t.Fatalf("registry has %d datasets, want 15 (Table I)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || seen[s.Name] {
			t.Errorf("bad or duplicate name %q", s.Name)
		}
		seen[s.Name] = true
		if s.PaperNodes <= 0 || s.PaperEdges <= 0 {
			t.Errorf("%s: missing paper sizes", s.Name)
		}
		if s.Class != FastMixing && s.Class != SlowMixing {
			t.Errorf("%s: missing class", s.Name)
		}
		if s.Band != Small && s.Band != Medium && s.Band != Large {
			t.Errorf("%s: missing band", s.Name)
		}
	}
}

func TestAllGenerateConnectedSimple(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			g, err := s.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if g.NumNodes() < 400 {
				t.Errorf("%s: only %d nodes, too small to be meaningful", s.Name, g.NumNodes())
			}
			if !graph.IsConnected(g) {
				t.Errorf("%s: not connected", s.Name)
			}
			if g.MinDegree() < 1 {
				t.Errorf("%s: has isolated node", s.Name)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, err := ByName("wiki-vote")
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Errorf("generation not deterministic: %v vs %v", a, b)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("physics-2"); err != nil {
		t.Errorf("ByName(physics-2): %v", err)
	}
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("ByName(nope): want error")
	}
	if !strings.Contains(err.Error(), "unknown dataset") {
		t.Errorf("error %q should mention unknown dataset", err)
	}
}

func TestGroupings(t *testing.T) {
	if got := len(ByBand(Small)); got != 6 {
		t.Errorf("small band = %d, want 6", got)
	}
	if got := len(ByBand(Medium)); got != 3 {
		t.Errorf("medium band = %d, want 3", got)
	}
	if got := len(ByBand(Large)); got != 6 {
		t.Errorf("large band = %d, want 6", got)
	}
	fast, slow := ByClass(FastMixing), ByClass(SlowMixing)
	if len(fast)+len(slow) != 15 {
		t.Errorf("classes partition %d+%d != 15", len(fast), len(slow))
	}
}

func TestStringers(t *testing.T) {
	if FastMixing.String() != "fast-mixing" || SlowMixing.String() != "slow-mixing" {
		t.Error("Class.String mismatch")
	}
	if Class(99).String() == "" {
		t.Error("unknown class should still format")
	}
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Error("SizeBand.String mismatch")
	}
	if SizeBand(42).String() == "" {
		t.Error("unknown band should still format")
	}
}

func TestCache(t *testing.T) {
	var c Cache
	g1, err := c.Get("rice-grad")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Get("rice-grad")
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("cache returned distinct graphs for the same name")
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("Get(nope): want error")
	}
}

// The registry's whole point: synthetic fast mixers must measure as
// faster-mixing (smaller SLEM) than synthetic slow mixers.
func TestClassesSeparateBySLEM(t *testing.T) {
	if testing.Short() {
		t.Skip("slem separation is slow")
	}
	mu := func(name string) float64 {
		t.Helper()
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		r, err := spectral.SLEM(g, spectral.Config{Tolerance: 1e-7, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r.SLEM
	}
	fast := mu("wiki-vote")
	slow := mu("physics-1")
	if fast >= slow {
		t.Errorf("SLEM(wiki-vote)=%v >= SLEM(physics-1)=%v; registry classes inverted", fast, slow)
	}
	if slow < 0.95 {
		t.Errorf("SLEM(physics-1)=%v, want close to 1 for a slow mixer", slow)
	}
}
