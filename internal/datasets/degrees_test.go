package datasets

import (
	"testing"

	"github.com/trustnet/trustnet/internal/stats"
)

// The stand-ins must reproduce the heavy-tailed degree distributions of
// the crawls they replace: the preferential-attachment datasets should
// fit a power-law tail with exponent near the BA value of 3.
func TestFastStandInsHaveHeavyTails(t *testing.T) {
	var c Cache
	for _, name := range []string{"wiki-vote", "epinion", "livejournal-a"} {
		g, err := c.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		samples := make([]float64, g.NumNodes())
		for v, d := range g.Degrees() {
			samples[v] = float64(d)
		}
		xmin := float64(2 * g.MinDegree())
		alpha, tail, err := stats.PowerLawAlpha(samples, xmin)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tail < 50 {
			t.Errorf("%s: only %d tail samples above xmin=%v", name, tail, xmin)
		}
		if alpha < 2 || alpha > 4 {
			t.Errorf("%s: degree tail exponent %v outside the BA range [2,4]", name, alpha)
		}
	}
}

// The slow mixers' degree caps come from the community nuclei: their max
// degree must stay an order of magnitude below the fast OSN hubs at
// similar size.
func TestSlowStandInsLackGlobalHubs(t *testing.T) {
	var c Cache
	fast, err := c.Get("wiki-vote")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := c.Get("physics-1")
	if err != nil {
		t.Fatal(err)
	}
	fastHubRatio := float64(fast.MaxDegree()) / fast.AverageDegree()
	slowHubRatio := float64(slow.MaxDegree()) / slow.AverageDegree()
	if slowHubRatio >= fastHubRatio {
		t.Errorf("slow mixer hub ratio %v >= fast %v; community nuclei should cap hubs",
			slowHubRatio, fastHubRatio)
	}
}
