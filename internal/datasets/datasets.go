// Package datasets provides the synthetic stand-ins for the benchmark
// social graphs of Table I of the paper. The originals (SNAP crawls and
// the Mislove/Wilson datasets) are not redistributable and far exceed a
// laptop-scale reproduction, so each entry here is generated — at a
// scaled-down size — by the random-graph model whose social structure
// matches the original:
//
//   - Fast-mixing online social networks with weak trust semantics
//     (Wiki-vote, Epinion, Slashdot, LiveJournal, Youtube, Facebook A,
//     Rice-grad) map to preferential-attachment graphs: heavy-tailed
//     degrees, a dense well-connected core, small diameter.
//   - Slow-mixing networks with strict trust semantics and tight-knit
//     community structure (the Physics co-authorship graphs, DBLP,
//     Enron, Facebook B) map to clustered preferential-attachment
//     graphs: dense community nuclei stitched together through
//     low-degree weak ties, with the community count and bridge budget
//     controlling how slow the mixing is.
//
// This mapping follows the paper's own observation (§II, citing the
// authors' IMC'10 measurements) that mixing patterns track the underlying
// social model rather than graph size. Every generated graph is reduced
// to its largest connected component, which is also what the original
// measurement studies do.
package datasets

import (
	"fmt"
	"sort"
	"sync"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// Class is the mixing regime a dataset's social model implies.
type Class int

const (
	// FastMixing marks online social networks with permissive link
	// semantics.
	FastMixing Class = iota + 1
	// SlowMixing marks interaction/co-authorship networks with strict
	// trust semantics and tight-knit communities.
	SlowMixing
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case FastMixing:
		return "fast-mixing"
	case SlowMixing:
		return "slow-mixing"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// SizeBand mirrors the small/medium/large panel grouping of the paper's
// figures.
type SizeBand int

const (
	// Small graphs appear in the "(a) small datasets" panels.
	Small SizeBand = iota + 1
	// Medium graphs appear with the small ones in some panels.
	Medium
	// Large graphs appear in the "(b) large datasets" panels.
	Large
)

// String implements fmt.Stringer.
func (b SizeBand) String() string {
	switch b {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("SizeBand(%d)", int(b))
	}
}

// Spec describes one Table I dataset and the synthetic model standing in
// for it.
type Spec struct {
	// Name is the paper's dataset name.
	Name string
	// PaperNodes and PaperEdges are the original crawl's size, kept for
	// the Table I comparison columns.
	PaperNodes int64
	PaperEdges int64
	// Class is the mixing regime the paper's measurements place the
	// original in.
	Class Class
	// Band is the figure panel the dataset appears in.
	Band SizeBand
	// build generates the scaled synthetic stand-in.
	build func() (*graph.Graph, error)
}

// registry lists every Table I dataset. Sizes are scaled ~20–200× down
// from the originals; mixing class and relative ordering are preserved.
func registry() []Spec {
	return []Spec{
		{
			Name: "wiki-vote", PaperNodes: 7066, PaperEdges: 100736,
			Class: FastMixing, Band: Small,
			build: func() (*graph.Graph, error) { return gen.BarabasiAlbert(1400, 14, 101) },
		},
		{
			Name: "epinion", PaperNodes: 75879, PaperEdges: 405740,
			Class: FastMixing, Band: Small,
			build: func() (*graph.Graph, error) { return gen.BarabasiAlbert(2600, 5, 102) },
		},
		{
			Name: "slashdot-a", PaperNodes: 77360, PaperEdges: 546487,
			Class: FastMixing, Band: Medium,
			build: func() (*graph.Graph, error) { return gen.BarabasiAlbert(2800, 7, 103) },
		},
		{
			Name: "slashdot-b", PaperNodes: 82168, PaperEdges: 582533,
			Class: FastMixing, Band: Medium,
			build: func() (*graph.Graph, error) { return gen.BarabasiAlbert(3000, 7, 104) },
		},
		{
			Name: "enron", PaperNodes: 33696, PaperEdges: 180811,
			Class: FastMixing, Band: Medium,
			// Enron mixes about as fast as Wiki-vote in Figure 1(a)
			// despite being an email interaction graph; a lightly
			// clustered PA graph with a generous bridge budget captures
			// that.
			build: func() (*graph.Graph, error) {
				g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
					Communities: 4, CommunitySize: 550, Attach: 5,
					Bridges: 30, Periphery: 60, Seed: 105,
				})
				return g, err
			},
		},
		{
			Name: "physics-1", PaperNodes: 4158, PaperEdges: 13422,
			Class: SlowMixing, Band: Small,
			build: func() (*graph.Graph, error) {
				g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
					Communities: 14, CommunitySize: 80, Attach: 3,
					Bridges: 2, Periphery: 16, Seed: 106,
				})
				return g, err
			},
		},
		{
			Name: "physics-2", PaperNodes: 8638, PaperEdges: 24806,
			Class: SlowMixing, Band: Small,
			build: func() (*graph.Graph, error) {
				g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
					Communities: 18, CommunitySize: 90, Attach: 3,
					Bridges: 2, Periphery: 18, Seed: 107,
				})
				return g, err
			},
		},
		{
			Name: "physics-3", PaperNodes: 11204, PaperEdges: 117619,
			Class: SlowMixing, Band: Small,
			// The densest of the co-authorship graphs (HEP-Ph): bigger
			// nuclei, slightly better bridged.
			build: func() (*graph.Graph, error) {
				g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
					Communities: 10, CommunitySize: 160, Attach: 8,
					Bridges: 4, Periphery: 24, Seed: 108,
				})
				return g, err
			},
		},
		{
			Name: "rice-grad", PaperNodes: 501, PaperEdges: 3255,
			Class: FastMixing, Band: Small,
			build: func() (*graph.Graph, error) { return gen.BarabasiAlbert(500, 7, 109) },
		},
		{
			Name: "dblp", PaperNodes: 614981, PaperEdges: 1871070,
			Class: SlowMixing, Band: Large,
			build: func() (*graph.Graph, error) {
				g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
					Communities: 36, CommunitySize: 110, Attach: 3,
					Bridges: 2, Periphery: 22, Seed: 110,
				})
				return g, err
			},
		},
		{
			Name: "facebook-a", PaperNodes: 1000000, PaperEdges: 20353734,
			Class: FastMixing, Band: Large,
			build: func() (*graph.Graph, error) { return gen.BarabasiAlbert(4200, 10, 111) },
		},
		{
			Name: "facebook-b", PaperNodes: 3097165, PaperEdges: 28377481,
			Class: SlowMixing, Band: Large,
			// The interaction (not friendship) Facebook graph: confined
			// social model, slower mixing.
			build: func() (*graph.Graph, error) {
				g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
					Communities: 12, CommunitySize: 330, Attach: 5,
					Bridges: 8, Periphery: 40, Seed: 112,
				})
				return g, err
			},
		},
		{
			Name: "livejournal-a", PaperNodes: 5284457, PaperEdges: 48709772,
			Class: FastMixing, Band: Large,
			build: func() (*graph.Graph, error) { return gen.BarabasiAlbert(4800, 9, 113) },
		},
		{
			Name: "livejournal-b", PaperNodes: 4847571, PaperEdges: 42851237,
			Class: FastMixing, Band: Large,
			build: func() (*graph.Graph, error) { return gen.BarabasiAlbert(4400, 9, 114) },
		},
		{
			Name: "youtube", PaperNodes: 1134890, PaperEdges: 2987624,
			Class: FastMixing, Band: Large,
			build: func() (*graph.Graph, error) { return gen.BarabasiAlbert(3600, 3, 115) },
		},
	}
}

// All returns every dataset spec, ordered as in Table I-ish (small to
// large).
func All() []Spec {
	return registry()
}

// Names returns all dataset names in registry order.
func Names() []string {
	specs := registry()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range registry() {
		if s.Name == name {
			return s, nil
		}
	}
	names := Names()
	sort.Strings(names)
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, names)
}

// ByBand returns the specs in the given size band, registry order.
func ByBand(b SizeBand) []Spec {
	var out []Spec
	for _, s := range registry() {
		if s.Band == b {
			out = append(out, s)
		}
	}
	return out
}

// ByClass returns the specs in the given mixing class, registry order.
func ByClass(c Class) []Spec {
	var out []Spec
	for _, s := range registry() {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// Generate builds the synthetic stand-in and reduces it to its largest
// connected component.
func (s Spec) Generate() (*graph.Graph, error) {
	if s.build == nil {
		return nil, fmt.Errorf("datasets: spec %q has no generator", s.Name)
	}
	g, err := s.build()
	if err != nil {
		return nil, fmt.Errorf("datasets: generate %s: %w", s.Name, err)
	}
	if !graph.IsConnected(g) {
		g, _ = graph.LargestComponent(g)
	}
	return g, nil
}

// Cache memoizes generated datasets so that experiment runners touching
// several figures do not regenerate the same graphs. The zero value is
// ready to use and safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	graphs map[string]*graph.Graph
}

// Get returns the (possibly cached) graph for the named dataset.
func (c *Cache) Get(name string) (*graph.Graph, error) {
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.graphs[name]; ok {
		return g, nil
	}
	g, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	if c.graphs == nil {
		c.graphs = make(map[string]*graph.Graph)
	}
	c.graphs[name] = g
	return g, nil
}
