package dht

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
)

// FaultConfig parameterizes failure handling of a lookup running over a
// fault schedule. All durations are simulated ticks (the unit
// faults.Model.Deliver charges latency in).
type FaultConfig struct {
	// Timeout is how long a querier waits for a finger's reply before
	// giving up on it. Defaults to 8 ticks.
	Timeout int
	// MaxRetries bounds the number of independent fingers tried; it
	// plays the role Config.Retries plays for fault-free lookups and
	// defaults to that value.
	MaxRetries int
	// BackoffBase is the wait after the first failed query; it doubles
	// after each subsequent failure (bounded exponential backoff over
	// independent fingers). Defaults to 1 tick.
	BackoffBase int
}

func (c *FaultConfig) fill(retries int) error {
	if c.Timeout == 0 {
		c.Timeout = 8
	}
	if c.Timeout < 1 {
		return fmt.Errorf("dht: fault timeout %d must be >= 1", c.Timeout)
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = retries
	}
	if c.MaxRetries < 1 {
		return fmt.Errorf("dht: fault max retries %d must be >= 1", c.MaxRetries)
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 1
	}
	if c.BackoffBase < 1 {
		return fmt.Errorf("dht: fault backoff base %d must be >= 1", c.BackoffBase)
	}
	return nil
}

// FaultyLookupResult extends LookupResult with explicit degraded-result
// reporting: a caller can distinguish "found cleanly", "found but the
// routing state is visibly degraded", and "not found after the retry
// budget".
type FaultyLookupResult struct {
	LookupResult
	// Degraded reports that at least one query failed (finger down,
	// request or reply dropped) before the lookup concluded — the
	// result, even when Found, came from degraded routing state.
	Degraded bool
	// Timeouts is the number of queries that timed out.
	Timeouts int
	// Latency is the total simulated ticks the lookup cost, including
	// timeouts and backoff waits.
	Latency int
}

// LookupFaulty is Lookup running over a fault schedule: fingers are
// queried nearest-preceding first, each query is charged simulated
// latency, a query to a churned finger or whose request/reply is
// dropped times out after cfg.Timeout ticks, and failed queries back
// off exponentially before the next independent finger is tried. A nil
// model degrades to the fault-free Lookup semantics with one tick per
// query.
func (t *Table) LookupFaulty(origin graph.NodeID, key Key, m *faults.Model, cfg FaultConfig) (FaultyLookupResult, error) {
	if err := cfg.fill(t.cfg.Retries); err != nil {
		return FaultyLookupResult{}, err
	}
	g := t.attack.Combined
	if !g.Valid(origin) {
		return FaultyLookupResult{}, fmt.Errorf("dht: origin %d out of range", origin)
	}
	if m != nil && !m.Alive(origin) {
		return FaultyLookupResult{}, fmt.Errorf("dht: origin %d is down", origin)
	}
	fs := t.fingers[origin]
	if len(fs) == 0 {
		return FaultyLookupResult{}, fmt.Errorf("dht: origin %d has no fingers", origin)
	}

	res := FaultyLookupResult{}
	order := fingerOrder(fs, key)
	tries := cfg.MaxRetries
	if tries > len(order) {
		tries = len(order)
	}
	backoff := cfg.BackoffBase
	for i := 0; i < tries; i++ {
		f := fs[order[i]]
		res.Queries++

		// Request and reply both cross the (faulty) network.
		if m != nil {
			req := m.Deliver(origin, f.node)
			if !req.OK {
				res.Timeouts++
				res.Degraded = true
				res.Latency += cfg.Timeout + backoff
				backoff *= 2
				continue
			}
			rep := m.Deliver(f.node, origin)
			if !rep.OK {
				res.Timeouts++
				res.Degraded = true
				res.Latency += cfg.Timeout + backoff
				backoff *= 2
				continue
			}
			res.Latency += req.Ticks + rep.Ticks
		} else {
			res.Latency++
		}

		if !t.attack.IsHonest(f.node) {
			continue // adversarial finger: replies, but withholds the record
		}
		for _, r := range t.successors[f.node] {
			if r.key == key && t.attack.IsHonest(r.owner) {
				res.Found = true
				return res, nil
			}
		}
	}
	return res, nil
}

// fingerOrder returns finger indices by ring proximity of their ID
// before the key — the shared candidate order of Lookup and
// LookupFaulty.
func fingerOrder(fs []finger, key Key) []int {
	order := make([]int, len(fs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return ringDistance(fs[order[i]].id, key) < ringDistance(fs[order[j]].id, key)
	})
	return order
}

// FaultEvalResult aggregates lookups under one fault schedule.
type FaultEvalResult struct {
	// SuccessRate is the fraction of lookups that found the record.
	SuccessRate float64
	// DegradedRate is the fraction of lookups (successful or not) that
	// saw at least one failed query.
	DegradedRate float64
	// MeanQueries and MeanLatency average over all lookups.
	MeanQueries float64
	MeanLatency float64
	// Trials is the number of lookups performed.
	Trials int
}

// EvaluateUnderFaults runs lookups from sampled live honest origins to
// sampled live honest targets over the fault schedule. The sampling
// stream is the same one Evaluate draws from, and fault decisions come
// from the model's independent stream — so with a nil or zero-fault
// model the success pattern is bit-for-bit the one Evaluate measures.
func (t *Table) EvaluateUnderFaults(trials int, seed int64, m *faults.Model, cfg FaultConfig) (*FaultEvalResult, error) {
	if trials < 1 {
		return nil, fmt.Errorf("dht: trials %d must be >= 1", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	hn := t.attack.HonestNodes
	res := &FaultEvalResult{}
	degraded := 0
	success := 0
	totalQueries := 0
	totalLatency := 0
	done := 0
	attempts := 0
	maxAttempts := 1000*trials + 1000
	for done < trials {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("dht: could not sample %d live origin/target pairs (churn too high?)", trials)
		}
		origin := graph.NodeID(rng.Intn(hn))
		target := graph.NodeID(rng.Intn(hn))
		if t.attack.Combined.Degree(origin) == 0 || t.attack.Combined.Degree(target) == 0 {
			continue
		}
		if m != nil && (!m.Alive(origin) || !m.Alive(target)) {
			continue // a dead origin can't ask; a dead target has no user to serve
		}
		r, err := t.LookupFaulty(origin, KeyOf(target), m, cfg)
		if err != nil {
			return nil, err
		}
		if r.Found {
			success++
		}
		if r.Degraded {
			degraded++
		}
		totalQueries += r.Queries
		totalLatency += r.Latency
		done++
	}
	res.Trials = trials
	res.SuccessRate = float64(success) / float64(trials)
	res.DegradedRate = float64(degraded) / float64(trials)
	res.MeanQueries = float64(totalQueries) / float64(trials)
	res.MeanLatency = float64(totalLatency) / float64(trials)
	return res, nil
}
