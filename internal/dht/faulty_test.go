package dht

import (
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

func TestRingDistanceUint64Boundary(t *testing.T) {
	const max = Key(math.MaxUint64)
	if d := ringDistance(max, 0); d != 1 {
		t.Errorf("ringDistance(max, 0) = %d, want 1 (wrap across the boundary)", d)
	}
	if d := ringDistance(0, max); d != math.MaxUint64 {
		t.Errorf("ringDistance(0, max) = %d, want 2^64-1", d)
	}
	if d := ringDistance(max, max); d != 0 {
		t.Errorf("ringDistance(max, max) = %d, want 0", d)
	}
	// Crossing the boundary from just below to just above.
	if d := ringDistance(max-2, 3); d != 6 {
		t.Errorf("ringDistance(max-2, 3) = %d, want 6", d)
	}
	// One step short of a full revolution.
	if d := ringDistance(1, 0); d != math.MaxUint64 {
		t.Errorf("ringDistance(1, 0) = %d, want 2^64-1", d)
	}
	// Halfway around, from both sides of the boundary.
	const half = Key(1) << 63
	if d := ringDistance(0, half); d != 1<<63 {
		t.Errorf("ringDistance(0, 2^63) = %d, want 2^63", d)
	}
	if d := ringDistance(half, 0); d != 1<<63 {
		t.Errorf("ringDistance(2^63, 0) = %d, want 2^63", d)
	}
}

func TestLookupDeterministicUnderFixedSeed(t *testing.T) {
	honest, err := gen.BarabasiAlbert(300, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Table {
		a, err := sybil.Inject(honest, sybil.AttackConfig{
			SybilNodes: 40, AttackEdges: 4, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := Build(a, Config{Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	t1, t2 := build(), build()
	for v := graph.NodeID(0); v < 100; v++ {
		key := KeyOf(v)
		r1, err := t1.Lookup(v, key, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := t2.Lookup(v, key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("lookup for %d: %+v vs %+v under identical seeds", v, r1, r2)
		}
	}
	// Evaluate is deterministic end-to-end as well.
	e1, err := t1.Evaluate(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := t2.Evaluate(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("Evaluate = %v vs %v under identical seeds", e1, e2)
	}
}

func faultyTable(t *testing.T, n int) *Table {
	t.Helper()
	honest, err := gen.BarabasiAlbert(n, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	return buildOn(t, honest, n/10, 3, Config{Seed: 1})
}

func TestZeroFaultModelMatchesEvaluateBitForBit(t *testing.T) {
	tab := faultyTable(t, 500)
	base, err := tab.Evaluate(300, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Nil model.
	nilRes, err := tab.EvaluateUnderFaults(300, 9, nil, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if nilRes.SuccessRate != base {
		t.Errorf("nil-model success %v != fault-free %v", nilRes.SuccessRate, base)
	}
	if nilRes.DegradedRate != 0 {
		t.Errorf("nil-model degraded rate %v, want 0", nilRes.DegradedRate)
	}
	// Zero-fault model (latency still charged, but structure untouched).
	m, err := faults.New(tab.attack.Combined, faults.Config{Seed: 4, LatencyMean: 2})
	if err != nil {
		t.Fatal(err)
	}
	zeroRes, err := tab.EvaluateUnderFaults(300, 9, m, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if zeroRes.SuccessRate != base {
		t.Errorf("zero-churn success %v != fault-free %v", zeroRes.SuccessRate, base)
	}
	if zeroRes.DegradedRate != 0 {
		t.Errorf("zero-churn degraded rate %v, want 0", zeroRes.DegradedRate)
	}
}

func TestLookupFaultyDeterministicSchedules(t *testing.T) {
	tab := faultyTable(t, 400)
	run := func() *FaultEvalResult {
		m, err := faults.New(tab.attack.Combined, faults.Config{
			Churn: 0.2, MsgDrop: 0.1, LatencyMean: 2, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := tab.EvaluateUnderFaults(200, 7, m, FaultConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("identical fault seeds gave %+v vs %+v", a, b)
	}
}

func TestLookupSuccessDegradesGracefullyWithChurn(t *testing.T) {
	tab := faultyTable(t, 600)
	prev := 1.1
	var at30 float64
	for _, churn := range []float64{0, 0.1, 0.2, 0.3} {
		m, err := faults.New(tab.attack.Combined, faults.Config{Churn: churn, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		r, err := tab.EvaluateUnderFaults(300, 11, m, FaultConfig{})
		if err != nil {
			t.Fatal(err)
		}
		// Graceful: success may fall with churn but never cliffs; allow
		// small sampling noise in the monotonicity check.
		if r.SuccessRate > prev+0.05 {
			t.Errorf("success rose from %v to %v as churn grew to %v", prev, r.SuccessRate, churn)
		}
		prev = r.SuccessRate
		if churn == 0.3 {
			at30 = r.SuccessRate
		}
		if churn > 0 && r.DegradedRate == 0 {
			t.Errorf("churn %v produced no degraded lookups", churn)
		}
	}
	if at30 < 0.3 {
		t.Errorf("success at 30%% churn = %v — cliff, not graceful degradation", at30)
	}
}

func TestLookupFaultyTimeoutsAndBackoffAccounting(t *testing.T) {
	tab := faultyTable(t, 400)
	m, err := faults.New(tab.attack.Combined, faults.Config{MsgDrop: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := FaultConfig{Timeout: 10, BackoffBase: 2, MaxRetries: 4}
	sawTimeout := false
	for v := graph.NodeID(0); v < 80; v++ {
		r, err := tab.LookupFaulty(v, KeyOf(v), m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Queries > 4 {
			t.Fatalf("lookup made %d queries with MaxRetries=4", r.Queries)
		}
		if r.Timeouts > 0 {
			sawTimeout = true
			if !r.Degraded {
				t.Fatal("lookup with timeouts not reported degraded")
			}
			// Each timeout costs at least Timeout + backoff ticks.
			if r.Latency < r.Timeouts*cfg.Timeout {
				t.Fatalf("latency %d below timeout cost of %d timeouts", r.Latency, r.Timeouts)
			}
		}
	}
	if !sawTimeout {
		t.Error("50% message drop produced no timeouts in 80 lookups")
	}
}

func TestLookupFaultyValidation(t *testing.T) {
	tab := faultyTable(t, 200)
	if _, err := tab.LookupFaulty(-1, 0, nil, FaultConfig{}); err == nil {
		t.Error("LookupFaulty(bad origin): want error")
	}
	for _, cfg := range []FaultConfig{{Timeout: -1}, {MaxRetries: -1}, {BackoffBase: -1}} {
		if _, err := tab.LookupFaulty(0, 0, nil, cfg); err == nil {
			t.Errorf("LookupFaulty(%+v): want error", cfg)
		}
	}
	if _, err := tab.EvaluateUnderFaults(0, 1, nil, FaultConfig{}); err == nil {
		t.Error("EvaluateUnderFaults(0 trials): want error")
	}
	// An origin that churned away cannot originate lookups.
	m, err := faults.New(tab.attack.Combined, faults.Config{Churn: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var down graph.NodeID = -1
	for v := graph.NodeID(0); int(v) < tab.attack.Combined.NumNodes(); v++ {
		if !m.Alive(v) {
			down = v
			break
		}
	}
	if down >= 0 {
		if _, err := tab.LookupFaulty(down, 0, m, FaultConfig{}); err == nil {
			t.Error("LookupFaulty(down origin): want error")
		}
	}
}
