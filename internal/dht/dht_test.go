package dht

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

func buildOn(t *testing.T, honest *graph.Graph, sybils, attackEdges int, cfg Config) *Table {
	t.Helper()
	a, err := sybil.Inject(honest, sybil.AttackConfig{
		SybilNodes: sybils, AttackEdges: attackEdges, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestKeyOfDeterministicDistinct(t *testing.T) {
	seen := map[Key]graph.NodeID{}
	for v := graph.NodeID(0); v < 10000; v++ {
		k := KeyOf(v)
		if k != KeyOf(v) {
			t.Fatalf("KeyOf(%d) not deterministic", v)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("KeyOf collision: %d and %d", prev, v)
		}
		seen[k] = v
	}
}

func TestRingDistanceWraps(t *testing.T) {
	if d := ringDistance(10, 15); d != 5 {
		t.Errorf("ringDistance(10,15) = %d, want 5", d)
	}
	if d := ringDistance(15, 10); d != 1<<64-5 {
		t.Errorf("ringDistance(15,10) = %d, want 2^64-5", d)
	}
	if d := ringDistance(7, 7); d != 0 {
		t.Errorf("ringDistance(x,x) = %d, want 0", d)
	}
}

func TestSliceAfter(t *testing.T) {
	recs := []record{{key: 10}, {key: 20}, {key: 30}, {key: 40}}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	got := sliceAfter(recs, 15, 2)
	if len(got) != 2 || got[0].key != 20 || got[1].key != 30 {
		t.Errorf("sliceAfter(15,2) = %v", got)
	}
	// Wraparound: from beyond the largest key.
	got = sliceAfter(recs, 45, 2)
	if len(got) != 2 || got[0].key != 10 || got[1].key != 20 {
		t.Errorf("sliceAfter(45,2) = %v", got)
	}
	if got := sliceAfter(nil, 0, 3); got != nil {
		t.Errorf("sliceAfter(nil) = %v", got)
	}
}

func TestLookupSucceedsOnFastMixer(t *testing.T) {
	honest, err := gen.BarabasiAlbert(600, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab := buildOn(t, honest, 60, 3, Config{Seed: 1})
	rate, err := tab.Evaluate(300, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.7 {
		t.Errorf("lookup success = %v on a fast mixer, want >= 0.7", rate)
	}
}

func TestLookupDegradesWithAttackEdges(t *testing.T) {
	honest, err := gen.BarabasiAlbert(500, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	light := buildOn(t, honest, 400, 4, Config{Seed: 1})
	heavy := buildOn(t, honest, 400, 400, Config{Seed: 1})
	lightRate, err := light.Evaluate(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	heavyRate, err := heavy.Evaluate(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if heavyRate >= lightRate {
		t.Errorf("success under heavy attack %v >= light attack %v", heavyRate, lightRate)
	}
}

func TestLookupWorseOnSlowMixer(t *testing.T) {
	// The paper's warning applied to the DHT: with w below the real
	// mixing time, samples are not stationary and lookups suffer.
	fast, err := gen.BarabasiAlbert(600, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 10, CommunitySize: 60, Attach: 4, Bridges: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 1, WalkLength: 10}
	fastTab := buildOn(t, fast, 60, 3, cfg)
	slowTab := buildOn(t, slow, 60, 3, cfg)
	fastRate, err := fastTab.Evaluate(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	slowRate, err := slowTab.Evaluate(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if slowRate >= fastRate {
		t.Errorf("slow-mixer success %v >= fast-mixer %v", slowRate, fastRate)
	}
}

func TestBuildValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 10, AttackEdges: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Fingers: -1}, {Successors: -1}, {WalkLength: -1}, {Retries: -1},
	} {
		if _, err := Build(a, cfg); err == nil {
			t.Errorf("Build(%+v): want error", cfg)
		}
	}
}

func TestLookupValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := buildOn(t, honest, 10, 2, Config{Seed: 1})
	rng := rand.New(rand.NewSource(1))
	if _, err := tab.Lookup(9999, 0, rng); err == nil {
		t.Error("Lookup(bad origin): want error")
	}
	if _, err := tab.Evaluate(0, 1); err == nil {
		t.Error("Evaluate(0 trials): want error")
	}
}

func TestLookupSelfRecordAlwaysServed(t *testing.T) {
	// A node's own record is in its own successor table, so a lookup
	// whose best finger is the target itself must succeed.
	honest, err := gen.BarabasiAlbert(200, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	tab := buildOn(t, honest, 20, 2, Config{Seed: 2})
	rng := rand.New(rand.NewSource(3))
	found := 0
	for v := graph.NodeID(0); v < 50; v++ {
		res, err := tab.Lookup(v, KeyOf(v), rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			found++
		}
		if res.Queries < 1 {
			t.Errorf("lookup made %d queries", res.Queries)
		}
	}
	if found < 35 {
		t.Errorf("self-adjacent lookups found %d/50, want >= 35", found)
	}
}
