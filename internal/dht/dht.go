// Package dht implements a simplified Whānau-style Sybil-proof
// distributed hash table (Lesniewski-Laas & Kaashoek, NSDI 2010) — the
// "Sybil-proof DHT" application of §I–II of the paper whose correctness
// rests on the fast-mixing property the measurement suite quantifies.
//
// Every node samples fingers and successor records by taking random
// walks of length w on the social graph: if w exceeds the mixing time,
// finger samples are ~stationary, and because only a bounded number of
// walks escape through the g attack edges, most fingers of honest nodes
// are honest. A lookup for a key asks the finger nearest the key (on the
// key ring) for a matching record among its successors, retrying across
// independent fingers. Slow mixing breaks the uniformity of the samples,
// which is exactly the failure mode the paper warns these systems about.
package dht

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/walk"
)

// Key is a position on the DHT ring.
type Key uint64

// KeyOf derives the (honest) record key a node publishes: a fixed hash
// of its identifier, so tests and lookups are deterministic.
func KeyOf(v graph.NodeID) Key {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return Key(x)
}

// ringDistance is the clockwise distance from a to b.
func ringDistance(a, b Key) uint64 {
	return uint64(b - a) // wraparound is exactly what uint64 subtraction does
}

// Config parameterizes table construction.
type Config struct {
	// Fingers is the number of random-walk finger samples per node.
	// Defaults to 2·ceil(sqrt(n)).
	Fingers int
	// Successors is the number of successor records each node collects.
	// Defaults to ceil(sqrt(n)).
	Successors int
	// WalkLength is the sampling walk length; it should be at least the
	// graph's mixing time. Defaults to 10.
	WalkLength int
	// Retries is the number of independent fingers a lookup tries.
	// Defaults to 6.
	Retries int
	// Seed makes construction deterministic.
	Seed int64
}

func (c *Config) fill(n int) error {
	root := 1
	for root*root < n {
		root++
	}
	if c.Fingers == 0 {
		c.Fingers = 2 * root
	}
	if c.Fingers < 1 {
		return fmt.Errorf("dht: fingers %d must be >= 1", c.Fingers)
	}
	if c.Successors == 0 {
		c.Successors = root
	}
	if c.Successors < 1 {
		return fmt.Errorf("dht: successors %d must be >= 1", c.Successors)
	}
	if c.WalkLength == 0 {
		c.WalkLength = 10
	}
	if c.WalkLength < 1 {
		return fmt.Errorf("dht: walk length %d must be >= 1", c.WalkLength)
	}
	if c.Retries == 0 {
		c.Retries = 6
	}
	if c.Retries < 1 {
		return fmt.Errorf("dht: retries %d must be >= 1", c.Retries)
	}
	return nil
}

// record is a (key, owner) pair stored in successor tables.
type record struct {
	key   Key
	owner graph.NodeID
}

// finger is a sampled routing entry.
type finger struct {
	node graph.NodeID
	id   Key
}

// Table is the constructed DHT state over an attack instance.
type Table struct {
	attack *sybil.Attack
	cfg    Config
	// fingers[v] is v's finger list sorted by id.
	fingers [][]finger
	// successors[v] holds the records v serves, sorted by key.
	successors [][]record
}

// Build constructs routing state for every node of the combined graph
// with Whānau's two-phase setup:
//
//  1. Every node samples a database of records by random walks (each
//     endpoint contributes its own record).
//  2. Every node assembles its successor table by sampling nodes again
//     and collecting, from each sampled node's database, the few records
//     that most closely follow its own ID — so the successor table
//     aggregates coverage across ~√n independent databases, which is
//     what makes the interval after the node's ID densely covered.
//
// Sybil nodes participate in the walks but behave adversarially: their
// databases contribute nothing (phase 2 skips them) and, at lookup time,
// sybil fingers withhold every honest record.
func Build(a *sybil.Attack, cfg Config) (*Table, error) {
	g := a.Combined
	n := g.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("dht: graph too small (%d nodes)", n)
	}
	if err := cfg.fill(n); err != nil {
		return nil, err
	}
	t := &Table{
		attack:     a,
		cfg:        cfg,
		fingers:    make([][]finger, n),
		successors: make([][]record, n),
	}
	w := walk.NewWalker(g, cfg.Seed)

	// Phase 1: databases. db[v] is sorted by key.
	db := make([][]record, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		if g.Degree(v) == 0 {
			continue
		}
		recs := make([]record, 0, cfg.Successors+1)
		for i := 0; i < cfg.Successors; i++ {
			end, err := w.Endpoint(v, cfg.WalkLength)
			if err != nil {
				return nil, fmt.Errorf("dht: db walk from %d: %w", v, err)
			}
			recs = append(recs, record{key: KeyOf(end), owner: end})
		}
		recs = append(recs, record{key: KeyOf(v), owner: v})
		sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
		db[v] = recs
	}

	// Phase 2: fingers and aggregated successor tables.
	for v := graph.NodeID(0); int(v) < n; v++ {
		if g.Degree(v) == 0 {
			continue
		}
		fs := make([]finger, 0, cfg.Fingers)
		for i := 0; i < cfg.Fingers; i++ {
			end, err := w.Endpoint(v, cfg.WalkLength)
			if err != nil {
				return nil, fmt.Errorf("dht: finger walk from %d: %w", v, err)
			}
			fs = append(fs, finger{node: end, id: KeyOf(end)})
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i].id < fs[j].id })
		t.fingers[v] = fs

		own := KeyOf(v)
		var succ []record
		for i := 0; i < cfg.Successors; i++ {
			end, err := w.Endpoint(v, cfg.WalkLength)
			if err != nil {
				return nil, fmt.Errorf("dht: successor walk from %d: %w", v, err)
			}
			if !a.IsHonest(end) {
				continue // adversarial db: contributes nothing
			}
			succ = append(succ, sliceAfter(db[end], own, 3)...)
		}
		succ = append(succ, record{key: own, owner: v})
		sort.Slice(succ, func(i, j int) bool { return succ[i].key < succ[j].key })
		// Deduplicate identical records.
		uniq := succ[:0]
		for i, r := range succ {
			if i == 0 || r != succ[i-1] {
				uniq = append(uniq, r)
			}
		}
		t.successors[v] = uniq
	}
	return t, nil
}

// sliceAfter returns up to k records of a key-sorted database whose keys
// most closely follow `from` on the ring (wrapping around).
func sliceAfter(recs []record, from Key, k int) []record {
	if len(recs) == 0 {
		return nil
	}
	i := sort.Search(len(recs), func(i int) bool { return recs[i].key >= from })
	out := make([]record, 0, k)
	for j := 0; j < len(recs) && len(out) < k; j++ {
		out = append(out, recs[(i+j)%len(recs)])
	}
	return out
}

// LookupResult describes one lookup.
type LookupResult struct {
	// Found reports whether the correct record was returned.
	Found bool
	// Queries is the number of fingers asked.
	Queries int
}

// Lookup performs a lookup for target's record starting from origin. It
// tries up to cfg.Retries fingers whose IDs precede the key on the ring,
// nearest first; sybil fingers never return honest records (worst-case
// adversary), and honest fingers answer from their successor tables.
func (t *Table) Lookup(origin graph.NodeID, key Key, rng *rand.Rand) (LookupResult, error) {
	g := t.attack.Combined
	if !g.Valid(origin) {
		return LookupResult{}, fmt.Errorf("dht: origin %d out of range", origin)
	}
	fs := t.fingers[origin]
	if len(fs) == 0 {
		return LookupResult{}, fmt.Errorf("dht: origin %d has no fingers", origin)
	}
	res := LookupResult{}
	// Candidate fingers ordered by ring proximity of their ID *before*
	// the key (Whānau queries the finger best positioned to hold the
	// key among its successors).
	order := fingerOrder(fs, key)
	tries := t.cfg.Retries
	if tries > len(order) {
		tries = len(order)
	}
	for i := 0; i < tries; i++ {
		f := fs[order[i]]
		res.Queries++
		if !t.attack.IsHonest(f.node) {
			continue // adversarial finger: withholds the record
		}
		for _, r := range t.successors[f.node] {
			if r.key == key && t.attack.IsHonest(r.owner) {
				res.Found = true
				return res, nil
			}
		}
	}
	_ = rng
	return res, nil
}

// Evaluate runs lookups from sampled honest origins to sampled honest
// targets and returns the success rate.
func (t *Table) Evaluate(trials int, seed int64) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("dht: trials %d must be >= 1", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	hn := t.attack.HonestNodes
	success := 0
	done := 0
	for done < trials {
		origin := graph.NodeID(rng.Intn(hn))
		target := graph.NodeID(rng.Intn(hn))
		if t.attack.Combined.Degree(origin) == 0 || t.attack.Combined.Degree(target) == 0 {
			continue
		}
		res, err := t.Lookup(origin, KeyOf(target), rng)
		if err != nil {
			return 0, err
		}
		if res.Found {
			success++
		}
		done++
	}
	return float64(success) / float64(trials), nil
}
