package community

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func BenchmarkLabelPropagation(b *testing.B) {
	g, _, err := gen.SBM(gen.SBMConfig{
		BlockSizes: []int{500, 500, 500, 500}, PIn: 0.05, POut: 0.001, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LabelPropagation(g, 50, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepCut(b *testing.B) {
	g, err := gen.BarabasiAlbert(5000, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	score := make([]float64, g.NumNodes())
	for v := range score {
		score[v] = float64(g.Degree(graph.NodeID(v)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SweepCut(g, score, 1, g.NumNodes()-1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModularity(b *testing.B) {
	g, _, err := gen.SBM(gen.SBMConfig{
		BlockSizes: []int{500, 500, 500, 500}, PIn: 0.05, POut: 0.001, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	labels, err := LabelPropagation(g, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Modularity(g, labels); err != nil {
			b.Fatal(err)
		}
	}
}
