// Package community provides the community-structure primitives behind
// §II's discussion of Viswanath et al. (SIGCOMM 2010): social-network
// Sybil defenses implicitly rank nodes by how well connected they are to
// a trusted node, so community detection can stand in for them — and,
// conversely, community structure (the cause of slow mixing) is what
// breaks them. The package offers label propagation for whole-graph
// partitioning, plus the conductance and modularity measures used to
// score cuts and partitions.
package community

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/trustnet/trustnet/internal/graph"
)

// LabelPropagation partitions the graph with asynchronous label
// propagation: every node repeatedly adopts the most frequent label among
// its neighbors (ties broken by smallest label) until no label changes or
// maxIter sweeps pass. Labels are compacted to 0..k-1. Deterministic
// given the seed.
func LabelPropagation(g graph.View, maxIter int, seed int64) ([]int, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("community: empty graph")
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("community: maxIter %d must be >= 1", maxIter)
	}
	labels := make([]int, n)
	for v := range labels {
		labels[v] = v
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[int]int)
	nbr := graph.NewAdj(g)
	for iter := 0; iter < maxIter; iter++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := false
		for _, vi := range order {
			v := graph.NodeID(vi)
			ns := nbr.Neighbors(v)
			if len(ns) == 0 {
				continue
			}
			clear(counts)
			for _, u := range ns {
				counts[labels[u]]++
			}
			best, bestCnt := labels[v], 0
			for lbl, cnt := range counts {
				if cnt > bestCnt || (cnt == bestCnt && lbl < best) {
					best, bestCnt = lbl, cnt
				}
			}
			if best != labels[v] {
				labels[v] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	compact(labels)
	return labels, nil
}

// compact renumbers labels to 0..k-1 in order of first appearance.
func compact(labels []int) {
	remap := make(map[int]int)
	for i, l := range labels {
		nl, ok := remap[l]
		if !ok {
			nl = len(remap)
			remap[l] = nl
		}
		labels[i] = nl
	}
}

// Sizes returns the size of each community in a compacted labeling.
func Sizes(labels []int) []int {
	maxL := -1
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	sizes := make([]int, maxL+1)
	for _, l := range labels {
		sizes[l]++
	}
	return sizes
}

// Modularity returns the Newman modularity Q of the partition: the
// fraction of edges inside communities minus the expectation under the
// degree-preserving null model. Q is in [-1/2, 1).
func Modularity(g graph.View, labels []int) (float64, error) {
	n := g.NumNodes()
	if len(labels) != n {
		return 0, fmt.Errorf("community: labels length %d, graph has %d nodes", len(labels), n)
	}
	m2 := float64(2 * g.NumEdges())
	if m2 == 0 {
		return 0, errors.New("community: modularity undefined for edgeless graph")
	}
	// Per-community internal edge count and degree volume.
	internal := make(map[int]float64)
	volume := make(map[int]float64)
	nbr := graph.NewAdj(g)
	for v := graph.NodeID(0); int(v) < n; v++ {
		lv := labels[v]
		volume[lv] += float64(g.Degree(v))
		for _, u := range nbr.Neighbors(v) {
			if u > v && labels[u] == lv {
				internal[lv]++
			}
		}
	}
	q := 0.0
	for lbl, vol := range volume {
		q += 2*internal[lbl]/m2 - (vol/m2)*(vol/m2)
	}
	return q, nil
}

// Conductance returns φ(S) = cut(S, S̄) / min(vol(S), vol(S̄)) for the
// node set marked true in member. Returns an error when either side has
// zero volume (the quantity is undefined there).
func Conductance(g graph.View, member []bool) (float64, error) {
	n := g.NumNodes()
	if len(member) != n {
		return 0, fmt.Errorf("community: member length %d, graph has %d nodes", len(member), n)
	}
	var cut, volIn, volOut float64
	nbr := graph.NewAdj(g)
	for v := graph.NodeID(0); int(v) < n; v++ {
		d := float64(g.Degree(v))
		if member[v] {
			volIn += d
		} else {
			volOut += d
		}
		if !member[v] {
			continue
		}
		for _, u := range nbr.Neighbors(v) {
			if !member[u] {
				cut++
			}
		}
	}
	minVol := volIn
	if volOut < minVol {
		minVol = volOut
	}
	if minVol == 0 {
		return 0, errors.New("community: conductance undefined (one side has zero volume)")
	}
	return cut / minVol, nil
}

// SweepCut orders nodes by a score (descending) and returns, over all
// prefixes of the ordering between minSize and maxSize that have
// nonzero complement volume, the prefix with minimum conductance. It
// returns the membership vector of the best prefix and its conductance.
// This is the ranking-plus-cutoff procedure Viswanath et al. show every
// random-walk Sybil defense reduces to.
func SweepCut(g graph.View, score []float64, minSize, maxSize int) ([]bool, float64, error) {
	n := g.NumNodes()
	if len(score) != n {
		return nil, 0, fmt.Errorf("community: score length %d, graph has %d nodes", len(score), n)
	}
	if minSize < 1 || maxSize < minSize || maxSize > n {
		return nil, 0, fmt.Errorf("community: sweep bounds [%d,%d] invalid for n=%d", minSize, maxSize, n)
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	// Stable sort by descending score, then ascending ID.
	sortByScore(order, score)

	totalVol := float64(2 * g.NumEdges())
	member := make([]bool, n)
	nbr := graph.NewAdj(g)
	var cut, volIn float64
	bestPhi := -1.0
	bestSize := 0
	for i, v := range order {
		// Adding v: edges to current members stop being cut; edges to
		// non-members start being cut.
		d := float64(g.Degree(v))
		for _, u := range nbr.Neighbors(v) {
			if member[u] {
				cut--
			} else {
				cut++
			}
		}
		member[v] = true
		volIn += d
		size := i + 1
		if size < minSize || size > maxSize {
			continue
		}
		volOut := totalVol - volIn
		minVol := volIn
		if volOut < minVol {
			minVol = volOut
		}
		if minVol <= 0 {
			continue
		}
		phi := cut / minVol
		if bestPhi < 0 || phi < bestPhi {
			bestPhi = phi
			bestSize = size
		}
	}
	if bestPhi < 0 {
		return nil, 0, errors.New("community: no feasible sweep prefix")
	}
	out := make([]bool, n)
	for _, v := range order[:bestSize] {
		out[v] = true
	}
	return out, bestPhi, nil
}

// sortByScore sorts node IDs by descending score with ascending-ID ties,
// using a simple merge sort to stay stable without pulling in sort.Slice
// closures per comparison (hot path for large sweeps).
func sortByScore(order []graph.NodeID, score []float64) {
	buf := make([]graph.NodeID, len(order))
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		rec(lo, mid)
		rec(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			a, b := order[i], order[j]
			if score[a] > score[b] || (score[a] == score[b] && a <= b) {
				buf[k] = a
				i++
			} else {
				buf[k] = b
				j++
			}
			k++
		}
		for i < mid {
			buf[k] = order[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = order[j]
			j++
			k++
		}
		copy(order[lo:hi], buf[lo:hi])
	}
	rec(0, len(order))
}
