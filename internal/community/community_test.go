package community

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func twoCliquesBridged(t *testing.T) *graph.Graph {
	t.Helper()
	// Two K6s joined by a single edge.
	b := graph.NewBuilder(12)
	for base := 0; base < 12; base += 6 {
		for i := base; i < base+6; i++ {
			for j := i + 1; j < base+6; j++ {
				if err := b.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g := twoCliquesBridged(t)
	labels, err := LabelPropagation(g, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Each clique must be internally uniform.
	for i := 1; i < 6; i++ {
		if labels[i] != labels[0] {
			t.Errorf("clique A not uniform: labels[%d]=%d labels[0]=%d", i, labels[i], labels[0])
		}
		if labels[6+i] != labels[6] {
			t.Errorf("clique B not uniform: labels[%d]=%d labels[6]=%d", 6+i, labels[6+i], labels[6])
		}
	}
	if labels[0] == labels[6] {
		t.Error("two cliques merged into one community")
	}
	sizes := Sizes(labels)
	if len(sizes) != 2 || sizes[0] != 6 || sizes[1] != 6 {
		t.Errorf("sizes = %v, want [6 6]", sizes)
	}
}

func TestLabelPropagationSBM(t *testing.T) {
	g, truth, err := gen.SBM(gen.SBMConfig{
		BlockSizes: []int{60, 60, 60}, PIn: 0.4, POut: 0.004, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := LabelPropagation(g, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Agreement up to relabeling: most pairs in the same true block share
	// a label, most pairs across blocks do not.
	agree, total := 0, 0
	for i := 0; i < len(truth); i += 7 {
		for j := i + 1; j < len(truth); j += 7 {
			same := truth[i] == truth[j]
			pred := labels[i] == labels[j]
			if same == pred {
				agree++
			}
			total++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Errorf("pairwise agreement = %v, want >= 0.9", frac)
	}
}

func TestLabelPropagationValidation(t *testing.T) {
	var empty graph.Graph
	if _, err := LabelPropagation(&empty, 10, 1); err == nil {
		t.Error("LabelPropagation(empty): want error")
	}
	g, err := gen.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LabelPropagation(g, 0, 1); err == nil {
		t.Error("LabelPropagation(maxIter=0): want error")
	}
}

func TestModularity(t *testing.T) {
	g := twoCliquesBridged(t)
	good := make([]int, 12)
	for i := 6; i < 12; i++ {
		good[i] = 1
	}
	qGood, err := Modularity(g, good)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, 12) // everything in one community
	qAll, err := Modularity(g, all)
	if err != nil {
		t.Fatal(err)
	}
	if qGood <= qAll {
		t.Errorf("modularity of true split %v <= trivial %v", qGood, qAll)
	}
	if math.Abs(qAll) > 1e-12 {
		t.Errorf("single-community modularity = %v, want 0", qAll)
	}
	if qGood < 0.3 {
		t.Errorf("true split modularity = %v, want >= 0.3", qGood)
	}
	if _, err := Modularity(g, []int{0}); err == nil {
		t.Error("Modularity(bad labels): want error")
	}
	var empty graph.Graph
	if _, err := Modularity(&empty, nil); err == nil {
		t.Error("Modularity(empty): want error")
	}
}

func TestConductance(t *testing.T) {
	g := twoCliquesBridged(t)
	member := make([]bool, 12)
	for i := 0; i < 6; i++ {
		member[i] = true
	}
	phi, err := Conductance(g, member)
	if err != nil {
		t.Fatal(err)
	}
	// cut = 1 (the bridge); vol of one side = 6*5 + 1 = 31.
	if want := 1.0 / 31; math.Abs(phi-want) > 1e-12 {
		t.Errorf("conductance = %v, want %v", phi, want)
	}
	if _, err := Conductance(g, make([]bool, 12)); err == nil {
		t.Error("Conductance(empty set): want error")
	}
	allIn := make([]bool, 12)
	for i := range allIn {
		allIn[i] = true
	}
	if _, err := Conductance(g, allIn); err == nil {
		t.Error("Conductance(full set): want error")
	}
	if _, err := Conductance(g, []bool{true}); err == nil {
		t.Error("Conductance(bad length): want error")
	}
}

func TestSweepCutFindsBottleneck(t *testing.T) {
	g := twoCliquesBridged(t)
	// Score the first clique higher; the sweep must cut at the bridge.
	score := make([]float64, 12)
	for i := 0; i < 6; i++ {
		score[i] = 1
	}
	member, phi, err := SweepCut(g, score, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if !member[i] {
			t.Errorf("member[%d] = false, want in cut", i)
		}
	}
	for i := 6; i < 12; i++ {
		if member[i] {
			t.Errorf("member[%d] = true, want out of cut", i)
		}
	}
	if want := 1.0 / 31; math.Abs(phi-want) > 1e-12 {
		t.Errorf("phi = %v, want %v", phi, want)
	}
}

func TestSweepCutValidation(t *testing.T) {
	g := twoCliquesBridged(t)
	score := make([]float64, 12)
	if _, _, err := SweepCut(g, score[:3], 1, 11); err == nil {
		t.Error("SweepCut(bad score length): want error")
	}
	if _, _, err := SweepCut(g, score, 0, 11); err == nil {
		t.Error("SweepCut(minSize=0): want error")
	}
	if _, _, err := SweepCut(g, score, 5, 3); err == nil {
		t.Error("SweepCut(max<min): want error")
	}
	if _, _, err := SweepCut(g, score, 1, 99); err == nil {
		t.Error("SweepCut(max>n): want error")
	}
}

// Property: SweepCut's reported conductance matches Conductance() on the
// returned membership, and the sweep cut at full range is never worse
// than the best single community of label propagation.
func TestSweepConductanceConsistentQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdgeSafe(graph.NodeID(v), graph.NodeID(rng.Intn(v)))
		}
		for i := 0; i < n; i++ {
			b.AddEdgeSafe(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.Build()
		score := make([]float64, n)
		for i := range score {
			score[i] = rng.Float64()
		}
		member, phi, err := SweepCut(g, score, 1, n-1)
		if err != nil {
			return false
		}
		direct, err := Conductance(g, member)
		if err != nil {
			return false
		}
		return math.Abs(direct-phi) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSizesCompact(t *testing.T) {
	labels := []int{0, 0, 1, 2, 1}
	sizes := Sizes(labels)
	want := []int{2, 2, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("sizes[%d] = %d, want %d", i, sizes[i], want[i])
		}
	}
}
