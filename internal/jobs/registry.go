package jobs

import (
	"fmt"
	"strings"
)

// Registry holds the measurement battery: every registered Job by name,
// in registration order, resolvable case-insensitively for -run and
// enumerable for -list.
type Registry struct {
	order []string
	byKey map[string]Job
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]Job)}
}

// Register adds j under its name. Registering a second job under the
// same (case-insensitive) name is a programming error and fails.
func (r *Registry) Register(j Job) error {
	key := strings.ToLower(j.Name())
	if key == "" {
		return fmt.Errorf("jobs: register a job without a name")
	}
	if _, dup := r.byKey[key]; dup {
		return fmt.Errorf("jobs: duplicate job %q", j.Name())
	}
	r.byKey[key] = j
	r.order = append(r.order, j.Name())
	return nil
}

// Lookup resolves a job name case-insensitively. An unknown name errors
// with the nearest registered name as a suggestion.
func (r *Registry) Lookup(name string) (Job, error) {
	if j, ok := r.byKey[strings.ToLower(name)]; ok {
		return j, nil
	}
	if near := r.nearest(name); near != "" {
		return nil, fmt.Errorf("unknown experiment %q (did you mean %q?)", name, near)
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

// Names returns the registered job names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Jobs returns the registered jobs in registration order.
func (r *Registry) Jobs() []Job {
	out := make([]Job, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byKey[strings.ToLower(name)])
	}
	return out
}

// nearest returns the registered name with the smallest edit distance
// to name, or "" when the registry is empty or nothing is plausibly
// close (distance greater than half the query length, floored at 2).
func (r *Registry) nearest(name string) string {
	lname := strings.ToLower(name)
	best, bestDist := "", -1
	for _, candidate := range r.order {
		d := editDistance(lname, strings.ToLower(candidate))
		if bestDist < 0 || d < bestDist {
			best, bestDist = candidate, d
		}
	}
	limit := len(lname) / 2
	if limit < 2 {
		limit = 2
	}
	if bestDist < 0 || bestDist > limit {
		return ""
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, two rows of
// the classic dynamic program.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// min3 returns the smallest of its three arguments.
func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
