package jobs

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/trustnet/trustnet/internal/report"
)

// Builder accumulates one job run's output into an Artifact: tables and
// free-form lines into the replayable summary, rendered tables and CSV
// series into output files. It replaces the direct os.Stdout rendering
// and report.Save* calls of the historical runner wrappers, so a job's
// entire effect is captured for content-addressed replay.
type Builder struct {
	summary strings.Builder
	files   []File
	partial bool
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Printf appends a formatted line-fragment to the summary.
func (b *Builder) Printf(format string, args ...any) {
	fmt.Fprintf(&b.summary, format, args...)
}

// Table renders t into the summary, exactly as it would print to
// stdout.
func (b *Builder) Table(t *report.Table) error {
	return t.Render(&b.summary)
}

// AddFile records an output file with the given output-relative path.
func (b *Builder) AddFile(path string, data []byte) {
	b.files = append(b.files, File{Path: path, Data: data})
}

// SaveTable records the rendered table as an output file, mirroring
// report.SaveTable byte-for-byte.
func (b *Builder) SaveTable(path string, t *report.Table) error {
	var buf bytes.Buffer
	if err := t.Render(&buf); err != nil {
		return err
	}
	b.AddFile(path, buf.Bytes())
	return nil
}

// SaveCSV records the series in report.WriteCSV's long form as an
// output file, mirroring report.SaveCSV byte-for-byte.
func (b *Builder) SaveCSV(path string, series []report.Series) error {
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf, series); err != nil {
		return err
	}
	b.AddFile(path, buf.Bytes())
	return nil
}

// MarkPartial flags the artifact as a best-effort partial result: it is
// still written to disk, but never cached.
func (b *Builder) MarkPartial() { b.partial = true }

// Partial reports whether MarkPartial was called.
func (b *Builder) Partial() bool { return b.partial }

// Artifact returns the accumulated artifact. The Runner fills in the
// job name and fingerprints.
func (b *Builder) Artifact() *Artifact {
	return &Artifact{
		Summary: b.summary.String(),
		Files:   append([]File(nil), b.files...),
		Partial: b.partial,
	}
}
