// Package jobs is the typed measurement-job layer: it turns the paper's
// measurement battery (mixing time, expansion, coreness, Sybil
// acceptance, and every derived table and figure) into first-class,
// addressable jobs instead of one-shot script runs.
//
// A Job couples a name, a fingerprint of its typed configuration, and a
// Run function producing an Artifact — the complete, replayable output
// of one measurement (rendered summary plus every file it would write).
// Jobs register into a Registry, which resolves -run names (with
// nearest-name suggestions) and enumerates the battery for -list. A
// content-addressed Store under out/cache/ keys each artifact by
// (graph fingerprint, config fingerprint, schema version): a cache hit
// replays the stored artifact byte-identically without executing any
// measurement kernel, a miss runs the job and persists the result. The
// Runner glues the three together and exposes hit/miss/corruption
// counters through internal/obs, so a replayed run is verifiable as
// zero-kernel-work from its metrics window.
//
// The fingerprint contract: the config half of the key is
// ConfigFingerprint over the job's typed config struct (canonical JSON,
// FNV-1a); the graph half is the canonical graph.Fingerprint of the
// data substrate (or the dataset-registry digest for synthetic runs);
// SchemaVersion is baked into both the key and the stored envelope, so
// a format change invalidates every cached artifact at once. Worker
// count is deliberately not part of any fingerprint: the repo's
// determinism contract (results bit-identical at any worker count,
// enforced by the CI equivalence suites) makes artifacts
// worker-independent.
package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"github.com/trustnet/trustnet/internal/resilience"
)

// SchemaVersion versions the artifact envelope and cache key. Bumping
// it orphans (never corrupts) every previously cached artifact.
const SchemaVersion = "trustnet/artifact/v1"

// Job is one addressable measurement: a named unit of work whose
// configuration is fingerprinted into the artifact cache key and whose
// output is a complete, replayable Artifact.
type Job interface {
	// Name is the job's registry name (what -run resolves).
	Name() string
	// Fingerprint digests the job's typed configuration — the config
	// half of the artifact cache key. Equal fingerprints promise equal
	// results on the same graph substrate.
	Fingerprint() string
	// Run executes the measurement. A non-nil Artifact is persisted even
	// alongside an error when it is marked partial (best-effort salvage);
	// a nil Artifact with an error persists nothing.
	Run(ctx context.Context, env Env) (*Artifact, error)
}

// Env is the runtime surrounding a job executes in, distinct from the
// job's own fingerprinted configuration: the identity of the data
// substrate and the resilience plumbing for checkpointed progress.
type Env struct {
	// GraphFingerprint identifies the graph substrate the job measures;
	// the Runner combines it with the job's config fingerprint into the
	// artifact cache key, and jobs key their internal checkpoints by it.
	GraphFingerprint string
	// Ckpt, when non-nil, receives the job's partial-progress
	// checkpoints (per-dataset rows, warm eigenvectors).
	Ckpt *resilience.Store
	// Resume makes jobs consult Ckpt before measuring.
	Resume bool
}

// File is one output file of a job, stored inside the artifact with a
// path relative to the run's output directory.
type File struct {
	// Path is the output-relative destination (e.g. "tableI.txt").
	Path string `json:"path"`
	// Data is the exact file content; replay writes it byte-for-byte.
	Data []byte `json:"data"`
}

// Artifact is the complete output of one job run: the rendered summary
// the runner prints and every file the job produces, addressable by the
// (graph, config, schema) key it was computed under.
type Artifact struct {
	// Schema is SchemaVersion at write time.
	Schema string `json:"schema"`
	// Job is the producing job's registry name.
	Job string `json:"job"`
	// GraphFingerprint and ConfigFingerprint are the two key halves the
	// artifact was computed under.
	GraphFingerprint  string `json:"graph_fingerprint"`
	ConfigFingerprint string `json:"config_fingerprint"`
	// Summary is the job's rendered human-readable report, replayed to
	// stdout verbatim on a cache hit.
	Summary string `json:"summary"`
	// Files are the job's outputs, written under the run's -out
	// directory both on first run and on replay.
	Files []File `json:"files,omitempty"`
	// Partial marks a best-effort run cut short by its deadline. Partial
	// artifacts are written to disk but never cached: the next run must
	// recompute (or resume) rather than replay an incomplete result.
	Partial bool `json:"partial,omitempty"`
	// Digest is the FNV-1a integrity digest over Summary and Files,
	// filled by the Store on save and verified on load, so a corrupted
	// cache entry falls back to recompute instead of replaying garbage.
	Digest string `json:"digest,omitempty"`
}

// ContentDigest returns the FNV-1a digest over the artifact's summary
// and files that Store.Save records and Store.Load verifies.
func (a *Artifact) ContentDigest() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00", a.Summary)
	for _, f := range a.Files {
		fmt.Fprintf(h, "%s\x00", f.Path)
		h.Write(f.Data)
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ConfigFingerprint digests a job's typed config struct into the config
// half of the cache key: canonical JSON (struct field order, so the
// digest is stable across runs and builds) folded through FNV-1a
// together with the schema version. Configs must be plain data; a value
// JSON cannot encode falls back to its %#v rendering.
func ConfigFingerprint(cfg any) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		data = []byte(fmt.Sprintf("%#v", cfg))
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00", SchemaVersion)
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// funcJob adapts a name, a fingerprinted config, and a run closure into
// a Job.
type funcJob struct {
	name string
	fp   string
	run  func(ctx context.Context, env Env) (*Artifact, error)
}

// New returns a Job with the given registry name whose fingerprint is
// ConfigFingerprint(cfg) and whose Run invokes run. cfg is the job's
// typed configuration struct; it is digested once at construction.
func New(name string, cfg any, run func(ctx context.Context, env Env) (*Artifact, error)) Job {
	return &funcJob{name: name, fp: ConfigFingerprint(cfg), run: run}
}

// Name implements Job.
func (j *funcJob) Name() string { return j.name }

// Fingerprint implements Job.
func (j *funcJob) Fingerprint() string { return j.fp }

// Run implements Job.
func (j *funcJob) Run(ctx context.Context, env Env) (*Artifact, error) {
	return j.run(ctx, env)
}
