package jobs

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/resilience"
)

// Observability instruments for job execution. A replayed run shows
// hits with zero executions in its metrics window — the verifiable
// "no kernel ran" contract the cache tests assert. Deduped counts the
// concurrent callers that waited on another execution of the same key
// instead of running the job themselves.
var (
	obsRunExecuted = obs.Default().Counter("jobs.run.executed")
	obsRunDeduped  = obs.Default().Counter("jobs.run.deduped")
	obsCacheHits   = obs.Default().Counter("jobs.cache.hits")
	obsCacheMisses = obs.Default().Counter("jobs.cache.misses")
)

// Runner executes jobs through the artifact cache: a hit replays the
// stored artifact byte-identically (summary to Stdout, files under
// OutDir) without invoking the job; a miss runs the job, emits its
// artifact the same way, and caches complete results.
type Runner struct {
	// Cache is the artifact store; nil disables caching (every run
	// executes).
	Cache *Store
	// Flight, when non-nil, deduplicates concurrent runs of the same
	// (job, graph, config) key across every Runner sharing the group:
	// one caller executes, the rest wait and replay its artifact. nil
	// keeps the historical behavior (concurrent identical calls race).
	Flight *Flight
	// Env is handed to jobs at execution time; Env.GraphFingerprint is
	// also the graph half of every cache key.
	Env Env
	// OutDir is where artifact files are written (on run and on replay).
	OutDir string
	// Stdout receives the CACHED/summary output; nil discards it.
	Stdout io.Writer
}

// Run executes j through the cache, returning whether the result was
// replayed (from a cached artifact, or from a concurrent execution of
// the same key when a Flight is configured). On a miss the job executes
// under the caller's ctx; its artifact (when non-nil) is emitted even
// alongside a partial-salvage error, but only complete, error-free
// artifacts are cached.
func (r *Runner) Run(ctx context.Context, j Job) (cached bool, err error) {
	w := r.Stdout
	if w == nil {
		w = io.Discard
	}
	configFP := j.Fingerprint()
	key := Key(j.Name(), r.Env.GraphFingerprint, configFP)
	if r.Flight == nil {
		_, cached, err = r.execute(ctx, j, w, configFP, key)
		return cached, err
	}
	c, leader := r.Flight.join(key)
	if !leader {
		select {
		case <-c.done:
		case <-ctx.Done():
			return false, ctx.Err()
		}
		obsRunDeduped.Inc()
		if c.art == nil {
			return false, c.err
		}
		fmt.Fprintf(w, "CACHED %s (artifact %s replayed from a concurrent run)\n", j.Name(), key)
		if emitErr := r.emit(w, c.art); emitErr != nil {
			return true, emitErr
		}
		return true, c.err
	}
	// finish must run even when the job panics, or every waiter of the
	// key (and every future caller of it) deadlocks on a flight that
	// never lands. The panic itself still propagates to the caller;
	// waiters see a plain error instead of a replayable artifact.
	var art *Artifact
	landed := false
	defer func() {
		if !landed {
			err = fmt.Errorf("jobs: %s: execution aborted mid-flight", j.Name())
		}
		r.Flight.finish(key, c, art, err)
	}()
	art, cached, err = r.execute(ctx, j, w, configFP, key)
	landed = true
	return cached, err
}

// execute is the single-caller run path: cache probe, job execution,
// artifact emit, cache save. It returns the artifact it emitted (from
// cache or computed) so a Flight leader can hand it to its waiters.
func (r *Runner) execute(ctx context.Context, j Job, w io.Writer, configFP, key string) (*Artifact, bool, error) {
	if r.Cache != nil {
		if a := r.Cache.Load(j.Name(), r.Env.GraphFingerprint, configFP); a != nil {
			obsCacheHits.Inc()
			fmt.Fprintf(w, "CACHED %s (artifact %s replayed byte-identically)\n", j.Name(), key)
			return a, true, r.emit(w, a)
		}
		obsCacheMisses.Inc()
	}
	obsRunExecuted.Inc()
	ctx, span := obs.StartSpan(ctx, "jobs.execute")
	a, err := j.Run(ctx, r.Env)
	span.End()
	if a == nil {
		return nil, false, err
	}
	a.Schema = SchemaVersion
	a.Job = j.Name()
	a.GraphFingerprint = r.Env.GraphFingerprint
	a.ConfigFingerprint = configFP
	if emitErr := r.emit(w, a); emitErr != nil && err == nil {
		err = emitErr
	}
	if err == nil && !a.Partial && r.Cache != nil {
		if saveErr := r.Cache.Save(a); saveErr != nil {
			err = saveErr
		}
	}
	return a, false, err
}

// emit writes the artifact's files under OutDir (atomically, creating
// parent directories) and its summary to w — identical whether the
// artifact was just computed or replayed from cache.
func (r *Runner) emit(w io.Writer, a *Artifact) error {
	for _, f := range a.Files {
		path := filepath.Join(r.OutDir, filepath.FromSlash(f.Path))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("jobs: artifact file %s: %w", f.Path, err)
		}
		if err := resilience.WriteFileAtomic(path, f.Data, 0o644); err != nil {
			return fmt.Errorf("jobs: artifact file %s: %w", f.Path, err)
		}
	}
	if a.Summary != "" {
		if _, err := io.WriteString(w, a.Summary); err != nil {
			return fmt.Errorf("jobs: emit summary: %w", err)
		}
	}
	return nil
}
