package jobs

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/resilience"
)

// Observability instruments for job execution. A replayed run shows
// hits with zero executions in its metrics window — the verifiable
// "no kernel ran" contract the cache tests assert.
var (
	obsRunExecuted = obs.Default().Counter("jobs.run.executed")
	obsCacheHits   = obs.Default().Counter("jobs.cache.hits")
	obsCacheMisses = obs.Default().Counter("jobs.cache.misses")
)

// Runner executes jobs through the artifact cache: a hit replays the
// stored artifact byte-identically (summary to Stdout, files under
// OutDir) without invoking the job; a miss runs the job, emits its
// artifact the same way, and caches complete results.
type Runner struct {
	// Cache is the artifact store; nil disables caching (every run
	// executes).
	Cache *Store
	// Env is handed to jobs at execution time; Env.GraphFingerprint is
	// also the graph half of every cache key.
	Env Env
	// OutDir is where artifact files are written (on run and on replay).
	OutDir string
	// Stdout receives the CACHED/summary output; nil discards it.
	Stdout io.Writer
}

// Run executes j through the cache, returning whether the result was
// replayed from a cached artifact. On a miss the job executes under the
// caller's ctx; its artifact (when non-nil) is emitted even alongside a
// partial-salvage error, but only complete, error-free artifacts are
// cached.
func (r *Runner) Run(ctx context.Context, j Job) (cached bool, err error) {
	w := r.Stdout
	if w == nil {
		w = io.Discard
	}
	configFP := j.Fingerprint()
	if r.Cache != nil {
		if a := r.Cache.Load(j.Name(), r.Env.GraphFingerprint, configFP); a != nil {
			obsCacheHits.Inc()
			fmt.Fprintf(w, "CACHED %s (artifact %s replayed byte-identically)\n",
				j.Name(), Key(j.Name(), r.Env.GraphFingerprint, configFP))
			return true, r.emit(w, a)
		}
		obsCacheMisses.Inc()
	}
	obsRunExecuted.Inc()
	ctx, span := obs.StartSpan(ctx, "jobs.execute")
	a, err := j.Run(ctx, r.Env)
	span.End()
	if a == nil {
		return false, err
	}
	a.Schema = SchemaVersion
	a.Job = j.Name()
	a.GraphFingerprint = r.Env.GraphFingerprint
	a.ConfigFingerprint = configFP
	if emitErr := r.emit(w, a); emitErr != nil && err == nil {
		err = emitErr
	}
	if err == nil && !a.Partial && r.Cache != nil {
		if saveErr := r.Cache.Save(a); saveErr != nil {
			err = saveErr
		}
	}
	return false, err
}

// emit writes the artifact's files under OutDir (atomically, creating
// parent directories) and its summary to w — identical whether the
// artifact was just computed or replayed from cache.
func (r *Runner) emit(w io.Writer, a *Artifact) error {
	for _, f := range a.Files {
		path := filepath.Join(r.OutDir, filepath.FromSlash(f.Path))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("jobs: artifact file %s: %w", f.Path, err)
		}
		if err := resilience.WriteFileAtomic(path, f.Data, 0o644); err != nil {
			return fmt.Errorf("jobs: artifact file %s: %w", f.Path, err)
		}
	}
	if a.Summary != "" {
		if _, err := io.WriteString(w, a.Summary); err != nil {
			return fmt.Errorf("jobs: emit summary: %w", err)
		}
	}
	return nil
}
