package jobs

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/stats"
	"github.com/trustnet/trustnet/internal/walk"
)

// This file is the single home of the measurement-result fingerprints
// the benchmark and equivalence harnesses compare: every variant pair
// (naive vs kernel, rebuild vs view, monolithic vs sharded) digests its
// results here, so "identical" always means the same bits. The helpers
// were previously copy-pasted across the experiments bench files.

// digest is a little-endian FNV-1a accumulator over 64-bit words.
type digest struct {
	h   interface{ Write(p []byte) (int, error) }
	sum func() uint64
	buf [8]byte
}

// newDigest returns a ready FNV-1a digest.
func newDigest() *digest {
	h := fnv.New64a()
	return &digest{h: h, sum: h.Sum64}
}

// putU folds one 64-bit word.
func (d *digest) putU(u uint64) {
	binary.LittleEndian.PutUint64(d.buf[:], u)
	d.h.Write(d.buf[:])
}

// putF folds one float64 at full bit width.
func (d *digest) putF(f float64) { d.putU(math.Float64bits(f)) }

// hex returns the digest as the canonical 16-hex-digit token.
func (d *digest) hex() string { return fmt.Sprintf("%016x", d.sum()) }

// MixingFingerprint digests every float bit of a mixing result: all
// per-source curves, the folded aggregates, and the sampled sources.
func MixingFingerprint(mr *walk.MixingResult) string {
	d := newDigest()
	for _, curve := range mr.Curves {
		for _, v := range curve {
			d.putF(v)
		}
	}
	for _, v := range mr.MeanTVD {
		d.putF(v)
	}
	for _, v := range mr.MaxTVD {
		d.putF(v)
	}
	for _, v := range mr.MinTVD {
		d.putF(v)
	}
	for _, s := range mr.Sources {
		d.putU(uint64(s))
	}
	return d.hex()
}

// ExpansionFingerprint digests an expansion result: both keyed
// summaries (key, count, min, mean, max — every float at full bit
// width), the max eccentricity, and the source count.
func ExpansionFingerprint(er *expansion.Result) string {
	d := newDigest()
	summarize := func(ks *stats.KeyedSummary) {
		for _, k := range ks.Keys() {
			s, _ := ks.Get(k)
			d.putU(uint64(k))
			d.putU(uint64(s.Count()))
			d.putF(s.Min())
			d.putF(s.Mean())
			d.putF(s.Max())
		}
	}
	summarize(er.NeighborsBySetSize)
	summarize(er.FactorBySetSize)
	d.putU(uint64(er.MaxEccentricity))
	d.putU(uint64(er.Sources))
	return d.hex()
}

// CorenessFingerprint digests a k-core decomposition: every node's
// coreness plus the degeneracy.
func CorenessFingerprint(dec *kcore.Decomposition) string {
	d := newDigest()
	for _, c := range dec.CorenessValues() {
		d.putU(uint64(c))
	}
	d.putU(uint64(dec.Degeneracy()))
	return d.hex()
}
