package jobs

import "sync"

// Flight deduplicates concurrent executions of the same artifact key: a
// group of Runners (or one Runner shared by many goroutines) pointing at
// the same Flight runs each (job, graph fingerprint, config fingerprint)
// key at most once at a time. The first caller of a key becomes the
// leader and executes normally; callers arriving while the leader is in
// flight block until it finishes and then replay the leader's artifact
// instead of re-executing the job — the duplicate kernel work and the
// racing writes of the same artifact files both disappear.
//
// A Flight must not be copied after first use. The zero value is ready.
type Flight struct {
	mu       sync.Mutex
	inflight map[string]*flightCall
}

// flightCall is one in-flight key: the leader closes done after
// recording its artifact and error, and every waiter reads them only
// after done is closed (the close is the happens-before edge).
type flightCall struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// join registers interest in key. The boolean reports leadership: the
// leader must eventually call finish with the same call, and until then
// every other joiner of the key receives the same call with leader
// false.
func (f *Flight) join(key string) (*flightCall, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inflight == nil {
		f.inflight = make(map[string]*flightCall)
	}
	if c, ok := f.inflight[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	f.inflight[key] = c
	return c, true
}

// finish publishes the leader's outcome to the call's waiters and
// retires the key, so a later caller starts a fresh flight (and, on
// success, finds the artifact in the cache instead).
func (f *Flight) finish(key string, c *flightCall, art *Artifact, err error) {
	f.mu.Lock()
	delete(f.inflight, key)
	f.mu.Unlock()
	c.art, c.err = art, err
	close(c.done)
}
