package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightDedupesConcurrentRuns hammers one (job, graph, config) key
// from many goroutines through Runners sharing a Flight and asserts the
// job body executed exactly once — the jobs.run.executed contract the
// daemon smoke also checks — while every caller still received the
// byte-identical summary and artifact files.
func TestFlightDedupesConcurrentRuns(t *testing.T) {
	dir := t.TempDir()
	store := NewStore(filepath.Join(dir, "cache"))
	flight := &Flight{}

	var executions atomic.Int64
	release := make(chan struct{})
	type cfg struct{ Seed int64 }
	j := New("mixing", cfg{Seed: 7}, func(ctx context.Context, env Env) (*Artifact, error) {
		executions.Add(1)
		<-release // hold every concurrent caller in flight
		b := NewBuilder()
		b.Printf("mixing summary\n")
		b.AddFile("mixing.csv", []byte("step,tvd\n1,0.5\n"))
		return b.Artifact(), nil
	})

	executedBefore := obsRunExecuted.Value()
	const callers = 16
	outs := make([]bytes.Buffer, callers)
	errs := make([]error, callers)
	var started, done sync.WaitGroup
	started.Add(callers)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			defer done.Done()
			r := &Runner{
				Cache:  store,
				Flight: flight,
				Env:    Env{GraphFingerprint: "graph-a"},
				OutDir: filepath.Join(dir, fmt.Sprintf("out%d", i)),
				Stdout: &outs[i],
			}
			started.Done()
			_, errs[i] = r.Run(context.Background(), j)
		}()
	}
	started.Wait()
	// Give the stragglers a moment to reach join before the leader is
	// released; correctness does not depend on it (a late caller simply
	// becomes a cache hit), only the exactly-one-execution assertion's
	// strength does.
	time.Sleep(20 * time.Millisecond)
	close(release)
	done.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("job body executed %d times, want exactly 1", got)
	}
	if got := obsRunExecuted.Value() - executedBefore; got != 1 {
		t.Fatalf("jobs.run.executed advanced by %d, want exactly 1", got)
	}
	for i := range outs {
		if !bytes.Contains(outs[i].Bytes(), []byte("mixing summary")) {
			t.Fatalf("caller %d summary missing: %q", i, outs[i].String())
		}
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("out%d", i), "mixing.csv"))
		if err != nil {
			t.Fatalf("caller %d artifact file: %v", i, err)
		}
		if string(data) != "step,tvd\n1,0.5\n" {
			t.Fatalf("caller %d artifact bytes diverged: %q", i, data)
		}
	}
}

// TestFlightDistinctKeysRunIndependently checks that dedup keys on the
// full (job, graph, config) triple: different graphs execute separately
// even under one Flight.
func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	dir := t.TempDir()
	flight := &Flight{}
	var executions atomic.Int64
	type cfg struct{ Seed int64 }
	j := New("mixing", cfg{Seed: 7}, func(ctx context.Context, env Env) (*Artifact, error) {
		executions.Add(1)
		b := NewBuilder()
		b.Printf("ok\n")
		return b.Artifact(), nil
	})
	var wg sync.WaitGroup
	for _, graph := range []string{"graph-a", "graph-b"} {
		graph := graph
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &Runner{Flight: flight, Env: Env{GraphFingerprint: graph}, OutDir: dir}
			if _, err := r.Run(context.Background(), j); err != nil {
				t.Errorf("graph %s: %v", graph, err)
			}
		}()
	}
	wg.Wait()
	if got := executions.Load(); got != 2 {
		t.Fatalf("distinct graphs executed %d times, want 2", got)
	}
}

// TestFlightLeaderErrorSharedWithWaiters checks that waiters of a
// failed execution receive the leader's error instead of silently
// succeeding without an artifact.
func TestFlightLeaderErrorSharedWithWaiters(t *testing.T) {
	flight := &Flight{}
	boom := errors.New("boom")
	release := make(chan struct{})
	var executions atomic.Int64
	type cfg struct{}
	j := New("failing", cfg{}, func(ctx context.Context, env Env) (*Artifact, error) {
		executions.Add(1)
		<-release
		return nil, boom
	})
	r := &Runner{Flight: flight, OutDir: t.TempDir()}
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := r.Run(context.Background(), j)
			errc <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errc; !errors.Is(err, boom) {
			t.Fatalf("caller %d error = %v, want %v", i, err, boom)
		}
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("failed job executed %d times, want 1 (waiter must not re-execute)", got)
	}
}

// TestFlightWaiterHonorsContext checks a waiter can abandon a stuck
// flight when its own context dies, instead of blocking forever.
func TestFlightWaiterHonorsContext(t *testing.T) {
	flight := &Flight{}
	release := make(chan struct{})
	defer close(release)
	type cfg struct{}
	j := New("stuck", cfg{}, func(ctx context.Context, env Env) (*Artifact, error) {
		<-release
		return NewBuilder().Artifact(), nil
	})
	r := &Runner{Flight: flight, OutDir: t.TempDir()}
	go r.Run(context.Background(), j) // leader, parked on release
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := r.Run(ctx, j)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter error = %v, want context.DeadlineExceeded", err)
	}
}
