package jobs

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/trustnet/trustnet/internal/report"
)

func TestConfigFingerprintStableAndSensitive(t *testing.T) {
	type cfg struct {
		Job   string
		Quick bool
		Seed  int64
	}
	a := ConfigFingerprint(cfg{Job: "tableI", Quick: true, Seed: 1})
	if len(a) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex digits", a)
	}
	if again := ConfigFingerprint(cfg{Job: "tableI", Quick: true, Seed: 1}); again != a {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, again)
	}
	for _, other := range []cfg{
		{Job: "figure1", Quick: true, Seed: 1},
		{Job: "tableI", Quick: false, Seed: 1},
		{Job: "tableI", Quick: true, Seed: 2},
	} {
		if ConfigFingerprint(other) == a {
			t.Errorf("config %+v collides with the base config", other)
		}
	}
}

func TestArtifactContentDigestCoversFiles(t *testing.T) {
	a := &Artifact{Summary: "s", Files: []File{{Path: "x.csv", Data: []byte("1,2\n")}}}
	d := a.ContentDigest()
	b := &Artifact{Summary: "s", Files: []File{{Path: "x.csv", Data: []byte("1,3\n")}}}
	if b.ContentDigest() == d {
		t.Error("digest unchanged after file content change")
	}
	c := &Artifact{Summary: "s", Files: []File{{Path: "y.csv", Data: []byte("1,2\n")}}}
	if c.ContentDigest() == d {
		t.Error("digest unchanged after file path change")
	}
}

// testJob returns a counting job producing a deterministic artifact.
func testJob(name string, runs *int) Job {
	type cfg struct{ Name string }
	return New(name, cfg{Name: name}, func(ctx context.Context, env Env) (*Artifact, error) {
		*runs++
		b := NewBuilder()
		b.Printf("summary of %s\n", name)
		b.AddFile(name+".csv", []byte("series,x,y\na,1,2\n"))
		return b.Artifact(), nil
	})
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	var n int
	for _, name := range []string{"tableI", "figure1", "epochs"} {
		if err := r.Register(testJob(name, &n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Register(testJob("TABLEI", &n)); err == nil {
		t.Error("case-insensitive duplicate registration accepted")
	}
	if got := r.Names(); len(got) != 3 || got[0] != "tableI" || got[2] != "epochs" {
		t.Errorf("Names() = %v, want registration order", got)
	}
	j, err := r.Lookup("TableI")
	if err != nil || j.Name() != "tableI" {
		t.Errorf("case-insensitive lookup = %v, %v", j, err)
	}
	if _, err := r.Lookup("zzzz"); err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off name should error without a suggestion: %v", err)
	}
}

func TestRegistryLookupSuggestsNearest(t *testing.T) {
	r := NewRegistry()
	var n int
	for _, name := range []string{"tableI", "figure1", "betweenness"} {
		if err := r.Register(testJob(name, &n)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := r.Lookup("tabel1")
	if err == nil || !strings.Contains(err.Error(), `did you mean "tableI"`) {
		t.Errorf("Lookup(tabel1) = %v, want a tableI suggestion", err)
	}
	_, err = r.Lookup("betweeness")
	if err == nil || !strings.Contains(err.Error(), `did you mean "betweenness"`) {
		t.Errorf("Lookup(betweeness) = %v, want a betweenness suggestion", err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore(t.TempDir())
	a := &Artifact{
		Job: "tableI", GraphFingerprint: "g1", ConfigFingerprint: "c1",
		Summary: "hello\n", Files: []File{{Path: "tableI.txt", Data: []byte("hello\n")}},
	}
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	got := s.Load("tableI", "g1", "c1")
	if got == nil {
		t.Fatal("saved artifact not loadable")
	}
	if got.Summary != a.Summary || len(got.Files) != 1 || !bytes.Equal(got.Files[0].Data, a.Files[0].Data) {
		t.Errorf("loaded artifact differs: %+v", got)
	}
	// Different key halves are different slots.
	if s.Load("tableI", "g2", "c1") != nil || s.Load("tableI", "g1", "c2") != nil || s.Load("figure1", "g1", "c1") != nil {
		t.Error("artifact served for a different key")
	}
	st, err := s.Stats()
	if err != nil || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("Stats() = %+v, %v", st, err)
	}
}

func TestStoreLoadRejectsCorruption(t *testing.T) {
	s := NewStore(t.TempDir())
	a := &Artifact{Job: "tableI", GraphFingerprint: "g1", ConfigFingerprint: "c1", Summary: "hello\n"}
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	path := s.Path("tableI", Key("tableI", "g1", "c1"))
	before := obsCacheCorrupt.Value()

	// Truncated JSON.
	if err := os.WriteFile(path, []byte(`{"schema":"trustnet/art`), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Load("tableI", "g1", "c1") != nil {
		t.Error("truncated envelope replayed")
	}

	// Valid JSON, tampered content (digest mismatch).
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte("hello"), []byte("jello"), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper did not change the envelope")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Load("tableI", "g1", "c1") != nil {
		t.Error("digest-mismatched envelope replayed")
	}
	if got := obsCacheCorrupt.Value() - before; got != 2 {
		t.Errorf("corrupt counter advanced by %d, want 2", got)
	}
}

func TestStoreLoadRejectsStaleSchema(t *testing.T) {
	s := NewStore(t.TempDir())
	a := &Artifact{Job: "tableI", GraphFingerprint: "g1", ConfigFingerprint: "c1", Summary: "hello\n"}
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	path := s.Path("tableI", Key("tableI", "g1", "c1"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := bytes.Replace(data, []byte(SchemaVersion), []byte("trustnet/artifact/v0"), 1)
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	before := obsCacheStale.Value()
	if s.Load("tableI", "g1", "c1") != nil {
		t.Error("stale-schema envelope replayed")
	}
	if obsCacheStale.Value() == before {
		t.Error("stale counter did not advance")
	}
}

func TestStoreNeverCachesPartial(t *testing.T) {
	s := NewStore(t.TempDir())
	a := &Artifact{Job: "tableI", GraphFingerprint: "g1", ConfigFingerprint: "c1", Summary: "cut short\n", Partial: true}
	// Even if a partial artifact lands in the cache dir somehow, Load
	// refuses to replay it.
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	if s.Load("tableI", "g1", "c1") != nil {
		t.Error("partial artifact replayed from cache")
	}
}

func TestRunnerCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	runs := 0
	j := testJob("tableI", &runs)
	var out1 bytes.Buffer
	r := &Runner{
		Cache:  NewStore(filepath.Join(dir, "cache")),
		Env:    Env{GraphFingerprint: "g1"},
		OutDir: dir,
		Stdout: &out1,
	}

	hitsBefore, execBefore := obsCacheHits.Value(), obsRunExecuted.Value()
	cached, err := r.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if cached || runs != 1 {
		t.Fatalf("first run: cached=%v runs=%d, want executed once", cached, runs)
	}
	first, err := os.ReadFile(filepath.Join(dir, "tableI.csv"))
	if err != nil {
		t.Fatalf("artifact file not written: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, "tableI.csv")); err != nil {
		t.Fatal(err)
	}

	var out2 bytes.Buffer
	r.Stdout = &out2
	cached, err = r.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || runs != 1 {
		t.Fatalf("second run: cached=%v runs=%d, want replayed with zero executions", cached, runs)
	}
	// The replay is byte-identical: same file content, same summary.
	second, err := os.ReadFile(filepath.Join(dir, "tableI.csv"))
	if err != nil {
		t.Fatalf("replayed artifact file not written: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("replayed file differs:\n%q\nvs\n%q", first, second)
	}
	if !strings.Contains(out2.String(), "CACHED tableI") || !strings.Contains(out2.String(), "summary of tableI") {
		t.Errorf("replay output missing CACHED line or summary:\n%s", out2.String())
	}
	// Counter contract: exactly one hit, and the executed counter did not
	// advance on the replay (zero kernel invocations).
	if hits := obsCacheHits.Value() - hitsBefore; hits != 1 {
		t.Errorf("cache hits advanced by %d, want 1", hits)
	}
	if execs := obsRunExecuted.Value() - execBefore; execs != 1 {
		t.Errorf("executions advanced by %d across both runs, want 1 (replay must not execute)", execs)
	}
}

func TestRunnerCorruptEntryFallsBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	runs := 0
	j := testJob("tableI", &runs)
	cache := NewStore(filepath.Join(dir, "cache"))
	r := &Runner{Cache: cache, Env: Env{GraphFingerprint: "g1"}, OutDir: dir}
	if _, err := r.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	// Corrupt the cached envelope in place.
	path := cache.Path("tableI", Key("tableI", "g1", j.Fingerprint()))
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cached, err := r.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if cached || runs != 2 {
		t.Fatalf("corrupted entry: cached=%v runs=%d, want recompute", cached, runs)
	}
	// The recompute repaired the cache: the next run hits again.
	cached, err = r.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || runs != 2 {
		t.Fatalf("after repair: cached=%v runs=%d, want replay", cached, runs)
	}
}

func TestRunnerDistinctGraphsDistinctSlots(t *testing.T) {
	dir := t.TempDir()
	runs := 0
	j := testJob("tableI", &runs)
	cache := NewStore(filepath.Join(dir, "cache"))
	r := &Runner{Cache: cache, Env: Env{GraphFingerprint: "g1"}, OutDir: dir}
	if _, err := r.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	r.Env.GraphFingerprint = "g2"
	cached, err := r.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if cached || runs != 2 {
		t.Fatalf("different substrate: cached=%v runs=%d, want recompute", cached, runs)
	}
}

func TestRunnerPartialEmittedNotCached(t *testing.T) {
	dir := t.TempDir()
	runs := 0
	type cfg struct{}
	j := New("figure1", cfg{}, func(ctx context.Context, env Env) (*Artifact, error) {
		runs++
		b := NewBuilder()
		b.Printf("partial summary\n")
		b.AddFile("figure1a.csv", []byte("series,x,y\n"))
		b.MarkPartial()
		return b.Artifact(), errors.New("figure1: partial results written")
	})
	var out bytes.Buffer
	r := &Runner{Cache: NewStore(filepath.Join(dir, "cache")), Env: Env{GraphFingerprint: "g1"}, OutDir: dir, Stdout: &out}
	if _, err := r.Run(context.Background(), j); err == nil {
		t.Fatal("partial run: want the salvage error back")
	}
	if _, err := os.Stat(filepath.Join(dir, "figure1a.csv")); err != nil {
		t.Errorf("partial artifact file not written: %v", err)
	}
	// The partial result must not have been cached: the next run executes.
	if _, err := r.Run(context.Background(), j); err == nil {
		t.Fatal("second partial run: want the salvage error back")
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2 (partial results are never replayed)", runs)
	}
}

func TestRunnerNilCacheAlwaysExecutes(t *testing.T) {
	dir := t.TempDir()
	runs := 0
	j := testJob("tableI", &runs)
	r := &Runner{Env: Env{GraphFingerprint: "g1"}, OutDir: dir}
	for i := 0; i < 2; i++ {
		cached, err := r.Run(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatal("nil cache reported a hit")
		}
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2 with caching disabled", runs)
	}
}

func TestBuilderMirrorsReportHelpers(t *testing.T) {
	tbl := report.NewTable("T", "A", "B")
	if err := tbl.AddRow("x", "1"); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	if err := b.Table(tbl); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveTable("t.txt", tbl); err != nil {
		t.Fatal(err)
	}
	a := b.Artifact()
	if len(a.Files) != 1 || a.Files[0].Path != "t.txt" {
		t.Fatalf("files = %+v", a.Files)
	}
	// The summary and the saved file render identically.
	if a.Summary != string(a.Files[0].Data) {
		t.Errorf("summary and saved table differ:\n%q\nvs\n%q", a.Summary, a.Files[0].Data)
	}
	dir := t.TempDir()
	if err := report.SaveTable(filepath.Join(dir, "ref.txt"), tbl); err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(filepath.Join(dir, "ref.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, a.Files[0].Data) {
		t.Errorf("Builder.SaveTable diverges from report.SaveTable:\n%q\nvs\n%q", ref, a.Files[0].Data)
	}
}
