package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// evictArtifact builds a cacheable artifact whose envelope is a few
// hundred bytes, distinguished by job name.
func evictArtifact(job string) *Artifact {
	return &Artifact{
		Job:               job,
		GraphFingerprint:  "graph-a",
		ConfigFingerprint: "cfg-1",
		Summary:           "summary of " + job + "\n",
		Files:             []File{{Path: job + ".csv", Data: []byte(strings.Repeat("x", 128))}},
	}
}

// TestStoreEvictionRoundTrip fills a byte-capped store past its bound
// and asserts the oldest entries are pruned on Save, the newest
// survive and still load byte-identically, and the evictions are
// counted.
func TestStoreEvictionRoundTrip(t *testing.T) {
	s := NewStore(filepath.Join(t.TempDir(), "cache"))

	// Size one envelope, then cap the store to hold about three.
	if err := s.Save(evictArtifact("probe")); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	one := st.Bytes
	if one <= 0 {
		t.Fatalf("probe envelope size %d", one)
	}
	s.SetMaxBytes(3 * one)

	evictedBefore := obsCacheEvicted.Value()
	jobsSaved := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, name := range jobsSaved {
		if err := s.Save(evictArtifact(name)); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so oldest-first is unambiguous on coarse
		// filesystem clocks.
		past := time.Now().Add(time.Duration(i-len(jobsSaved)) * time.Hour)
		key := Key(name, "graph-a", "cfg-1")
		if err := os.Chtimes(s.Path(name, key), past, past); err != nil {
			t.Fatal(err)
		}
	}
	// One more save triggers the prune against the aged entries.
	if err := s.Save(evictArtifact("final")); err != nil {
		t.Fatal(err)
	}

	st, err = s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes > 3*one {
		t.Fatalf("cache holds %d bytes, cap %d", st.Bytes, 3*one)
	}
	if got := obsCacheEvicted.Value() - evictedBefore; got < 3 {
		t.Fatalf("jobs.cache.evicted advanced by %d, want >= 3", got)
	}

	// The newest entries replay byte-identically; the oldest are gone
	// (a plain miss, not an error).
	if a := s.Load("final", "graph-a", "cfg-1"); a == nil {
		t.Fatal("newest entry evicted")
	} else if a.Summary != "summary of final\n" {
		t.Fatalf("replayed summary %q", a.Summary)
	}
	if a := s.Load("alpha", "graph-a", "cfg-1"); a != nil {
		t.Fatal("oldest entry survived a full eviction pass")
	}
}

// TestStoreConcurrentSaveLoad drives saves (with a byte cap, so prunes
// interleave) and loads from many goroutines; under -race this is the
// Store's concurrency contract.
func TestStoreConcurrentSaveLoad(t *testing.T) {
	s := NewStore(filepath.Join(t.TempDir(), "cache"))
	s.SetMaxBytes(2048)
	names := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := names[i%len(names)]
			for k := 0; k < 20; k++ {
				if err := s.Save(evictArtifact(name)); err != nil {
					t.Errorf("save %s: %v", name, err)
					return
				}
				// A load sees a complete envelope or a miss — never a torn
				// write (Load validates the digest and counts corruption).
				s.Load(name, "graph-a", "cfg-1")
			}
		}()
	}
	wg.Wait()
}
