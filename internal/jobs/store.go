package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/resilience"
)

// Observability instruments for the artifact cache. Hits and misses are
// counted by the Runner; the Store counts saves, the corruption and
// stale-schema entries it refused to replay, the entries evicted by
// the byte cap, and eviction scans that failed (prune errors never
// fail a Save).
var (
	obsCacheSaves    = obs.Default().Counter("jobs.cache.saves")
	obsCacheCorrupt  = obs.Default().Counter("jobs.cache.corrupt")
	obsCacheStale    = obs.Default().Counter("jobs.cache.stale")
	obsCacheEvicted  = obs.Default().Counter("jobs.cache.evicted")
	obsCachePruneErr = obs.Default().Counter("jobs.cache.prune_errors")
)

// Store is the content-addressed artifact cache: one JSON envelope per
// (job, graph fingerprint, config fingerprint, schema version) key,
// written atomically under a single directory (out/cache/ in the
// experiments runner).
//
// A Store is safe for concurrent use: Save (and the eviction scan it
// may trigger) is serialized by an internal mutex, and Load needs no
// lock because entries are only ever created whole by an atomic rename
// — a reader sees either no file or a complete envelope, never a torn
// write.
type Store struct {
	dir string
	// maxBytes > 0 caps the total size of cached envelopes; Save prunes
	// oldest-first (by mtime) until the directory fits again.
	maxBytes int64
	mu       sync.Mutex
}

// NewStore returns a store rooted at dir; the directory is created on
// the first Save. The store is unbounded until SetMaxBytes.
func NewStore(dir string) *Store { return &Store{dir: dir} }

// SetMaxBytes bounds the cache directory: after every Save the oldest
// entries (by modification time, name-tiebroken for determinism) are
// evicted until the total size of cached envelopes is at most n bytes.
// The entry just saved is never evicted, so a cache capped below a
// single artifact still serves that artifact until the next Save.
// n <= 0 removes the bound. Evictions are counted by the
// jobs.cache.evicted counter.
func (s *Store) SetMaxBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxBytes = n
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Key is the content address of an artifact: an FNV-1a digest of the
// schema version, job name, and both fingerprint halves. Any change to
// any component addresses a different cache slot.
func Key(job, graphFP, configFP string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00", SchemaVersion, job, graphFP, configFP)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Path returns the file an artifact with the given key is stored at.
// The job name is embedded (sanitized) so out/cache stays browsable.
func (s *Store) Path(job, key string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, job)
	return filepath.Join(s.dir, clean+"-"+key+".json")
}

// Save persists the artifact under its content address, filling in the
// schema and integrity digest. Partial artifacts are the caller's
// responsibility to withhold (the Runner never saves them). The write
// is atomic, so a crash never leaves a truncated envelope; concurrent
// Saves are serialized. When a byte cap is set, Save then prunes the
// oldest entries until the directory fits it again. A prune failure is
// counted (jobs.cache.prune_errors), not returned: by then the
// artifact is durably saved, and an over-full cache must not report a
// successful run as failed.
func (s *Store) Save(a *Artifact) error {
	if a.Job == "" {
		return errors.New("jobs: save an artifact without a job name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a.Schema = SchemaVersion
	a.Digest = a.ContentDigest()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("jobs: cache dir: %w", err)
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: marshal artifact %q: %w", a.Job, err)
	}
	key := Key(a.Job, a.GraphFingerprint, a.ConfigFingerprint)
	path := s.Path(a.Job, key)
	if err := resilience.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobs: save artifact %q: %w", a.Job, err)
	}
	obsCacheSaves.Inc()
	if s.maxBytes > 0 {
		if err := s.pruneLocked(path); err != nil {
			obsCachePruneErr.Inc()
		}
	}
	return nil
}

// pruneLocked evicts cached envelopes oldest-first (mtime, then name)
// until the directory's total envelope size is within the byte cap,
// sparing keep (the entry just saved). Callers hold s.mu.
func (s *Store) pruneLocked(keep string) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	type cacheFile struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []cacheFile
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			// Concurrently removed; nothing left to account for.
			continue
		}
		files = append(files, cacheFile{path: filepath.Join(s.dir, e.Name()), size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
	}
	if total <= s.maxBytes {
		return nil
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path
	})
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if f.path == keep {
			continue
		}
		if err := os.Remove(f.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		total -= f.size
		obsCacheEvicted.Inc()
	}
	return nil
}

// Load returns the cached artifact for the key, or nil when there is no
// usable entry. A missing file is a plain miss; a corrupt, truncated,
// digest-mismatched, or key-mismatched envelope is counted and treated
// as a miss (the job recomputes and overwrites it); a schema change
// likewise orphans the entry rather than erroring. Load never fails the
// run: the cache is an accelerator, not a source of truth.
func (s *Store) Load(job, graphFP, configFP string) *Artifact {
	key := Key(job, graphFP, configFP)
	data, err := os.ReadFile(s.Path(job, key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		obsCacheCorrupt.Inc()
		return nil
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		obsCacheCorrupt.Inc()
		return nil
	}
	if a.Schema != SchemaVersion {
		obsCacheStale.Inc()
		return nil
	}
	if a.Job != job || a.GraphFingerprint != graphFP || a.ConfigFingerprint != configFP {
		obsCacheStale.Inc()
		return nil
	}
	if a.Partial || a.Digest != a.ContentDigest() {
		obsCacheCorrupt.Inc()
		return nil
	}
	return &a
}

// Stats summarizes the cache directory for logs and CI artifacts.
type Stats struct {
	// Entries is the number of cached artifacts; Bytes their total size.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Stats scans the store directory. A store whose directory does not
// exist yet is empty, not an error.
func (s *Store) Stats() (Stats, error) {
	var st Stats
	entries, err := os.ReadDir(s.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("jobs: cache stats: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		st.Entries++
		if fi, err := e.Info(); err == nil {
			st.Bytes += fi.Size()
		}
	}
	return st, nil
}
