package experiments

import (
	"context"
	"encoding/json"
	"testing"
)

func TestBenchQuick(t *testing.T) {
	res, err := Bench(context.Background(), Options{Quick: true, Seed: 1}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 4 {
		t.Errorf("Workers = %d, want 4", res.Workers)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %d, want mixing/expansion/spectral", len(res.Entries))
	}
	names := map[string]bool{}
	for _, e := range res.Entries {
		names[e.Name] = true
		if e.SequentialSeconds <= 0 || e.ParallelSeconds <= 0 {
			t.Errorf("%s: non-positive timings %v/%v", e.Name, e.SequentialSeconds, e.ParallelSeconds)
		}
		if e.Speedup <= 0 {
			t.Errorf("%s: speedup %v", e.Name, e.Speedup)
		}
		if !e.Identical {
			t.Errorf("%s: workers=1 and workers=4 results differ — determinism contract broken", e.Name)
		}
	}
	for _, want := range []string{"mixing", "expansion", "spectral"} {
		if !names[want] {
			t.Errorf("missing kernel %s", want)
		}
	}
	if _, err := json.Marshal(res); err != nil {
		t.Errorf("result not JSON-serializable: %v", err)
	}
}

func TestBenchDefaultsWorkersAndRepeats(t *testing.T) {
	res, err := Bench(context.Background(), Options{Quick: true, Seed: 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers < 1 {
		t.Errorf("Workers = %d, want >= 1", res.Workers)
	}
	for _, e := range res.Entries {
		if e.Repeats != 1 {
			t.Errorf("%s: repeats = %d, want floored to 1", e.Name, e.Repeats)
		}
	}
}

func TestBenchKernelsQuick(t *testing.T) {
	res, err := BenchKernels(context.Background(), Options{Quick: true, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d, want walk-block and bfs64", len(res.Entries))
	}
	names := map[string]bool{}
	for _, e := range res.Entries {
		names[e.Name] = true
		if e.NaiveSeconds <= 0 || e.KernelSeconds <= 0 {
			t.Errorf("%s: non-positive timings %v/%v", e.Name, e.NaiveSeconds, e.KernelSeconds)
		}
		if e.Nodes < 10000 {
			t.Errorf("%s: baseline graph has %d nodes, want the 10^4-node benchmark graph", e.Name, e.Nodes)
		}
		if e.Fingerprint == "" {
			t.Errorf("%s: empty fingerprint", e.Name)
		}
		if !e.Identical {
			t.Errorf("%s: naive and kernel results differ — determinism contract broken", e.Name)
		}
	}
	for _, want := range []string{"walk-block", "bfs64"} {
		if !names[want] {
			t.Errorf("missing kernel %s", want)
		}
	}
	if !res.Identical() {
		t.Error("Identical() = false with all entries identical")
	}
	if _, err := json.Marshal(res); err != nil {
		t.Errorf("result not JSON-serializable: %v", err)
	}
}

func TestBenchKernelsHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BenchKernels(ctx, Options{Quick: true, Seed: 1}, 1); err == nil {
		t.Fatal("want error from cancelled context")
	}
}

func TestBenchHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Bench(ctx, Options{Quick: true, Seed: 1}, 2, 1); err == nil {
		t.Fatal("want error from cancelled context")
	}
}
