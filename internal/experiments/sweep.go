package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/walk"
)

// SweepPoint is one bridge-budget setting of the ablation sweep.
type SweepPoint struct {
	Bridges int
	SLEM    float64
	// MixingTime is the mean-curve T(0.1) (0 when not reached within
	// budget): the worst sampled source in a community graph can exceed
	// any practical budget, so the sweep tracks the average-source view
	// of Figure 1 instead.
	MixingTime int
	Mixed      bool
	MinAlpha   float64
}

// SweepResult is the design-choice ablation behind the dataset registry:
// the clustered generator's bridge budget is the knob that moves a graph
// continuously from the paper's slow-mixing regime to its fast-mixing
// one, with SLEM, sampled mixing time, and expansion all responding
// together. It validates that the synthetic families span the spectrum
// the paper's real datasets occupy.
type SweepResult struct {
	Points []SweepPoint
}

// Table renders the sweep.
func (r *SweepResult) Table() (*report.Table, error) {
	t := report.NewTable(
		"Ablation: community bridge budget vs measured properties (8 communities x 80 nodes)",
		"Bridges/pair", "mu", "mean T(0.1)", "min alpha",
	)
	for _, p := range r.Points {
		mix := "> budget"
		if p.Mixed {
			mix = report.Int(p.MixingTime)
		}
		if err := t.AddRow(report.Int(p.Bridges), report.Float(p.SLEM, 4),
			mix, report.Float(p.MinAlpha, 4)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// BridgeSweep measures the property spectrum across bridge budgets.
func BridgeSweep(ctx context.Context, opts Options) (*SweepResult, error) {
	opts.fill()
	budgets := []int{1, 2, 4, 8, 16}
	if opts.Quick {
		budgets = []int{1, 4, 16}
	}
	res := &SweepResult{}
	for _, bridges := range budgets {
		g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
			Communities:   8,
			CommunitySize: 80,
			Attach:        4,
			Bridges:       bridges,
			Periphery:     2 * 16, // fixed so only the bridge count varies
			Seed:          opts.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep bridges=%d: %w", bridges, err)
		}
		pt := SweepPoint{Bridges: bridges}

		sr, err := spectral.SLEM(g, spectral.Config{Tolerance: 1e-6, Seed: opts.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep slem bridges=%d: %w", bridges, err)
		}
		pt.SLEM = sr.SLEM

		mr, err := walk.MeasureMixing(ctx, g, walk.MixingConfig{
			MaxSteps: opts.pick(100, 250),
			Sources:  opts.pick(10, 30),
			Seed:     opts.Seed,
			Workers:  opts.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep mixing bridges=%d: %w", bridges, err)
		}
		pt.MixingTime, pt.Mixed = mr.MeanMixingTime(0.1)

		srcs, err := expansion.SampledSources(g, opts.pick(60, 200), opts.Seed)
		if err != nil {
			return nil, err
		}
		er, err := expansion.Measure(ctx, g, expansion.Config{Sources: srcs, Workers: opts.Workers})
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep expansion bridges=%d: %w", bridges, err)
		}
		if a, ok := er.VertexExpansion(g.NumNodes()); ok {
			pt.MinAlpha = a
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
