package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/resilience"
	"github.com/trustnet/trustnet/internal/stats"
	"github.com/trustnet/trustnet/internal/walk"
)

// Figure1Result reproduces Figure 1: total variation distance to
// stationarity versus walk length, measured with the sampling method from
// random sources, split into the paper's two panels.
type Figure1Result struct {
	// PanelA holds the small/medium datasets, PanelB the large ones. One
	// series per dataset: x = walk length, y = mean TVD over sources.
	PanelA []report.Series
	PanelB []report.Series
	// MixingTimes records T(ε=0.1) per dataset for the shape checks
	// (0 when not reached within the step budget).
	MixingTimes map[string]int
	// SourceECDFs holds, per dataset, the ECDF of per-source mixing
	// times at ε=0.1 — the "variety of mixing patterns in the same
	// social graph" view the paper's sampling method exists to expose
	// (sources that never mix within budget are recorded at budget+1).
	SourceECDFs []report.Series
	// Coverage maps each measured dataset to the fraction of its
	// sampled sources that completed — 1 except for the dataset a
	// best-effort deadline cut short.
	Coverage map[string]float64
	// Partial reports that a best-effort run was cut short: the last
	// dataset's series covers only part of its sources, and later
	// datasets were not measured at all.
	Partial bool
}

// Figure1 measures the mixing curves of every dataset. ctx cancels the
// underlying mixing measurements between walk steps. With
// Options.BestEffort a deadline mid-dataset yields a partial result; with
// Options.Ckpt/Resume progress is checkpointed per dataset and a rerun
// continues from the saved curves, reproducing the uninterrupted
// measurement bit-for-bit.
func Figure1(ctx context.Context, opts Options) (*Figure1Result, error) {
	opts.fill()
	res := &Figure1Result{MixingTimes: make(map[string]int), Coverage: make(map[string]float64)}
	run := func(specs []datasets.Spec, panel *[]report.Series) error {
		for _, spec := range specs {
			if res.Partial {
				return nil // the deadline already hit; later datasets stay unmeasured
			}
			g, err := opts.graphFor(spec.Name)
			if err != nil {
				return err
			}
			cfg := walk.MixingConfig{
				MaxSteps:   opts.pick(60, 200),
				Sources:    opts.pick(10, 50),
				Seed:       opts.Seed,
				Workers:    opts.Workers,
				BestEffort: opts.BestEffort,
			}
			key := "figure1-" + spec.Name
			fp := resilience.Fingerprint("figure1", spec.Name, opts.Quick, opts.Seed, cfg.MaxSteps, cfg.Sources, opts.Substrate)
			if opts.Ckpt != nil && opts.Resume {
				c, err := opts.Ckpt.Load(key, fp)
				if err != nil {
					return fmt.Errorf("experiments: figure 1: %w", err)
				}
				if c != nil {
					var mck walk.MixingCheckpoint
					if err := c.DecodePayload(&mck); err != nil {
						return fmt.Errorf("experiments: figure 1: %w", err)
					}
					cfg.Resume = &mck
				}
			}
			mr, err := walk.MeasureMixing(ctx, g, cfg)
			if err != nil {
				return fmt.Errorf("experiments: figure 1 mixing of %s: %w", spec.Name, err)
			}
			if opts.Ckpt != nil {
				status := resilience.StatusDone
				if mr.Partial {
					status = resilience.StatusPartial
				}
				c := &resilience.Checkpoint{Job: key, Fingerprint: fp, Status: status}
				if err := c.SetPayload(mr.Checkpoint()); err != nil {
					return err
				}
				if err := opts.Ckpt.Save(c); err != nil {
					return fmt.Errorf("experiments: figure 1: %w", err)
				}
			}
			res.Coverage[spec.Name] = mr.Coverage()
			if mr.Partial {
				res.Partial = true
			}
			s := report.Series{Name: spec.Name}
			for t, tvd := range mr.MeanTVD {
				s.X = append(s.X, float64(t+1))
				s.Y = append(s.Y, tvd)
			}
			*panel = append(*panel, s)
			if tm, ok := mr.MixingTime(0.1); ok {
				res.MixingTimes[spec.Name] = tm
			} else {
				res.MixingTimes[spec.Name] = 0
			}
			times := mr.SourceMixingTimes(0.1)
			samples := make([]float64, len(times))
			for i, tm := range times {
				if tm == 0 {
					tm = len(mr.MeanTVD) + 1 // censored at budget+1
				}
				samples[i] = float64(tm)
			}
			ecdf, err := stats.NewECDF(samples)
			if err != nil {
				return fmt.Errorf("experiments: figure 1 source ecdf of %s: %w", spec.Name, err)
			}
			xs, fs := ecdf.Points()
			res.SourceECDFs = append(res.SourceECDFs, report.Series{Name: spec.Name, X: xs, Y: fs})
		}
		return nil
	}
	smallMedium := append(datasets.ByBand(datasets.Small), datasets.ByBand(datasets.Medium)...)
	if err := run(smallMedium, &res.PanelA); err != nil {
		return nil, err
	}
	large := datasets.ByBand(datasets.Large)
	if opts.Quick {
		large = large[:2]
	}
	if err := run(large, &res.PanelB); err != nil {
		return nil, err
	}
	return res, nil
}
