package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/report"
)

// figure5Datasets are the five representative graphs of Figure 5
// (Physics 2, Physics 3, Epinion, Wiki-vote, Facebook) — two slow mixers
// with multiple cores and three fast mixers with a single large core.
var figure5Datasets = []string{"physics-1", "physics-2", "epinion", "wiki-vote", "facebook-b"}

// Figure5Panel is one dataset's core-structure series.
type Figure5Panel struct {
	Name string
	// RelativeSize is ν̃_k versus k (subfigures (a)–(e)).
	RelativeSize report.Series
	// LargestRelativeSize is ν_k versus k (largest connected core).
	LargestRelativeSize report.Series
	// NumCores is the number of connected cores versus k (subfigures
	// (f)–(j)).
	NumCores report.Series
	// Degeneracy is the largest k with a non-empty core.
	Degeneracy int
	// TopComponents is the number of connected cores at the degeneracy.
	TopComponents int
}

// Figure5Result reproduces Figure 5: relative core sizes and core counts
// per k for representative datasets.
type Figure5Result struct {
	Panels []Figure5Panel
}

// Figure5 computes the per-k core statistics. Cancellation of ctx is
// honored between datasets.
func Figure5(ctx context.Context, opts Options) (*Figure5Result, error) {
	opts.fill()
	names := figure5Datasets
	if opts.Quick {
		names = names[:3]
	}
	res := &Figure5Result{}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: figure 5: %w", err)
		}
		g, err := opts.graphFor(name)
		if err != nil {
			return nil, err
		}
		dec, err := kcore.Decompose(g)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 5 decompose %s: %w", name, err)
		}
		panel := Figure5Panel{
			Name:                name,
			RelativeSize:        report.Series{Name: name + "/nu-tilde"},
			LargestRelativeSize: report.Series{Name: name + "/nu"},
			NumCores:            report.Series{Name: name + "/cores"},
			Degeneracy:          dec.Degeneracy(),
		}
		for _, lvl := range dec.Levels() {
			x := float64(lvl.K)
			panel.RelativeSize.X = append(panel.RelativeSize.X, x)
			panel.RelativeSize.Y = append(panel.RelativeSize.Y, lvl.NuTilde)
			panel.LargestRelativeSize.X = append(panel.LargestRelativeSize.X, x)
			panel.LargestRelativeSize.Y = append(panel.LargestRelativeSize.Y, lvl.Nu)
			panel.NumCores.X = append(panel.NumCores.X, x)
			panel.NumCores.Y = append(panel.NumCores.Y, float64(lvl.Components))
		}
		if len(panel.NumCores.Y) > 0 {
			panel.TopComponents = int(panel.NumCores.Y[len(panel.NumCores.Y)-1])
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}
