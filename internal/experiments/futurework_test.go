package experiments

import (
	"context"
	"testing"
)

func TestFutureWorkDynamicQuick(t *testing.T) {
	res, err := FutureWorkDynamic(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Nodes <= res.Points[i-1].Nodes {
			t.Errorf("snapshot sizes not increasing at %d", i)
		}
	}
	// Densified PA growth stays a fast mixer at every age.
	for i, p := range res.Points {
		if !p.Mixed {
			t.Errorf("snapshot %d (n=%d) did not mix within budget", i, p.Nodes)
		}
		if p.SLEM > 0.9 {
			t.Errorf("snapshot %d: SLEM %v, want fast mixer", i, p.SLEM)
		}
	}
	// Densification: average degree grows over time.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.AverageDegree <= first.AverageDegree {
		t.Errorf("avg degree did not grow: %v -> %v", first.AverageDegree, last.AverageDegree)
	}
	tab, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Errorf("table rows = %d", tab.NumRows())
	}
	for _, s := range []struct {
		name   string
		series interface{ Validate() error }
	}{{"slem", &res.SLEM}, {"mixing", &res.Mixing}, {"alpha", &res.MinAlpha}, {"deg", &res.AvgDegree}} {
		if err := s.series.Validate(); err != nil {
			t.Errorf("%s: %v", s.name, err)
		}
	}
}

func TestFutureWorkModulatedQuick(t *testing.T) {
	res, err := FutureWorkModulated(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 {
		t.Fatalf("curves = %d, want 4", len(res.Curves))
	}
	// The trade-off: more modulation, worse final TVD and later
	// convergence (0 steps means never reached: treat as worst).
	uni := res.FinalTVD["uniform"]
	lazy5 := res.FinalTVD["lazy-0.5"]
	lazy8 := res.FinalTVD["lazy-0.8"]
	orig := res.FinalTVD["originator-0.2"]
	if !(uni <= lazy5 && lazy5 <= lazy8) {
		t.Errorf("laziness ordering violated: uniform %v, lazy-0.5 %v, lazy-0.8 %v", uni, lazy5, lazy8)
	}
	if orig <= uni {
		t.Errorf("originator bias %v <= uniform %v; teleporting home must cost mixing", orig, uni)
	}
	effSteps := func(name string) int {
		if s := res.StepsTo01[name]; s > 0 {
			return s
		}
		return 1 << 30
	}
	if effSteps("uniform") > effSteps("lazy-0.5") {
		t.Errorf("uniform took %d steps, lazy-0.5 %d; laziness should not speed convergence",
			res.StepsTo01["uniform"], res.StepsTo01["lazy-0.5"])
	}
	if effSteps("originator-0.2") < 1<<30 {
		t.Errorf("originator-biased walk converged to stationarity (%d steps); it should not",
			res.StepsTo01["originator-0.2"])
	}
	tab, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Errorf("table rows = %d", tab.NumRows())
	}
}
