package experiments

import (
	"context"
	"testing"
)

func TestBetweennessDistributionQuick(t *testing.T) {
	res, err := BetweennessDistribution(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.ECDFs) != 2 {
		t.Fatalf("rows/ecdfs = %d/%d, want 2/2", len(res.Rows), len(res.ECDFs))
	}
	for _, row := range res.Rows {
		if row.Top1PctShare <= 0 || row.Top1PctShare > 1 {
			t.Errorf("%s: top-1%% share = %v out of (0,1]", row.Name, row.Top1PctShare)
		}
		if row.MaxNormalized <= 0 || row.MaxNormalized > 1 {
			t.Errorf("%s: max normalized = %v out of (0,1]", row.Name, row.MaxNormalized)
		}
	}
	for _, s := range res.ECDFs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	tab, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Errorf("table rows = %d", tab.NumRows())
	}
}

func TestBetweennessConcentrationFullContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("full betweenness contrast is slow")
	}
	opts := Options{Quick: false, Seed: 7}
	res, err := BetweennessDistribution(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BetweennessRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	// The community graphs concentrate betweenness on their bridges far
	// more than the OSN-like graphs (max normalized betweenness).
	if byName["physics-1"].MaxNormalized <= byName["wiki-vote"].MaxNormalized {
		t.Errorf("physics-1 max betweenness %v <= wiki-vote %v; bridges should dominate",
			byName["physics-1"].MaxNormalized, byName["wiki-vote"].MaxNormalized)
	}
}
