// Package experiments contains one runner per table and figure of the
// paper's evaluation section. Each runner regenerates the corresponding
// artifact from the synthetic dataset registry: tables as
// report.Table values and figures as report.Series bundles, so
// cmd/experiments can write them to disk and the benchmark harness can
// time them.
//
// Runners accept an Options value. Quick mode shrinks sample counts so
// the whole suite stays test-sized; the full mode matches the scaled
// experiment parameters documented in DESIGN.md.
package experiments

import (
	"fmt"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/resilience"
)

// Options configures every experiment runner.
type Options struct {
	// Cache shares generated graphs across runners; nil creates a
	// private cache.
	Cache *datasets.Cache
	// Quick shrinks sampling parameters so runners finish in test time.
	Quick bool
	// Seed drives all randomized measurement components.
	Seed int64
	// Workers bounds parallelism; <= 0 uses GOMAXPROCS.
	Workers int
	// BestEffort lets deadline-hit measurements return partial results
	// (tagged with their coverage) instead of failing outright.
	BestEffort bool
	// Ckpt, when non-nil, is where runners persist per-dataset progress:
	// done datasets as reusable results, interrupted ones as resumable
	// measurement state. Checkpoints are fingerprinted against the full
	// measurement configuration.
	Ckpt *resilience.Store
	// Resume makes runners consult Ckpt before measuring: datasets with
	// a done checkpoint are reused, partial ones continue from their
	// saved state. The combined result is bit-identical to an
	// uninterrupted run.
	Resume bool
	// Incremental routes epoch-sweep measurements through the
	// internal/incremental maintainers (delta-repaired cores and BFS,
	// warm-started SLEM) instead of recomputing every epoch from
	// scratch. Integer results are bit-identical either way; SLEM agrees
	// within its convergence tolerance.
	Incremental bool
	// Substrate is the canonical graph-substrate fingerprint of the run
	// (see SubstrateFingerprint). Runners fold it into their per-dataset
	// checkpoint fingerprints so checkpoints from a different dataset
	// registry or generator are never resumed. Empty disables the tie.
	Substrate string
}

func (o *Options) fill() {
	if o.Cache == nil {
		o.Cache = &datasets.Cache{}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// graphFor loads a dataset through the shared cache.
func (o *Options) graphFor(name string) (*graph.Graph, error) {
	g, err := o.Cache.Get(name)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return g, nil
}

// pick returns quick in Quick mode and full otherwise.
func (o *Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}
