package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"time"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/incremental"
	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/parallel"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/spectral"
)

// epochSweepGraph generates the community graph the epoch sweep runs
// on. It is clustered rather than plain preferential-attachment so the
// coreness landscape is diverse: a delta's subcores stay community-
// sized, which is the regime the incremental core repair is built for
// (a single-plateau BA graph legitimately falls back every insertion).
func epochSweepGraph(opts *Options) (*graph.Graph, error) {
	g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities:   opts.pick(10, 50),
		CommunitySize: 200,
		Attach:        8,
		Bridges:       4,
		Seed:          97,
	})
	return g, err
}

// epochSweepFaultConfig is the drifting fault schedule the sweep
// advances through: stationary marginals match the churn experiments,
// but consecutive epochs evolve (small deltas) instead of redrawing.
func epochSweepFaultConfig(seed int64) faults.Config {
	return faults.Config{Churn: 0.1, EdgeLoss: 0.05, Drift: 0.005, Seed: seed}
}

// epochSweepSources samples the BFS envelope sources on a stream
// decorrelated from the fault schedule. graph.SampleNodes and the
// epoch-0 churn draw both shuffle the node list from a raw
// rand.NewSource, so handing both the root seed would make the sampled
// sources exactly the churned-out prefix of the same permutation —
// every source dead at epoch 0.
func epochSweepSources(g *graph.Graph, opts *Options) ([]graph.NodeID, error) {
	return expansion.SampledSources(g, opts.pick(128, 1024), parallel.SeedFor(opts.Seed, 0))
}

// EpochSweepPoint is one epoch's structural measurements.
type EpochSweepPoint struct {
	Epoch           int
	Degeneracy      int
	SLEM            float64
	ComponentSize   int
	MaxEccentricity int
	// CoreIncremental reports whether the coreness repair ran
	// incrementally this epoch (always false in full mode and at epoch 0).
	CoreIncremental bool
}

// EpochSweepResult tracks the three §III structural metrics across a
// drifting fault schedule, measured either from scratch every epoch or
// through the incremental maintainers (Options.Incremental).
type EpochSweepResult struct {
	Points      []EpochSweepPoint
	Incremental bool
	// Seconds is the wall time of the measurement loop (excluding graph
	// generation), so the sweep doubles as a coarse timing probe.
	Seconds float64
}

// Table renders the sweep.
func (r *EpochSweepResult) Table() (*report.Table, error) {
	mode := "full recompute per epoch"
	if r.Incremental {
		mode = "incremental maintainers"
	}
	t := report.NewTable(
		fmt.Sprintf("Epoch sweep: structural metrics under drifting faults (%s)", mode),
		"Epoch", "Degeneracy", "mu", "Component", "Max ecc", "Core repair")
	for _, p := range r.Points {
		repair := "full"
		if p.CoreIncremental {
			repair = "incremental"
		}
		if err := t.AddRow(report.Int(p.Epoch), report.Int(p.Degeneracy),
			report.Float(p.SLEM, 4), report.Int(p.ComponentSize),
			report.Int(p.MaxEccentricity), repair); err != nil {
			return nil, err
		}
	}
	t.AddNote(fmt.Sprintf("measurement loop: %.2fs", r.Seconds))
	return t, nil
}

// EpochSweep measures degeneracy, SLEM, and the expansion envelope at
// every epoch of a drifting fault schedule. With Options.Incremental
// the three measurements ride the internal/incremental maintainers
// (exact cores and expansion, tolerance-equal SLEM); otherwise each
// epoch recomputes from scratch. Both modes walk identical schedules,
// so their tables agree up to SLEM rounding.
func EpochSweep(ctx context.Context, opts Options) (*EpochSweepResult, error) {
	opts.fill()
	g, err := epochSweepGraph(&opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: epoch sweep: %w", err)
	}
	srcs, err := epochSweepSources(g, &opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: epoch sweep: %w", err)
	}
	ecfg := incremental.EngineConfig{
		Sources:  srcs,
		Spectral: spectral.Config{Tolerance: 1e-8, Seed: opts.Seed, Workers: opts.Workers},
		Workers:  opts.Workers,
	}
	epochs := opts.pick(4, 16)
	m, err := faults.New(g, epochSweepFaultConfig(opts.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: epoch sweep: %w", err)
	}

	res := &EpochSweepResult{Incremental: opts.Incremental}
	start := time.Now()
	var en *incremental.Engine
	if opts.Incremental {
		if en, err = incremental.NewEngine(m, ecfg); err != nil {
			return nil, fmt.Errorf("experiments: epoch sweep: %w", err)
		}
	}
	for e := 0; e < epochs; e++ {
		coreInc := false
		var meas *incremental.EpochMeasurement
		if en != nil {
			if e > 0 {
				coreInc = en.Advance()
			}
			if meas, err = en.Measure(ctx); err != nil {
				return nil, fmt.Errorf("experiments: epoch sweep epoch %d: %w", e, err)
			}
		} else {
			if e > 0 {
				m.AdvanceEpoch()
			}
			if meas, err = incremental.MeasureFull(ctx, m.View(), ecfg); err != nil {
				return nil, fmt.Errorf("experiments: epoch sweep epoch %d: %w", e, err)
			}
		}
		res.Points = append(res.Points, EpochSweepPoint{
			Epoch:           e,
			Degeneracy:      meas.Degeneracy,
			SLEM:            meas.SLEM.SLEM,
			ComponentSize:   meas.ComponentSize,
			MaxEccentricity: meas.Expansion.MaxEccentricity,
			CoreIncremental: coreInc,
		})
	}
	res.Seconds = time.Since(start).Seconds()
	return res, nil
}

// IncrementalBenchEntry is the epoch sweep timed two ways: full
// recompute at every epoch against the incremental maintainers, over
// identical drifting fault schedules.
type IncrementalBenchEntry struct {
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Nodes   int    `json:"nodes"`
	Edges   int64  `json:"edges"`
	// Epochs is the sweep length; Sources the BFS envelope source count.
	Epochs  int `json:"epochs"`
	Sources int `json:"sources"`
	// FullSeconds and IncrementalSeconds are best-of-Repeats wall times
	// for the two variants, end to end (including the incremental
	// variant's epoch-0 initialization).
	FullSeconds        float64 `json:"full_seconds"`
	IncrementalSeconds float64 `json:"incremental_seconds"`
	// Speedup is FullSeconds / IncrementalSeconds.
	Speedup float64 `json:"speedup"`
	Repeats int     `json:"repeats"`
	// CoreIncrementalEpochs counts epochs (of Epochs-1 advances) whose
	// coreness repair ran incrementally rather than falling back.
	CoreIncrementalEpochs int `json:"core_incremental_epochs"`
	// Identical reports the integer measurements (per-node cores, every
	// per-source BFS level count, component size) were bit-for-bit
	// identical across variants at every epoch; Fingerprint is the
	// shared FNV-1a digest.
	Identical   bool   `json:"identical"`
	Fingerprint string `json:"fingerprint"`
	// MaxSLEMDiff is the largest per-epoch |SLEM_full - SLEM_incremental|;
	// the warm-started iteration converges to the same tolerance, not the
	// same bit pattern, so it is compared against SLEMTolerance instead
	// of fingerprinted.
	MaxSLEMDiff   float64 `json:"max_slem_diff"`
	SLEMTolerance float64 `json:"slem_tolerance"`
}

// IncrementalBenchResult is the incremental-measurement baseline
// cmd/experiments bench writes to out/BENCH_incremental.json,
// qualified by the machine fields.
type IncrementalBenchResult struct {
	GoVersion  string                  `json:"go_version"`
	NumCPU     int                     `json:"num_cpu"`
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Quick      bool                    `json:"quick"`
	Seed       int64                   `json:"seed"`
	UnixTime   int64                   `json:"unix_time"`
	Entries    []IncrementalBenchEntry `json:"entries"`
}

// Equivalent reports whether every entry's variants agreed: integer
// fingerprints identical and SLEM within tolerance. Callers treat
// false as a failure — the variants replay the same schedule, so any
// divergence is a repair bug, not noise.
func (r *IncrementalBenchResult) Equivalent() bool {
	for _, e := range r.Entries {
		if !e.Identical || e.MaxSLEMDiff > e.SLEMTolerance {
			return false
		}
	}
	return true
}

// epochFingerprint folds one epoch's integer measurements into h:
// every node's coreness, every source's BFS level counts, and the
// largest-component size.
func epochFingerprint(h interface{ Write(p []byte) (int, error) }, cores []int, levels [][]int64, compSize int) {
	var buf [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	for _, c := range cores {
		put(uint64(c))
	}
	for _, ls := range levels {
		put(uint64(len(ls)))
		for _, l := range ls {
			put(uint64(l))
		}
	}
	put(uint64(compSize))
}

// BenchIncremental times the epoch sweep with and without the
// incremental maintainers on the clustered 10⁴-node community graph.
// Both variants advance identical drifting fault schedules and measure
// all three structural metrics every epoch; the full variant
// recomputes each from scratch, the incremental variant repairs the
// maintained state from the epoch delta (k-core subcore repair,
// delta-BFS, warm-started SLEM). Equivalence is part of the baseline:
// integer results must be bit-identical, SLEM within tolerance.
func BenchIncremental(ctx context.Context, opts Options, repeats int) (*IncrementalBenchResult, error) {
	opts.fill()
	if repeats < 1 {
		repeats = 1
	}
	g, err := epochSweepGraph(&opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench incremental: %w", err)
	}
	srcs, err := epochSweepSources(g, &opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench incremental: %w", err)
	}
	ecfg := incremental.EngineConfig{
		Sources:  srcs,
		Spectral: spectral.Config{Tolerance: 1e-8, Seed: opts.Seed, Workers: opts.Workers},
		Workers:  opts.Workers,
	}
	epochs := opts.pick(4, 16)
	fcfg := epochSweepFaultConfig(opts.Seed)

	// The power iteration stops when successive eigenvalue estimates are
	// within Tolerance (1e-8); on a slow-mixing community graph the
	// absolute eigenvalue error is that divided by one minus the
	// iteration's contraction ratio, so warm and cold runs can land up
	// to a few orders of magnitude apart while both meeting the
	// convergence contract. 1e-4 bounds the divergence two runs
	// converged to 1e-8 per step can exhibit here, with margin.
	const slemTol = 1e-4
	var fullSLEMs, incSLEMs []float64
	coreIncEpochs := 0

	fullVariant := func() (string, error) {
		m, err := faults.New(g, fcfg)
		if err != nil {
			return "", err
		}
		h := fnv.New64a()
		fullSLEMs = fullSLEMs[:0]
		for e := 0; e < epochs; e++ {
			if e > 0 {
				m.AdvanceEpoch()
			}
			dec, err := kcore.Decompose(m.View())
			if err != nil {
				return "", err
			}
			er, err := expansion.Measure(ctx, m.View(), expansion.Config{Sources: srcs, Workers: opts.Workers})
			if err != nil {
				return "", err
			}
			comp, nodes := graph.LargestComponentView(m.View())
			sr, err := spectral.SLEMContext(ctx, comp, ecfg.Spectral)
			if err != nil {
				return "", err
			}
			epochFingerprint(h, dec.CorenessValues(), er.Checkpoint().Levels, len(nodes))
			fullSLEMs = append(fullSLEMs, sr.SLEM)
		}
		return fmt.Sprintf("%016x", h.Sum64()), nil
	}

	incVariant := func() (string, error) {
		m, err := faults.New(g, fcfg)
		if err != nil {
			return "", err
		}
		en, err := incremental.NewEngine(m, ecfg)
		if err != nil {
			return "", err
		}
		h := fnv.New64a()
		incSLEMs = incSLEMs[:0]
		coreIncEpochs = 0
		for e := 0; e < epochs; e++ {
			if e > 0 && en.Advance() {
				coreIncEpochs++
			}
			meas, err := en.Measure(ctx)
			if err != nil {
				return "", err
			}
			epochFingerprint(h, en.Cores(), meas.Expansion.Checkpoint().Levels, meas.ComponentSize)
			incSLEMs = append(incSLEMs, meas.SLEM.SLEM)
		}
		return fmt.Sprintf("%016x", h.Sum64()), nil
	}

	entry := IncrementalBenchEntry{
		Name: "epoch-sweep", Dataset: "clustered-10k",
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Epochs: epochs, Sources: len(srcs), Repeats: repeats,
		SLEMTolerance: slemTol,
	}
	fullSec, fullFP, err := timeVariant(fullVariant, repeats)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench incremental full variant: %w", err)
	}
	incSec, incFP, err := timeVariant(incVariant, repeats)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench incremental variant: %w", err)
	}
	entry.FullSeconds, entry.IncrementalSeconds = fullSec, incSec
	if incSec > 0 {
		entry.Speedup = fullSec / incSec
	}
	entry.Identical = fullFP == incFP
	entry.Fingerprint = incFP
	entry.CoreIncrementalEpochs = coreIncEpochs
	for i := range fullSLEMs {
		if d := math.Abs(fullSLEMs[i] - incSLEMs[i]); d > entry.MaxSLEMDiff {
			entry.MaxSLEMDiff = d
		}
	}

	return &IncrementalBenchResult{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
		Seed:       opts.Seed,
		UnixTime:   time.Now().Unix(),
		Entries:    []IncrementalBenchEntry{entry},
	}, nil
}
