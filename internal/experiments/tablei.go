package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/spectral"
)

// TableIRow is one dataset's entry in the Table I reproduction.
type TableIRow struct {
	Name string
	// PaperNodes/PaperEdges document the original crawl.
	PaperNodes, PaperEdges int64
	// Nodes/Edges are the synthetic stand-in's size.
	Nodes int
	Edges int64
	// SLEM is the measured second largest eigenvalue modulus μ.
	SLEM float64
	// Converged reports whether the power iteration converged within its
	// budget; when false SLEM is the last (still monotone) estimate.
	Converged bool
	Class     datasets.Class
}

// TableIResult is the Table I reproduction: every dataset with its size
// and second largest eigenvalue of the transition matrix.
type TableIResult struct {
	Rows []TableIRow
}

// Table renders the result in the paper's column layout.
func (r *TableIResult) Table() (*report.Table, error) {
	t := report.NewTable(
		"Table I: datasets, synthetic stand-in sizes, and SLEM of the transition matrix",
		"Dataset", "Paper nodes", "Paper edges", "Nodes", "Edges", "mu", "Class",
	)
	for _, row := range r.Rows {
		if err := t.AddRow(
			row.Name,
			report.Int64(row.PaperNodes), report.Int64(row.PaperEdges),
			report.Int(row.Nodes), report.Int64(row.Edges),
			report.Float(row.SLEM, 6), row.Class.String(),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// TableI measures every registry dataset's size and SLEM — the Table I
// reproduction. Cancellation of ctx is honored between datasets, so a
// timed-out run stops measuring (and its caller stops printing) instead
// of finishing the table in the background.
func TableI(ctx context.Context, opts Options) (*TableIResult, error) {
	opts.fill()
	specs := datasets.All()
	if opts.Quick {
		specs = datasets.ByBand(datasets.Small)
	}
	res := &TableIResult{Rows: make([]TableIRow, 0, len(specs))}
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: table I: %w", err)
		}
		g, err := opts.graphFor(spec.Name)
		if err != nil {
			return nil, err
		}
		scfg := spectral.Config{
			Tolerance:     1e-7,
			MaxIterations: opts.pick(3000, 20000),
			Seed:          opts.Seed,
		}
		if opts.Quick {
			scfg.Tolerance = 1e-5
		}
		sr, err := spectral.SLEM(g, scfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: table I slem of %s: %w", spec.Name, err)
		}
		res.Rows = append(res.Rows, TableIRow{
			Name:       spec.Name,
			PaperNodes: spec.PaperNodes,
			PaperEdges: spec.PaperEdges,
			Nodes:      g.NumNodes(),
			Edges:      g.NumEdges(),
			SLEM:       sr.SLEM,
			Converged:  sr.Converged,
			Class:      spec.Class,
		})
	}
	return res, nil
}
