package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/resilience"
	"github.com/trustnet/trustnet/internal/spectral"
)

// TableIRow is one dataset's entry in the Table I reproduction.
type TableIRow struct {
	Name string
	// PaperNodes/PaperEdges document the original crawl.
	PaperNodes, PaperEdges int64
	// Nodes/Edges are the synthetic stand-in's size.
	Nodes int
	Edges int64
	// SLEM is the measured second largest eigenvalue modulus μ.
	SLEM float64
	// Converged reports whether the power iteration converged within its
	// budget; when false SLEM is the last (still monotone) estimate.
	Converged bool
	// Partial reports a best-effort deadline cut the power iteration
	// short; SLEM is the running estimate after Coverage of the budget.
	Partial  bool
	Coverage float64
	Class    datasets.Class
}

// TableIResult is the Table I reproduction: every dataset with its size
// and second largest eigenvalue of the transition matrix.
type TableIResult struct {
	Rows []TableIRow
	// Partial reports that a best-effort run was cut short: the last row
	// carries a running SLEM estimate and later datasets are missing.
	Partial bool
}

// Table renders the result in the paper's column layout.
func (r *TableIResult) Table() (*report.Table, error) {
	t := report.NewTable(
		"Table I: datasets, synthetic stand-in sizes, and SLEM of the transition matrix",
		"Dataset", "Paper nodes", "Paper edges", "Nodes", "Edges", "mu", "Class",
	)
	for _, row := range r.Rows {
		if err := t.AddRow(
			row.Name,
			report.Int64(row.PaperNodes), report.Int64(row.PaperEdges),
			report.Int(row.Nodes), report.Int64(row.Edges),
			report.Float(row.SLEM, 6), row.Class.String(),
		); err != nil {
			return nil, err
		}
		if row.Partial {
			t.AddNote(fmt.Sprintf("PARTIAL: %s mu is a running estimate at %.0f%% of the iteration budget",
				row.Name, row.Coverage*100))
		}
	}
	if r.Partial {
		t.AddNote("PARTIAL: the run was cut short; later datasets are missing (rerun with -resume to continue)")
	}
	return t, nil
}

// TableI measures every registry dataset's size and SLEM — the Table I
// reproduction. Cancellation of ctx is honored between datasets, so a
// timed-out run stops measuring (and its caller stops printing) instead
// of finishing the table in the background.
func TableI(ctx context.Context, opts Options) (*TableIResult, error) {
	opts.fill()
	specs := datasets.All()
	if opts.Quick {
		specs = datasets.ByBand(datasets.Small)
	}
	res := &TableIResult{Rows: make([]TableIRow, 0, len(specs))}
	for _, spec := range specs {
		scfg := spectral.Config{
			Tolerance:     1e-7,
			MaxIterations: opts.pick(3000, 20000),
			Seed:          opts.Seed,
			Workers:       opts.Workers,
			BestEffort:    opts.BestEffort,
		}
		if opts.Quick {
			scfg.Tolerance = 1e-5
		}
		key := "tableI-" + spec.Name
		fp := resilience.Fingerprint("tableI", spec.Name, opts.Quick, opts.Seed, scfg.MaxIterations, scfg.Tolerance, opts.Substrate)
		if opts.Ckpt != nil && opts.Resume {
			c, err := opts.Ckpt.Load(key, fp)
			if err != nil {
				return nil, fmt.Errorf("experiments: table I: %w", err)
			}
			switch {
			case c != nil && c.Status == resilience.StatusDone:
				// The dataset finished in an earlier run: reuse its row
				// verbatim, no measurement needed.
				var row TableIRow
				if err := c.DecodePayload(&row); err != nil {
					return nil, fmt.Errorf("experiments: table I: %w", err)
				}
				res.Rows = append(res.Rows, row)
				continue
			case c != nil:
				// Interrupted mid-iteration: warm-start the power iteration
				// from the checkpointed eigenvector.
				var sck spectral.Checkpoint
				if err := c.DecodePayload(&sck); err != nil {
					return nil, fmt.Errorf("experiments: table I: %w", err)
				}
				scfg.Resume = &sck
			}
		}
		if err := ctx.Err(); err != nil && !opts.BestEffort {
			return nil, fmt.Errorf("experiments: table I: %w", err)
		}
		g, err := opts.graphFor(spec.Name)
		if err != nil {
			return nil, err
		}
		sr, err := spectral.SLEMContext(ctx, g, scfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: table I slem of %s: %w", spec.Name, err)
		}
		row := TableIRow{
			Name:       spec.Name,
			PaperNodes: spec.PaperNodes,
			PaperEdges: spec.PaperEdges,
			Nodes:      g.NumNodes(),
			Edges:      g.NumEdges(),
			SLEM:       sr.SLEM,
			Converged:  sr.Converged,
			Partial:    sr.Partial,
			Coverage:   sr.Coverage,
			Class:      spec.Class,
		}
		if opts.Ckpt != nil {
			c := &resilience.Checkpoint{Job: key, Fingerprint: fp, Status: resilience.StatusDone}
			if sr.Partial {
				c.Status = resilience.StatusPartial
				err = c.SetPayload(sr.Checkpoint())
			} else {
				err = c.SetPayload(row)
			}
			if err != nil {
				return nil, err
			}
			if err := opts.Ckpt.Save(c); err != nil {
				return nil, fmt.Errorf("experiments: table I: %w", err)
			}
		}
		res.Rows = append(res.Rows, row)
		if sr.Partial {
			res.Partial = true
			break // the deadline already hit; later datasets stay unmeasured
		}
	}
	return res, nil
}
