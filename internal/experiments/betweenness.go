package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/trustnet/trustnet/internal/centrality"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/stats"
)

// BetweennessRow summarizes one dataset's betweenness distribution.
type BetweennessRow struct {
	Name string
	// Top1PctShare is the fraction of total betweenness carried by the
	// top 1% of nodes — the concentration measure.
	Top1PctShare float64
	// MaxNormalized is the largest betweenness divided by the pair count
	// (n-1)(n-2)/2, i.e. the classic normalized betweenness in [0,1].
	MaxNormalized float64
}

// BetweennessResult is the supporting measurement the paper mentions in
// §I–II as the authors' companion study: the "quality (and distribution)
// of shortest-path betweenness" across social graphs. The shape claim it
// supports: slow-mixing community graphs concentrate betweenness on
// their few bridges far more than fast-mixing OSNs, which is why
// betweenness-based defenses inherit the same community sensitivity.
type BetweennessResult struct {
	Rows []BetweennessRow
	// ECDFs holds one normalized-betweenness ECDF series per dataset.
	ECDFs []report.Series
}

// Table renders the per-dataset concentration summary.
func (r *BetweennessResult) Table() (*report.Table, error) {
	t := report.NewTable(
		"Betweenness distribution (companion measurement)",
		"Dataset", "Top-1% share", "Max normalized",
	)
	for _, row := range r.Rows {
		if err := t.AddRow(row.Name,
			report.Float(row.Top1PctShare, 3),
			report.Float(row.MaxNormalized, 4)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// betweennessDatasets mixes fast and slow graphs.
var betweennessDatasets = []string{"wiki-vote", "epinion", "physics-1", "physics-2"}

// BetweennessDistribution measures (pivot-sampled) betweenness across
// representative datasets.
func BetweennessDistribution(ctx context.Context, opts Options) (*BetweennessResult, error) {
	opts.fill()
	names := betweennessDatasets
	if opts.Quick {
		names = names[:2]
	}
	res := &BetweennessResult{}
	for _, name := range names {
		g, err := opts.graphFor(name)
		if err != nil {
			return nil, err
		}
		bc, err := centrality.Betweenness(ctx, g, centrality.Config{
			Pivots:  opts.pick(150, 400),
			Workers: opts.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: betweenness of %s: %w", name, err)
		}
		n := float64(g.NumNodes())
		pairNorm := (n - 1) * (n - 2) / 2
		sorted := make([]float64, len(bc))
		copy(sorted, bc)
		sort.Float64s(sorted)
		var total float64
		for _, v := range sorted {
			total += v
		}
		topCount := int(n / 100)
		if topCount < 1 {
			topCount = 1
		}
		var topSum float64
		for i := len(sorted) - topCount; i < len(sorted); i++ {
			topSum += sorted[i]
		}
		row := BetweennessRow{Name: name}
		if total > 0 {
			row.Top1PctShare = topSum / total
		}
		row.MaxNormalized = sorted[len(sorted)-1] / pairNorm

		normalized := make([]float64, len(sorted))
		for i, v := range sorted {
			normalized[i] = v / pairNorm
		}
		ecdf, err := stats.NewECDF(normalized)
		if err != nil {
			return nil, fmt.Errorf("experiments: betweenness ecdf of %s: %w", name, err)
		}
		xs, fs := ecdf.Points()
		res.ECDFs = append(res.ECDFs, report.Series{Name: name, X: xs, Y: fs})
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
