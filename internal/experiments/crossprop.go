package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/core"
	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/report"
)

// CrossPropertyResult is the §V analysis: full per-dataset measurement
// reports plus the correlations between mixing, core structure, and
// expansion across datasets.
type CrossPropertyResult struct {
	Reports  []*core.Report
	Analysis *core.CrossAnalysis
}

// SummaryTable renders one row per dataset with the headline numbers.
func (r *CrossPropertyResult) SummaryTable() (*report.Table, error) {
	t := report.NewTable(
		"Cross-property summary (§IV/§V)",
		"Dataset", "Nodes", "Edges", "mu", "T(eps)", "Degeneracy", "TopCoreNu", "TopCores", "MinAlpha", "MeanAlpha",
	)
	for _, rep := range r.Reports {
		mix := "> budget"
		if rep.MixedWithinBudget {
			mix = report.Int(rep.MixingTime)
		}
		if err := t.AddRow(
			rep.Name, report.Int(rep.Nodes), report.Int64(rep.Edges),
			report.Float(rep.SLEM, 5), mix,
			report.Int(rep.Cores.Degeneracy),
			report.Float(rep.Cores.TopCoreNu, 3),
			report.Int(rep.Cores.TopCoreComponents),
			report.Float(rep.Expansion.MinAlpha, 4),
			report.Float(rep.Expansion.MeanAlphaSmallSets, 3),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// CorrelationTable renders the Spearman correlations backing the paper's
// §V claims.
func (r *CrossPropertyResult) CorrelationTable() (*report.Table, error) {
	t := report.NewTable(
		"Spearman correlations across datasets",
		"Pair", "rho", "Paper's claim",
	)
	rows := []struct {
		pair, claim string
		rho         float64
	}{
		{"mixing slowness vs top-core relative size", "negative (fast mixers have one big core)", r.Analysis.MixingVsTopCoreNu},
		{"mixing slowness vs number of top cores", "positive (slow mixers split into cores)", r.Analysis.MixingVsCoreComponents},
		{"mixing slowness vs mean expansion factor", "negative (expansion is analogous to mixing)", r.Analysis.MixingVsExpansion},
		{"SLEM vs mixing slowness", "positive (the two measurements agree)", r.Analysis.SLEMVsMixing},
	}
	for _, row := range rows {
		if err := t.AddRow(row.pair, report.Float(row.rho, 3), row.claim); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// crossPropertyDatasets is the subset measured by the cross-property
// analysis: a balanced mix of fast and slow graphs from every band.
var crossPropertyDatasets = []string{
	"wiki-vote", "epinion", "rice-grad", "slashdot-a", "enron",
	"physics-1", "physics-2", "physics-3", "dblp", "facebook-b", "youtube",
}

// CrossProperty measures the suite over a balanced dataset subset and
// computes the §V correlations.
func CrossProperty(ctx context.Context, opts Options) (*CrossPropertyResult, error) {
	opts.fill()
	names := crossPropertyDatasets
	if opts.Quick {
		names = []string{"wiki-vote", "rice-grad", "physics-1", "physics-2"}
	}
	res := &CrossPropertyResult{}
	for _, name := range names {
		g, err := opts.graphFor(name)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Seed:             opts.Seed,
			Workers:          opts.Workers,
			MixingSources:    opts.pick(10, 50),
			MixingMaxSteps:   opts.pick(60, 200),
			ExpansionSources: opts.pick(60, 0),
		}
		rep, err := core.Measure(ctx, name, g, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: cross-property measure %s: %w", name, err)
		}
		res.Reports = append(res.Reports, rep)
	}
	an, err := core.Analyze(res.Reports)
	if err != nil {
		return nil, fmt.Errorf("experiments: cross-property analyze: %w", err)
	}
	res.Analysis = an
	return res, nil
}

// classOf returns the registry class for a dataset name (helper for shape
// checks in tests and EXPERIMENTS.md generation).
func classOf(name string) (datasets.Class, error) {
	spec, err := datasets.ByName(name)
	if err != nil {
		return 0, err
	}
	return spec.Class, nil
}
