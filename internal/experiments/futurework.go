package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/dynamic"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/walk"
)

// DynamicResult addresses the paper's §VI open problem: how the measured
// properties evolve as a social graph grows. One point per snapshot of a
// preferential-attachment evolution with densification.
type DynamicResult struct {
	Points []dynamic.TrackPoint
	// Series: x = snapshot size; y = SLEM / mixing time / min alpha /
	// average degree, for CSV output.
	SLEM      report.Series
	Mixing    report.Series
	MinAlpha  report.Series
	AvgDegree report.Series
}

// Table renders the per-snapshot measurements.
func (r *DynamicResult) Table() (*report.Table, error) {
	t := report.NewTable(
		"Dynamic graphs (§VI open problem): properties across growth snapshots",
		"Nodes", "Edges", "AvgDeg", "mu", "T(0.1)", "MinAlpha", "Degeneracy",
	)
	for _, p := range r.Points {
		mix := "> budget"
		if p.Mixed {
			mix = report.Int(p.MixingTime)
		}
		if err := t.AddRow(
			report.Int(p.Nodes), report.Int64(p.Edges),
			report.Float(p.AverageDegree, 2), report.Float(p.SLEM, 4),
			mix, report.Float(p.MinAlpha, 4), report.Int(p.Degeneracy),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// FutureWorkDynamic grows an evolving social graph and measures every
// snapshot.
func FutureWorkDynamic(ctx context.Context, opts Options) (*DynamicResult, error) {
	opts.fill()
	final := opts.pick(600, 3000)
	snapSizes := []int{final / 8, final / 4, final / 2, final}
	snaps, err := dynamic.Grow(dynamic.GrowthConfig{
		FinalNodes:   final,
		Attach:       4,
		DensifyEvery: 4,
		Snapshots:    snapSizes,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: dynamic grow: %w", err)
	}
	points, err := dynamic.Track(ctx, snaps, dynamic.TrackConfig{
		MixingSources:    opts.pick(10, 30),
		MixingMaxSteps:   opts.pick(60, 150),
		ExpansionSources: opts.pick(60, 200),
		Seed:             opts.Seed,
		Workers:          opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: dynamic track: %w", err)
	}
	res := &DynamicResult{
		Points:    points,
		SLEM:      report.Series{Name: "slem"},
		Mixing:    report.Series{Name: "mixing-time"},
		MinAlpha:  report.Series{Name: "min-alpha"},
		AvgDegree: report.Series{Name: "avg-degree"},
	}
	for _, p := range points {
		x := float64(p.Nodes)
		res.SLEM.X = append(res.SLEM.X, x)
		res.SLEM.Y = append(res.SLEM.Y, p.SLEM)
		res.Mixing.X = append(res.Mixing.X, x)
		res.Mixing.Y = append(res.Mixing.Y, float64(p.MixingTime))
		res.MinAlpha.X = append(res.MinAlpha.X, x)
		res.MinAlpha.Y = append(res.MinAlpha.Y, p.MinAlpha)
		res.AvgDegree.X = append(res.AvgDegree.X, x)
		res.AvgDegree.Y = append(res.AvgDegree.Y, p.AverageDegree)
	}
	return res, nil
}

// ModulatedResult quantifies the trust/mixing trade-off of the modulated
// random walks the paper cites ([16]): the mixing curve of each strategy
// on the same graph.
type ModulatedResult struct {
	// Curves holds one TVD-vs-steps series per strategy variant.
	Curves []report.Series
	// FinalTVD maps each series name to its TVD at the step budget.
	FinalTVD map[string]float64
	// StepsTo01 maps each series name to the first step with TVD < 0.01
	// (0 when not reached within the budget) — the informative metric at
	// budgets long enough for every lazy variant to converge.
	StepsTo01 map[string]int
}

// Table renders the per-strategy mixing cost.
func (r *ModulatedResult) Table() (*report.Table, error) {
	t := report.NewTable(
		"Modulated random walks ([16]): mixing cost per trust strategy",
		"Strategy", "steps to TVD<0.01", "TVD at budget",
	)
	for _, s := range r.Curves {
		steps := "> budget"
		if v := r.StepsTo01[s.Name]; v > 0 {
			steps = report.Int(v)
		}
		if err := t.AddRow(s.Name, steps, report.Float(r.FinalTVD[s.Name], 4)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// FutureWorkModulated measures the mixing cost of each trust modulation
// on the wiki-vote stand-in. Cancellation of ctx is honored before the
// graph build and between strategy variants.
func FutureWorkModulated(ctx context.Context, opts Options) (*ModulatedResult, error) {
	opts.fill()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiments: modulated: %w", err)
	}
	g, err := opts.graphFor("wiki-vote")
	if err != nil {
		return nil, err
	}
	pi, err := g.StationaryDistribution()
	if err != nil {
		return nil, fmt.Errorf("experiments: modulated: %w", err)
	}
	steps := opts.pick(30, 80)
	source, err := walk.SampleSources(g, 1, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: modulated: %w", err)
	}
	variants := []struct {
		name string
		cfg  walk.ModulatedConfig
	}{
		{"uniform", walk.ModulatedConfig{Strategy: walk.StrategyUniform}},
		{"lazy-0.5", walk.ModulatedConfig{Strategy: walk.StrategyLazy, Alpha: 0.5}},
		{"lazy-0.8", walk.ModulatedConfig{Strategy: walk.StrategyLazy, Alpha: 0.8}},
		{"originator-0.2", walk.ModulatedConfig{Strategy: walk.StrategyOriginatorBiased, Alpha: 0.2}},
	}
	res := &ModulatedResult{
		FinalTVD:  make(map[string]float64, len(variants)),
		StepsTo01: make(map[string]int, len(variants)),
	}
	for _, v := range variants {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: modulated: %w", err)
		}
		curve, err := walk.ModulatedMixingCurve(g, source[0], v.cfg, pi, steps)
		if err != nil {
			return nil, fmt.Errorf("experiments: modulated %s: %w", v.name, err)
		}
		s := report.Series{Name: v.name}
		for t, tvd := range curve {
			s.X = append(s.X, float64(t+1))
			s.Y = append(s.Y, tvd)
			if res.StepsTo01[v.name] == 0 && tvd < 0.01 {
				res.StepsTo01[v.name] = t + 1
			}
		}
		res.Curves = append(res.Curves, s)
		res.FinalTVD[v.name] = curve[len(curve)-1]
	}
	return res, nil
}
