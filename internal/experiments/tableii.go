package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/sybil/gatekeeper"
)

// tableIIDatasets are the four graphs of Table II (a Physics
// co-authorship graph, Facebook, LiveJournal, and Slashdot), in the
// paper's row order.
var tableIIDatasets = []string{"physics-3", "facebook-b", "livejournal-a", "slashdot-a"}

// tableIIThresholds is the f sweep. The paper's exact values are
// illegible in the archived copy; {0.1, 0.2, 0.4} matches GateKeeper's
// own evaluation range and reproduces the reported trend (honest
// acceptance falling from ~90% to ~30–45% as f grows).
var tableIIThresholds = []float64{0.1, 0.2, 0.4}

// TableIICell is one (dataset, f) measurement.
type TableIICell struct {
	HonestAcceptPct     float64
	SybilsPerAttackEdge float64
}

// TableIIRow is one dataset's sweep.
type TableIIRow struct {
	Name        string
	AttackEdges int
	SybilNodes  int
	Cells       map[float64]TableIICell
}

// TableIIResult reproduces Table II: GateKeeper on four social graphs,
// honest acceptance percentage and sybils admitted per attack edge for
// each admission threshold f.
type TableIIResult struct {
	Thresholds []float64
	Rows       []TableIIRow
}

// Table renders the paper's layout (one honest and one sybil line per
// dataset).
func (r *TableIIResult) Table() (*report.Table, error) {
	headers := []string{"Dataset", "Metric"}
	for _, f := range r.Thresholds {
		headers = append(headers, fmt.Sprintf("f=%.1f", f))
	}
	t := report.NewTable(
		"Table II: GateKeeper honest acceptance (% of honest region) and sybils per attack edge",
		headers...,
	)
	for _, row := range r.Rows {
		honest := []string{row.Name, "Honest %"}
		sybils := []string{"", "Sybil/edge"}
		for _, f := range r.Thresholds {
			c := row.Cells[f]
			honest = append(honest, report.Float(c.HonestAcceptPct, 1))
			sybils = append(sybils, report.Float(c.SybilsPerAttackEdge, 2))
		}
		if err := t.AddRow(honest...); err != nil {
			return nil, err
		}
		if err := t.AddRow(sybils...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// TableII runs GateKeeper over the four Table II graphs. Attackers are
// random (sybil.Inject places attack edges at random honest endpoints)
// and the distributer count follows the paper's 99 sampled distributers.
// ctx is checked between datasets so a runner timeout cuts the sweep
// short.
func TableII(ctx context.Context, opts Options) (*TableIIResult, error) {
	opts.fill()
	res := &TableIIResult{Thresholds: tableIIThresholds}
	names := tableIIDatasets
	if opts.Quick {
		// One slow and one fast graph, so the quick run still exhibits
		// the Table II contrast.
		names = []string{tableIIDatasets[0], tableIIDatasets[2]}
	}
	for i, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g, err := opts.graphFor(name)
		if err != nil {
			return nil, err
		}
		n := g.NumNodes()
		attackEdges := n / 50
		if attackEdges < 2 {
			attackEdges = 2
		}
		sybilNodes := n / 5
		a, err := sybil.Inject(g, sybil.AttackConfig{
			SybilNodes:  sybilNodes,
			AttackEdges: attackEdges,
			Seed:        opts.Seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: table II inject on %s: %w", name, err)
		}
		out, err := gatekeeper.Run(a, 0, gatekeeper.Config{
			Distributers: opts.pick(30, 99),
			Seed:         opts.Seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: table II gatekeeper on %s: %w", name, err)
		}
		row := TableIIRow{
			Name:        name,
			AttackEdges: attackEdges,
			SybilNodes:  sybilNodes,
			Cells:       make(map[float64]TableIICell, len(res.Thresholds)),
		}
		for _, f := range res.Thresholds {
			acc, err := out.Accepted(f)
			if err != nil {
				return nil, fmt.Errorf("experiments: table II threshold %v: %w", f, err)
			}
			m, err := sybil.Evaluate(a, acc, 0)
			if err != nil {
				return nil, fmt.Errorf("experiments: table II evaluate %s: %w", name, err)
			}
			row.Cells[f] = TableIICell{
				HonestAcceptPct:     100 * m.HonestAcceptRate(),
				SybilsPerAttackEdge: m.SybilsPerAttackEdge(),
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
