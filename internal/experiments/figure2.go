package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/stats"
)

// Figure2Result reproduces Figure 2: the empirical CDF of node coreness
// per dataset, split into the paper's small/large panels.
type Figure2Result struct {
	PanelA []report.Series // small datasets
	PanelB []report.Series // large datasets
	// Degeneracy records each dataset's largest core number.
	Degeneracy map[string]int
}

// Figure2 computes the coreness ECDF of every dataset. Cancellation of
// ctx is honored between datasets.
func Figure2(ctx context.Context, opts Options) (*Figure2Result, error) {
	opts.fill()
	res := &Figure2Result{Degeneracy: make(map[string]int)}
	run := func(specs []datasets.Spec, panel *[]report.Series) error {
		for _, spec := range specs {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("experiments: figure 2: %w", err)
			}
			g, err := opts.graphFor(spec.Name)
			if err != nil {
				return err
			}
			dec, err := kcore.Decompose(g)
			if err != nil {
				return fmt.Errorf("experiments: figure 2 decompose %s: %w", spec.Name, err)
			}
			ecdf, err := stats.NewECDF(dec.CorenessECDFSamples())
			if err != nil {
				return fmt.Errorf("experiments: figure 2 ecdf of %s: %w", spec.Name, err)
			}
			xs, fs := ecdf.Points()
			*panel = append(*panel, report.Series{Name: spec.Name, X: xs, Y: fs})
			res.Degeneracy[spec.Name] = dec.Degeneracy()
		}
		return nil
	}
	smallMedium := append(datasets.ByBand(datasets.Small), datasets.ByBand(datasets.Medium)...)
	if err := run(smallMedium, &res.PanelA); err != nil {
		return nil, err
	}
	if err := run(datasets.ByBand(datasets.Large), &res.PanelB); err != nil {
		return nil, err
	}
	return res, nil
}
