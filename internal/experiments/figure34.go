package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/report"
)

// Figure3Panel is one dataset's expansion scatter (Figure 3 draws one
// panel per dataset): the min/mean/max number of neighbors for each
// observed envelope size.
type Figure3Panel struct {
	Name string
	Min  report.Series
	Mean report.Series
	Max  report.Series
}

// Figure3Result reproduces Figure 3 across all datasets.
type Figure3Result struct {
	Panels []Figure3Panel
}

// Figure4Result reproduces Figure 4: the expected expansion factor α as a
// function of set size, one series per dataset, in the paper's two
// panel grouping ((a) small+slow and (b) medium OSNs).
type Figure4Result struct {
	PanelA []report.Series
	PanelB []report.Series
	// MeanAlphaSmall records each dataset's mean α over sets of at most
	// n/10 nodes, for the shape checks.
	MeanAlphaSmall map[string]float64
}

// measureExpansion runs the envelope measurement for one dataset with
// option-scaled sampling.
func measureExpansion(ctx context.Context, opts Options, g *graph.Graph) (*expansion.Result, error) {
	cfg := expansion.Config{Workers: opts.Workers, BestEffort: opts.BestEffort}
	if opts.Quick {
		srcs, err := expansion.SampledSources(g, 60, opts.Seed)
		if err != nil {
			return nil, err
		}
		cfg.Sources = srcs
	}
	return expansion.Measure(ctx, g, cfg)
}

// Figure3 measures the per-envelope-size neighbor statistics of every
// dataset (all nodes as cores, per the paper's O(nm) measurement; Quick
// mode samples cores instead).
func Figure3(ctx context.Context, opts Options) (*Figure3Result, error) {
	opts.fill()
	specs := datasets.All()
	if opts.Quick {
		specs = datasets.ByBand(datasets.Small)
	}
	res := &Figure3Result{}
	for _, spec := range specs {
		g, err := opts.graphFor(spec.Name)
		if err != nil {
			return nil, err
		}
		er, err := measureExpansion(ctx, opts, g)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 3 expansion of %s: %w", spec.Name, err)
		}
		panel := Figure3Panel{
			Name: spec.Name,
			Min:  report.Series{Name: spec.Name + "/min"},
			Mean: report.Series{Name: spec.Name + "/mean"},
			Max:  report.Series{Name: spec.Name + "/max"},
		}
		for _, size := range er.NeighborsBySetSize.Keys() {
			s, ok := er.NeighborsBySetSize.Get(size)
			if !ok {
				continue
			}
			x := float64(size)
			panel.Min.X = append(panel.Min.X, x)
			panel.Min.Y = append(panel.Min.Y, s.Min())
			panel.Mean.X = append(panel.Mean.X, x)
			panel.Mean.Y = append(panel.Mean.Y, s.Mean())
			panel.Max.X = append(panel.Max.X, x)
			panel.Max.Y = append(panel.Max.Y, s.Max())
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// figure4PanelA and figure4PanelB mirror the paper's grouping: panel (a)
// plots the Physics graphs with Facebook and LiveJournal, panel (b) the
// small/medium OSNs.
var (
	figure4PanelA = []string{"physics-1", "physics-2", "physics-3", "facebook-b", "livejournal-a"}
	figure4PanelB = []string{"wiki-vote", "epinion", "enron", "slashdot-a"}
)

// Figure4 computes the expected expansion factor curves.
func Figure4(ctx context.Context, opts Options) (*Figure4Result, error) {
	opts.fill()
	res := &Figure4Result{MeanAlphaSmall: make(map[string]float64)}
	run := func(names []string, panel *[]report.Series) error {
		for _, name := range names {
			g, err := opts.graphFor(name)
			if err != nil {
				return err
			}
			er, err := measureExpansion(ctx, opts, g)
			if err != nil {
				return fmt.Errorf("experiments: figure 4 expansion of %s: %w", name, err)
			}
			s := report.Series{Name: name}
			var alphaSum float64
			var alphaCnt int
			smallCap := int64(g.NumNodes()) / 10
			for _, size := range er.FactorBySetSize.Keys() {
				sum, ok := er.FactorBySetSize.Get(size)
				if !ok {
					continue
				}
				s.X = append(s.X, float64(size))
				s.Y = append(s.Y, sum.Mean())
				if size <= smallCap {
					alphaSum += sum.Mean()
					alphaCnt++
				}
			}
			*panel = append(*panel, s)
			if alphaCnt > 0 {
				res.MeanAlphaSmall[name] = alphaSum / float64(alphaCnt)
			}
		}
		return nil
	}
	a, b := figure4PanelA, figure4PanelB
	if opts.Quick {
		a, b = a[:2], b[:2]
	}
	if err := run(a, &res.PanelA); err != nil {
		return nil, err
	}
	if err := run(b, &res.PanelB); err != nil {
		return nil, err
	}
	return res, nil
}
