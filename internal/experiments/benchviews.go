package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/jobs"
	"github.com/trustnet/trustnet/internal/walk"
)

// ViewBenchEntry is one per-epoch churn pipeline timed two ways: the
// historical rebuild-per-epoch path (materialize a degraded CSR with a
// Builder after every epoch advance) against the zero-copy path
// (measure directly on the fault model's MaskedView).
type ViewBenchEntry struct {
	// Name is the pipeline: epoch-graph (epoch advance + degraded-graph
	// derivation only) or epoch-mixing (epoch advance + the Eq. 2 mixing
	// measurement on the degraded topology).
	Name string `json:"name"`
	// Dataset names the graph; Nodes/Edges record its size.
	Dataset string `json:"dataset"`
	Nodes   int    `json:"nodes"`
	Edges   int64  `json:"edges"`
	// Epochs is how many fault epochs each variant advanced through.
	Epochs int `json:"epochs"`
	// RebuildSeconds and ViewSeconds are best-of-Repeats wall times for
	// the rebuild-per-epoch and measure-on-view variants.
	RebuildSeconds float64 `json:"rebuild_seconds"`
	ViewSeconds    float64 `json:"view_seconds"`
	// Speedup is RebuildSeconds / ViewSeconds.
	Speedup float64 `json:"speedup"`
	Repeats int     `json:"repeats"`
	// Identical reports that both variants produced bit-for-bit identical
	// results across every epoch; Fingerprint is the shared FNV-1a digest.
	Identical   bool   `json:"identical"`
	Fingerprint string `json:"fingerprint"`
}

// ViewBenchResult is the zero-copy-views baseline cmd/experiments bench
// writes to out/BENCH_views.json: rebuild-vs-view timings with result
// fingerprints, qualified by the machine fields.
type ViewBenchResult struct {
	GoVersion  string           `json:"go_version"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Quick      bool             `json:"quick"`
	Seed       int64            `json:"seed"`
	UnixTime   int64            `json:"unix_time"`
	Entries    []ViewBenchEntry `json:"entries"`
}

// Identical reports whether every entry's rebuild and view fingerprints
// agreed; callers treat false as a failure — the schedules are drawn from
// the same seeds, so any divergence is a masking bug, not noise.
func (r *ViewBenchResult) Identical() bool {
	for _, e := range r.Entries {
		if !e.Identical {
			return false
		}
	}
	return true
}

// benchViewsFaultConfig is the per-epoch fault schedule both variants
// replay: enough churn and edge loss that the masked topology differs
// substantially from the substrate every epoch.
func benchViewsFaultConfig(seed int64) faults.Config {
	return faults.Config{Churn: 0.1, EdgeLoss: 0.05, Seed: seed}
}

// rebuildDegraded is the historical per-epoch derivation: a full Builder
// pass (copy every surviving edge, then the O(m log m) sort/dedupe build)
// producing a standalone degraded CSR.
func rebuildDegraded(m *faults.Model) *graph.Graph {
	b := graph.NewBuilder(m.Graph().NumNodes())
	m.View().VisitEdges(func(e graph.Edge) bool {
		b.AddEdgeSafe(e.U, e.V)
		return true
	})
	return b.Build()
}

// epochDigest folds one epoch's degraded topology into h: edge count plus
// every node degree. Both variants digest the same quantities, so the
// digest cost is symmetric and the fingerprint certifies the view's
// incremental degree bookkeeping against a from-scratch rebuild.
func epochDigest(h interface{ Write(p []byte) (int, error) }, v graph.View) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v.NumEdges()))
	h.Write(buf[:])
	n := v.NumNodes()
	for u := 0; u < n; u++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(v.Degree(graph.NodeID(u))))
		h.Write(buf[:])
	}
}

// BenchViews times the per-epoch churn pipeline with and without the
// zero-copy MaskedView on the 10⁴-node synthetic graph. epoch-graph
// isolates the derivation cost the views remove (rebuild: O(m log m)
// Builder per epoch; view: nothing — the epoch draw already maintains the
// masked topology); epoch-mixing runs the full measure-per-epoch loop the
// churn experiments execute, where the view path materializes at most one
// cached CSR per epoch for the batched kernels. Both variants replay
// identical fault schedules and must produce bit-identical results.
func BenchViews(ctx context.Context, opts Options, repeats int) (*ViewBenchResult, error) {
	opts.fill()
	if repeats < 1 {
		repeats = 1
	}
	g, err := benchKernelGraph()
	if err != nil {
		return nil, fmt.Errorf("experiments: bench views: %w", err)
	}

	res := &ViewBenchResult{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
		Seed:       opts.Seed,
		UnixTime:   time.Now().Unix(),
	}
	fcfg := benchViewsFaultConfig(opts.Seed)

	// Epoch advance + degraded-graph derivation, no measurement.
	graphEpochs := opts.pick(8, 32)
	graphVariant := func(rebuild bool) (string, error) {
		m, err := faults.New(g, fcfg)
		if err != nil {
			return "", err
		}
		h := fnv.New64a()
		for e := 0; e < graphEpochs; e++ {
			if e > 0 {
				m.AdvanceEpoch()
			}
			if rebuild {
				epochDigest(h, rebuildDegraded(m))
			} else {
				epochDigest(h, m.View())
			}
		}
		return fmt.Sprintf("%016x", h.Sum64()), nil
	}
	graphEntry := ViewBenchEntry{
		Name: "epoch-graph", Dataset: "ba-10k",
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Epochs: graphEpochs, Repeats: repeats,
	}
	if err := timeViewVariants(&graphEntry, repeats,
		func() (string, error) { return graphVariant(true) },
		func() (string, error) { return graphVariant(false) },
	); err != nil {
		return nil, fmt.Errorf("experiments: bench epoch-graph: %w", err)
	}
	res.Entries = append(res.Entries, graphEntry)

	// Epoch advance + mixing measurement on the degraded topology — the
	// shape of the churn experiments' inner loop.
	mixEpochs := opts.pick(2, 6)
	mixCfg := walk.MixingConfig{
		MaxSteps: opts.pick(8, 20),
		Sources:  opts.pick(8, 32),
		Seed:     opts.Seed,
		Workers:  opts.Workers,
	}
	mixVariant := func(rebuild bool) (string, error) {
		m, err := faults.New(g, fcfg)
		if err != nil {
			return "", err
		}
		h := fnv.New64a()
		for e := 0; e < mixEpochs; e++ {
			if e > 0 {
				m.AdvanceEpoch()
			}
			var target graph.View = m.View()
			if rebuild {
				target = rebuildDegraded(m)
			}
			mr, err := walk.MeasureMixing(ctx, target, mixCfg)
			if err != nil {
				return "", err
			}
			fmt.Fprint(h, jobs.MixingFingerprint(mr))
		}
		return fmt.Sprintf("%016x", h.Sum64()), nil
	}
	mixEntry := ViewBenchEntry{
		Name: "epoch-mixing", Dataset: "ba-10k",
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Epochs: mixEpochs, Repeats: repeats,
	}
	if err := timeViewVariants(&mixEntry, repeats,
		func() (string, error) { return mixVariant(true) },
		func() (string, error) { return mixVariant(false) },
	); err != nil {
		return nil, fmt.Errorf("experiments: bench epoch-mixing: %w", err)
	}
	res.Entries = append(res.Entries, mixEntry)
	return res, nil
}

// timeViewVariants times the rebuild and view variants of one entry (best
// of repeats each) and records the speedup and fingerprint agreement.
func timeViewVariants(e *ViewBenchEntry, repeats int, rebuild, view func() (string, error)) error {
	rebuildSec, rebuildFP, err := timeVariant(rebuild, repeats)
	if err != nil {
		return err
	}
	viewSec, viewFP, err := timeVariant(view, repeats)
	if err != nil {
		return err
	}
	e.RebuildSeconds, e.ViewSeconds = rebuildSec, viewSec
	if viewSec > 0 {
		e.Speedup = rebuildSec / viewSec
	}
	e.Identical = rebuildFP == viewFP
	e.Fingerprint = viewFP
	return nil
}
