package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/dht"
	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/sybil/gatekeeper"
)

// churnFractions is the x-axis of the degradation curve: the fraction
// of nodes (honest and sybil alike) that have crashed or left by the
// time the application runs over state built on the pristine graph.
var churnFractions = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}

// churnAdmitThreshold is the GateKeeper admission threshold the churn
// sweep holds fixed (the middle of the Table II sweep).
const churnAdmitThreshold = 0.2

// ChurnPoint is one (dataset, churn fraction) measurement.
type ChurnPoint struct {
	Fraction float64
	// DHT aggregates Whānau-style lookups under the fault schedule.
	DHT *dht.FaultEvalResult
	// HonestAcceptPct is GateKeeper's honest acceptance among surviving
	// honest nodes on the degraded graph, in percent.
	HonestAcceptPct float64
	// SybilsPerEdge is accepted sybils per surviving attack edge.
	SybilsPerEdge float64
	// SurvivingAttackEdges counts attack edges the churn left up.
	SurvivingAttackEdges int
}

// ChurnRow is one dataset's sweep.
type ChurnRow struct {
	Name string
	// Class is "fast" or "slow" — the Table I mixing class of the
	// stand-in, which the degradation ordering should track.
	Class  string
	Points []ChurnPoint
}

// ChurnResult is the graceful-degradation experiment: the
// trustworthy-computing applications (Sybil-proof DHT lookups,
// GateKeeper admission) run over state built on the pristine graph
// while an increasing fraction of nodes churns away. The paper derives
// both applications' guarantees from static-graph properties; this
// sweep measures how much of the guarantee survives the assumption
// breaking.
type ChurnResult struct {
	Fractions []float64
	Rows      []ChurnRow
}

// Table renders the DHT success and admission curves side by side.
func (r *ChurnResult) Table() (*report.Table, error) {
	headers := []string{"Dataset", "Metric"}
	for _, f := range r.Fractions {
		headers = append(headers, fmt.Sprintf("churn=%.2f", f))
	}
	t := report.NewTable(
		"Churn: DHT lookup success and GateKeeper honest acceptance vs node churn (state built pre-churn)",
		headers...,
	)
	for _, row := range r.Rows {
		label := fmt.Sprintf("%s (%s)", row.Name, row.Class)
		success := []string{label, "DHT success"}
		degraded := []string{"", "DHT degraded"}
		latency := []string{"", "DHT latency"}
		honest := []string{"", "Honest %"}
		sybils := []string{"", "Sybil/edge"}
		for _, p := range row.Points {
			success = append(success, report.Float(p.DHT.SuccessRate, 3))
			degraded = append(degraded, report.Float(p.DHT.DegradedRate, 3))
			latency = append(latency, report.Float(p.DHT.MeanLatency, 1))
			honest = append(honest, report.Float(p.HonestAcceptPct, 1))
			sybils = append(sybils, report.Float(p.SybilsPerEdge, 2))
		}
		for _, cells := range [][]string{success, degraded, latency, honest, sybils} {
			if err := t.AddRow(cells...); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Series returns the degradation curves in CSV-ready form: per dataset,
// DHT lookup success and honest acceptance (as a fraction) vs churn.
func (r *ChurnResult) Series() []report.Series {
	var out []report.Series
	for _, row := range r.Rows {
		dhtS := report.Series{Name: row.Name + "-dht-success"}
		adm := report.Series{Name: row.Name + "-honest-accept"}
		lat := report.Series{Name: row.Name + "-dht-latency"}
		for _, p := range row.Points {
			dhtS.X = append(dhtS.X, p.Fraction)
			dhtS.Y = append(dhtS.Y, p.DHT.SuccessRate)
			adm.X = append(adm.X, p.Fraction)
			adm.Y = append(adm.Y, p.HonestAcceptPct/100)
			lat.X = append(lat.X, p.Fraction)
			lat.Y = append(lat.Y, p.DHT.MeanLatency)
		}
		out = append(out, dhtS, adm, lat)
	}
	return out
}

// churnDatasets pairs each stand-in with its Table I mixing class. The
// quick set keeps one fast and one slow graph so the contrast the
// acceptance check needs is still exercised.
func churnDatasets(quick bool) [][2]string {
	if quick {
		return [][2]string{{"wiki-vote", "fast"}, {"physics-1", "slow"}}
	}
	return [][2]string{
		{"wiki-vote", "fast"}, {"livejournal-a", "fast"},
		{"physics-1", "slow"}, {"physics-3", "slow"},
	}
}

// Churn runs the graceful-degradation sweep. Routing state and ticket
// sources are built on the pristine graph; every fault schedule is then
// applied to the same build, isolating the effect of churn from
// build-time randomness. ctx is checked between sweep points.
func Churn(ctx context.Context, opts Options) (*ChurnResult, error) {
	opts.fill()
	res := &ChurnResult{Fractions: churnFractions}
	trials := opts.pick(250, 800)
	for i, ds := range churnDatasets(opts.Quick) {
		name, class := ds[0], ds[1]
		g, err := opts.graphFor(name)
		if err != nil {
			return nil, err
		}
		n := g.NumNodes()
		attackEdges := n / 50
		if attackEdges < 2 {
			attackEdges = 2
		}
		a, err := sybil.Inject(g, sybil.AttackConfig{
			SybilNodes:  n / 5,
			AttackEdges: attackEdges,
			Seed:        opts.Seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: churn inject on %s: %w", name, err)
		}
		tab, err := dht.Build(a, dht.Config{Seed: opts.Seed + int64(i)})
		if err != nil {
			return nil, fmt.Errorf("experiments: churn dht build on %s: %w", name, err)
		}
		row := ChurnRow{Name: name, Class: class}
		for j, f := range res.Fractions {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			m, err := faults.New(a.Combined, faults.Config{
				Churn: f,
				Seed:  opts.Seed + int64(100*i+j),
				// The controller asking the admission question is up by
				// definition.
				Protected: []graph.NodeID{0},
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: churn model %s f=%v: %w", name, f, err)
			}
			pt := ChurnPoint{Fraction: f}
			pt.DHT, err = tab.EvaluateUnderFaults(trials, opts.Seed+int64(j), m, dht.FaultConfig{})
			if err != nil {
				return nil, fmt.Errorf("experiments: churn dht eval %s f=%v: %w", name, f, err)
			}

			d, err := sybil.Degrade(a, m)
			if err != nil {
				return nil, fmt.Errorf("experiments: churn degrade %s f=%v: %w", name, f, err)
			}
			pt.SurvivingAttackEdges = len(d.AttackEdges)
			if d.Combined.Degree(0) > 0 {
				out, err := gatekeeper.Run(d, 0, gatekeeper.Config{
					Distributers: opts.pick(30, 99),
					Seed:         opts.Seed + int64(i),
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: churn gatekeeper %s f=%v: %w", name, f, err)
				}
				acc, err := out.Accepted(churnAdmitThreshold)
				if err != nil {
					return nil, err
				}
				mt, err := sybil.EvaluateAlive(d, acc, 0, m)
				if err != nil {
					return nil, fmt.Errorf("experiments: churn evaluate %s f=%v: %w", name, f, err)
				}
				pt.HonestAcceptPct = 100 * mt.HonestAcceptRate()
				pt.SybilsPerEdge = mt.SybilsPerAttackEdge()
			}
			// A controller isolated by churn admits nobody: acceptance
			// stays at the zero value, which is itself a (maximally)
			// degraded but honest answer.
			row.Points = append(row.Points, pt)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
