package experiments

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/trustnet/trustnet/internal/resilience"
)

// countCtx is a context whose Err() flips to DeadlineExceeded after a
// fixed number of calls. The runners and measurements consult Err() at
// deterministic points (per dataset, per power iteration, per walk
// step), so with Workers=1 the "kill" lands at exactly the same place on
// every run — a reproducible stand-in for a wall-clock deadline or a
// killed process.
type countCtx struct {
	context.Context
	calls   atomic.Int64
	budget  int64
	expired atomic.Bool
}

func newCountCtx(budget int64) *countCtx {
	return &countCtx{Context: context.Background(), budget: budget}
}

func (c *countCtx) Err() error {
	if c.calls.Add(1) > c.budget || c.expired.Load() {
		c.expired.Store(true)
		return context.DeadlineExceeded
	}
	return nil
}

func (c *countCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// Kill-and-resume determinism for Table I: interrupt the run mid power
// iteration, then resume from the on-disk checkpoints; the resumed table
// must be bit-identical to a never-interrupted run.
func TestTableIKillAndResumeDeterministic(t *testing.T) {
	base := Options{Quick: true, Seed: 1, Workers: 1}
	ref, err := TableI(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Rows) == 0 {
		t.Fatal("reference run produced no rows")
	}

	store := resilience.NewStore(t.TempDir())
	cut := base
	cut.BestEffort = true
	cut.Ckpt = store
	partial, err := TableI(newCountCtx(60), cut)
	if err != nil {
		t.Fatalf("interrupted best-effort run: %v", err)
	}
	if !partial.Partial {
		t.Fatalf("interrupted run not partial (%d rows) — countCtx budget too large", len(partial.Rows))
	}
	last := partial.Rows[len(partial.Rows)-1]
	if !last.Partial || last.Coverage <= 0 || last.Coverage >= 1 {
		t.Fatalf("last row = %+v, want partial with coverage in (0,1)", last)
	}

	resumed := base
	resumed.Ckpt = store
	resumed.Resume = true
	got, err := TableI(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("resumed run still partial")
	}
	if len(got.Rows) != len(ref.Rows) {
		t.Fatalf("resumed run has %d rows, want %d", len(got.Rows), len(ref.Rows))
	}
	for i, want := range ref.Rows {
		have := got.Rows[i]
		if have.Name != want.Name || have.Nodes != want.Nodes || have.Edges != want.Edges {
			t.Fatalf("row %d = %+v, want %+v", i, have, want)
		}
		if math.Float64bits(have.SLEM) != math.Float64bits(want.SLEM) {
			t.Fatalf("row %d (%s): resumed SLEM %x differs from uninterrupted %x",
				i, want.Name, math.Float64bits(have.SLEM), math.Float64bits(want.SLEM))
		}
		if have.Converged != want.Converged || have.Partial {
			t.Fatalf("row %d (%s): Converged=%v Partial=%v, want %v and false",
				i, want.Name, have.Converged, have.Partial, want.Converged)
		}
	}

	// A third run resumes everything from done checkpoints — no
	// measurement at all — and still reproduces the table.
	again, err := TableI(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Rows {
		if math.Float64bits(again.Rows[i].SLEM) != math.Float64bits(ref.Rows[i].SLEM) {
			t.Fatalf("checkpoint-only rerun diverged on row %d", i)
		}
	}
}

// Kill-and-resume determinism for Figure 1's mixing curves.
func TestFigure1KillAndResumeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-dataset experiment is slow")
	}
	base := Options{Quick: true, Seed: 1, Workers: 1}
	ref, err := Figure1(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	store := resilience.NewStore(t.TempDir())
	cut := base
	cut.BestEffort = true
	cut.Ckpt = store
	// Enough Err() budget to finish some sources of the first dataset
	// (one call per fan-out item, one per walk step).
	partial, err := Figure1(newCountCtx(200), cut)
	if err != nil {
		t.Fatalf("interrupted best-effort run: %v", err)
	}
	if !partial.Partial {
		t.Fatal("interrupted run not partial — countCtx budget too large")
	}

	resumed := base
	resumed.Ckpt = store
	resumed.Resume = true
	got, err := Figure1(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("resumed run still partial")
	}
	if len(got.PanelA) != len(ref.PanelA) || len(got.PanelB) != len(ref.PanelB) {
		t.Fatalf("panels = %d/%d, want %d/%d", len(got.PanelA), len(got.PanelB), len(ref.PanelA), len(ref.PanelB))
	}
	for i, want := range ref.PanelA {
		have := got.PanelA[i]
		for k := range want.Y {
			if math.Float64bits(have.Y[k]) != math.Float64bits(want.Y[k]) {
				t.Fatalf("PanelA %s point %d differs after resume", want.Name, k)
			}
		}
	}
	for i, want := range ref.PanelB {
		have := got.PanelB[i]
		for k := range want.Y {
			if math.Float64bits(have.Y[k]) != math.Float64bits(want.Y[k]) {
				t.Fatalf("PanelB %s point %d differs after resume", want.Name, k)
			}
		}
	}
	for name, want := range ref.MixingTimes {
		if got.MixingTimes[name] != want {
			t.Fatalf("MixingTimes[%s] = %d, want %d", name, got.MixingTimes[name], want)
		}
	}
}
