package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/walk"
)

// BenchEntry is one kernel timed at workers=1 versus workers=N.
type BenchEntry struct {
	// Name is the kernel: mixing (Eq. 2 sampling method), expansion
	// (Eq. 4 envelopes), or spectral (SLEM power iteration).
	Name string `json:"name"`
	// Dataset is the registry graph the kernel ran on.
	Dataset string `json:"dataset"`
	// Workers is the parallel worker count compared against 1.
	Workers int `json:"workers"`
	// SequentialSeconds and ParallelSeconds are the best-of-Repeats wall
	// times at workers=1 and workers=Workers.
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	// Speedup is SequentialSeconds / ParallelSeconds.
	Speedup float64 `json:"speedup"`
	// Repeats is how many times each variant ran (best time kept).
	Repeats int `json:"repeats"`
	// Identical reports the determinism contract held: the workers=1 and
	// workers=N runs produced bit-for-bit identical results.
	Identical bool `json:"identical"`
}

// BenchResult is the perf trajectory point cmd/experiments bench writes to
// out/BENCH_parallel.json. Machine fields qualify the numbers: speedup on
// a single-core runner is ~1× by construction.
type BenchResult struct {
	GoVersion  string       `json:"go_version"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Quick      bool         `json:"quick"`
	Seed       int64        `json:"seed"`
	UnixTime   int64        `json:"unix_time"`
	Entries    []BenchEntry `json:"entries"`
}

// benchKernel is one measurement variant: run executes it at the given
// worker count and returns a fingerprint of the result, so the harness can
// check the workers=1 and workers=N runs agree bit-for-bit.
type benchKernel struct {
	name    string
	dataset string
	run     func(ctx context.Context, g *graph.Graph, workers int) (fingerprint string, err error)
}

// Bench times the three parallel measurement kernels at workers=1 vs
// workers=N and reports the wall-clock speedups — the repo's benchmark
// trajectory. workers <= 0 defaults to GOMAXPROCS; each variant runs
// repeats times (floored at 1) and keeps the best time, damping scheduler
// noise.
func Bench(ctx context.Context, opts Options, workers, repeats int) (*BenchResult, error) {
	opts.fill()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if repeats < 1 {
		repeats = 1
	}
	dataset := "epinion"
	if opts.Quick {
		dataset = "rice-grad"
	}

	mixingCfg := walk.MixingConfig{
		MaxSteps: opts.pick(30, 100),
		Sources:  opts.pick(8, 64),
		Seed:     opts.Seed,
	}
	expansionSources := opts.pick(64, 512)
	spectralCfg := spectral.Config{Tolerance: 1e-9, Seed: opts.Seed}

	kernels := []benchKernel{
		{
			name: "mixing", dataset: dataset,
			run: func(ctx context.Context, g *graph.Graph, w int) (string, error) {
				cfg := mixingCfg
				cfg.Workers = w
				mr, err := walk.MeasureMixing(ctx, g, cfg)
				if err != nil {
					return "", err
				}
				last := len(mr.MeanTVD) - 1
				return fmt.Sprintf("%x/%x/%x", mr.MeanTVD[last], mr.MaxTVD[last], mr.MinTVD[last]), nil
			},
		},
		{
			name: "expansion", dataset: dataset,
			run: func(ctx context.Context, g *graph.Graph, w int) (string, error) {
				srcs, err := expansion.SampledSources(g, expansionSources, opts.Seed)
				if err != nil {
					return "", err
				}
				er, err := expansion.Measure(ctx, g, expansion.Config{Sources: srcs, Workers: w})
				if err != nil {
					return "", err
				}
				fp := fmt.Sprintf("%d/%d", er.MaxEccentricity, len(er.FactorBySetSize.Keys()))
				for _, k := range er.FactorBySetSize.Keys() {
					s, _ := er.FactorBySetSize.Get(k)
					fp += fmt.Sprintf("/%x", s.Mean())
				}
				return fp, nil
			},
		},
		{
			name: "spectral", dataset: dataset,
			run: func(ctx context.Context, g *graph.Graph, w int) (string, error) {
				cfg := spectralCfg
				cfg.Workers = w
				sr, err := spectral.SLEM(g, cfg)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%x/%d", sr.SLEM, sr.Iterations), nil
			},
		},
	}

	res := &BenchResult{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Quick:      opts.Quick,
		Seed:       opts.Seed,
		UnixTime:   time.Now().Unix(),
	}
	for _, k := range kernels {
		g, err := opts.graphFor(k.dataset)
		if err != nil {
			return nil, err
		}
		e := BenchEntry{Name: k.name, Dataset: k.dataset, Workers: workers, Repeats: repeats}
		var seqFP, parFP string
		e.SequentialSeconds, seqFP, err = timeKernel(ctx, k, g, 1, repeats)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench %s workers=1: %w", k.name, err)
		}
		e.ParallelSeconds, parFP, err = timeKernel(ctx, k, g, workers, repeats)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench %s workers=%d: %w", k.name, workers, err)
		}
		if e.ParallelSeconds > 0 {
			e.Speedup = e.SequentialSeconds / e.ParallelSeconds
		}
		e.Identical = seqFP == parFP
		res.Entries = append(res.Entries, e)
	}
	return res, nil
}

// timeKernel runs one kernel variant repeats times and returns the best
// wall time plus the result fingerprint (identical across repeats by the
// determinism contract).
func timeKernel(ctx context.Context, k benchKernel, g *graph.Graph, workers, repeats int) (float64, string, error) {
	best := 0.0
	fp := ""
	for r := 0; r < repeats; r++ {
		start := time.Now()
		f, err := k.run(ctx, g, workers)
		if err != nil {
			return 0, "", err
		}
		sec := time.Since(start).Seconds()
		if r == 0 || sec < best {
			best = sec
		}
		if r > 0 && f != fp {
			return 0, "", fmt.Errorf("kernel %s not deterministic across repeats", k.name)
		}
		fp = f
	}
	return best, fp, nil
}
