package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/jobs"
	"github.com/trustnet/trustnet/internal/kernels"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/walk"
)

// BenchEntry is one kernel timed at workers=1 versus workers=N.
type BenchEntry struct {
	// Name is the kernel: mixing (Eq. 2 sampling method), expansion
	// (Eq. 4 envelopes), or spectral (SLEM power iteration).
	Name string `json:"name"`
	// Dataset is the registry graph the kernel ran on.
	Dataset string `json:"dataset"`
	// Workers is the parallel worker count compared against 1.
	Workers int `json:"workers"`
	// SequentialSeconds and ParallelSeconds are the best-of-Repeats wall
	// times at workers=1 and workers=Workers.
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	// Speedup is SequentialSeconds / ParallelSeconds.
	Speedup float64 `json:"speedup"`
	// Repeats is how many times each variant ran (best time kept).
	Repeats int `json:"repeats"`
	// Identical reports the determinism contract held: the workers=1 and
	// workers=N runs produced bit-for-bit identical results.
	Identical bool `json:"identical"`
}

// BenchResult is the perf trajectory point cmd/experiments bench writes to
// out/BENCH_parallel.json. Machine fields qualify the numbers: speedup on
// a single-core runner is ~1× by construction.
type BenchResult struct {
	GoVersion  string       `json:"go_version"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Quick      bool         `json:"quick"`
	Seed       int64        `json:"seed"`
	UnixTime   int64        `json:"unix_time"`
	Entries    []BenchEntry `json:"entries"`
}

// benchKernel is one measurement variant: run executes it at the given
// worker count and returns a fingerprint of the result, so the harness can
// check the workers=1 and workers=N runs agree bit-for-bit.
type benchKernel struct {
	name    string
	dataset string
	run     func(ctx context.Context, g *graph.Graph, workers int) (fingerprint string, err error)
}

// Bench times the three parallel measurement kernels at workers=1 vs
// workers=N and reports the wall-clock speedups — the repo's benchmark
// trajectory. workers <= 0 defaults to GOMAXPROCS; each variant runs
// repeats times (floored at 1) and keeps the best time, damping scheduler
// noise.
func Bench(ctx context.Context, opts Options, workers, repeats int) (*BenchResult, error) {
	opts.fill()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if repeats < 1 {
		repeats = 1
	}
	dataset := "epinion"
	if opts.Quick {
		dataset = "rice-grad"
	}

	mixingCfg := walk.MixingConfig{
		MaxSteps: opts.pick(30, 100),
		Sources:  opts.pick(8, 64),
		Seed:     opts.Seed,
	}
	expansionSources := opts.pick(64, 512)
	spectralCfg := spectral.Config{Tolerance: 1e-9, Seed: opts.Seed}

	kernels := []benchKernel{
		{
			name: "mixing", dataset: dataset,
			run: func(ctx context.Context, g *graph.Graph, w int) (string, error) {
				cfg := mixingCfg
				cfg.Workers = w
				mr, err := walk.MeasureMixing(ctx, g, cfg)
				if err != nil {
					return "", err
				}
				last := len(mr.MeanTVD) - 1
				return fmt.Sprintf("%x/%x/%x", mr.MeanTVD[last], mr.MaxTVD[last], mr.MinTVD[last]), nil
			},
		},
		{
			name: "expansion", dataset: dataset,
			run: func(ctx context.Context, g *graph.Graph, w int) (string, error) {
				srcs, err := expansion.SampledSources(g, expansionSources, opts.Seed)
				if err != nil {
					return "", err
				}
				er, err := expansion.Measure(ctx, g, expansion.Config{Sources: srcs, Workers: w})
				if err != nil {
					return "", err
				}
				fp := fmt.Sprintf("%d/%d", er.MaxEccentricity, len(er.FactorBySetSize.Keys()))
				for _, k := range er.FactorBySetSize.Keys() {
					s, _ := er.FactorBySetSize.Get(k)
					fp += fmt.Sprintf("/%x", s.Mean())
				}
				return fp, nil
			},
		},
		{
			name: "spectral", dataset: dataset,
			run: func(ctx context.Context, g *graph.Graph, w int) (string, error) {
				cfg := spectralCfg
				cfg.Workers = w
				sr, err := spectral.SLEM(g, cfg)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%x/%d", sr.SLEM, sr.Iterations), nil
			},
		},
	}

	res := &BenchResult{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Quick:      opts.Quick,
		Seed:       opts.Seed,
		UnixTime:   time.Now().Unix(),
	}
	for _, k := range kernels {
		g, err := opts.graphFor(k.dataset)
		if err != nil {
			return nil, err
		}
		e := BenchEntry{Name: k.name, Dataset: k.dataset, Workers: workers, Repeats: repeats}
		var seqFP, parFP string
		e.SequentialSeconds, seqFP, err = timeKernel(ctx, k, g, 1, repeats)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench %s workers=1: %w", k.name, err)
		}
		e.ParallelSeconds, parFP, err = timeKernel(ctx, k, g, workers, repeats)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench %s workers=%d: %w", k.name, workers, err)
		}
		if e.ParallelSeconds > 0 {
			e.Speedup = e.SequentialSeconds / e.ParallelSeconds
		}
		e.Identical = seqFP == parFP
		res.Entries = append(res.Entries, e)
	}
	return res, nil
}

// KernelBenchEntry is one batched kernel timed against its naive
// per-source loop, both at workers=1 so the numbers isolate the kernel's
// algorithmic win from fan-out parallelism.
type KernelBenchEntry struct {
	// Name is the kernel: walk-block (blocked multi-source propagation
	// vs the per-source dense loop) or bfs64 (64-way bit-parallel BFS vs
	// scalar all-cores expansion).
	Name string `json:"name"`
	// Dataset names the graph; Nodes/Edges record its size.
	Dataset string `json:"dataset"`
	Nodes   int    `json:"nodes"`
	Edges   int64  `json:"edges"`
	// Cores or sources measured, and walk steps where applicable.
	Sources int `json:"sources"`
	Steps   int `json:"steps,omitempty"`
	// NaiveSeconds and KernelSeconds are best-of-Repeats wall times.
	NaiveSeconds  float64 `json:"naive_seconds"`
	KernelSeconds float64 `json:"kernel_seconds"`
	// Speedup is NaiveSeconds / KernelSeconds.
	Speedup float64 `json:"speedup"`
	Repeats int     `json:"repeats"`
	// Identical reports that the naive and kernel runs produced
	// bit-for-bit identical results; Fingerprint is the shared FNV-1a
	// digest over every float bit and level count of the result.
	Identical   bool   `json:"identical"`
	Fingerprint string `json:"fingerprint"`
}

// KernelBenchResult is the perf baseline cmd/experiments bench writes to
// out/BENCH_kernels.json: naive-vs-kernel timings with result
// fingerprints, qualified by the machine fields.
type KernelBenchResult struct {
	GoVersion  string             `json:"go_version"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Quick      bool               `json:"quick"`
	Seed       int64              `json:"seed"`
	UnixTime   int64              `json:"unix_time"`
	Entries    []KernelBenchEntry `json:"entries"`
}

// Identical reports whether every entry's naive and kernel fingerprints
// agreed; callers treat false as a failure (the determinism contract is
// part of the baseline, not just the timings).
func (r *KernelBenchResult) Identical() bool {
	for _, e := range r.Entries {
		if !e.Identical {
			return false
		}
	}
	return true
}

// benchKernelGraph generates the 10⁴-node preferential-attachment graph
// the kernel baseline is measured on. It is deliberately not a registry
// dataset: the registry sizes are tuned for the paper's figures, while
// the kernel baseline wants a graph big enough (≥ kernels.MinKernelNodes)
// that the batched kernels are the auto-selected path.
func benchKernelGraph() (*graph.Graph, error) {
	g, err := gen.BarabasiAlbert(10000, 8, 42)
	if err != nil {
		return nil, err
	}
	if !graph.IsConnected(g) {
		g, _ = graph.LargestComponent(g)
	}
	return g, nil
}

// BenchKernels times the blocked walk propagation and the bit-parallel
// BFS against their naive per-source counterparts at workers=1 on the
// 10⁴-node synthetic graph, checking that both variants produce
// bit-for-bit identical results. Quick mode shrinks the sampled sources
// and steps (CI's smoke run); the committed baseline uses the full
// configuration, whose expansion pass is the paper's exact all-cores
// O(nm) measurement.
func BenchKernels(ctx context.Context, opts Options, repeats int) (*KernelBenchResult, error) {
	opts.fill()
	if repeats < 1 {
		repeats = 1
	}
	g, err := benchKernelGraph()
	if err != nil {
		return nil, fmt.Errorf("experiments: bench kernels: %w", err)
	}

	res := &KernelBenchResult{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
		Seed:       opts.Seed,
		UnixTime:   time.Now().Unix(),
	}

	// Blocked walk propagation vs per-source dense loop.
	mixingCfg := walk.MixingConfig{
		MaxSteps: opts.pick(12, 30),
		Sources:  opts.pick(16, 64),
		Seed:     opts.Seed,
		Workers:  1,
	}
	mixing := func(block int) (string, error) {
		cfg := mixingCfg
		cfg.BlockSize = block
		mr, err := walk.MeasureMixing(ctx, g, cfg)
		if err != nil {
			return "", err
		}
		return jobs.MixingFingerprint(mr), nil
	}
	walkEntry := KernelBenchEntry{
		Name: "walk-block", Dataset: "ba-10k",
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Sources: mixingCfg.Sources, Steps: mixingCfg.MaxSteps, Repeats: repeats,
	}
	if err := timeVariants(&walkEntry, repeats,
		func() (string, error) { return mixing(1) },
		func() (string, error) { return mixing(kernels.DefaultBlockWidth) },
	); err != nil {
		return nil, fmt.Errorf("experiments: bench walk-block: %w", err)
	}
	res.Entries = append(res.Entries, walkEntry)

	// Bit-parallel BFS vs scalar expansion. Full mode measures every node
	// as a core (the exact O(nm) form); quick samples.
	var sources []graph.NodeID
	if opts.Quick {
		sources, err = expansion.SampledSources(g, 1024, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench bfs64: %w", err)
		}
	}
	nCores := len(sources)
	if sources == nil {
		nCores = g.NumNodes()
	}
	expand := func(batch int) (string, error) {
		er, err := expansion.Measure(ctx, g, expansion.Config{Sources: sources, Workers: 1, BFSBatch: batch})
		if err != nil {
			return "", err
		}
		return jobs.ExpansionFingerprint(er), nil
	}
	bfsEntry := KernelBenchEntry{
		Name: "bfs64", Dataset: "ba-10k",
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Sources: nCores, Repeats: repeats,
	}
	if err := timeVariants(&bfsEntry, repeats,
		func() (string, error) { return expand(1) },
		func() (string, error) { return expand(kernels.BFSBatchWidth) },
	); err != nil {
		return nil, fmt.Errorf("experiments: bench bfs64: %w", err)
	}
	res.Entries = append(res.Entries, bfsEntry)
	return res, nil
}

// timeVariants times the naive and kernel variants of one entry (best of
// repeats each) and records the speedup and fingerprint agreement.
func timeVariants(e *KernelBenchEntry, repeats int, naive, kernel func() (string, error)) error {
	naiveSec, naiveFP, err := timeVariant(naive, repeats)
	if err != nil {
		return err
	}
	kernelSec, kernelFP, err := timeVariant(kernel, repeats)
	if err != nil {
		return err
	}
	e.NaiveSeconds, e.KernelSeconds = naiveSec, kernelSec
	if kernelSec > 0 {
		e.Speedup = naiveSec / kernelSec
	}
	e.Identical = naiveFP == kernelFP
	e.Fingerprint = kernelFP
	return nil
}

// timeVariant runs fn repeats times, keeping the best wall time, and
// errors if the fingerprint wavers across repeats.
func timeVariant(fn func() (string, error), repeats int) (float64, string, error) {
	best := 0.0
	fp := ""
	for r := 0; r < repeats; r++ {
		start := time.Now()
		f, err := fn()
		if err != nil {
			return 0, "", err
		}
		sec := time.Since(start).Seconds()
		if r == 0 || sec < best {
			best = sec
		}
		if r > 0 && f != fp {
			return 0, "", fmt.Errorf("variant not deterministic across repeats")
		}
		fp = f
	}
	return best, fp, nil
}

// timeKernel runs one kernel variant repeats times and returns the best
// wall time plus the result fingerprint (identical across repeats by the
// determinism contract).
func timeKernel(ctx context.Context, k benchKernel, g *graph.Graph, workers, repeats int) (float64, string, error) {
	best := 0.0
	fp := ""
	for r := 0; r < repeats; r++ {
		start := time.Now()
		f, err := k.run(ctx, g, workers)
		if err != nil {
			return 0, "", err
		}
		sec := time.Since(start).Seconds()
		if r == 0 || sec < best {
			best = sec
		}
		if r > 0 && f != fp {
			return 0, "", fmt.Errorf("kernel %s not deterministic across repeats", k.name)
		}
		fp = f
	}
	return best, fp, nil
}
