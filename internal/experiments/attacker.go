package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/sybil/gatekeeper"
	"github.com/trustnet/trustnet/internal/sybil/sybillimit"
)

// AttackerRow is one placement's measurement across defenses.
type AttackerRow struct {
	Placement sybil.Placement
	// GateKeeper metrics at f=0.2.
	GKHonestPct     float64
	GKSybilsPerEdge float64
	// SybilLimit metrics.
	SLHonestPct     float64
	SLSybilsPerEdge float64
	// MeanEscape is the exact mean probability that a 10-step walk from
	// a sampled honest source crosses into the sybil region. Random
	// routes use edges uniformly in the stationary regime, so this
	// column barely moves across placements — the mechanism behind
	// SybilLimit's placement insensitivity.
	MeanEscape float64
}

// AttackerResult addresses the paper's §VI call for "formal models of
// attackers supported by experimental evidence": the same attack-edge
// budget placed randomly, at the honest hubs, and at the honest
// periphery, against two defenses with different flow mechanics.
//
// The instructive finding: GateKeeper's ticket flow dilutes at
// high-degree nodes, so hub attacks are *weaker* against it, while
// SybilLimit's random routes use every edge uniformly in the stationary
// regime, so its exposure is placement-insensitive.
type AttackerResult struct {
	Dataset     string
	AttackEdges int
	Rows        []AttackerRow
}

// Table renders the comparison.
func (r *AttackerResult) Table() (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Attacker placement models on %s (%d attack edges)",
			r.Dataset, r.AttackEdges),
		"Placement", "GK honest %", "GK sybil/edge", "SL honest %", "SL sybil/edge", "escape(w=10)",
	)
	for _, row := range r.Rows {
		if err := t.AddRow(row.Placement.String(),
			report.Float(row.GKHonestPct, 1),
			report.Float(row.GKSybilsPerEdge, 2),
			report.Float(row.SLHonestPct, 1),
			report.Float(row.SLSybilsPerEdge, 2),
			report.Float(row.MeanEscape, 4)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AttackerModels runs GateKeeper and SybilLimit under the three
// placement models on a fast-mixing dataset, holding everything but the
// placement fixed. Both defenses always run with full parameters — the
// runs are cheap and the placement contrast needs the statistics.
// Cancellation of ctx is honored between placements.
func AttackerModels(ctx context.Context, opts Options) (*AttackerResult, error) {
	opts.fill()
	const dataset = "epinion"
	g, err := opts.graphFor(dataset)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	attackEdges := n / 100
	if attackEdges < 2 {
		attackEdges = 2
	}
	res := &AttackerResult{Dataset: dataset, AttackEdges: attackEdges}
	for _, placement := range []sybil.Placement{sybil.PlaceRandom, sybil.PlaceHubs, sybil.PlacePeriphery} {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: attacker: %w", err)
		}
		a, err := sybil.Inject(g, sybil.AttackConfig{
			SybilNodes:  n / 5,
			AttackEdges: attackEdges,
			Placement:   placement,
			Seed:        opts.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: attacker inject (%v): %w", placement, err)
		}
		row := AttackerRow{Placement: placement}

		out, err := gatekeeper.Run(a, 0, gatekeeper.Config{Distributers: 99, Seed: opts.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: attacker gatekeeper (%v): %w", placement, err)
		}
		acc, err := out.Accepted(0.2)
		if err != nil {
			return nil, err
		}
		m, err := sybil.Evaluate(a, acc, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: attacker evaluate gk (%v): %w", placement, err)
		}
		row.GKHonestPct = 100 * m.HonestAcceptRate()
		row.GKSybilsPerEdge = m.SybilsPerAttackEdge()

		sl, err := sybillimit.Run(a, 0, sybillimit.Config{Seed: opts.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: attacker sybillimit (%v): %w", placement, err)
		}
		m, err = sybil.Evaluate(a, sl.Accepted, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: attacker evaluate sl (%v): %w", placement, err)
		}
		row.SLHonestPct = 100 * m.HonestAcceptRate()
		row.SLSybilsPerEdge = m.SybilsPerAttackEdge()

		srcs := make([]graph.NodeID, 0, 25)
		for v := graph.NodeID(0); v < 25; v++ {
			srcs = append(srcs, v)
		}
		esc, err := sybil.EscapeProbability(a, srcs, 10)
		if err != nil {
			return nil, fmt.Errorf("experiments: attacker escape (%v): %w", placement, err)
		}
		for _, e := range esc {
			row.MeanEscape += e
		}
		row.MeanEscape /= float64(len(esc))

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
