package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/trustnet/trustnet/internal/datasets"
)

// sharedOpts returns quick options with a per-test shared cache.
func sharedOpts() Options {
	return Options{Quick: true, Seed: 7}
}

func TestTableIQuick(t *testing.T) {
	res, err := TableI(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(datasets.ByBand(datasets.Small)) {
		t.Fatalf("rows = %d, want one per small dataset", len(res.Rows))
	}
	var fastMu, slowMu []float64
	for _, row := range res.Rows {
		if row.SLEM <= 0 || row.SLEM >= 1.0001 {
			t.Errorf("%s: mu = %v out of range", row.Name, row.SLEM)
		}
		if row.Nodes <= 0 || row.Edges <= 0 {
			t.Errorf("%s: empty graph", row.Name)
		}
		switch row.Class {
		case datasets.FastMixing:
			fastMu = append(fastMu, row.SLEM)
		case datasets.SlowMixing:
			slowMu = append(slowMu, row.SLEM)
		}
	}
	// Shape: every slow mixer's mu exceeds every fast mixer's mu.
	for _, f := range fastMu {
		for _, s := range slowMu {
			if f >= s {
				t.Errorf("fast mu %v >= slow mu %v: Table I ordering broken", f, s)
			}
		}
	}
	tab, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "wiki-vote") {
		t.Error("rendered table missing dataset")
	}
}

func TestFigure1Quick(t *testing.T) {
	res, err := Figure1(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PanelA) == 0 || len(res.PanelB) == 0 {
		t.Fatalf("panels = %d/%d", len(res.PanelA), len(res.PanelB))
	}
	for _, s := range append(res.PanelA, res.PanelB...) {
		if err := s.Validate(); err != nil {
			t.Errorf("series %s: %v", s.Name, err)
		}
		// TVD curves start high and end lower.
		if s.Y[0] < s.Y[len(s.Y)-1] {
			t.Errorf("series %s: TVD increased from %v to %v", s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
	// Per-source ECDFs exist for every dataset and are valid monotone
	// step functions.
	if len(res.SourceECDFs) != len(res.PanelA)+len(res.PanelB) {
		t.Errorf("source ECDFs = %d, want %d", len(res.SourceECDFs), len(res.PanelA)+len(res.PanelB))
	}
	for _, s := range res.SourceECDFs {
		if err := s.Validate(); err != nil {
			t.Errorf("source ecdf %s: %v", s.Name, err)
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Errorf("source ecdf %s not monotone", s.Name)
				break
			}
		}
	}
	// Shape: the Physics co-authorship graphs mix slower than wiki-vote —
	// wiki-vote reaches eps=0.1 strictly sooner (0 means never reached).
	wv := res.MixingTimes["wiki-vote"]
	if wv == 0 {
		t.Fatal("wiki-vote did not mix to 0.1 within budget")
	}
	for _, slow := range []string{"physics-1", "physics-2"} {
		if st := res.MixingTimes[slow]; st != 0 && st <= wv {
			t.Errorf("%s mixed in %d <= wiki-vote %d", slow, st, wv)
		}
	}
}

func TestFigure2Quick(t *testing.T) {
	res, err := Figure2(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PanelA) == 0 || len(res.PanelB) == 0 {
		t.Fatalf("panels = %d/%d", len(res.PanelA), len(res.PanelB))
	}
	for _, s := range append(res.PanelA, res.PanelB...) {
		if err := s.Validate(); err != nil {
			t.Errorf("series %s: %v", s.Name, err)
		}
		last := s.Y[len(s.Y)-1]
		if last < 0.9999 {
			t.Errorf("series %s: ECDF ends at %v, want 1", s.Name, last)
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Errorf("series %s: ECDF not monotone at %d", s.Name, i)
			}
		}
	}
	if res.Degeneracy["wiki-vote"] == 0 {
		t.Error("missing degeneracy for wiki-vote")
	}
}

func TestTableIIQuick(t *testing.T) {
	res, err := TableII(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("quick rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		prevHonest := 101.0
		for _, f := range res.Thresholds {
			c, ok := row.Cells[f]
			if !ok {
				t.Fatalf("%s: missing cell f=%v", row.Name, f)
			}
			if c.HonestAcceptPct < 0 || c.HonestAcceptPct > 100 {
				t.Errorf("%s f=%v: honest %% = %v", row.Name, f, c.HonestAcceptPct)
			}
			// Shape: honest acceptance decreases as f grows.
			if c.HonestAcceptPct > prevHonest+1e-9 {
				t.Errorf("%s: honest %% increased at f=%v: %v -> %v",
					row.Name, f, prevHonest, c.HonestAcceptPct)
			}
			prevHonest = c.HonestAcceptPct
			if c.SybilsPerAttackEdge < 0 {
				t.Errorf("%s f=%v: negative sybils per edge", row.Name, f)
			}
		}
		small := row.Cells[res.Thresholds[0]]
		if small.SybilsPerAttackEdge > 25 {
			t.Errorf("%s: sybils per edge = %v, want bounded", row.Name, small.SybilsPerAttackEdge)
		}
	}
	// Shape contrast, as in the paper's Table II: near-total honest
	// acceptance on the fast mixer, visibly degraded acceptance on the
	// slow one whose expansion violates GateKeeper's assumption.
	slow := res.Rows[0].Cells[res.Thresholds[0]]
	fast := res.Rows[1].Cells[res.Thresholds[0]]
	if fast.HonestAcceptPct < 90 {
		t.Errorf("fast graph honest %% = %v, want >= 90", fast.HonestAcceptPct)
	}
	if slow.HonestAcceptPct < 40 {
		t.Errorf("slow graph honest %% = %v, want >= 40", slow.HonestAcceptPct)
	}
	if fast.HonestAcceptPct <= slow.HonestAcceptPct {
		t.Errorf("fast honest %% %v <= slow %v", fast.HonestAcceptPct, slow.HonestAcceptPct)
	}
	tab, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Honest %") {
		t.Error("rendered table missing metric rows")
	}
}

func TestFigure3Quick(t *testing.T) {
	res, err := Figure3(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != len(datasets.ByBand(datasets.Small)) {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, p := range res.Panels {
		for _, s := range []struct {
			name   string
			series interface{ Validate() error }
		}{{"min", &p.Min}, {"mean", &p.Mean}, {"max", &p.Max}} {
			if err := s.series.Validate(); err != nil {
				t.Errorf("%s/%s: %v", p.Name, s.name, err)
			}
		}
		// min <= mean <= max pointwise.
		for i := range p.Mean.Y {
			if p.Min.Y[i] > p.Mean.Y[i]+1e-9 || p.Mean.Y[i] > p.Max.Y[i]+1e-9 {
				t.Errorf("%s: min/mean/max out of order at %d", p.Name, i)
			}
		}
	}
}

func TestFigure4Quick(t *testing.T) {
	res, err := Figure4(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PanelA) != 2 || len(res.PanelB) != 2 {
		t.Fatalf("quick panels = %d/%d, want 2/2", len(res.PanelA), len(res.PanelB))
	}
	// Shape: the fast OSNs of panel B expand better over small sets than
	// the slow co-authorship graphs of panel A.
	slow := res.MeanAlphaSmall["physics-1"]
	fast := res.MeanAlphaSmall["wiki-vote"]
	if fast <= slow {
		t.Errorf("mean alpha wiki-vote %v <= physics-1 %v", fast, slow)
	}
}

func TestFigure5Quick(t *testing.T) {
	res, err := Figure5(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 3 {
		t.Fatalf("quick panels = %d, want 3", len(res.Panels))
	}
	for _, p := range res.Panels {
		if p.Degeneracy < 1 {
			t.Errorf("%s: degeneracy %d", p.Name, p.Degeneracy)
		}
		// ν̃_k decreases with k.
		for i := 1; i < len(p.RelativeSize.Y); i++ {
			if p.RelativeSize.Y[i] > p.RelativeSize.Y[i-1]+1e-9 {
				t.Errorf("%s: nu-tilde increased at k=%v", p.Name, p.RelativeSize.X[i])
			}
		}
		cls, err := classOf(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		// Shape: slow mixers end with multiple cores, fast with one.
		switch cls {
		case datasets.SlowMixing:
			if p.TopComponents < 2 {
				t.Errorf("%s (slow): top cores = %d, want >= 2", p.Name, p.TopComponents)
			}
		case datasets.FastMixing:
			if p.TopComponents != 1 {
				t.Errorf("%s (fast): top cores = %d, want 1", p.Name, p.TopComponents)
			}
		}
	}
}

func TestCrossPropertyQuick(t *testing.T) {
	res, err := CrossProperty(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(res.Reports))
	}
	if res.Analysis.MixingVsTopCoreNu >= 0 {
		t.Errorf("mixing↔core correlation = %v, want negative", res.Analysis.MixingVsTopCoreNu)
	}
	if res.Analysis.MixingVsExpansion >= 0 {
		t.Errorf("mixing↔expansion correlation = %v, want negative", res.Analysis.MixingVsExpansion)
	}
	sum, err := res.SummaryTable()
	if err != nil {
		t.Fatal(err)
	}
	if sum.NumRows() != 4 {
		t.Errorf("summary rows = %d", sum.NumRows())
	}
	corr, err := res.CorrelationTable()
	if err != nil {
		t.Fatal(err)
	}
	if corr.NumRows() != 4 {
		t.Errorf("correlation rows = %d", corr.NumRows())
	}
}

func TestSharedCacheReused(t *testing.T) {
	opts := sharedOpts()
	opts.fill()
	g1, err := opts.graphFor("wiki-vote")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := opts.graphFor("wiki-vote")
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("cache not shared within options")
	}
	if _, err := opts.graphFor("nope"); err == nil {
		t.Error("graphFor(nope): want error")
	}
}

// Regression: TableI, Figure2, Figure5, FutureWorkModulated, and
// AttackerModels used to ignore cancellation entirely, so a timed-out
// runner job kept measuring (and later printing) in its abandoned
// goroutine.
func TestRunnersHonorCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := sharedOpts()
	if _, err := TableI(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("TableI: %v, want context.Canceled", err)
	}
	if _, err := Figure2(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("Figure2: %v, want context.Canceled", err)
	}
	if _, err := Figure5(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("Figure5: %v, want context.Canceled", err)
	}
	if _, err := FutureWorkModulated(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("FutureWorkModulated: %v, want context.Canceled", err)
	}
	if _, err := AttackerModels(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("AttackerModels: %v, want context.Canceled", err)
	}
}
