package experiments

import (
	"context"
	"testing"
)

func TestBridgeSweepQuick(t *testing.T) {
	res, err := BridgeSweep(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	// More bridges -> smaller SLEM and better expansion, monotonically.
	for i := 1; i < len(res.Points); i++ {
		prev, cur := res.Points[i-1], res.Points[i]
		if cur.Bridges <= prev.Bridges {
			t.Fatalf("budgets not increasing: %d -> %d", prev.Bridges, cur.Bridges)
		}
		if cur.SLEM >= prev.SLEM {
			t.Errorf("SLEM did not drop with bridges: %v (b=%d) -> %v (b=%d)",
				prev.SLEM, prev.Bridges, cur.SLEM, cur.Bridges)
		}
		if cur.MinAlpha <= prev.MinAlpha {
			t.Errorf("min alpha did not grow with bridges: %v -> %v", prev.MinAlpha, cur.MinAlpha)
		}
		// Mixing time: once both mix, more bridges mix faster; a point
		// that doesn't mix counts as slower than any that does.
		if prev.Mixed && cur.Mixed && cur.MixingTime > prev.MixingTime {
			t.Errorf("mixing time grew with bridges: %d -> %d", prev.MixingTime, cur.MixingTime)
		}
		if !prev.Mixed && cur.Mixed {
			continue // improved from unmixed to mixed: fine
		}
		if prev.Mixed && !cur.Mixed {
			t.Errorf("bridges=%d mixed but bridges=%d did not", prev.Bridges, cur.Bridges)
		}
	}
	tab, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Errorf("table rows = %d", tab.NumRows())
	}
}
