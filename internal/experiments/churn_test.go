package experiments

import (
	"context"
	"testing"
)

func TestChurnQuick(t *testing.T) {
	res, err := Churn(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("quick churn rows = %d, want 2", len(res.Rows))
	}
	var fast, slow *ChurnRow
	for i := range res.Rows {
		switch res.Rows[i].Class {
		case "fast":
			fast = &res.Rows[i]
		case "slow":
			slow = &res.Rows[i]
		}
	}
	if fast == nil || slow == nil {
		t.Fatal("quick churn set must contain one fast and one slow stand-in")
	}
	for _, row := range res.Rows {
		if len(row.Points) != len(res.Fractions) {
			t.Fatalf("%s has %d points, want %d", row.Name, len(row.Points), len(res.Fractions))
		}
		if p0 := row.Points[0]; p0.Fraction != 0 || p0.DHT.DegradedRate != 0 {
			t.Errorf("%s churn-0 point degraded: %+v", row.Name, p0)
		}
	}
	// Graceful degradation on the fast mixer: no cliff to ~0 below 30%
	// churn (the acceptance criterion of the robustness pass).
	for _, p := range fast.Points {
		if p.Fraction < 0.3 && p.DHT.SuccessRate < 0.3 {
			t.Errorf("fast mixer %s cliffed to %.3f at churn %.2f",
				fast.Name, p.DHT.SuccessRate, p.Fraction)
		}
	}
	// Fast vs slow ordered consistently with Table I at every churn
	// level (small tolerance for sampling noise).
	for j := range res.Fractions {
		if fast.Points[j].DHT.SuccessRate+0.05 < slow.Points[j].DHT.SuccessRate {
			t.Errorf("churn %.2f: fast success %.3f below slow %.3f",
				res.Fractions[j], fast.Points[j].DHT.SuccessRate, slow.Points[j].DHT.SuccessRate)
		}
	}
	// Rendering paths.
	tab, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5*len(res.Rows) {
		t.Errorf("table rows = %d, want %d", tab.NumRows(), 5*len(res.Rows))
	}
	series := res.Series()
	if len(series) != 3*len(res.Rows) {
		t.Errorf("series = %d, want %d", len(series), 3*len(res.Rows))
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestChurnDeterministic(t *testing.T) {
	a, err := Churn(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i].Points {
			pa, pb := a.Rows[i].Points[j], b.Rows[i].Points[j]
			if *pa.DHT != *pb.DHT || pa.HonestAcceptPct != pb.HonestAcceptPct ||
				pa.SybilsPerEdge != pb.SybilsPerEdge {
				t.Fatalf("churn point %d/%d differs across identical runs: %+v vs %+v", i, j, pa, pb)
			}
		}
	}
}

func TestChurnHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Churn(ctx, sharedOpts()); err == nil {
		t.Error("Churn(cancelled ctx): want error")
	}
}
