package experiments

import (
	"context"
	"testing"

	"github.com/trustnet/trustnet/internal/sybil"
)

func TestAttackerModelsQuick(t *testing.T) {
	res, err := AttackerModels(context.Background(), sharedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	byPlacement := map[sybil.Placement]AttackerRow{}
	for _, row := range res.Rows {
		byPlacement[row.Placement] = row
		if row.GKHonestPct < 90 || row.SLHonestPct < 90 {
			t.Errorf("%v: honest %% GK=%v SL=%v, want >= 90 on a fast mixer",
				row.Placement, row.GKHonestPct, row.SLHonestPct)
		}
	}
	// GateKeeper's ticket flow dilutes at hubs: a hub attack is weaker
	// than a random one against it.
	hubs := byPlacement[sybil.PlaceHubs]
	random := byPlacement[sybil.PlaceRandom]
	if hubs.GKSybilsPerEdge >= random.GKSybilsPerEdge {
		t.Errorf("GK sybils/edge hubs %v >= random %v; hub dilution missing",
			hubs.GKSybilsPerEdge, random.GKSybilsPerEdge)
	}
	// SybilLimit's random routes use edges uniformly: placement changes
	// its exposure far less (within 2x across placements).
	minSL, maxSL := byPlacement[sybil.PlaceRandom].SLSybilsPerEdge, byPlacement[sybil.PlaceRandom].SLSybilsPerEdge
	for _, row := range res.Rows {
		if row.SLSybilsPerEdge < minSL {
			minSL = row.SLSybilsPerEdge
		}
		if row.SLSybilsPerEdge > maxSL {
			maxSL = row.SLSybilsPerEdge
		}
	}
	if minSL > 0 && maxSL > 2*minSL {
		t.Errorf("SL sybils/edge spread %v..%v exceeds 2x; expected placement insensitivity",
			minSL, maxSL)
	}
	tab, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Errorf("table rows = %d", tab.NumRows())
	}
}
