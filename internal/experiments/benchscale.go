package experiments

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/jobs"
	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/walk"
)

// ScaleKernelEntry is one measurement kernel timed on the mmap-backed
// graph, monolithic versus sharded.
type ScaleKernelEntry struct {
	// Name is the kernel: mixing, expansion, spectral, or kcore.
	Name string `json:"name"`
	// MonoSeconds and ShardedSeconds are single-run wall times on the
	// mapped view directly and on its sharded wrapper.
	MonoSeconds    float64 `json:"mono_seconds"`
	ShardedSeconds float64 `json:"sharded_seconds"`
	// Ratio is MonoSeconds / ShardedSeconds (> 1 means sharding won).
	Ratio float64 `json:"ratio"`
	// Identical reports the two runs' fingerprints agreed bit-for-bit.
	Identical bool `json:"identical"`
	// Fingerprint is the shared FNV-1a digest of the result.
	Fingerprint string `json:"fingerprint"`
}

// ScaleBenchResult is the large-graph substrate baseline cmd/experiments
// bench writes to out/BENCH_scale.json: a graph streamed to TNG2 in
// bounded memory, mmap-loaded, and measured end to end, with the sharded
// engine checked against the monolithic one — on the big graph itself
// and on the 10⁴-node reference the kernel baseline uses.
type ScaleBenchResult struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	Seed       int64  `json:"seed"`
	UnixTime   int64  `json:"unix_time"`

	// Nodes/Attach parameterize the streamed BA graph; Edges is measured.
	Nodes  int   `json:"nodes"`
	Attach int   `json:"attach"`
	Edges  int64 `json:"edges"`
	// Shards is the shard count the sharded runs used.
	Shards int `json:"shards"`

	// GenerateSeconds covers the streaming generation (external-sort CSR
	// writer included); SpillRuns/SpilledBytes show it ran out-of-core.
	GenerateSeconds float64 `json:"generate_seconds"`
	SpillRuns       int     `json:"spill_runs"`
	SpilledBytes    int64   `json:"spilled_bytes"`
	// FileBytes is the TNG2 image size; OpenMappedSeconds the zero-copy
	// load time.
	FileBytes         int64   `json:"file_bytes"`
	OpenMappedSeconds float64 `json:"open_mapped_seconds"`
	// PeakRSSBytes is the process high-water mark (VmHWM) after the whole
	// run, 0 where /proc is unavailable.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`

	Entries []ScaleKernelEntry `json:"entries"`
	// ReferenceIdentical reports the mixing and expansion fingerprints
	// agreed between monolithic and sharded runs on the 10⁴-node
	// reference graph.
	ReferenceIdentical bool `json:"reference_identical"`
}

// Identical reports whether every mono/sharded pair — big graph and
// reference — agreed; callers treat false as a failure.
func (r *ScaleBenchResult) Identical() bool {
	for _, e := range r.Entries {
		if !e.Identical {
			return false
		}
	}
	return r.ReferenceIdentical
}

// BenchScale streams a preferential-attachment graph to a TNG2 file in
// bounded memory (10⁵ nodes quick, 10⁶ full), opens it as a zero-copy
// mmap view, and times each measurement kernel on the mapped view
// directly versus through a ShardedGraph wrapper, checking bit-identical
// results. scratch is where the graph image and spill runs go; the image
// is removed before returning.
func BenchScale(ctx context.Context, opts Options, shards int, scratch string) (*ScaleBenchResult, error) {
	opts.fill()
	if shards < 1 {
		shards = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := opts.pick(100_000, 1_000_000)
	const attach = 8

	res := &ScaleBenchResult{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
		Seed:       opts.Seed,
		UnixTime:   time.Now().Unix(),
		Nodes:      n,
		Attach:     attach,
		Shards:     shards,
	}

	// Stream the graph to disk through the external-sort CSR writer. A
	// small arc buffer forces spill runs so the committed baseline
	// demonstrates the out-of-core path, not just the in-memory sort.
	es, err := gen.StreamBA(n, attach, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench scale: %w", err)
	}
	path := filepath.Join(scratch, "scale-ba.tng2")
	defer os.Remove(path)
	start := time.Now()
	st, err := func() (graph.CSRStats, error) {
		f, err := os.Create(path)
		if err != nil {
			return graph.CSRStats{}, err
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		st, err := gen.StreamCSR(es, bw, graph.CSRWriterConfig{
			TempDir:    scratch,
			BufferArcs: 1 << 20, // 8 MiB buffer: 10⁶-node generation spills
		})
		if err != nil {
			f.Close()
			return graph.CSRStats{}, err
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return graph.CSRStats{}, err
		}
		return st, f.Close()
	}()
	if err != nil {
		return nil, fmt.Errorf("experiments: bench scale: stream: %w", err)
	}
	res.GenerateSeconds = time.Since(start).Seconds()
	res.Edges = st.Edges
	res.SpillRuns = st.Runs
	res.SpilledBytes = st.SpilledBytes
	if fi, err := os.Stat(path); err == nil {
		res.FileBytes = fi.Size()
	}

	start = time.Now()
	mg, err := graph.OpenMapped(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench scale: open mapped: %w", err)
	}
	defer mg.Close()
	res.OpenMappedSeconds = time.Since(start).Seconds()

	sg, err := graph.NewSharded(mg, shards)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench scale: shard: %w", err)
	}

	// Capped kernel configurations: the point is substrate throughput,
	// not full measurements, so walks take a few steps, expansion runs
	// one 64-source batch, and the power iteration is iteration-capped
	// (an unconverged estimate is still bit-reproducible).
	mixingCfg := walk.MixingConfig{
		MaxSteps: 5, Sources: 8, Seed: opts.Seed, Workers: workers, BlockSize: 4,
	}
	expSources, err := expansion.SampledSources(mg, 64, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench scale: sources: %w", err)
	}
	spectralCfg := spectral.Config{
		Tolerance: 1e-8, MaxIterations: 25, Seed: opts.Seed, Workers: workers,
	}

	runs := []struct {
		name string
		run  func(v graph.View) (string, error)
	}{
		{"mixing", func(v graph.View) (string, error) {
			mr, err := walk.MeasureMixing(ctx, v, mixingCfg)
			if err != nil {
				return "", err
			}
			return jobs.MixingFingerprint(mr), nil
		}},
		{"expansion", func(v graph.View) (string, error) {
			er, err := expansion.Measure(ctx, v, expansion.Config{
				Sources: expSources, Workers: workers, BFSBatch: 64,
			})
			if err != nil {
				return "", err
			}
			return jobs.ExpansionFingerprint(er), nil
		}},
		{"spectral", func(v graph.View) (string, error) {
			sr, err := spectral.SLEMContext(ctx, v, spectralCfg)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%x/%d", sr.SLEM, sr.Iterations), nil
		}},
		{"kcore", func(v graph.View) (string, error) {
			dec, err := kcore.Decompose(v)
			if err != nil {
				return "", err
			}
			return jobs.CorenessFingerprint(dec), nil
		}},
	}
	for _, k := range runs {
		e := ScaleKernelEntry{Name: k.name}
		start = time.Now()
		monoFP, err := k.run(mg)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench scale: %s mono: %w", k.name, err)
		}
		e.MonoSeconds = time.Since(start).Seconds()
		start = time.Now()
		shardFP, err := k.run(sg)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench scale: %s sharded: %w", k.name, err)
		}
		e.ShardedSeconds = time.Since(start).Seconds()
		if e.ShardedSeconds > 0 {
			e.Ratio = e.MonoSeconds / e.ShardedSeconds
		}
		e.Identical = monoFP == shardFP
		e.Fingerprint = shardFP
		res.Entries = append(res.Entries, e)
	}

	// Reference identity on the kernel baseline's 10⁴-node graph: the
	// same check CI's equivalence suites run, recorded in the artifact.
	ref, err := benchKernelGraph()
	if err != nil {
		return nil, fmt.Errorf("experiments: bench scale: reference: %w", err)
	}
	refSharded, err := graph.NewSharded(ref, shards)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench scale: reference: %w", err)
	}
	res.ReferenceIdentical = true
	refMix := walk.MixingConfig{MaxSteps: 10, Sources: 16, Seed: opts.Seed, Workers: workers, BlockSize: 8}
	refSources, err := expansion.SampledSources(ref, 128, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench scale: reference: %w", err)
	}
	refChecks := []func(v graph.View) (string, error){
		func(v graph.View) (string, error) {
			mr, err := walk.MeasureMixing(ctx, v, refMix)
			if err != nil {
				return "", err
			}
			return jobs.MixingFingerprint(mr), nil
		},
		func(v graph.View) (string, error) {
			er, err := expansion.Measure(ctx, v, expansion.Config{
				Sources: refSources, Workers: workers, BFSBatch: 64,
			})
			if err != nil {
				return "", err
			}
			return jobs.ExpansionFingerprint(er), nil
		},
	}
	for _, check := range refChecks {
		a, err := check(ref)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench scale: reference: %w", err)
		}
		b, err := check(refSharded)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench scale: reference: %w", err)
		}
		if a != b {
			res.ReferenceIdentical = false
		}
	}

	res.PeakRSSBytes = peakRSSBytes()
	return res, nil
}

// peakRSSBytes reads the process memory high-water mark (VmHWM) from
// /proc/self/status, returning 0 where that interface does not exist.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
