package experiments

import (
	"context"
	"encoding/json"
	"testing"
)

// TestBenchScaleQuick streams the quick-mode (10⁵-node) graph through the
// whole substrate pipeline — external-sort writer, mmap load, all four
// kernels monolithic and sharded — and requires every fingerprint pair to
// agree.
func TestBenchScaleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scale bench streams a 10^5-node graph")
	}
	res, err := BenchScale(context.Background(), Options{Quick: true, Seed: 1}, 2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 100_000 {
		t.Fatalf("quick mode nodes = %d, want 100000", res.Nodes)
	}
	if res.Edges <= 0 || res.FileBytes <= 0 {
		t.Fatalf("degenerate stream: %d edges, %d file bytes", res.Edges, res.FileBytes)
	}
	if res.GenerateSeconds <= 0 || res.OpenMappedSeconds <= 0 {
		t.Fatalf("non-positive timings: gen %v, open %v",
			res.GenerateSeconds, res.OpenMappedSeconds)
	}
	want := []string{"mixing", "expansion", "spectral", "kcore"}
	if len(res.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(res.Entries), len(want))
	}
	for i, e := range res.Entries {
		if e.Name != want[i] {
			t.Fatalf("entry %d is %q, want %q", i, e.Name, want[i])
		}
		if e.MonoSeconds <= 0 || e.ShardedSeconds <= 0 {
			t.Fatalf("%s: non-positive timings: mono %v, sharded %v",
				e.Name, e.MonoSeconds, e.ShardedSeconds)
		}
		if !e.Identical {
			t.Fatalf("%s: sharded fingerprint diverged from monolithic", e.Name)
		}
		if e.Fingerprint == "" {
			t.Fatalf("%s: empty fingerprint", e.Name)
		}
	}
	if !res.ReferenceIdentical {
		t.Fatal("reference graph fingerprints diverged")
	}
	if !res.Identical() {
		t.Fatal("Identical() is false with all entries identical")
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("result not JSON-serializable: %v", err)
	}
}
