package experiments

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/jobs"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/resilience"
)

// JobConfig is the typed configuration every experiment registers into
// the job registry with; jobs.ConfigFingerprint over this struct is the
// config half of the artifact cache key. Worker count and best-effort
// mode are deliberately absent: the determinism contract makes complete
// results identical at any worker count, and a best-effort run that
// finishes in time is indistinguishable from a plain one (partial
// results are never cached at all).
type JobConfig struct {
	// Job is the registry name, so two experiments with otherwise equal
	// knobs never share a fingerprint.
	Job string `json:"job"`
	// Quick and Seed select the sampling regime and random streams.
	Quick bool  `json:"quick"`
	Seed  int64 `json:"seed"`
	// Incremental routes the epoch sweep through the incremental
	// maintainers; only the epochs job sets it (SLEM differs within
	// tolerance between the two paths, so they must not share a cache
	// slot).
	Incremental bool `json:"incremental,omitempty"`
}

// SubstrateFingerprint digests the graph substrate a run measures: the
// canonical graph.Fingerprint of every registry dataset the
// configuration touches (the small band in quick mode, the full
// registry otherwise), combined per dataset name. Graphs are generated
// through the shared Options.Cache, so the jobs that follow reuse them
// instead of regenerating. The result is the graph half of every
// artifact cache key and job checkpoint fingerprint — a changed
// generator or dataset registry invalidates cached results instead of
// replaying them over the wrong data.
func SubstrateFingerprint(opts Options) (string, error) {
	opts.fill()
	specs := datasets.All()
	if opts.Quick {
		specs = datasets.ByBand(datasets.Small)
	}
	parts := make([]any, 0, 2*len(specs))
	for _, spec := range specs {
		g, err := opts.graphFor(spec.Name)
		if err != nil {
			return "", fmt.Errorf("experiments: substrate fingerprint: %w", err)
		}
		parts = append(parts, spec.Name, graph.Fingerprint(g))
	}
	return resilience.Fingerprint(parts...), nil
}

// Jobs builds the full measurement battery as a jobs.Registry: one
// registered job per table, figure, and derived experiment, each with a
// typed JobConfig fingerprint. The returned jobs capture opts (sharing
// its dataset cache) but take their checkpoint store, resume flag, and
// substrate fingerprint from the jobs.Env they run under.
func Jobs(opts Options) (*jobs.Registry, error) {
	opts.fill()
	reg := jobs.NewRegistry()
	type adapter struct {
		name string
		run  func(ctx context.Context, opts Options, b *jobs.Builder) error
	}
	adapters := []adapter{
		{"tableI", tableIJob},
		{"figure1", figure1Job},
		{"figure2", figure2Job},
		{"tableII", tableIIJob},
		{"figure3", figure3Job},
		{"figure4", figure4Job},
		{"figure5", figure5Job},
		{"cross", crossJob},
		{"dynamic", dynamicJob},
		{"modulated", modulatedJob},
		{"attacker", attackerJob},
		{"betweenness", betweennessJob},
		{"sweep", sweepJob},
		{"churn", churnJob},
		{"epochs", epochsJob},
	}
	for _, a := range adapters {
		a := a
		cfg := JobConfig{Job: a.name, Quick: opts.Quick, Seed: opts.Seed}
		if a.name == "epochs" {
			cfg.Incremental = opts.Incremental
		}
		j := jobs.New(a.name, cfg, func(ctx context.Context, env jobs.Env) (*jobs.Artifact, error) {
			o := opts
			o.Ckpt, o.Resume, o.Substrate = env.Ckpt, env.Resume, env.GraphFingerprint
			b := jobs.NewBuilder()
			err := a.run(ctx, o, b)
			if err != nil && !b.Partial() {
				// A hard failure produced no replayable output; partial
				// best-effort artifacts, by contrast, are still emitted.
				return nil, err
			}
			return b.Artifact(), err
		})
		if err := reg.Register(j); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// partialErr is the failure a best-effort job reports after salvaging
// its partial artifacts: the deadline (not the job) is the cause, so it
// carries the context error — classified ClassDeadline, never retried —
// and the run still exits nonzero so the operator knows to rerun with
// -resume.
func partialErr(ctx context.Context, name string) error {
	cause := ctx.Err()
	if cause == nil {
		cause = context.DeadlineExceeded
	}
	return fmt.Errorf("%s: partial results written (rerun with -resume to continue): %w", name, cause)
}

// tableIJob renders and files the Table I reproduction.
func tableIJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := TableI(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := b.Table(t); err != nil {
		return err
	}
	if err := b.SaveTable("tableI.txt", t); err != nil {
		return err
	}
	if res.Partial {
		b.MarkPartial()
		return partialErr(ctx, "tableI")
	}
	return nil
}

// figure1Job files both mixing-curve panels and the per-source ECDFs,
// and renders the mixing-time summary.
func figure1Job(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := Figure1(ctx, opts)
	if err != nil {
		return err
	}
	if err := b.SaveCSV("figure1a.csv", res.PanelA); err != nil {
		return err
	}
	if err := b.SaveCSV("figure1b.csv", res.PanelB); err != nil {
		return err
	}
	if err := b.SaveCSV("figure1-sources.csv", res.SourceECDFs); err != nil {
		return err
	}
	t := report.NewTable("Figure 1: mixing time T(0.1) per dataset (0 = not within budget)", "Dataset", "T(0.1)")
	for _, s := range append(res.PanelA, res.PanelB...) {
		if err := t.AddRow(s.Name, report.Int(res.MixingTimes[s.Name])); err != nil {
			return err
		}
		if cov := res.Coverage[s.Name]; cov < 1 {
			t.AddNote(fmt.Sprintf("PARTIAL: %s covers %.0f%% of its sampled sources", s.Name, cov*100))
		}
	}
	if res.Partial {
		t.AddNote("PARTIAL: the run was cut short; later datasets are missing (rerun with -resume to continue)")
	}
	if err := b.Table(t); err != nil {
		return err
	}
	if res.Partial {
		b.MarkPartial()
		return partialErr(ctx, "figure1")
	}
	return nil
}

// figure2Job files both coreness panels and renders the degeneracy
// summary.
func figure2Job(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := Figure2(ctx, opts)
	if err != nil {
		return err
	}
	if err := b.SaveCSV("figure2a.csv", res.PanelA); err != nil {
		return err
	}
	if err := b.SaveCSV("figure2b.csv", res.PanelB); err != nil {
		return err
	}
	t := report.NewTable("Figure 2: degeneracy per dataset", "Dataset", "Degeneracy")
	for _, s := range append(res.PanelA, res.PanelB...) {
		if err := t.AddRow(s.Name, report.Int(res.Degeneracy[s.Name])); err != nil {
			return err
		}
	}
	return b.Table(t)
}

// tableIIJob renders and files the Table II reproduction.
func tableIIJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := TableII(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := b.Table(t); err != nil {
		return err
	}
	return b.SaveTable("tableII.txt", t)
}

// figure3Job files one CSV per expansion panel.
func figure3Job(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := Figure3(ctx, opts)
	if err != nil {
		return err
	}
	for _, p := range res.Panels {
		path := fmt.Sprintf("figure3-%s.csv", p.Name)
		if err := b.SaveCSV(path, []report.Series{p.Min, p.Mean, p.Max}); err != nil {
			return err
		}
	}
	b.Printf("wrote %d figure 3 panels\n", len(res.Panels))
	return nil
}

// figure4Job files both expansion panels and renders the mean-alpha
// summary.
func figure4Job(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := Figure4(ctx, opts)
	if err != nil {
		return err
	}
	if err := b.SaveCSV("figure4a.csv", res.PanelA); err != nil {
		return err
	}
	if err := b.SaveCSV("figure4b.csv", res.PanelB); err != nil {
		return err
	}
	t := report.NewTable("Figure 4: mean expansion factor over small sets", "Dataset", "mean alpha")
	for _, s := range append(res.PanelA, res.PanelB...) {
		if err := t.AddRow(s.Name, report.Float(res.MeanAlphaSmall[s.Name], 3)); err != nil {
			return err
		}
	}
	return b.Table(t)
}

// figure5Job files one CSV per core-structure panel and renders the
// degeneracy/top-core summary.
func figure5Job(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := Figure5(ctx, opts)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 5: core structure", "Dataset", "Degeneracy", "Top cores")
	for _, p := range res.Panels {
		path := fmt.Sprintf("figure5-%s.csv", p.Name)
		if err := b.SaveCSV(path, []report.Series{p.RelativeSize, p.LargestRelativeSize, p.NumCores}); err != nil {
			return err
		}
		if err := t.AddRow(p.Name, report.Int(p.Degeneracy), report.Int(p.TopComponents)); err != nil {
			return err
		}
	}
	return b.Table(t)
}

// crossJob renders and files the cross-property summary and
// correlation tables.
func crossJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := CrossProperty(ctx, opts)
	if err != nil {
		return err
	}
	sum, err := res.SummaryTable()
	if err != nil {
		return err
	}
	corr, err := res.CorrelationTable()
	if err != nil {
		return err
	}
	if err := b.Table(sum); err != nil {
		return err
	}
	b.Printf("\n")
	if err := b.Table(corr); err != nil {
		return err
	}
	if err := b.SaveTable("cross-summary.txt", sum); err != nil {
		return err
	}
	return b.SaveTable("cross-correlations.txt", corr)
}

// dynamicJob renders and files the growth-dynamics experiment.
func dynamicJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := FutureWorkDynamic(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := b.Table(t); err != nil {
		return err
	}
	if err := b.SaveTable("dynamic.txt", t); err != nil {
		return err
	}
	return b.SaveCSV("dynamic.csv",
		[]report.Series{res.SLEM, res.Mixing, res.MinAlpha, res.AvgDegree})
}

// modulatedJob renders and files the interaction-modulated experiment.
func modulatedJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := FutureWorkModulated(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := b.Table(t); err != nil {
		return err
	}
	if err := b.SaveTable("modulated.txt", t); err != nil {
		return err
	}
	return b.SaveCSV("modulated.csv", res.Curves)
}

// attackerJob renders and files the attacker-model comparison.
func attackerJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := AttackerModels(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := b.Table(t); err != nil {
		return err
	}
	return b.SaveTable("attacker.txt", t)
}

// betweennessJob renders and files the betweenness distribution.
func betweennessJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := BetweennessDistribution(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := b.Table(t); err != nil {
		return err
	}
	if err := b.SaveTable("betweenness.txt", t); err != nil {
		return err
	}
	return b.SaveCSV("betweenness.csv", res.ECDFs)
}

// sweepJob renders and files the bridge-budget sweep.
func sweepJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := BridgeSweep(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := b.Table(t); err != nil {
		return err
	}
	return b.SaveTable("sweep.txt", t)
}

// churnJob renders and files the churn graceful-degradation
// experiment.
func churnJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := Churn(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := b.Table(t); err != nil {
		return err
	}
	if err := b.SaveTable("churn.txt", t); err != nil {
		return err
	}
	return b.SaveCSV("churn.csv", res.Series())
}

// epochsJob renders and files the epoch sweep.
func epochsJob(ctx context.Context, opts Options, b *jobs.Builder) error {
	res, err := EpochSweep(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := b.Table(t); err != nil {
		return err
	}
	return b.SaveTable("epochs.txt", t)
}
