package kcore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func decompose(t *testing.T, g *graph.Graph) *Decomposition {
	t.Helper()
	d, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDecomposeClique(t *testing.T) {
	g, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	d := decompose(t, g)
	if d.Degeneracy() != 5 {
		t.Errorf("Degeneracy(K6) = %d, want 5", d.Degeneracy())
	}
	for v := graph.NodeID(0); int(v) < 6; v++ {
		c, err := d.Coreness(v)
		if err != nil {
			t.Fatal(err)
		}
		if c != 5 {
			t.Errorf("coreness(%d) = %d, want 5", v, c)
		}
	}
}

func TestDecomposeTree(t *testing.T) {
	// Trees are 1-degenerate.
	g, err := gen.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	d := decompose(t, g)
	if d.Degeneracy() != 1 {
		t.Errorf("Degeneracy(path) = %d, want 1", d.Degeneracy())
	}
	g, err = gen.Star(12)
	if err != nil {
		t.Fatal(err)
	}
	d = decompose(t, g)
	if d.Degeneracy() != 1 {
		t.Errorf("Degeneracy(star) = %d, want 1", d.Degeneracy())
	}
}

func TestDecomposeCliqueWithTail(t *testing.T) {
	// K5 (nodes 0..4) with a path 4-5-6 hanging off: the tail is in the
	// 1-core only, the clique nodes in the 4-core.
	b := graph.NewBuilder(7)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if err := b.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.AddEdge(4, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	d := decompose(t, b.Build())
	wantCore := []int{4, 4, 4, 4, 4, 1, 1}
	for v, want := range wantCore {
		c, err := d.Coreness(graph.NodeID(v))
		if err != nil {
			t.Fatal(err)
		}
		if c != want {
			t.Errorf("coreness(%d) = %d, want %d", v, c, want)
		}
	}
	if d.Degeneracy() != 4 {
		t.Errorf("Degeneracy = %d, want 4", d.Degeneracy())
	}
	nodes := d.CoreNodes(4)
	if len(nodes) != 5 {
		t.Errorf("CoreNodes(4) = %v, want 5 clique nodes", nodes)
	}
	sub, ids := d.CoreSubgraph(4)
	if sub.NumNodes() != 5 || sub.NumEdges() != 10 {
		t.Errorf("CoreSubgraph(4) = %v, want K5", sub)
	}
	if len(ids) != 5 {
		t.Errorf("CoreSubgraph ids = %v", ids)
	}
}

func TestDecomposeEmptyAndErrors(t *testing.T) {
	var empty graph.Graph
	if _, err := Decompose(&empty); err == nil {
		t.Error("Decompose(empty): want error")
	}
	g, err := gen.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	d := decompose(t, g)
	if _, err := d.Coreness(9); err == nil {
		t.Error("Coreness(out of range): want error")
	}
}

func TestDecomposeEdgelessNodes(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	// All-isolated graph: decomposition works, everything has coreness 0.
	d := decompose(t, g)
	if d.Degeneracy() != 0 {
		t.Errorf("Degeneracy = %d, want 0", d.Degeneracy())
	}
	if len(d.Levels()) != 0 {
		t.Errorf("Levels = %v, want empty", d.Levels())
	}
}

func TestLevelsTwoCliques(t *testing.T) {
	// Two disjoint K4s joined through a degree-2 middle node (node 8):
	// at k=3 the middle node is pruned and G̃_3 has two components of 4
	// nodes each — the multi-core structure of Figure 5 (f)–(j).
	b := graph.NewBuilder(9)
	for base := 0; base < 8; base += 4 {
		for i := base; i < base+4; i++ {
			for j := i + 1; j < base+4; j++ {
				if err := b.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(3, 8); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(8, 4); err != nil {
		t.Fatal(err)
	}
	d := decompose(t, b.Build())
	levels := d.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3 (degeneracy 3)", len(levels))
	}
	l1, l3 := levels[0], levels[2]
	if l1.K != 1 || l3.K != 3 {
		t.Fatalf("level keys = %d,%d", l1.K, l3.K)
	}
	if l1.Components != 1 || l1.Nodes != 9 {
		t.Errorf("G̃_1 = %+v, want single 9-node component", l1)
	}
	if l3.Components != 2 {
		t.Errorf("G̃_3 components = %d, want 2", l3.Components)
	}
	if l3.Nodes != 8 || l3.LargestComponentNodes != 4 {
		t.Errorf("G̃_3 = %+v, want 8 nodes, largest component 4", l3)
	}
	if math.Abs(l3.Nu-4.0/9) > 1e-12 || math.Abs(l3.NuTilde-8.0/9) > 1e-12 {
		t.Errorf("ν_3 = %v ν̃_3 = %v, want 4/9, 8/9", l3.Nu, l3.NuTilde)
	}
	if l3.Edges != 12 {
		t.Errorf("G̃_3 edges = %d, want 12", l3.Edges)
	}
}

func TestFastMixerHasLargerCoreThanSlowMixer(t *testing.T) {
	// The paper's central observation (§IV-B, §V): fast-mixing graphs have
	// a large single core at high k; slow mixers split into multiple small
	// cores. BA graphs have a single k-core for k=attach; the clustered
	// graph splits into one core per community at high k.
	fast, err := gen.BarabasiAlbert(400, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 8, CommunitySize: 50, Attach: 5, Bridges: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	df, ds := decompose(t, fast), decompose(t, slow)
	kf, ks := df.Degeneracy(), ds.Degeneracy()
	k := kf
	if ks < k {
		k = ks
	}
	lf := df.Levels()[k-1]
	lsv := ds.Levels()[k-1]
	if lf.Components != 1 {
		t.Errorf("fast mixer G̃_%d has %d components, want 1", k, lf.Components)
	}
	if lsv.Components < 2 {
		t.Errorf("slow mixer G̃_%d has %d components, want >= 2", k, lsv.Components)
	}
	if lf.Nu <= lsv.Nu {
		t.Errorf("fast ν_%d = %v <= slow ν_%d = %v, want larger core in fast mixer",
			k, lf.Nu, k, lsv.Nu)
	}
}

func TestCorenessECDFSamples(t *testing.T) {
	g, err := gen.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	d := decompose(t, g)
	samples := d.CorenessECDFSamples()
	if len(samples) != 4 {
		t.Fatalf("samples = %v", samples)
	}
	for _, s := range samples {
		if s != 3 {
			t.Errorf("sample = %v, want 3", s)
		}
	}
}

// Property: for random graphs, (1) coreness(v) <= deg(v); (2) the k-core
// subgraph has min degree >= k for every k <= degeneracy; (3) coreness
// equals the max k with v in CoreNodes(k).
func TestDecomposeInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdgeSafe(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.Build()
		d, err := Decompose(g)
		if err != nil {
			return false
		}
		for v := graph.NodeID(0); int(v) < n; v++ {
			c, err := d.Coreness(v)
			if err != nil || c > g.Degree(v) {
				return false
			}
		}
		for k := 1; k <= d.Degeneracy(); k++ {
			sub, _ := d.CoreSubgraph(k)
			if sub.NumNodes() > 0 && sub.MinDegree() < k {
				return false
			}
		}
		// Degeneracy core must be non-empty.
		if len(d.CoreNodes(d.Degeneracy())) == 0 && d.Degeneracy() > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the naive iterative-pruning definition agrees with the
// bucket-based Batagelj–Zaversnik implementation.
func TestDecomposeMatchesNaiveQuick(t *testing.T) {
	naiveCoreness := func(g *graph.Graph) []int {
		n := g.NumNodes()
		deg := g.Degrees()
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		core := make([]int, n)
		for k := 0; ; k++ {
			anyAlive := false
			for v := 0; v < n; v++ {
				if alive[v] {
					anyAlive = true
					core[v] = k
				}
			}
			if !anyAlive {
				return core
			}
			// Repeatedly prune nodes with degree < k+1.
			changed := true
			for changed {
				changed = false
				for v := 0; v < n; v++ {
					if alive[v] && deg[v] < k+1 {
						alive[v] = false
						changed = true
						for _, u := range g.Neighbors(graph.NodeID(v)) {
							if alive[u] {
								deg[u]--
							}
						}
					}
				}
			}
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdgeSafe(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.Build()
		d, err := Decompose(g)
		if err != nil {
			return false
		}
		want := naiveCoreness(g)
		got := d.CorenessValues()
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
