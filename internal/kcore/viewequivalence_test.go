package kcore

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// TestEquivalenceViewCorenessMasked checks that the peeling decomposition
// run directly on a churned MaskedView matches the decomposition of an
// independently rebuilt CSR of the same topology.
func TestEquivalenceViewCorenessMasked(t *testing.T) {
	g, err := gen.BarabasiAlbert(800, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mv := graph.NewMaskedView(g)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if rng.Float64() < 0.2 {
			mv.SetAlive(v, false)
		}
	}
	edges := g.Edges()
	for i := 0; i < len(edges)/10; i++ {
		e := edges[rng.Intn(len(edges))]
		mv.DropEdge(e.U, e.V)
	}
	b := graph.NewBuilder(g.NumNodes())
	mv.VisitEdges(func(e graph.Edge) bool {
		b.AddEdgeSafe(e.U, e.V)
		return true
	})
	rebuilt := b.Build()

	dv, err := Decompose(mv)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Decompose(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dv.CorenessValues(), dr.CorenessValues()) {
		t.Fatal("coreness diverges between masked view and rebuilt copy")
	}
	if dv.Degeneracy() != dr.Degeneracy() {
		t.Fatalf("degeneracy %d vs %d", dv.Degeneracy(), dr.Degeneracy())
	}

	// CoreView must induce the same topology CoreSubgraph rebuilds.
	k := dr.Degeneracy()
	cv, err := dv.CoreView(k)
	if err != nil {
		t.Fatal(err)
	}
	sub, nodes := dr.CoreSubgraph(k)
	if !reflect.DeepEqual(cv.Nodes(), nodes) {
		t.Fatal("core node sets diverge")
	}
	if !reflect.DeepEqual(graph.Materialize(cv).Edges(), sub.Edges()) {
		t.Fatal("core topology diverges between CoreView and CoreSubgraph")
	}
}

// TestEquivalenceViewCorenessPrefix checks the decomposition of a growth
// prefix view against a Builder over the same edge prefix.
func TestEquivalenceViewCorenessPrefix(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(2))
	var arrivals []graph.Edge
	for i := 0; i < 2500; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			arrivals = append(arrivals, graph.Edge{U: u, V: v})
		}
	}
	log, err := graph.NewGrowthLog(n, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	cutArrivals, cutNodes := len(arrivals)/2, n-40
	pv, err := log.Prefix(cutArrivals, cutNodes)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(cutNodes)
	for _, e := range arrivals[:cutArrivals] {
		if int(e.U) < cutNodes && int(e.V) < cutNodes {
			b.AddEdgeSafe(e.U, e.V)
		}
	}
	dv, err := Decompose(pv)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Decompose(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dv.CorenessValues(), dr.CorenessValues()) {
		t.Fatal("coreness diverges between prefix view and rebuilt prefix")
	}
}
