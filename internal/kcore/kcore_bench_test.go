package kcore

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
)

func BenchmarkDecompose(b *testing.B) {
	g, err := gen.BarabasiAlbert(20000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLevels(b *testing.B) {
	g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 10, CommunitySize: 200, Attach: 5, Bridges: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := Decompose(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dec.Levels()
	}
}
