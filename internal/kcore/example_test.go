package kcore_test

import (
	"fmt"
	"log"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kcore"
)

// Decompose a clique with a tail: the clique is the deep core, the tail
// peels off at k=2.
func ExampleDecompose() {
	b := graph.NewBuilder(6)
	// K4 on 0..3 plus the path 3-4-5.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := b.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := b.AddEdge(3, 4); err != nil {
		log.Fatal(err)
	}
	if err := b.AddEdge(4, 5); err != nil {
		log.Fatal(err)
	}
	dec, err := kcore.Decompose(b.Build())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("degeneracy:", dec.Degeneracy())
	c3, err := dec.Coreness(3)
	if err != nil {
		log.Fatal(err)
	}
	c5, err := dec.Coreness(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("coreness(3) =", c3, "coreness(5) =", c5)
	top := dec.CoreNodes(dec.Degeneracy())
	fmt.Println("top core:", top)
	// Output:
	// degeneracy: 3
	// coreness(3) = 3 coreness(5) = 1
	// top core: [0 1 2 3]
}
