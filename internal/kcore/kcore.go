// Package kcore implements the graph-degeneracy measurements of §III-B of
// the paper: the Batagelj–Zaversnik O(m) core decomposition, per-node
// coreness, the relative core sizes ν_k (connected k-core, G_k) and ν̃_k
// (degree-condition-only cores, G̃_k), and the number of connected cores
// at each k — the quantities plotted in Figures 2 and 5.
package kcore

import (
	"errors"
	"fmt"

	"github.com/trustnet/trustnet/internal/graph"
)

// Decomposition is the result of the k-core decomposition of a graph.
type Decomposition struct {
	g graph.View
	// coreness[v] is the largest k such that v belongs to a k-core.
	coreness []int
	// maxCore is the degeneracy of the graph (largest non-empty core).
	maxCore int
}

// Decompose runs the Batagelj–Zaversnik algorithm: repeatedly remove the
// minimum-degree node, assigning it a coreness equal to its degree at
// removal time (monotonically clamped). Runs in O(m) using bucketed
// degree-ordered processing. It accepts any graph.View and runs directly
// over it — the single pass never warrants a materialized copy.
func Decompose(g graph.View) (*Decomposition, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("kcore: empty graph")
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.NodeID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bin[d] = start index of degree-d nodes in the sorted vertex array.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d+1]++
	}
	for d := 1; d < len(bin); d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int, n)    // pos[v] = index of v in vert
	vert := make([]int32, n) // vertices sorted by current degree
	next := make([]int, maxDeg+1)
	copy(next, bin[:maxDeg+1])
	for v := 0; v < n; v++ {
		pos[v] = next[deg[v]]
		vert[pos[v]] = int32(v)
		next[deg[v]]++
	}

	core := make([]int, n)
	copy(core, deg)
	maxCore := 0
	nbr := graph.NewAdj(g)
	for i := 0; i < n; i++ {
		v := vert[i]
		if core[v] > maxCore {
			maxCore = core[v]
		}
		for _, u := range nbr.Neighbors(graph.NodeID(v)) {
			if core[u] > core[v] {
				du := core[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != graph.NodeID(w) {
					// Swap u with the first vertex of its degree bucket.
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, int32(u)
				}
				bin[du]++
				core[u]--
			}
		}
	}
	return &Decomposition{g: g, coreness: core, maxCore: maxCore}, nil
}

// Coreness returns the coreness of v.
func (d *Decomposition) Coreness(v graph.NodeID) (int, error) {
	if !d.g.Valid(v) {
		return 0, fmt.Errorf("kcore: node %d out of range", v)
	}
	return d.coreness[v], nil
}

// CorenessValues returns a copy of the per-node coreness array.
func (d *Decomposition) CorenessValues() []int {
	out := make([]int, len(d.coreness))
	copy(out, d.coreness)
	return out
}

// Degeneracy returns the largest k with a non-empty k-core.
func (d *Decomposition) Degeneracy() int { return d.maxCore }

// CoreNodes returns the nodes with coreness >= k — the vertex set of the
// (possibly disconnected) G̃_k of §III-B.
func (d *Decomposition) CoreNodes(k int) []graph.NodeID {
	var out []graph.NodeID
	for v, c := range d.coreness {
		if c >= k {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// CoreSubgraph returns the induced subgraph on CoreNodes(k) together with
// the mapping back to original node IDs. Every node of the result has
// degree >= k inside it (for k <= degeneracy).
func (d *Decomposition) CoreSubgraph(k int) (*graph.Graph, []graph.NodeID) {
	nodes := d.CoreNodes(k)
	return graph.InducedSubgraph(d.g, nodes), nodes
}

// CoreView returns G̃_k as a zero-copy induced view over the decomposed
// graph, with the same ascending stable remapping CoreSubgraph uses — the
// per-k allocation drops from a CSR copy to the view's O(|V_k|) index.
func (d *Decomposition) CoreView(k int) (*graph.InducedView, error) {
	return graph.NewInducedView(d.g, d.CoreNodes(k))
}

// LevelStats describes G̃_k (cores under the degree condition only) at one
// value of k, using the paper's relative-size notation.
type LevelStats struct {
	K int
	// Nodes and Edges are |V_k| and |E_k| of G̃_k.
	Nodes int
	Edges int64
	// NuTilde is ν̃_k = n_k/n, EdgeFraction is τ̃_k = m_k/m.
	NuTilde      float64
	EdgeFraction float64
	// Components is the number of connected components of G̃_k — the
	// "number of cores" series of Figure 5 (f)–(j).
	Components int
	// LargestComponentNodes is |V| of the biggest connected k-core, whose
	// relative size n/|V(G)| is the paper's ν_k for the largest core.
	LargestComponentNodes int
	// Nu is ν_k for the largest connected core.
	Nu float64
}

// Levels computes LevelStats for every k from 1 to the degeneracy. This is
// the entire data series behind Figure 5.
func (d *Decomposition) Levels() []LevelStats {
	n := d.g.NumNodes()
	m := d.g.NumEdges()
	out := make([]LevelStats, 0, d.maxCore)
	for k := 1; k <= d.maxCore; k++ {
		sub, err := d.CoreView(k)
		if err != nil {
			// Unreachable: CoreNodes only yields valid nodes.
			panic(err)
		}
		ls := LevelStats{
			K:     k,
			Nodes: sub.NumNodes(),
			Edges: sub.NumEdges(),
		}
		if n > 0 {
			ls.NuTilde = float64(ls.Nodes) / float64(n)
		}
		if m > 0 {
			ls.EdgeFraction = float64(ls.Edges) / float64(m)
		}
		if sub.NumNodes() > 0 {
			_, sizes := graph.ConnectedComponents(sub)
			ls.Components = len(sizes)
			var largest int64
			for _, s := range sizes {
				if s > largest {
					largest = s
				}
			}
			ls.LargestComponentNodes = int(largest)
			ls.Nu = float64(largest) / float64(n)
		}
		out = append(out, ls)
	}
	return out
}

// CorenessECDFSamples returns the coreness of every node as float64
// samples, ready for stats.NewECDF — the Figure 2 series.
func (d *Decomposition) CorenessECDFSamples() []float64 {
	out := make([]float64, len(d.coreness))
	for i, c := range d.coreness {
		out[i] = float64(c)
	}
	return out
}
