package kcore

import (
	"reflect"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// TestEquivalenceShardedCoreness peels a ShardedGraph at 1, 2 and 7
// shards and requires the decomposition to match the monolithic graph's:
// Decompose traverses via graph.Adj, whose NeighborSlicer fast path the
// sharded view serves shard by shard.
func TestEquivalenceShardedCoreness(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", mustBA(t, 800, 4, 71)},
		{"clustered", mustClusteredPA(t, 4, 80, 3, 1, 72)},
	} {
		ref, err := Decompose(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 7} {
			sg, err := graph.NewSharded(tc.g, shards)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decompose(sg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.CorenessValues(), ref.CorenessValues()) {
				t.Fatalf("%s shards=%d: coreness diverges from monolithic", tc.name, shards)
			}
			if got.Degeneracy() != ref.Degeneracy() {
				t.Fatalf("%s shards=%d: degeneracy %d != %d",
					tc.name, shards, got.Degeneracy(), ref.Degeneracy())
			}
			if !reflect.DeepEqual(got.Levels(), ref.Levels()) {
				t.Fatalf("%s shards=%d: level stats diverge", tc.name, shards)
			}
		}
	}
}

func mustBA(t *testing.T, n, attach int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, attach, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustClusteredPA(t *testing.T, comms, size, attach, bridges int, seed int64) *graph.Graph {
	t.Helper()
	g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: comms, CommunitySize: size, Attach: attach, Bridges: bridges, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}
