package resilience

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	s := NewStore(filepath.Join(t.TempDir(), "ckpt"))
	type payload struct {
		Sources []int32     `json:"sources"`
		Curves  [][]float64 `json:"curves"`
	}
	// Awkward floats: exact round-trip is the whole point.
	want := payload{
		Sources: []int32{3, 1, 4},
		Curves: [][]float64{
			{0.1, 1.0 / 3.0, math.Nextafter(0.5, 1)},
			nil,
			{math.SmallestNonzeroFloat64, 1e300, -0.0},
		},
	}
	fp := Fingerprint("mixing", "wiki-vote", 1, true)
	c := &Checkpoint{Job: "figure1-wiki-vote", Fingerprint: fp, Status: StatusPartial, Attempts: 2}
	if err := c.SetPayload(want); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(c); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("figure1-wiki-vote", fp)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Status != StatusPartial || got.Attempts != 2 {
		t.Fatalf("loaded = %+v", got)
	}
	var p payload
	if err := got.DecodePayload(&p); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Sources, want.Sources) {
		t.Fatalf("sources = %v", p.Sources)
	}
	for i := range want.Curves {
		for j := range want.Curves[i] {
			if math.Float64bits(p.Curves[i][j]) != math.Float64bits(want.Curves[i][j]) {
				t.Fatalf("curve[%d][%d] = %x, want %x (bit-exact)", i, j,
					math.Float64bits(p.Curves[i][j]), math.Float64bits(want.Curves[i][j]))
			}
		}
	}
}

func TestCheckpointMissing(t *testing.T) {
	s := NewStore(t.TempDir())
	c, err := s.Load("nope", "fp")
	if c != nil || err != nil {
		t.Fatalf("missing checkpoint: %v, %v, want nil, nil", c, err)
	}
}

// A fingerprint mismatch is stale state from another configuration:
// ignored, not resumed, not an error.
func TestCheckpointStaleFingerprintIgnored(t *testing.T) {
	s := NewStore(t.TempDir())
	c := &Checkpoint{Job: "j", Fingerprint: Fingerprint("seed", 1), Status: StatusDone}
	if err := s.Save(c); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("j", Fingerprint("seed", 2))
	if got != nil || err != nil {
		t.Fatalf("stale checkpoint: %v, %v, want nil, nil", got, err)
	}
	// The matching fingerprint still loads.
	if got, err = s.Load("j", Fingerprint("seed", 1)); err != nil || got == nil {
		t.Fatalf("matching checkpoint: %v, %v", got, err)
	}
}

func TestCheckpointCorruptIsError(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	if err := os.WriteFile(s.Path("bad"), []byte(`{"schema": "trustnet/checkpo`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("bad", ""); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
	if err := os.WriteFile(s.Path("old"), []byte(`{"schema":"other/v9","job":"old","status":"done"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("old", ""); err == nil {
		t.Fatal("wrong-schema checkpoint loaded without error")
	}
}

func TestCheckpointRemove(t *testing.T) {
	s := NewStore(t.TempDir())
	if err := s.Remove("never-existed"); err != nil {
		t.Fatalf("removing a missing checkpoint: %v", err)
	}
	c := &Checkpoint{Job: "j", Status: StatusDone}
	if err := s.Save(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("j"); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Load("j", ""); got != nil {
		t.Fatal("checkpoint survived Remove")
	}
}

// Job keys may carry separators ("figure1/wiki-vote"); they must map to
// files inside the store directory.
func TestCheckpointPathSanitized(t *testing.T) {
	s := NewStore("/tmp/ckpt")
	p := s.Path("../../etc/passwd")
	if filepath.Dir(p) != "/tmp/ckpt" || strings.ContainsAny(filepath.Base(p), "/\\") {
		t.Fatalf("Path escaped the store: %s", p)
	}
}

func TestWriteFileAtomicReplacesAndLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "new" {
		t.Fatalf("content = %q, %v", data, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("temp files left behind: %v", names)
	}
}

func TestFingerprintDistinguishesParts(t *testing.T) {
	a := Fingerprint("tableI", "wiki-vote", 1, true)
	b := Fingerprint("tableI", "wiki-vote", 1, false)
	c := Fingerprint("tableI", "wiki-vote", 1, true)
	if a == b {
		t.Fatal("different parts fingerprint identically")
	}
	if a != c {
		t.Fatal("identical parts fingerprint differently")
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", a)
	}
}
