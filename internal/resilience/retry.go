package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/trustnet/trustnet/internal/obs"
)

// Observability instruments for the retry layer, resolved once at init.
var (
	obsAttempts = obs.Default().Counter("resilience.retry.attempts")
	obsRetries  = obs.Default().Counter("resilience.retry.retries")
	obsGiveups  = obs.Default().Counter("resilience.retry.giveups")
)

// Policy is a bounded retry schedule with seeded-jitter exponential
// backoff. The zero value retries nothing (one attempt, no backoff).
type Policy struct {
	// MaxAttempts is the total attempt budget including the first;
	// values < 1 mean one attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means no cap.
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts; values <= 1 default
	// to 2.
	Multiplier float64
	// Jitter is the fraction of each delay randomized: the slept delay
	// is d·(1 + Jitter·u) with u uniform in [-1, 1] from the seeded
	// stream. Values outside [0, 1] are clamped. 0 disables jitter.
	Jitter float64
	// Seed drives the jitter stream, so a retry schedule is a pure
	// function of (Policy, failure sequence).
	Seed int64
	// AttemptTimeout, when > 0, bounds every attempt with its own
	// deadline derived from the run context: each retry starts with a
	// fresh budget instead of inheriting whatever the failed attempt
	// left behind. On its own a timed-out attempt is still terminal
	// (ClassDeadline is not retried); pair it with RetryDeadline when
	// deadline failures should consume the retry budget too.
	AttemptTimeout time.Duration
	// RetryDeadline also retries ClassDeadline failures. Off by default:
	// each attempt gets a fresh budget from the caller, but a
	// deterministic job that exhausted one budget will exhaust the next;
	// enable it only for jobs whose deadline pressure is environmental.
	RetryDeadline bool
	// OnRetry, when non-nil, observes each scheduled retry before its
	// backoff sleep: the attempt that failed, its error and class, and
	// the backoff about to be slept.
	OnRetry func(attempt int, err error, class Class, backoff time.Duration)
	// Sleep replaces the backoff sleep, for tests. nil sleeps under the
	// run context.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Outcome summarizes a Run for metrics and failure reports.
type Outcome struct {
	// Attempts is the number of attempts made (>= 1).
	Attempts int
	// Class classifies the final error (ClassOK on success).
	Class Class
	// BackoffTotal is the total backoff slept between attempts.
	BackoffTotal time.Duration
}

// retryable reports whether a failure class is retried under the policy.
func (p Policy) retryable(c Class) bool {
	return c == ClassTransient || (c == ClassDeadline && p.RetryDeadline)
}

// backoff returns the jittered delay before attempt n+1 (n >= 1), drawn
// deterministically from the policy's seeded stream.
func (p Policy) backoff(rng *rand.Rand, n int) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	for i := 1; i < n; i++ {
		d *= mult
		if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	jitter := p.Jitter
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	if jitter > 0 {
		d *= 1 + jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Run invokes fn until it succeeds, fails un-retryably, or exhausts the
// attempt budget. fn receives the run context and the 1-based attempt
// number; with AttemptTimeout set the context carries a fresh per-attempt
// deadline, otherwise per-attempt budgets are fn's own responsibility so
// every retry starts fresh. Backoff sleeps respect ctx: cancellation
// during a sleep ends the run with the previous attempt's error wrapped
// around ctx.Err()'s class.
func (p Policy) Run(ctx context.Context, fn func(ctx context.Context, attempt int) error) (Outcome, error) {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var rng *rand.Rand // lazily built: most runs never back off
	out := Outcome{}
	var err error
	for n := 1; ; n++ {
		out.Attempts = n
		obsAttempts.Inc()
		if p.AttemptTimeout > 0 {
			actx, cancel := context.WithTimeout(ctx, p.AttemptTimeout)
			err = fn(actx, n)
			cancel()
		} else {
			err = fn(ctx, n)
		}
		out.Class = Classify(err)
		if err == nil || n >= attempts || !p.retryable(out.Class) {
			break
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(p.Seed))
		}
		d := p.backoff(rng, n)
		if p.OnRetry != nil {
			p.OnRetry(n, err, out.Class, d)
		}
		obsRetries.Inc()
		if serr := sleep(ctx, d); serr != nil {
			err = fmt.Errorf("retry backoff after %w: %w", err, serr)
			out.Class = Classify(serr)
			break
		}
		out.BackoffTotal += d
	}
	if err != nil && p.retryable(out.Class) {
		obsGiveups.Inc()
	}
	return out, err
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
