package resilience

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// fakeSleep records requested backoffs without sleeping.
func fakeSleep(slept *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
}

func TestRetryTransientUntilSuccess(t *testing.T) {
	var slept []time.Duration
	pol := Policy{
		MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, Seed: 7,
		Sleep: fakeSleep(&slept),
	}
	calls := 0
	out, err := pol.Run(context.Background(), func(ctx context.Context, attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt = %d on call %d", attempt, calls)
		}
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Attempts != 3 || out.Class != ClassOK {
		t.Fatalf("outcome = %+v, want 3 attempts, ok", out)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Second backoff doubles the first (modulo jitter, disabled here).
	if slept[0] != 100*time.Millisecond || slept[1] != 200*time.Millisecond {
		t.Errorf("backoffs = %v, want exponential from 100ms", slept)
	}
}

func TestRetryFatalNotRetried(t *testing.T) {
	pol := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, Sleep: fakeSleep(new([]time.Duration))}
	calls := 0
	out, err := pol.Run(context.Background(), func(context.Context, int) error {
		calls++
		return errors.New("deterministic bug")
	})
	if err == nil || calls != 1 || out.Attempts != 1 || out.Class != ClassFatal {
		t.Fatalf("fatal error retried: calls=%d outcome=%+v err=%v", calls, out, err)
	}
}

func TestRetryCanceledNotRetried(t *testing.T) {
	pol := Policy{MaxAttempts: 4, Sleep: fakeSleep(new([]time.Duration))}
	calls := 0
	out, err := pol.Run(context.Background(), func(context.Context, int) error {
		calls++
		return context.Canceled
	})
	if calls != 1 || out.Class != ClassCanceled || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled retried: calls=%d outcome=%+v err=%v", calls, out, err)
	}
}

func TestRetryDeadlineOptIn(t *testing.T) {
	var slept []time.Duration
	pol := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: fakeSleep(&slept)}
	calls := 0
	fn := func(context.Context, int) error { calls++; return context.DeadlineExceeded }
	if out, _ := pol.Run(context.Background(), fn); out.Attempts != 1 {
		t.Fatalf("deadline retried without opt-in: %+v", out)
	}
	pol.RetryDeadline = true
	calls = 0
	if out, _ := pol.Run(context.Background(), fn); out.Attempts != 3 || calls != 3 {
		t.Fatalf("deadline not retried with RetryDeadline: %+v calls=%d", out, calls)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	var slept []time.Duration
	pol := Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Seed: 3, Sleep: fakeSleep(&slept)}
	retries := 0
	pol.OnRetry = func(attempt int, err error, class Class, backoff time.Duration) {
		retries++
		if class != ClassTransient {
			t.Errorf("OnRetry class = %v", class)
		}
	}
	out, err := pol.Run(context.Background(), func(context.Context, int) error {
		return MarkTransient(errors.New("always flaky"))
	})
	if err == nil || out.Attempts != 3 || out.Class != ClassTransient {
		t.Fatalf("outcome = %+v err=%v, want exhausted transient", out, err)
	}
	if retries != 2 || len(slept) != 2 {
		t.Fatalf("retries=%d slept=%d, want 2 and 2", retries, len(slept))
	}
}

// The jitter stream is seeded: identical policies draw identical
// backoff schedules, different seeds draw different ones.
func TestRetryJitterSeeded(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var slept []time.Duration
		pol := Policy{
			MaxAttempts: 6, BaseDelay: time.Second, MaxDelay: 30 * time.Second,
			Jitter: 0.5, Seed: seed, Sleep: fakeSleep(&slept),
		}
		pol.Run(context.Background(), func(context.Context, int) error {
			return MarkTransient(errors.New("flaky"))
		})
		return slept
	}
	a, b := schedule(42), schedule(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different schedules:\n%v\n%v", a, b)
	}
	if c := schedule(43); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds drew identical schedules: %v", a)
	}
	for _, d := range a {
		if d < 500*time.Millisecond || d > 45*time.Second {
			t.Errorf("backoff %v outside jittered envelope", d)
		}
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	var slept []time.Duration
	pol := Policy{
		MaxAttempts: 8, BaseDelay: time.Second, MaxDelay: 4 * time.Second,
		Sleep: fakeSleep(&slept),
	}
	pol.Run(context.Background(), func(context.Context, int) error {
		return MarkTransient(errors.New("flaky"))
	})
	for i, d := range slept {
		if d > 4*time.Second {
			t.Errorf("backoff %d = %v exceeds cap", i, d)
		}
	}
	if last := slept[len(slept)-1]; last != 4*time.Second {
		t.Errorf("final backoff = %v, want capped 4s", last)
	}
}

// Cancellation during a backoff sleep ends the run with a canceled
// class, not another attempt.
func TestRetryCanceledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pol := Policy{
		MaxAttempts: 5, BaseDelay: time.Minute,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	calls := 0
	out, err := pol.Run(ctx, func(context.Context, int) error {
		calls++
		return MarkTransient(errors.New("flaky"))
	})
	if calls != 1 || out.Class != ClassCanceled || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls=%d outcome=%+v err=%v, want 1 attempt then canceled", calls, out, err)
	}
}
