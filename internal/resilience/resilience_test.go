package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassOK},
		{"plain", base, ClassFatal},
		{"wrapped plain", fmt.Errorf("job: %w", base), ClassFatal},
		{"canceled", context.Canceled, ClassCanceled},
		{"wrapped canceled", fmt.Errorf("job: %w", context.Canceled), ClassCanceled},
		{"deadline", context.DeadlineExceeded, ClassDeadline},
		{"wrapped deadline", fmt.Errorf("timed out: %w", context.DeadlineExceeded), ClassDeadline},
		{"transient", MarkTransient(base), ClassTransient},
		{"wrapped transient", fmt.Errorf("epoch 3: %w", MarkTransient(base)), ClassTransient},
		{"fatal overrides transient", MarkFatal(MarkTransient(base)), ClassFatal},
		{"panic", &PanicError{Value: "exploded"}, ClassTransient},
		{"wrapped panic", fmt.Errorf("job: %w", &PanicError{Value: 7}), ClassTransient},
		// A canceled context outranks a transient marker: the user asked
		// the run to stop.
		{"canceled beats transient", MarkTransient(context.Canceled), ClassCanceled},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMarkNilStaysNil(t *testing.T) {
	if MarkTransient(nil) != nil || MarkFatal(nil) != nil {
		t.Fatal("marking nil must stay nil")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassOK: "ok", ClassTransient: "transient", ClassDeadline: "deadline",
		ClassCanceled: "canceled", ClassFatal: "fatal",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestPanicErrorCarriesStack(t *testing.T) {
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		panic("kaput")
	}()
	pe, ok := AsPanic(fmt.Errorf("job x: %w", err))
	if !ok {
		t.Fatal("AsPanic failed to find the panic in the chain")
	}
	if pe.Error() != "panic: kaput" {
		t.Errorf("Error() = %q", pe.Error())
	}
	if !strings.Contains(string(pe.Stack), "TestPanicErrorCarriesStack") {
		t.Errorf("stack does not name the panicking frame:\n%s", pe.Stack)
	}
	if Classify(err) != ClassTransient {
		t.Errorf("recovered panic classified %v, want transient", Classify(err))
	}
}
