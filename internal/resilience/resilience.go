// Package resilience is the job-execution layer that keeps long
// measurement runs alive through the failure classes the distributed
// formulations of the paper's properties assume (node crashes, lost
// work, deadline storms): error classification, bounded retry with
// seeded-jitter exponential backoff, and atomic checkpoint/resume
// state. The experiment runner (cmd/experiments) wraps every job in it,
// and the measurement packages (walk, expansion, spectral) produce the
// partial-progress payloads its checkpoint store persists.
//
// The contract, in order of importance:
//
//   - Determinism survives failure. A retried or resumed computation
//     must produce bit-identical results to an uninterrupted one:
//     checkpoints carry exact float64 state (encoding/json round-trips
//     float64 exactly via the shortest-representation formatter), retry
//     jitter is drawn from a seeded stream so schedules are
//     reproducible, and nothing in this package reorders or reseeds the
//     measurement itself.
//   - Failures are classified, not guessed at. Classify distinguishes
//     ClassCanceled (caller intent — never retried), ClassDeadline
//     (budget exhausted — not retried by default, since a deterministic
//     job will exhaust it again; best-effort partial results are the
//     right response), ClassTransient (worth retrying: marked
//     transient, or a recovered panic, which in this system comes from
//     injected faults and flaky state), and ClassFatal (everything
//     else — retrying a deterministic bug wastes the budget).
//   - Crash-safe artifacts. WriteFileAtomic (temp file + fsync +
//     rename) backs every checkpoint and metrics/bench artifact write,
//     so a killed run never leaves truncated JSON behind.
//
// Cost model: Classify is a handful of errors.Is/As walks; a retry
// sleeps under the caller's context; Save marshals the payload once and
// costs one temp-file write + rename. Nothing here runs on a
// measurement hot path.
package resilience

import (
	"context"
	"errors"
	"fmt"
)

// Class is the failure class of a job error, driving the retry and
// checkpoint decisions of the runner.
type Class int

const (
	// ClassOK classifies a nil error.
	ClassOK Class = iota
	// ClassTransient failures (marked errors, recovered panics) may
	// succeed on retry.
	ClassTransient
	// ClassDeadline failures exhausted a time budget
	// (context.DeadlineExceeded). Retrying a deterministic job against
	// the same budget just loses again, so the default policy does not
	// retry them; salvage a partial result instead.
	ClassDeadline
	// ClassCanceled failures are caller intent (context.Canceled) and
	// are never retried.
	ClassCanceled
	// ClassFatal failures are deterministic errors retry cannot fix.
	ClassFatal
)

// String names the class for failure summaries and metrics.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassTransient:
		return "transient"
	case ClassDeadline:
		return "deadline"
	case ClassCanceled:
		return "canceled"
	case ClassFatal:
		return "fatal"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// transienter is the marker interface Classify honors: any error in the
// chain may declare itself transient (or explicitly non-transient).
type transienter interface {
	Transient() bool
}

// Classify maps an error to its failure class. Context errors win over
// markers (a canceled run is canceled no matter what it wrapped), then
// the innermost Transient() marker or PanicError decides, and anything
// unclaimed is fatal.
func Classify(err error) Class {
	if err == nil {
		return ClassOK
	}
	if errors.Is(err, context.Canceled) {
		return ClassCanceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassDeadline
	}
	var t transienter
	if errors.As(err, &t) {
		if t.Transient() {
			return ClassTransient
		}
		return ClassFatal
	}
	return ClassFatal
}

// marked wraps an error with an explicit transience verdict.
type marked struct {
	err       error
	transient bool
}

// Error returns the wrapped error's message unchanged.
func (m *marked) Error() string { return m.err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As chains.
func (m *marked) Unwrap() error { return m.err }

// Transient reports the marked verdict; Classify consults it first.
func (m *marked) Transient() bool { return m.transient }

// MarkTransient marks err as worth retrying. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, transient: true}
}

// MarkFatal marks err as not worth retrying, overriding any transient
// marker deeper in the chain. A nil err stays nil.
func MarkFatal(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, transient: false}
}

// PanicError is a recovered panic converted into an error: the runner's
// panic recovery produces one so the failure summary can report the
// recovered stack trace, not only the panic value. Panics classify as
// transient — in this system they come from injected faults and flaky
// state, and the retry budget bounds the damage when they do not.
type PanicError struct {
	// Value is the value the goroutine panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace (debug.Stack),
	// captured inside the recovering deferred call.
	Stack []byte
}

// Error reports the panic value; the stack is kept structured so
// reporting layers can choose where to render it.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Transient marks recovered panics retryable.
func (e *PanicError) Transient() bool { return true }

// AsPanic extracts a PanicError from err's chain.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}
