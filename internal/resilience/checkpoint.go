package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"github.com/trustnet/trustnet/internal/obs"
)

// CheckpointSchema versions the checkpoint envelope so a resumed run
// can reject state written by an incompatible build.
const CheckpointSchema = "trustnet/checkpoint/v1"

// Checkpoint statuses.
const (
	// StatusDone marks a job that finished; a resumed run skips it (or
	// reuses the payload verbatim).
	StatusDone = "done"
	// StatusPartial marks in-progress state (completed sources/epochs, a
	// warm eigenvector); a resumed run continues from the payload.
	StatusPartial = "partial"
)

// Observability instruments for the checkpoint store.
var (
	obsCkptSaves  = obs.Default().Counter("resilience.checkpoint.saves")
	obsCkptLoads  = obs.Default().Counter("resilience.checkpoint.loads")
	obsCkptStale  = obs.Default().Counter("resilience.checkpoint.stale")
	obsCkptPurged = obs.Default().Counter("resilience.checkpoint.purged")
)

// Checkpoint is the envelope persisted per job under <dir>/<job>.json.
// The Payload is measurement-specific (walk.MixingCheckpoint,
// expansion.Checkpoint, spectral.Checkpoint, or a finished result); the
// Fingerprint ties it to the exact configuration that produced it, so a
// run with different parameters never resumes stale state.
type Checkpoint struct {
	Schema      string          `json:"schema"`
	Job         string          `json:"job"`
	Fingerprint string          `json:"fingerprint"`
	Status      string          `json:"status"`
	Attempts    int             `json:"attempts,omitempty"`
	Payload     json.RawMessage `json:"payload,omitempty"`
}

// SetPayload marshals v into the checkpoint payload. encoding/json
// formats float64 with the shortest round-tripping representation, so
// exact measurement state (curves, eigenvectors) survives the trip
// bit-for-bit.
func (c *Checkpoint) SetPayload(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("resilience: marshal payload for %q: %w", c.Job, err)
	}
	c.Payload = data
	return nil
}

// DecodePayload unmarshals the checkpoint payload into v.
func (c *Checkpoint) DecodePayload(v any) error {
	if len(c.Payload) == 0 {
		return fmt.Errorf("resilience: checkpoint %q has no payload", c.Job)
	}
	if err := json.Unmarshal(c.Payload, v); err != nil {
		return fmt.Errorf("resilience: decode payload for %q: %w", c.Job, err)
	}
	return nil
}

// Store persists checkpoints under one directory, one JSON file per
// job, every write atomic (temp file + fsync + rename) so a crash mid
// write never corrupts previously saved state.
type Store struct {
	dir string
}

// NewStore returns a store rooted at dir. The directory is created on
// the first Save.
func NewStore(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file a job's checkpoint is stored at. Job names are
// sanitized to a flat filename so callers can key checkpoints by
// "<job>/<dataset>" without escaping the store root.
func (s *Store) Path(job string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, job)
	return filepath.Join(s.dir, clean+".json")
}

// Save atomically persists c (filling in the schema). A crashed save
// leaves at worst an orphaned temp file, never a truncated checkpoint.
func (s *Store) Save(c *Checkpoint) error {
	if c.Job == "" {
		return errors.New("resilience: checkpoint without a job name")
	}
	c.Schema = CheckpointSchema
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("resilience: checkpoint dir: %w", err)
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("resilience: marshal checkpoint %q: %w", c.Job, err)
	}
	if err := WriteFileAtomic(s.Path(c.Job), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("resilience: save checkpoint %q: %w", c.Job, err)
	}
	obsCkptSaves.Inc()
	return nil
}

// Load returns the job's checkpoint, or (nil, nil) when none exists.
// A checkpoint whose fingerprint differs from want is stale state from
// another configuration: it is ignored (nil, nil) and counted, never
// resumed. A corrupt or schema-incompatible file is an error — silently
// recomputing would mask a bug in the save path.
func (s *Store) Load(job, want string) (*Checkpoint, error) {
	data, err := os.ReadFile(s.Path(job))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resilience: load checkpoint %q: %w", job, err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("resilience: checkpoint %q is corrupt: %w", job, err)
	}
	if c.Schema != CheckpointSchema {
		return nil, fmt.Errorf("resilience: checkpoint %q has schema %q, want %q", job, c.Schema, CheckpointSchema)
	}
	if c.Status != StatusDone && c.Status != StatusPartial {
		return nil, fmt.Errorf("resilience: checkpoint %q has status %q", job, c.Status)
	}
	if want != "" && c.Fingerprint != want {
		obsCkptStale.Inc()
		return nil, nil
	}
	obsCkptLoads.Inc()
	return &c, nil
}

// Remove deletes the job's checkpoint; removing a missing checkpoint is
// not an error.
func (s *Store) Remove(job string) error {
	err := os.Remove(s.Path(job))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("resilience: remove checkpoint %q: %w", job, err)
	}
	if err == nil {
		obsCkptPurged.Inc()
	}
	return nil
}

// Fingerprint digests its parts with FNV-1a into a short hex token.
// Checkpoint producers feed it every parameter the payload depends on
// (job, dataset, seed, sampling knobs), so any configuration change
// invalidates old state instead of resuming it.
func Fingerprint(parts ...any) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v\x00", p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, so readers (and crashed writers) only ever observe
// the old content or the complete new content — never a truncated file.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("resilience: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any failure past this point must not leave the temp file behind.
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("resilience: atomic write %s: %s: %w", path, step, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("write", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail("chmod", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resilience: atomic write %s: close: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resilience: atomic write %s: rename: %w", path, err)
	}
	return nil
}
