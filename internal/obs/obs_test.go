package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter is not get-or-create stable")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	tm := r.Timer("t")
	tm.Observe(250 * time.Millisecond)
	tm.Observe(750 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != time.Second {
		t.Errorf("timer = (%d, %v), want (2, 1s)", tm.Count(), tm.Total())
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Add(3)
	r.Gauge("residual").Set(0.5)
	prev := r.Snapshot()
	if prev.Counters["jobs"] != 3 {
		t.Fatalf("snapshot counter = %d, want 3", prev.Counters["jobs"])
	}

	c.Add(2)
	r.Counter("other").Inc()
	r.Gauge("residual").Set(0.25)
	r.Timer("stage").Observe(time.Second)
	_, span := r.StartSpan(context.Background(), "stage")
	span.End()

	diff := r.Snapshot().DiffSince(prev)
	if diff.Counters["jobs"] != 2 || diff.Counters["other"] != 1 {
		t.Errorf("counter deltas = %v", diff.Counters)
	}
	if diff.Gauges["residual"] != 0.25 {
		t.Errorf("gauge in diff = %v, want latest value 0.25", diff.Gauges["residual"])
	}
	if ts := diff.Timers["stage"]; ts.Count != 2 { // Observe + span End
		t.Errorf("timer delta count = %d, want 2", ts.Count)
	}
	if len(diff.Spans) != 1 || diff.Spans[0].Stage != "stage" {
		t.Errorf("spans in diff = %+v, want the one fresh span", diff.Spans)
	}
	if names := diff.CounterNames(); len(names) != 2 || names[0] != "jobs" || names[1] != "other" {
		t.Errorf("CounterNames = %v, want sorted [jobs other]", names)
	}
}

func TestSpanAttribution(t *testing.T) {
	r := NewRegistry()
	ctx := WithExperiment(context.Background(), "figure1")
	if got := ExperimentFrom(ctx); got != "figure1" {
		t.Fatalf("ExperimentFrom = %q", got)
	}
	_, span := r.StartSpan(ctx, "walk.mixing")
	span.End()
	span.End() // idempotent

	s := r.Snapshot()
	if len(s.Spans) != 1 {
		t.Fatalf("got %d spans, want 1 (End must be idempotent)", len(s.Spans))
	}
	rec := s.Spans[0]
	if rec.Experiment != "figure1" || rec.Stage != "walk.mixing" {
		t.Errorf("span = %+v", rec)
	}
	if rec.DurationSeconds < 0 {
		t.Errorf("negative duration %v", rec.DurationSeconds)
	}
	if r.Timer("walk.mixing").Count() != 1 {
		t.Error("span did not feed its stage timer")
	}
}

func TestSpanOverflowDropsOldest(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < MaxSpans+10; i++ {
		_, span := r.StartSpan(context.Background(), "s")
		span.End()
	}
	s := r.Snapshot()
	if s.SpansTotal != MaxSpans+10 {
		t.Errorf("SpansTotal = %d, want %d", s.SpansTotal, MaxSpans+10)
	}
	if s.SpansDropped == 0 {
		t.Error("overflow did not count dropped spans")
	}
	if len(s.Spans)+int(s.SpansDropped) != int(s.SpansTotal) {
		t.Errorf("retained %d + dropped %d != total %d", len(s.Spans), s.SpansDropped, s.SpansTotal)
	}
}

func TestResetKeepsPointersValid(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(7)
	_, span := r.StartSpan(context.Background(), "s")
	span.End()
	r.Reset()
	if c.Value() != 0 {
		t.Errorf("counter after Reset = %d", c.Value())
	}
	c.Inc() // old pointer must still feed the registry
	if r.Snapshot().Counters["c"] != 1 {
		t.Error("pre-Reset pointer detached from registry")
	}
	if s := r.Snapshot(); len(s.Spans) != 0 || s.SpansTotal != 0 {
		t.Error("Reset did not clear spans")
	}
}

// TestHotPathDoesNotAllocate is the allocation-free contract: one
// observation on a registered counter, gauge, or timer must not allocate.
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	tm := r.Timer("t")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		tm.Observe(time.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("hot-path observations allocate %v times per run, want 0", allocs)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			_, span := r.StartSpan(context.Background(), "stage")
			span.End()
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(42)
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, w.Body.String())
	}
	if snap.Counters["hits"] != 42 {
		t.Errorf("served counters = %v", snap.Counters)
	}
}
