package obs

import (
	"context"
	"runtime/pprof"
	"time"
)

// SpanRecord is one completed stage span: a named phase of a measurement
// (the stage) attributed to the experiment that ran it, with its start
// offset from the registry's base clock and its duration. Records are
// what METRICS.json lists per job.
type SpanRecord struct {
	Experiment      string  `json:"experiment,omitempty"`
	Stage           string  `json:"stage"`
	StartSeconds    float64 `json:"start_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// Span is an in-flight stage span started by StartSpan; End completes it.
type Span struct {
	r          *Registry
	experiment string
	stage      string
	start      time.Time
	prevLabels context.Context
	done       bool
}

type experimentKey struct{}

// WithExperiment tags ctx with the experiment name that owns the work
// under it — the runner calls it once per job. Spans started under the
// returned context carry the name, and it is also attached as the
// "experiment" pprof label so CPU profiles attribute samples the same
// way (goroutines must adopt the label set via pprof.Do or
// pprof.SetGoroutineLabels; parallel.ForEach does this for its workers).
func WithExperiment(ctx context.Context, name string) context.Context {
	ctx = context.WithValue(ctx, experimentKey{}, name)
	return pprof.WithLabels(ctx, pprof.Labels("experiment", name))
}

// ExperimentFrom returns the experiment name ctx was tagged with, or "".
func ExperimentFrom(ctx context.Context) string {
	name, _ := ctx.Value(experimentKey{}).(string)
	return name
}

// StartSpan opens a stage span on the registry and returns a context
// carrying a "stage" pprof label for the span's extent. The caller must
// End the span on the same goroutine it started it on (the usual
// `defer span.End()`), which restores the goroutine's previous label
// set; the returned context hands the (experiment, stage) labels to any
// fan-out spawned under the span.
//
// A span costs two time.Now calls and one bounded append at End — it is
// per measurement call, never per item, so it is not subject to the
// allocation-free hot-path rule.
func (r *Registry) StartSpan(ctx context.Context, stage string) (context.Context, *Span) {
	s := &Span{
		r:          r,
		experiment: ExperimentFrom(ctx),
		stage:      stage,
		prevLabels: ctx,
	}
	ctx = pprof.WithLabels(ctx, pprof.Labels("stage", stage))
	pprof.SetGoroutineLabels(ctx)
	s.start = time.Now()
	return ctx, s
}

// StartSpan opens a stage span on the default registry.
func StartSpan(ctx context.Context, stage string) (context.Context, *Span) {
	return defaultRegistry.StartSpan(ctx, stage)
}

// End completes the span: it restores the goroutine's pprof labels,
// records a SpanRecord on the registry, and folds the duration into the
// Timer named after the stage. End is idempotent; only the first call
// records.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	d := time.Since(s.start)
	pprof.SetGoroutineLabels(s.prevLabels)
	s.r.Timer(s.stage).Observe(d)

	s.r.mu.Lock()
	rec := SpanRecord{
		Experiment:      s.experiment,
		Stage:           s.stage,
		StartSeconds:    s.start.Sub(s.r.base).Seconds(),
		DurationSeconds: d.Seconds(),
	}
	if len(s.r.spans) >= MaxSpans {
		// Drop the oldest half in one copy so overflow stays O(1)
		// amortized instead of a per-record shift.
		keep := MaxSpans / 2
		dropped := len(s.r.spans) - keep
		copy(s.r.spans, s.r.spans[dropped:])
		s.r.spans = s.r.spans[:keep]
		s.r.spansDropped += uint64(dropped)
	}
	s.r.spans = append(s.r.spans, rec)
	s.r.spansTotal++
	s.r.mu.Unlock()
}
