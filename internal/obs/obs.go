// Package obs is the observability layer of the measurement engine: a
// lightweight metrics registry (counters, gauges, timers, stage spans)
// that the hot paths — walk.MeasureMixing, expansion.Measure,
// spectral.SLEM, faults.AdvanceEpoch, and the experiment runner — report
// into, and that cmd/experiments snapshots to out/METRICS.json per run
// (or serves over HTTP with -metrics-addr for long runs).
//
// Design constraints, in order:
//
//   - Allocation-free on the hot path. Counter.Add, Gauge.Set, and
//     Timer.Observe are single atomic operations on pointers the
//     instrumented packages resolve once at init; no map lookup, no
//     lock, no allocation per observation (guarded by an AllocsPerRun
//     test). Registration (Registry.Counter, ...) locks and may
//     allocate, so callers hoist it out of their loops.
//   - Deterministic measurements. The registry only ever observes —
//     it never seeds, reorders, or schedules anything — so every
//     TestEquivalence* suite runs bit-identical with the registry
//     active. The metrics themselves (timings, pool hits) may differ
//     run to run; the measurement results may not.
//   - Attribution. Spans carry an (experiment, stage) pair: the stage
//     names the instrumented call (e.g. "walk.mixing"), the experiment
//     is read from the context via WithExperiment, which also attaches
//     a pprof label so CPU profiles slice the same way. The parallel
//     fan-out adds a per-slot "worker" pprof label, completing the
//     (experiment, stage, worker) triple on every profile sample.
//
// Cost model: one observation is one uncontended atomic RMW (~ns);
// spans add two time.Now calls and one mutex-guarded append per
// instrumented call (not per item). The span buffer is bounded
// (MaxSpans); overflow drops the oldest records and is itself counted.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is ready
// to use; obtain shared instances from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Allocation-free.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one. Allocation-free.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float64. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value. Allocation-free.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the most recently set value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates a count and total duration of observations. The
// zero value is ready to use.
type Timer struct {
	count atomic.Int64
	ns    atomic.Int64
}

// Observe folds one duration into the timer. Allocation-free.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.ns.Add(int64(d))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the summed observed duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// MaxSpans bounds the span records a registry retains; older records are
// dropped (and counted in Snapshot.SpansDropped) once the buffer is full.
const MaxSpans = 8192

// Registry holds named metrics and completed span records. Metric
// instances are get-or-create and stable: the pointer returned for a
// name never changes, so instrumented packages resolve their metrics
// once and hit only atomics afterwards. All methods are safe for
// concurrent use.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	timers       map[string]*Timer
	spans        []SpanRecord
	spansTotal   uint64
	spansDropped uint64
	base         time.Time
}

// NewRegistry returns an empty registry whose span clock starts now.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		base:     time.Now(),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented package
// reports into.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on
// first use. The returned pointer is stable for the registry's life.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer registered under name, creating it on first
// use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// TimerSnapshot is one timer's aggregate in a snapshot.
type TimerSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
}

// Snapshot is a point-in-time copy of a registry, ready for JSON
// encoding (out/METRICS.json, the -metrics-addr handler) or diffing.
type Snapshot struct {
	Counters map[string]int64         `json:"counters"`
	Gauges   map[string]float64       `json:"gauges"`
	Timers   map[string]TimerSnapshot `json:"timers"`
	// Spans are the retained span records, oldest first.
	Spans []SpanRecord `json:"spans,omitempty"`
	// SpansTotal counts every span ever recorded; SpansDropped counts
	// those no longer retained because the buffer overflowed.
	SpansTotal   uint64 `json:"spans_total"`
	SpansDropped uint64 `json:"spans_dropped,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:     make(map[string]int64, len(r.counters)),
		Gauges:       make(map[string]float64, len(r.gauges)),
		Timers:       make(map[string]TimerSnapshot, len(r.timers)),
		Spans:        append([]SpanRecord(nil), r.spans...),
		SpansTotal:   r.spansTotal,
		SpansDropped: r.spansDropped,
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = TimerSnapshot{Count: t.Count(), TotalSeconds: t.Total().Seconds()}
	}
	return s
}

// DiffSince returns the change from prev to s: counter and timer deltas
// (zero-delta entries omitted), current gauge values, and the spans
// recorded after prev was taken. Both snapshots must come from the same
// registry, prev first.
func (s Snapshot) DiffSince(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:     make(map[string]int64),
		Gauges:       s.Gauges,
		Timers:       make(map[string]TimerSnapshot),
		SpansTotal:   s.SpansTotal - prev.SpansTotal,
		SpansDropped: s.SpansDropped - prev.SpansDropped,
	}
	for name, v := range s.Counters {
		if delta := v - prev.Counters[name]; delta != 0 {
			d.Counters[name] = delta
		}
	}
	for name, t := range s.Timers {
		p := prev.Timers[name]
		if t.Count != p.Count || t.TotalSeconds != p.TotalSeconds {
			d.Timers[name] = TimerSnapshot{
				Count:        t.Count - p.Count,
				TotalSeconds: t.TotalSeconds - p.TotalSeconds,
			}
		}
	}
	// Spans recorded since prev: the retained buffer's suffix of length
	// (total delta), clamped to what is still retained.
	fresh := int(s.SpansTotal - prev.SpansTotal)
	if fresh > len(s.Spans) {
		fresh = len(s.Spans)
	}
	if fresh > 0 {
		d.Spans = append([]SpanRecord(nil), s.Spans[len(s.Spans)-fresh:]...)
	}
	return d
}

// CounterNames returns the sorted names of all registered counters, for
// deterministic report rendering.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every registered metric in place (pointers held by
// instrumented packages stay valid) and clears the span buffer. It is
// meant for tests; concurrent observers will see the zeroing as a reset,
// never a torn value.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, t := range r.timers {
		t.count.Store(0)
		t.ns.Store(0)
	}
	r.spans = nil
	r.spansTotal = 0
	r.spansDropped = 0
	r.base = time.Now()
}
