package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns an expvar-style HTTP handler that serves the
// registry's current Snapshot as indented JSON. cmd/experiments mounts
// it when -metrics-addr is set, so long runs can be inspected with
// `curl host:port/metrics` while jobs are still executing. The snapshot
// is taken per request; serving never blocks the hot paths beyond the
// registry mutex held for the copy.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding errors mean the client went away; nothing to do.
		_ = enc.Encode(r.Snapshot())
	})
}

// Serve binds addr and serves registry snapshots at /metrics (and /) in
// a background goroutine. It returns the server and the bound address,
// so ":0" works for tests and smoke scripts. The caller ends serving
// with DrainServer (preferred: in-flight snapshot responses complete)
// or srv.Close (severs them).
func (r *Registry) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/", r.Handler())
	srv := &http.Server{Handler: mux}
	go func() {
		// Serve's error after a graceful Shutdown is ErrServerClosed;
		// anything else surfaces on the next scrape, so it is dropped
		// rather than crashing the measurement run.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr().String(), nil
}

// DrainServer gracefully shuts srv down with a bounded deadline:
// listeners close immediately, in-flight responses get up to timeout to
// complete (so a /metrics body is never severed mid-write, which
// srv.Close does), and whatever is still running when the deadline
// fires is cut off by the final Close. timeout <= 0 defaults to 2s.
func DrainServer(srv *http.Server, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err == nil {
		return nil
	}
	// Deadline hit with requests still in flight: sever them rather
	// than hang the process exit.
	_ = srv.Close()
	return fmt.Errorf("obs: drain server: %w", err)
}
