package obs

import (
	"encoding/json"
	"net/http"
)

// Handler returns an expvar-style HTTP handler that serves the
// registry's current Snapshot as indented JSON. cmd/experiments mounts
// it when -metrics-addr is set, so long runs can be inspected with
// `curl host:port/metrics` while jobs are still executing. The snapshot
// is taken per request; serving never blocks the hot paths beyond the
// registry mutex held for the copy.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding errors mean the client went away; nothing to do.
		_ = enc.Encode(r.Snapshot())
	})
}
