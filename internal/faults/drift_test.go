package faults

import (
	"reflect"
	"testing"

	"github.com/trustnet/trustnet/internal/graph"
)

// liveEdges collects the live canonical edge set of a view, packed.
func liveEdges(v graph.View) map[uint64]bool {
	out := map[uint64]bool{}
	v.VisitEdges(func(e graph.Edge) bool {
		out[uint64(e.U)<<32|uint64(e.V)] = true
		return true
	})
	return out
}

func aliveSet(m *Model) []bool {
	out := make([]bool, m.Graph().NumNodes())
	for v := range out {
		out[v] = m.Alive(graph.NodeID(v))
	}
	return out
}

// TestAdvanceEpochDeltaEquivalence checks AdvanceEpochDelta against a
// brute-force diff of the live topology before and after each advance,
// with and without drift.
func TestAdvanceEpochDeltaEquivalence(t *testing.T) {
	g := epochGraph(t)
	for _, drift := range []float64{0, 0.02} {
		m, err := New(g, Config{Churn: 0.1, EdgeLoss: 0.05, Drift: drift, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		var d *EpochDelta
		for e := 1; e <= 4; e++ {
			beforeAlive := aliveSet(m)
			beforeEdges := liveEdges(m.View())
			d = m.AdvanceEpochDelta(d)
			if d.Epoch != e {
				t.Fatalf("drift %v: delta epoch = %d, want %d", drift, d.Epoch, e)
			}
			afterAlive := aliveSet(m)
			afterEdges := liveEdges(m.View())

			var wantDown, wantUp []graph.NodeID
			for v := range beforeAlive {
				if beforeAlive[v] && !afterAlive[v] {
					wantDown = append(wantDown, graph.NodeID(v))
				} else if !beforeAlive[v] && afterAlive[v] {
					wantUp = append(wantUp, graph.NodeID(v))
				}
			}
			if !reflect.DeepEqual(append([]graph.NodeID{}, d.NodesDown...), append([]graph.NodeID{}, wantDown...)) {
				t.Fatalf("drift %v epoch %d: NodesDown = %v, want %v", drift, e, d.NodesDown, wantDown)
			}
			if !reflect.DeepEqual(append([]graph.NodeID{}, d.NodesUp...), append([]graph.NodeID{}, wantUp...)) {
				t.Fatalf("drift %v epoch %d: NodesUp = %v, want %v", drift, e, d.NodesUp, wantUp)
			}

			lost, gained := 0, 0
			for e2 := range beforeEdges {
				if !afterEdges[e2] {
					lost++
				}
			}
			for e2 := range afterEdges {
				if !beforeEdges[e2] {
					gained++
				}
			}
			if len(d.EdgesLost) != lost || len(d.EdgesGained) != gained {
				t.Fatalf("drift %v epoch %d: edge delta %d/%d, want %d/%d",
					drift, e, len(d.EdgesLost), len(d.EdgesGained), lost, gained)
			}
			for _, edge := range d.EdgesLost {
				k := uint64(edge.U)<<32 | uint64(edge.V)
				if !beforeEdges[k] || afterEdges[k] {
					t.Fatalf("drift %v epoch %d: EdgesLost reports %v which is not a lost live edge", drift, e, edge)
				}
			}
			for _, edge := range d.EdgesGained {
				k := uint64(edge.U)<<32 | uint64(edge.V)
				if beforeEdges[k] || !afterEdges[k] {
					t.Fatalf("drift %v epoch %d: EdgesGained reports %v which is not a gained live edge", drift, e, edge)
				}
			}
		}
	}
}

// TestDriftDeterministic checks that two drifting models with identical
// configs produce bit-identical schedules epoch by epoch.
func TestDriftDeterministic(t *testing.T) {
	g := epochGraph(t)
	cfg := Config{Churn: 0.15, EdgeLoss: 0.1, Drift: 0.03, Seed: 5}
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 5; e++ {
		if e > 0 {
			a.AdvanceEpoch()
			b.AdvanceEpoch()
		}
		if a.ScheduleFingerprint() != b.ScheduleFingerprint() {
			t.Fatalf("epoch %d: drifting schedules diverge between identical models", e)
		}
	}
}

// TestDriftSetEpochReplayEquivalence checks that SetEpoch(e) under
// drift reproduces the schedule e successive advances build, so
// resumed sweeps re-enter the chain bit-identically.
func TestDriftSetEpochReplayEquivalence(t *testing.T) {
	g := epochGraph(t)
	cfg := Config{Churn: 0.15, EdgeLoss: 0.1, Drift: 0.05, Seed: 21}
	walked, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e <= 6; e++ {
		if e > 0 {
			walked.AdvanceEpoch()
		}
		jumped, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := jumped.SetEpoch(e); err != nil {
			t.Fatal(err)
		}
		if jumped.ScheduleFingerprint() != walked.ScheduleFingerprint() {
			t.Fatalf("epoch %d: SetEpoch schedule differs from advanced schedule", e)
		}
		if jumped.NumDown() != walked.NumDown() || jumped.NumLostEdges() != walked.NumLostEdges() {
			t.Fatalf("epoch %d: SetEpoch counters differ from advanced counters", e)
		}
	}
}

// TestDriftChangesAreSmall checks the point of drift: per-epoch deltas
// are a small fraction of the graph while down/lost totals stay near
// the configured marginals.
func TestDriftChangesAreSmall(t *testing.T) {
	g := epochGraph(t)
	cfg := Config{Churn: 0.1, EdgeLoss: 0.05, Drift: 0.02, Seed: 13}
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	var d *EpochDelta
	for e := 1; e <= 5; e++ {
		d = m.AdvanceEpochDelta(d)
		flips := len(d.NodesDown) + len(d.NodesUp)
		// Expected node flips ≈ 2·Drift·Churn·n ≈ 8 here; 5% of n would
		// mean the chain is redrawing, not drifting.
		if flips > n/20 {
			t.Fatalf("epoch %d: %d node flips out of %d — drift is not incremental", e, flips, n)
		}
		down := float64(m.NumDown()) / float64(n)
		if down > 3*cfg.Churn {
			t.Fatalf("epoch %d: down fraction %v drifted far above churn %v", e, down, cfg.Churn)
		}
	}
}

// TestDriftProtectedNodesNeverChurn checks protection holds across the
// drift chain, not just the epoch-0 draw.
func TestDriftProtectedNodesNeverChurn(t *testing.T) {
	g := epochGraph(t)
	protected := []graph.NodeID{0, 7, 99}
	m, err := New(g, Config{Churn: 0.3, EdgeLoss: 0.1, Drift: 0.5, Seed: 2, Protected: protected})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 8; e++ {
		for _, v := range protected {
			if !m.Alive(v) {
				t.Fatalf("epoch %d: protected node %d churned", e, v)
			}
		}
		m.AdvanceEpoch()
	}
}
