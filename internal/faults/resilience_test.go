package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/trustnet/trustnet/internal/resilience"
)

// SetEpoch(e) must land on exactly the schedule e AdvanceEpoch calls
// reach, so a resumed sweep can jump straight to the crashed epoch.
func TestSetEpochMatchesAdvance(t *testing.T) {
	g := testGraph(t)
	cfg := Config{Churn: 0.25, EdgeLoss: 0.1, Seed: 19}
	walked, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	want = append(want, walked.ScheduleFingerprint())
	for e := 1; e <= 5; e++ {
		walked.AdvanceEpoch()
		want = append(want, walked.ScheduleFingerprint())
	}

	jumped, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := jumped.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	if jumped.Epoch() != 5 {
		t.Fatalf("Epoch() = %d after SetEpoch(5)", jumped.Epoch())
	}
	if got := jumped.ScheduleFingerprint(); got != want[5] {
		t.Fatalf("SetEpoch(5) fingerprint %x != advanced fingerprint %x", got, want[5])
	}
	// Jumping backward works too: the draw is a pure function of epoch.
	if err := jumped.SetEpoch(2); err != nil {
		t.Fatal(err)
	}
	if got := jumped.ScheduleFingerprint(); got != want[2] {
		t.Fatalf("SetEpoch(2) fingerprint %x != advanced fingerprint %x", got, want[2])
	}
	if err := jumped.SetEpoch(-1); err == nil {
		t.Fatal("SetEpoch(-1): want error")
	}
}

// Distinct epochs should (overwhelmingly) have distinct fingerprints —
// the digest actually sees the schedule, not just its size.
func TestScheduleFingerprintDistinguishesEpochs(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, Config{Churn: 0.25, EdgeLoss: 0.1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{m.ScheduleFingerprint(): 0}
	for e := 1; e <= 8; e++ {
		m.AdvanceEpoch()
		fp := m.ScheduleFingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("epochs %d and %d share fingerprint %x", prev, e, fp)
		}
		seen[fp] = e
	}
}

// An epoch sweep whose per-epoch measurement fails transiently and is
// re-run by the retry policy must still walk the exact schedule sequence
// of a failure-free sweep: retries consume no structural randomness.
func TestEpochSweepWithRetriesBitIdentical(t *testing.T) {
	g := testGraph(t)
	cfg := Config{Churn: 0.3, EdgeLoss: 0.15, MsgDrop: 0.1, LatencyMean: 2, Seed: 7}
	const epochs = 6

	clean, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for e := 0; e < epochs; e++ {
		if e > 0 {
			clean.AdvanceEpoch()
		}
		want = append(want, clean.ScheduleFingerprint())
	}

	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pol := resilience.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, Seed: 1}
	injected := errors.New("injected measurement failure")
	var got []uint64
	for e := 0; e < epochs; e++ {
		if e > 0 {
			m.AdvanceEpoch()
		}
		failures := 0
		_, err := pol.Run(context.Background(), func(context.Context, int) error {
			// The "measurement": read the schedule and exercise the
			// message stream, then fail transiently on the first two
			// attempts of every epoch.
			m.View().NumAlive()
			m.Deliver(0, 1)
			if failures < 2 {
				failures++
				return resilience.MarkTransient(injected)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("epoch %d: retried measurement failed: %v", e, err)
		}
		got = append(got, m.ScheduleFingerprint())
	}
	for e := range want {
		if got[e] != want[e] {
			t.Fatalf("epoch %d: fingerprint %x after retries, want %x (schedule perturbed)", e, got[e], want[e])
		}
	}
}
