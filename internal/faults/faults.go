// Package faults provides the deterministic fault-injection and churn
// model the robustness experiments run the trustworthy-computing
// applications (the Whānau-style DHT, GateKeeper, SybilLimit, ...)
// under. The paper's guarantees (§I–II) are derived on a static,
// fully-available social graph; real deployments of the same protocols
// (distributed mixing-time computation, distributed k-core
// decomposition) face node churn, link loss, and message-level
// failures. This package turns those failure classes into a seeded,
// reproducible schedule:
//
//   - node churn: a fraction of nodes crash or leave, losing all their
//     incident edges (they stay in the ID space, isolated, so node
//     identifiers remain dense and honest/sybil bookkeeping holds);
//   - edge loss: a fraction of the surviving edges drop independently
//     (a lost friendship link, a failed overlay connection);
//   - message drop: each simulated message is lost with a fixed
//     probability at delivery time;
//   - latency: each delivered message costs a random number of
//     simulated ticks, so protocols can account timeouts and backoff
//     in a common simulated-time unit.
//
// The schedule (which nodes are down, which edges are lost) is a pure
// function of (seed, epoch): two models built with identical
// configurations are identical, and AdvanceEpoch re-draws the next
// epoch's schedule from derived seeds, also deterministically.
// Message-level randomness is a separate seeded stream, so structural
// determinism is independent of how many messages a protocol sends.
//
// With Config.Drift > 0 epochs stop being independent redraws and
// become a birth–death evolution of the previous epoch's schedule:
// each node and edge flips state with a small per-epoch probability
// chosen so the stationary marginals stay Churn and EdgeLoss. That
// makes consecutive epochs differ by O(Drift·(Churn·n + EdgeLoss·m))
// elements — the regime the incremental measurement pipelines
// (internal/incremental) exploit — and AdvanceEpochDelta reports the
// exact live-topology difference of each advance as an EpochDelta.
//
// Complexity: New builds a model in O(n + m) (one pass over nodes for
// the churn draw, one over edges for the loss draw) applied to a
// graph.MaskedView of the substrate — no degraded-graph rebuild.
// Advancing an epoch costs the same two passes and allocates O(1);
// measurements run directly on View(). Alive/EdgeUp checks are O(1) and
// O(log deg), and each Deliver costs O(1) RNG draws.
package faults

import (
	"fmt"
	"math/rand"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/obs"
)

// Observability instruments for the fault schedule, resolved once at
// init and written once per epoch draw — the draw's RNG streams are
// untouched, so schedules stay bit-identical with metrics enabled.
var (
	obsEpochDraws  = obs.Default().Counter("faults.epoch.draws")
	obsEpochDrifts = obs.Default().Counter("faults.epoch.drifts")
	obsNodesMasked = obs.Default().Counter("faults.epoch.nodes_masked")
	obsEdgesMasked = obs.Default().Counter("faults.epoch.edges_masked")
)

// Config parameterizes a fault model.
type Config struct {
	// Churn is the fraction of nodes down (crashed or departed), in
	// [0, 1). Down nodes lose every incident edge.
	Churn float64
	// EdgeLoss is the probability each edge between two up nodes is
	// independently lost, in [0, 1).
	EdgeLoss float64
	// MsgDrop is the probability an individual message is dropped at
	// delivery time, in [0, 1).
	MsgDrop float64
	// LatencyMean is the mean simulated latency of a delivered message
	// in ticks; each delivery costs 1 + Exp(LatencyMean) ticks. 0 means
	// every delivery costs exactly 1 tick.
	LatencyMean float64
	// Drift, when positive, evolves the epoch-0 schedule instead of
	// redrawing each epoch independently. On every AdvanceEpoch each
	// down node revives with probability Drift and each up unprotected
	// node churns with probability Drift·Churn/(1−Churn); each dropped
	// edge is restored with probability Drift and each present edge
	// drops with probability Drift·EdgeLoss/(1−EdgeLoss). Those rates
	// make Churn and EdgeLoss the stationary marginals of the chain
	// while consecutive epochs differ only by O(Drift·(Churn·n +
	// EdgeLoss·m)) elements. In [0, 1]; 0 keeps the historical
	// independent-redraw behavior.
	Drift float64
	// Seed makes the fault schedule and the message stream
	// deterministic.
	Seed int64
	// Protected nodes never churn — the verifier or controller of a
	// defense run, which by definition is the live node asking the
	// question.
	Protected []graph.NodeID
}

func (c Config) validate() error {
	if c.Churn < 0 || c.Churn >= 1 {
		return fmt.Errorf("faults: churn %v out of [0,1)", c.Churn)
	}
	if c.EdgeLoss < 0 || c.EdgeLoss >= 1 {
		return fmt.Errorf("faults: edge loss %v out of [0,1)", c.EdgeLoss)
	}
	if c.MsgDrop < 0 || c.MsgDrop >= 1 {
		return fmt.Errorf("faults: message drop %v out of [0,1)", c.MsgDrop)
	}
	if c.LatencyMean < 0 {
		return fmt.Errorf("faults: latency mean %v must be >= 0", c.LatencyMean)
	}
	if c.Drift < 0 || c.Drift > 1 {
		return fmt.Errorf("faults: drift %v out of [0,1]", c.Drift)
	}
	return nil
}

// Model is a fault schedule over one graph plus a message-level fault
// stream. The structural schedule (down nodes, lost edges) is held as a
// graph.MaskedView over the substrate and is re-drawn per epoch by
// AdvanceEpoch; between epoch advances it is immutable. Deliver consumes
// the message stream, and AdvanceEpoch mutates the view, so a model is
// not safe for concurrent use — create one per goroutine, or fence epoch
// advances from concurrent measurement.
type Model struct {
	cfg       Config
	g         *graph.Graph
	view      *graph.MaskedView
	protected []bool
	epoch     int
	numLost   int
	msgRNG    *rand.Rand

	// candidates is the churn-draw scratch, reused across epochs.
	candidates []graph.NodeID
	// prevSnap is the AdvanceEpochDelta scratch: the mask state of the
	// epoch being left, reused across advances.
	prevSnap *graph.MaskSnapshot
	// degraded caches Degraded() per epoch in reusable CSR buffers.
	degraded      *graph.Graph
	degradedEpoch int
	matOff        []int64
	matAdj        []graph.NodeID
}

// New builds the epoch-0 fault schedule for g: it samples floor(Churn·n)
// unprotected nodes to take down and then drops each remaining edge
// with probability EdgeLoss, all deterministically from cfg.Seed. The
// schedule is applied to a zero-copy MaskedView of g; nothing is
// rebuilt.
func New(g *graph.Graph, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	m := &Model{
		cfg:           cfg,
		g:             g,
		view:          graph.NewMaskedView(g),
		protected:     make([]bool, n),
		msgRNG:        rand.New(rand.NewSource(cfg.Seed + 2)),
		candidates:    make([]graph.NodeID, 0, n),
		degradedEpoch: -1,
	}
	for _, v := range cfg.Protected {
		if !g.Valid(v) {
			return nil, fmt.Errorf("faults: protected node %d out of range", v)
		}
		m.protected[v] = true
	}
	m.drawEpoch(0)
	return m, nil
}

// drawEpoch resets the view and draws epoch e's structural schedule.
// Epoch e's churn stream is seeded with Seed+3e and its edge-loss stream
// with Seed+3e+1, so epoch 0 reproduces the historical Seed/Seed+1
// schedule exactly and no structural stream ever collides with the
// message stream at Seed+2.
func (m *Model) drawEpoch(e int) {
	m.view.Reset()
	m.numLost = 0
	n := m.g.NumNodes()

	if m.cfg.Churn > 0 {
		rng := rand.New(rand.NewSource(m.cfg.Seed + 3*int64(e)))
		candidates := m.candidates[:0]
		for v := graph.NodeID(0); int(v) < n; v++ {
			if !m.protected[v] {
				candidates = append(candidates, v)
			}
		}
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		take := int(m.cfg.Churn * float64(n))
		if take > len(candidates) {
			take = len(candidates)
		}
		for _, v := range candidates[:take] {
			m.view.SetAlive(v, false)
		}
		m.candidates = candidates
	}

	if m.cfg.EdgeLoss > 0 {
		rng := rand.New(rand.NewSource(m.cfg.Seed + 3*int64(e) + 1))
		// Iterate edges in canonical order so the loss set depends only
		// on the seed and the graph, not on traversal incidentals. Edges
		// with a churned endpoint are already gone and draw nothing.
		m.g.VisitEdges(func(edge graph.Edge) bool {
			if !m.view.Alive(edge.U) || !m.view.Alive(edge.V) {
				return true
			}
			if rng.Float64() < m.cfg.EdgeLoss {
				m.view.DropEdge(edge.U, edge.V)
				m.numLost++
			}
			return true
		})
	}

	obsEpochDraws.Inc()
	obsNodesMasked.Add(int64(n - m.view.NumAlive()))
	obsEdgesMasked.Add(int64(m.numLost))
}

// driftEpoch evolves the current schedule into epoch e's by the
// birth–death chain described on Config.Drift, drawing node transitions
// from the Seed+3e stream and edge transitions from the Seed+3e+1
// stream — the same per-epoch seed derivation drawEpoch uses, so drift
// and redraw schedules never share a stream. Every unprotected node and
// every substrate edge consumes exactly one uniform draw regardless of
// its state, which keeps the streams aligned under replay. Cost is one
// pass over nodes and one over edges with O(flips·deg) mask updates.
func (m *Model) driftEpoch(e int) {
	n := m.g.NumNodes()

	pRevive := m.cfg.Drift
	pChurn := 0.0
	if m.cfg.Churn > 0 {
		pChurn = m.cfg.Drift * m.cfg.Churn / (1 - m.cfg.Churn)
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 3*int64(e)))
	for v := graph.NodeID(0); int(v) < n; v++ {
		if m.protected[v] {
			continue
		}
		u := rng.Float64()
		if m.view.Alive(v) {
			if u < pChurn {
				m.view.SetAlive(v, false)
			}
		} else if u < pRevive {
			m.view.SetAlive(v, true)
		}
	}

	pRestore := m.cfg.Drift
	pDrop := 0.0
	if m.cfg.EdgeLoss > 0 {
		pDrop = m.cfg.Drift * m.cfg.EdgeLoss / (1 - m.cfg.EdgeLoss)
	}
	erng := rand.New(rand.NewSource(m.cfg.Seed + 3*int64(e) + 1))
	m.g.VisitEdges(func(edge graph.Edge) bool {
		u := erng.Float64()
		if m.view.Dropped(edge.U, edge.V) {
			if u < pRestore {
				m.view.RestoreEdge(edge.U, edge.V)
				m.numLost--
			}
		} else if u < pDrop {
			m.view.DropEdge(edge.U, edge.V)
			m.numLost++
		}
		return true
	})

	obsEpochDrifts.Inc()
	obsNodesMasked.Add(int64(n - m.view.NumAlive()))
	obsEdgesMasked.Add(int64(m.numLost))
}

// redraw produces epoch e's schedule: a fresh independent draw, or —
// under drift, for e > 0 — one evolution step from the current state.
// Drift callers must therefore already hold epoch e−1's schedule, which
// AdvanceEpoch guarantees and SetEpoch reconstructs by replay.
func (m *Model) redraw(e int) {
	if m.cfg.Drift > 0 && e > 0 {
		m.driftEpoch(e)
	} else {
		m.drawEpoch(e)
	}
}

// Epoch returns the current epoch index, starting at 0.
func (m *Model) Epoch() int { return m.epoch }

// AdvanceEpoch moves the structural schedule to the next epoch: a
// fresh churn sample and edge-loss draw from the epoch-derived seeds,
// or — with Config.Drift set — one birth–death evolution step of the
// current schedule. The message stream keeps running across epochs.
// Cost is an O(n + m) two-pass draw (or drift sweep) with O(1)
// allocation — no graph rebuild — and it invalidates the view's cached
// materialization; it must not run concurrently with measurements on
// View().
func (m *Model) AdvanceEpoch() {
	m.epoch++
	m.redraw(m.epoch)
}

// EpochDelta is the live-topology difference one AdvanceEpochDelta call
// observed: which nodes went down or came up and which edges stopped or
// started being live, in the graph.MaskDelta sense (an edge counts as
// lost whether it was dropped outright or lost an endpoint to churn).
// It is the contract between the fault schedule and the incremental
// measurement pipelines.
type EpochDelta struct {
	// Epoch is the epoch the delta leads into: the delta transforms
	// epoch Epoch−1's live topology into epoch Epoch's.
	Epoch int
	// MaskDelta holds the sorted, duplicate-free change sets.
	graph.MaskDelta
}

// AdvanceEpochDelta is AdvanceEpoch plus delta reporting: it snapshots
// the current schedule, advances one epoch, and returns the exact
// live-topology difference between the two, appending into d's slices
// when non-nil (allocating otherwise). The snapshot scratch lives in
// the model, so steady-state advances allocate nothing beyond delta
// growth. Note that without Config.Drift consecutive epochs are
// independent draws and the delta is typically O(Churn·n + EdgeLoss·m)
// — set Drift to make deltas small enough for incremental measurement
// to win.
func (m *Model) AdvanceEpochDelta(d *EpochDelta) *EpochDelta {
	if d == nil {
		d = &EpochDelta{}
	}
	m.prevSnap = m.view.Snapshot(m.prevSnap)
	m.AdvanceEpoch()
	m.view.DiffSnapshot(m.prevSnap, &d.MaskDelta)
	d.Epoch = m.epoch
	return d
}

// SetEpoch jumps the structural schedule directly to epoch e. Each
// epoch's schedule is a pure function of (seed, epoch), so SetEpoch(e)
// produces the same degraded topology as e successive AdvanceEpoch
// calls on a fresh model — which is what lets a resumed sweep re-enter
// at the epoch it crashed in. Without drift that is a single O(n + m)
// draw; with Config.Drift set the schedule is a chain, so SetEpoch
// replays it deterministically from epoch 0 in O(e·(n + m)). The
// message stream is untouched. e must be >= 0.
func (m *Model) SetEpoch(e int) error {
	if e < 0 {
		return fmt.Errorf("faults: epoch %d must be >= 0", e)
	}
	m.epoch = e
	if m.cfg.Drift > 0 {
		m.drawEpoch(0)
		for k := 1; k <= e; k++ {
			m.driftEpoch(k)
		}
		return nil
	}
	m.drawEpoch(e)
	return nil
}

// ScheduleFingerprint returns a 64-bit FNV-1a digest of the current
// epoch's structural schedule: the down-node set and the lost-edge set,
// both visited in canonical order. Two models agree on the fingerprint
// exactly when they agree on the degraded topology, so a resumed or
// retried epoch sweep can prove its schedules bit-identical to an
// uninterrupted run without storing the schedules themselves.
func (m *Model) ScheduleFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	n := m.g.NumNodes()
	for v := graph.NodeID(0); int(v) < n; v++ {
		if !m.view.Alive(v) {
			mix(uint64(v))
		}
	}
	mix(^uint64(0)) // separates the node section from the edge section
	m.g.VisitEdges(func(edge graph.Edge) bool {
		if m.view.Alive(edge.U) && m.view.Alive(edge.V) && m.view.Dropped(edge.U, edge.V) {
			mix(uint64(edge.U)<<32 | uint64(edge.V))
		}
		return true
	})
	return h
}

// View returns the degraded graph as a zero-copy graph.MaskedView, the
// measure-only path: hand it straight to walk/expansion/kcore/... without
// any per-epoch rebuild. The view is re-drawn in place by AdvanceEpoch.
func (m *Model) View() *graph.MaskedView { return m.view }

// Config returns the configuration the model was built with.
func (m *Model) Config() Config { return m.cfg }

// Graph returns the pristine graph the schedule was drawn over.
func (m *Model) Graph() *graph.Graph { return m.g }

// Alive reports whether v survived the churn schedule.
func (m *Model) Alive(v graph.NodeID) bool {
	return m.g.Valid(v) && m.view.Alive(v)
}

// EdgeUp reports whether the edge (u, v) is usable: both endpoints
// alive and the edge itself not lost.
func (m *Model) EdgeUp(u, v graph.NodeID) bool {
	return m.Alive(u) && m.Alive(v) && !m.view.Dropped(u, v)
}

// Degraded returns the current epoch's degraded graph as a materialized
// CSR *Graph: same node set (IDs stay dense so honest/sybil bookkeeping
// holds), with down nodes isolated and lost edges removed. It is built
// lazily from the view into buffers the model reuses, so after the first
// call it allocates only a fixed header per epoch. The result is valid
// until the next AdvanceEpoch; prefer View() for measurement, which
// needs no materialization at all.
func (m *Model) Degraded() *graph.Graph {
	if m.degraded == nil || m.degradedEpoch != m.epoch {
		m.degraded, m.matOff, m.matAdj = graph.MaterializeInto(m.view, m.matOff, m.matAdj)
		m.degradedEpoch = m.epoch
	}
	return m.degraded
}

// NumDown returns the number of churned nodes.
func (m *Model) NumDown() int { return m.g.NumNodes() - m.view.NumAlive() }

// NumLostEdges returns the number of substrate edges currently
// drop-masked independently of churn. Under drift an edge can carry a
// drop mask while an endpoint is down (the masks evolve separately),
// so this may exceed the count of live edges removed by loss alone.
func (m *Model) NumLostEdges() int { return m.numLost }

// Delivery is the outcome of one simulated message send.
type Delivery struct {
	// OK reports whether the message arrived.
	OK bool
	// Ticks is the simulated latency the send cost (also charged for
	// drops: the sender finds out by timing out, which its own timeout
	// accounting covers).
	Ticks int
}

// Deliver simulates sending one message from u to v over the current
// schedule: it fails when either endpoint is down, when every path
// between them is irrelevant (the caller chooses routing; Deliver only
// models the directly-addressed message), or with probability MsgDrop;
// otherwise it succeeds after 1 + Exp(LatencyMean) ticks. Deliver
// advances the seeded message stream and is not safe for concurrent
// use.
func (m *Model) Deliver(u, v graph.NodeID) Delivery {
	if !m.Alive(u) || !m.Alive(v) {
		return Delivery{OK: false}
	}
	if m.cfg.MsgDrop > 0 && m.msgRNG.Float64() < m.cfg.MsgDrop {
		return Delivery{OK: false}
	}
	ticks := 1
	if m.cfg.LatencyMean > 0 {
		ticks += int(m.msgRNG.ExpFloat64() * m.cfg.LatencyMean)
	}
	return Delivery{OK: true, Ticks: ticks}
}
