// Package faults provides the deterministic fault-injection and churn
// model the robustness experiments run the trustworthy-computing
// applications (the Whānau-style DHT, GateKeeper, SybilLimit, ...)
// under. The paper's guarantees (§I–II) are derived on a static,
// fully-available social graph; real deployments of the same protocols
// (distributed mixing-time computation, distributed k-core
// decomposition) face node churn, link loss, and message-level
// failures. This package turns those failure classes into a seeded,
// reproducible schedule:
//
//   - node churn: a fraction of nodes crash or leave, losing all their
//     incident edges (they stay in the ID space, isolated, so node
//     identifiers remain dense and honest/sybil bookkeeping holds);
//   - edge loss: a fraction of the surviving edges drop independently
//     (a lost friendship link, a failed overlay connection);
//   - message drop: each simulated message is lost with a fixed
//     probability at delivery time;
//   - latency: each delivered message costs a random number of
//     simulated ticks, so protocols can account timeouts and backoff
//     in a common simulated-time unit.
//
// The schedule (which nodes are down, which edges are lost) is fixed at
// construction from the seed, so two models built with identical
// configurations are identical; message-level randomness is a separate
// seeded stream, so structural determinism is independent of how many
// messages a protocol sends.
//
// Complexity: New builds a model in O(n + m) (one pass over nodes for
// the churn draw, one over edges for the loss draw) and materializes the
// degraded graph once; Alive/EdgeUp checks are O(1), and each Deliver
// costs O(1) RNG draws.
package faults

import (
	"fmt"
	"math/rand"

	"github.com/trustnet/trustnet/internal/graph"
)

// Config parameterizes a fault model.
type Config struct {
	// Churn is the fraction of nodes down (crashed or departed), in
	// [0, 1). Down nodes lose every incident edge.
	Churn float64
	// EdgeLoss is the probability each edge between two up nodes is
	// independently lost, in [0, 1).
	EdgeLoss float64
	// MsgDrop is the probability an individual message is dropped at
	// delivery time, in [0, 1).
	MsgDrop float64
	// LatencyMean is the mean simulated latency of a delivered message
	// in ticks; each delivery costs 1 + Exp(LatencyMean) ticks. 0 means
	// every delivery costs exactly 1 tick.
	LatencyMean float64
	// Seed makes the fault schedule and the message stream
	// deterministic.
	Seed int64
	// Protected nodes never churn — the verifier or controller of a
	// defense run, which by definition is the live node asking the
	// question.
	Protected []graph.NodeID
}

func (c Config) validate() error {
	if c.Churn < 0 || c.Churn >= 1 {
		return fmt.Errorf("faults: churn %v out of [0,1)", c.Churn)
	}
	if c.EdgeLoss < 0 || c.EdgeLoss >= 1 {
		return fmt.Errorf("faults: edge loss %v out of [0,1)", c.EdgeLoss)
	}
	if c.MsgDrop < 0 || c.MsgDrop >= 1 {
		return fmt.Errorf("faults: message drop %v out of [0,1)", c.MsgDrop)
	}
	if c.LatencyMean < 0 {
		return fmt.Errorf("faults: latency mean %v must be >= 0", c.LatencyMean)
	}
	return nil
}

// Model is a fault schedule over one graph plus a message-level fault
// stream. The structural schedule (down nodes, lost edges) is immutable
// after construction; Deliver consumes the message stream and is
// therefore not safe for concurrent use — create one model per
// goroutine.
type Model struct {
	cfg      Config
	g        *graph.Graph
	down     []bool
	lost     map[graph.Edge]struct{}
	degraded *graph.Graph
	msgRNG   *rand.Rand
}

// New builds the fault schedule for g: it samples floor(Churn·n)
// unprotected nodes to take down and then drops each remaining edge
// with probability EdgeLoss, all deterministically from cfg.Seed.
func New(g *graph.Graph, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	m := &Model{
		cfg:    cfg,
		g:      g,
		down:   make([]bool, n),
		lost:   make(map[graph.Edge]struct{}),
		msgRNG: rand.New(rand.NewSource(cfg.Seed + 2)),
	}
	protected := make(map[graph.NodeID]bool, len(cfg.Protected))
	for _, v := range cfg.Protected {
		if !g.Valid(v) {
			return nil, fmt.Errorf("faults: protected node %d out of range", v)
		}
		protected[v] = true
	}

	if cfg.Churn > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed))
		candidates := make([]graph.NodeID, 0, n)
		for v := graph.NodeID(0); int(v) < n; v++ {
			if !protected[v] {
				candidates = append(candidates, v)
			}
		}
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		take := int(cfg.Churn * float64(n))
		if take > len(candidates) {
			take = len(candidates)
		}
		for _, v := range candidates[:take] {
			m.down[v] = true
		}
	}

	if cfg.EdgeLoss > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		// Iterate edges in canonical order so the loss set depends only
		// on the seed and the graph, not on traversal incidentals.
		for _, e := range g.Edges() {
			if m.down[e.U] || m.down[e.V] {
				continue // already gone with its endpoint
			}
			if rng.Float64() < cfg.EdgeLoss {
				m.lost[e] = struct{}{}
			}
		}
	}

	b := graph.NewBuilder(n)
	for _, e := range g.Edges() {
		if m.EdgeUp(e.U, e.V) {
			b.AddEdgeSafe(e.U, e.V)
		}
	}
	m.degraded = b.Build()
	return m, nil
}

// Config returns the configuration the model was built with.
func (m *Model) Config() Config { return m.cfg }

// Graph returns the pristine graph the schedule was drawn over.
func (m *Model) Graph() *graph.Graph { return m.g }

// Alive reports whether v survived the churn schedule.
func (m *Model) Alive(v graph.NodeID) bool {
	return m.g.Valid(v) && !m.down[v]
}

// EdgeUp reports whether the edge (u, v) is usable: both endpoints
// alive and the edge itself not lost.
func (m *Model) EdgeUp(u, v graph.NodeID) bool {
	if !m.Alive(u) || !m.Alive(v) {
		return false
	}
	_, gone := m.lost[graph.Edge{U: u, V: v}.Canonical()]
	return !gone
}

// Degraded returns the graph as the failure schedule leaves it: same
// node set (IDs stay dense so honest/sybil bookkeeping holds), with
// down nodes isolated and lost edges removed. The graph is built once
// at construction and safe to share.
func (m *Model) Degraded() *graph.Graph { return m.degraded }

// NumDown returns the number of churned nodes.
func (m *Model) NumDown() int {
	c := 0
	for _, d := range m.down {
		if d {
			c++
		}
	}
	return c
}

// NumLostEdges returns the number of edges lost independently of churn.
func (m *Model) NumLostEdges() int { return len(m.lost) }

// Delivery is the outcome of one simulated message send.
type Delivery struct {
	// OK reports whether the message arrived.
	OK bool
	// Ticks is the simulated latency the send cost (also charged for
	// drops: the sender finds out by timing out, which its own timeout
	// accounting covers).
	Ticks int
}

// Deliver simulates sending one message from u to v over the current
// schedule: it fails when either endpoint is down, when every path
// between them is irrelevant (the caller chooses routing; Deliver only
// models the directly-addressed message), or with probability MsgDrop;
// otherwise it succeeds after 1 + Exp(LatencyMean) ticks. Deliver
// advances the seeded message stream and is not safe for concurrent
// use.
func (m *Model) Deliver(u, v graph.NodeID) Delivery {
	if !m.Alive(u) || !m.Alive(v) {
		return Delivery{OK: false}
	}
	if m.cfg.MsgDrop > 0 && m.msgRNG.Float64() < m.cfg.MsgDrop {
		return Delivery{OK: false}
	}
	ticks := 1
	if m.cfg.LatencyMean > 0 {
		ticks += int(m.msgRNG.ExpFloat64() * m.cfg.LatencyMean)
	}
	return Delivery{OK: true, Ticks: ticks}
}
