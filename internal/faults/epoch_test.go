package faults

import (
	"reflect"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func epochGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(2000, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func viewEdgeList(v graph.View) []graph.Edge {
	var out []graph.Edge
	v.VisitEdges(func(e graph.Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

func TestEpochAdvanceDeterministic(t *testing.T) {
	g := epochGraph(t)
	cfg := Config{Churn: 0.15, EdgeLoss: 0.1, Seed: 5}
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		if e > 0 {
			a.AdvanceEpoch()
			b.AdvanceEpoch()
		}
		if a.Epoch() != e || b.Epoch() != e {
			t.Fatalf("epoch = %d/%d, want %d", a.Epoch(), b.Epoch(), e)
		}
		if a.NumDown() != b.NumDown() || a.NumLostEdges() != b.NumLostEdges() {
			t.Fatalf("epoch %d: schedules diverge between identical models", e)
		}
		if !reflect.DeepEqual(viewEdgeList(a.View()), viewEdgeList(b.View())) {
			t.Fatalf("epoch %d: view edges diverge between identical models", e)
		}
	}
}

func TestEpochSchedulesDiffer(t *testing.T) {
	g := epochGraph(t)
	m, err := New(g, Config{Churn: 0.2, EdgeLoss: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first := viewEdgeList(m.View())
	m.AdvanceEpoch()
	second := viewEdgeList(m.View())
	if reflect.DeepEqual(first, second) {
		t.Fatal("epoch 1 drew the same schedule as epoch 0")
	}
	// The churn budget is the same every epoch.
	if got, want := m.NumDown(), int(0.2*float64(g.NumNodes())); got != want {
		t.Fatalf("epoch 1 NumDown = %d, want %d", got, want)
	}
}

// TestEquivalenceViewDegradedMatchesView: the materialized degraded graph
// must be bit-identical to an independent Builder rebuild of the view, at
// every epoch.
func TestEquivalenceViewDegradedMatchesView(t *testing.T) {
	g := epochGraph(t)
	m, err := New(g, Config{Churn: 0.1, EdgeLoss: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if e > 0 {
			m.AdvanceEpoch()
		}
		d := m.Degraded()
		b := graph.NewBuilder(g.NumNodes())
		m.View().VisitEdges(func(edge graph.Edge) bool {
			b.AddEdgeSafe(edge.U, edge.V)
			return true
		})
		want := b.Build()
		if d.NumNodes() != want.NumNodes() || d.NumEdges() != want.NumEdges() {
			t.Fatalf("epoch %d: degraded size diverges", e)
		}
		if !reflect.DeepEqual(d.Edges(), want.Edges()) {
			t.Fatalf("epoch %d: degraded edges diverge from view rebuild", e)
		}
		// Degraded is cached within an epoch.
		if m.Degraded() != d {
			t.Fatalf("epoch %d: Degraded not cached within the epoch", e)
		}
	}
}

// TestEpochAdvanceAllocsConstant is the regression test for the zero-copy
// refactor: advancing an epoch and re-deriving the degraded graph must
// allocate O(1) — two epoch RNGs, iteration closures, and a CSR header —
// not the O(m) the historical path paid per epoch for a lost-edge map and
// a full Builder rebuild (tens of thousands of allocations on this graph).
func TestEpochAdvanceAllocsConstant(t *testing.T) {
	g := epochGraph(t)
	m, err := New(g, Config{Churn: 0.1, EdgeLoss: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// AllocsPerRun's warm-up call absorbs the first Degraded buffer growth;
	// steady state must stay a small constant regardless of graph size.
	allocs := testing.AllocsPerRun(10, func() {
		m.AdvanceEpoch()
		_ = m.Degraded()
	})
	if allocs > 32 {
		t.Fatalf("epoch advance + Degraded allocated %.0f objects per epoch, want O(1) (<= 32)", allocs)
	}
}
