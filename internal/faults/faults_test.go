package faults

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(400, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	g := testGraph(t)
	for _, cfg := range []Config{
		{Churn: -0.1}, {Churn: 1}, {EdgeLoss: -0.1}, {EdgeLoss: 1},
		{MsgDrop: -0.1}, {MsgDrop: 1}, {LatencyMean: -1},
		{Protected: []graph.NodeID{-1}}, {Protected: []graph.NodeID{10000}},
	} {
		if _, err := New(g, cfg); err == nil {
			t.Errorf("New(%+v): want error", cfg)
		}
	}
}

func TestIdenticalSeedsIdenticalSchedules(t *testing.T) {
	g := testGraph(t)
	cfg := Config{Churn: 0.3, EdgeLoss: 0.1, MsgDrop: 0.2, LatencyMean: 3, Seed: 11}
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if a.Alive(v) != b.Alive(v) {
			t.Fatalf("node %d: alive %v vs %v under identical seeds", v, a.Alive(v), b.Alive(v))
		}
	}
	if a.NumLostEdges() != b.NumLostEdges() {
		t.Fatalf("lost edges %d vs %d under identical seeds", a.NumLostEdges(), b.NumLostEdges())
	}
	for _, e := range g.Edges() {
		if a.EdgeUp(e.U, e.V) != b.EdgeUp(e.U, e.V) {
			t.Fatalf("edge %v: up %v vs %v under identical seeds", e, a.EdgeUp(e.U, e.V), b.EdgeUp(e.U, e.V))
		}
	}
	// The message stream is deterministic too.
	for i := 0; i < 200; i++ {
		da := a.Deliver(0, 1)
		db := b.Deliver(0, 1)
		if da != db {
			t.Fatalf("delivery %d: %+v vs %+v under identical seeds", i, da, db)
		}
	}
	// Different seed changes the schedule (with overwhelming probability
	// at these sizes).
	cfg.Seed = 12
	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if a.Alive(v) != c.Alive(v) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 11 and 12 produced identical churn schedules")
	}
}

func TestZeroChurnReproducesPristineGraph(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, Config{Churn: 0, EdgeLoss: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDown() != 0 || m.NumLostEdges() != 0 {
		t.Fatalf("zero-fault model took down %d nodes, lost %d edges", m.NumDown(), m.NumLostEdges())
	}
	d := m.Degraded()
	if d.NumNodes() != g.NumNodes() || d.NumEdges() != g.NumEdges() {
		t.Fatalf("degraded graph n=%d m=%d, want n=%d m=%d",
			d.NumNodes(), d.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	ge, de := g.Edges(), d.Edges()
	for i := range ge {
		if ge[i] != de[i] {
			t.Fatalf("edge %d: %v vs %v — zero-fault graph not bit-for-bit identical", i, ge[i], de[i])
		}
	}
	// Zero-fault delivery always succeeds in exactly one tick.
	for i := 0; i < 50; i++ {
		if d := m.Deliver(1, 2); !d.OK || d.Ticks != 1 {
			t.Fatalf("zero-fault delivery = %+v, want {OK:true Ticks:1}", d)
		}
	}
}

func TestChurnTakesDownRequestedFraction(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, Config{Churn: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.25 * float64(g.NumNodes()))
	if m.NumDown() != want {
		t.Errorf("NumDown = %d, want %d", m.NumDown(), want)
	}
	// Down nodes are isolated in the degraded graph.
	d := m.Degraded()
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if !m.Alive(v) && d.Degree(v) != 0 {
			t.Fatalf("down node %d has degree %d in degraded graph", v, d.Degree(v))
		}
	}
}

func TestProtectedNodesNeverChurn(t *testing.T) {
	g := testGraph(t)
	prot := []graph.NodeID{0, 7, 399}
	for seed := int64(0); seed < 20; seed++ {
		m, err := New(g, Config{Churn: 0.9, Seed: seed, Protected: prot})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range prot {
			if !m.Alive(v) {
				t.Fatalf("protected node %d churned at seed %d", v, seed)
			}
		}
	}
}

func TestEdgeLossOnlyAffectsUpEdges(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, Config{Churn: 0.2, EdgeLoss: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLostEdges() == 0 {
		t.Fatal("expected some independently lost edges")
	}
	d := m.Degraded()
	if d.NumEdges() >= g.NumEdges() {
		t.Fatalf("degraded edges %d >= pristine %d", d.NumEdges(), g.NumEdges())
	}
	for _, e := range d.Edges() {
		if !m.EdgeUp(e.U, e.V) {
			t.Fatalf("degraded graph contains downed edge %v", e)
		}
	}
}

func TestDeliverToDownNodeFails(t *testing.T) {
	g := testGraph(t)
	m, err := New(g, Config{Churn: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var down graph.NodeID = -1
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if !m.Alive(v) {
			down = v
			break
		}
	}
	if down < 0 {
		t.Fatal("no node churned at 50%")
	}
	if d := m.Deliver(0, down); d.OK {
		t.Errorf("Deliver to down node %d succeeded", down)
	}
}
