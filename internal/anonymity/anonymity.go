// Package anonymity quantifies the anonymity of random-walk relay
// selection on a social graph — the "social graphs as good mixers for
// anonymous communication" application of §I (Nagaraja, PETS 2007,
// reference [18] of the paper).
//
// A sender picks a relay by walking w steps from itself. An observer who
// sees the relay learns something about the sender unless the walk
// distribution is close to stationary. Two standard measures are
// provided for each (source, w):
//
//   - normalized Shannon entropy of the relay distribution (1 = perfect
//     mixing against a uniform-prior observer), and
//   - the TVD anonymity gap to the stationary distribution, which is
//     exactly the paper's Eq. 2 quantity and bounds the observer's
//     advantage in distinguishing the sender from a stationary one.
//
// The package ties the application directly to the measurement suite:
// the walk length needed for relay anonymity *is* the mixing time.
package anonymity

import (
	"context"
	"fmt"
	"math"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/walk"
)

// Config parameterizes an anonymity measurement.
type Config struct {
	// WalkLength is the relay-selection walk length.
	WalkLength int
	// Lazy selects the lazy walk (needed on bipartite-ish graphs).
	Lazy bool
}

func (c *Config) validate() error {
	if c.WalkLength < 1 {
		return fmt.Errorf("anonymity: walk length %d must be >= 1", c.WalkLength)
	}
	return nil
}

// Report measures one sender's relay-selection anonymity.
type Report struct {
	Source graph.NodeID
	// Entropy is the Shannon entropy (bits) of the relay distribution.
	Entropy float64
	// NormalizedEntropy divides by log2(n): 1 means uniform relays.
	NormalizedEntropy float64
	// EffectiveAnonymitySet is 2^Entropy — the size of the uniform crowd
	// the sender is hidden in.
	EffectiveAnonymitySet float64
	// TVDGap is the total variation distance between the relay
	// distribution and the stationary distribution.
	TVDGap float64
}

// Measure computes the relay-selection anonymity of one sender.
func Measure(g *graph.Graph, source graph.NodeID, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d, err := walk.NewDistribution(g, source, cfg.Lazy)
	if err != nil {
		return nil, fmt.Errorf("anonymity: %w", err)
	}
	for i := 0; i < cfg.WalkLength; i++ {
		d.Step()
	}
	pi, err := g.StationaryDistribution()
	if err != nil {
		return nil, fmt.Errorf("anonymity: %w", err)
	}
	probs := d.Probabilities()
	rep := &Report{Source: source}
	for _, p := range probs {
		if p > 0 {
			rep.Entropy -= p * math.Log2(p)
		}
	}
	n := float64(g.NumNodes())
	if n > 1 {
		rep.NormalizedEntropy = rep.Entropy / math.Log2(n)
	}
	rep.EffectiveAnonymitySet = math.Exp2(rep.Entropy)
	gap, err := walk.TotalVariation(probs, pi)
	if err != nil {
		return nil, fmt.Errorf("anonymity: %w", err)
	}
	rep.TVDGap = gap
	return rep, nil
}

// Summary aggregates anonymity over sampled senders.
type Summary struct {
	// WorstNormalizedEntropy is the least-anonymous sampled sender.
	WorstNormalizedEntropy float64
	// MeanNormalizedEntropy averages over sampled senders.
	MeanNormalizedEntropy float64
	// WorstTVDGap is the largest observer advantage.
	WorstTVDGap float64
	// Senders is the number of sampled senders.
	Senders int
}

// MeasureAll aggregates per-sender reports over k sampled senders.
func MeasureAll(g *graph.Graph, k int, cfg Config, seed int64) (*Summary, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sources, err := walk.SampleSources(g, k, seed)
	if err != nil {
		return nil, fmt.Errorf("anonymity: %w", err)
	}
	sum := &Summary{WorstNormalizedEntropy: math.Inf(1)}
	for _, s := range sources {
		rep, err := Measure(g, s, cfg)
		if err != nil {
			return nil, err
		}
		sum.MeanNormalizedEntropy += rep.NormalizedEntropy
		if rep.NormalizedEntropy < sum.WorstNormalizedEntropy {
			sum.WorstNormalizedEntropy = rep.NormalizedEntropy
		}
		if rep.TVDGap > sum.WorstTVDGap {
			sum.WorstTVDGap = rep.TVDGap
		}
		sum.Senders++
	}
	sum.MeanNormalizedEntropy /= float64(sum.Senders)
	return sum, nil
}

// RequiredWalkLength returns the smallest walk length in [1, maxLen]
// whose worst sampled TVD gap is below eps — the deployment knob for a
// relay overlay, directly derived from the mixing measurement. ctx
// cancels the underlying measurement between walk steps.
func RequiredWalkLength(ctx context.Context, g *graph.Graph, k int, eps float64, maxLen int, lazy bool, seed int64) (int, bool, error) {
	if eps <= 0 || eps >= 1 {
		return 0, false, fmt.Errorf("anonymity: eps %v out of (0,1)", eps)
	}
	if maxLen < 1 {
		return 0, false, fmt.Errorf("anonymity: max length %d must be >= 1", maxLen)
	}
	mr, err := walk.MeasureMixing(ctx, g, walk.MixingConfig{
		MaxSteps: maxLen,
		Sources:  k,
		Lazy:     lazy,
		Seed:     seed,
	})
	if err != nil {
		return 0, false, fmt.Errorf("anonymity: %w", err)
	}
	w, ok := mr.MixingTime(eps)
	return w, ok, nil
}
