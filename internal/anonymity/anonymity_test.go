package anonymity

import (
	"context"
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func TestMeasureCompleteGraphNearPerfect(t *testing.T) {
	g, err := gen.Complete(64)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Measure(g, 0, Config{WalkLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NormalizedEntropy < 0.99 {
		t.Errorf("normalized entropy = %v, want ~1 on K64", rep.NormalizedEntropy)
	}
	if rep.TVDGap > 0.01 {
		t.Errorf("TVD gap = %v, want ~0", rep.TVDGap)
	}
	if rep.EffectiveAnonymitySet < 60 {
		t.Errorf("effective anonymity set = %v, want near 64", rep.EffectiveAnonymitySet)
	}
}

func TestMeasureShortWalkLeaks(t *testing.T) {
	g, err := gen.BarabasiAlbert(500, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	short, err := Measure(g, 7, Config{WalkLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Measure(g, 7, Config{WalkLength: 40})
	if err != nil {
		t.Fatal(err)
	}
	if short.NormalizedEntropy >= long.NormalizedEntropy {
		t.Errorf("1-hop entropy %v >= 40-hop %v", short.NormalizedEntropy, long.NormalizedEntropy)
	}
	if short.TVDGap <= long.TVDGap {
		t.Errorf("1-hop gap %v <= 40-hop %v", short.TVDGap, long.TVDGap)
	}
	// A 1-hop walk exposes the sender's neighborhood: the anonymity set
	// is about its degree.
	deg := float64(g.Degree(7))
	if short.EffectiveAnonymitySet > 2*deg {
		t.Errorf("1-hop anonymity set %v, want about degree %v", short.EffectiveAnonymitySet, deg)
	}
}

func TestMeasureSlowMixerLeaksCommunity(t *testing.T) {
	slow, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 8, CommunitySize: 80, Attach: 4, Bridges: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := gen.BarabasiAlbert(640, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{WalkLength: 15, Lazy: true}
	slowSum, err := MeasureAll(slow, 15, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	fastSum, err := MeasureAll(fast, 15, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slowSum.WorstTVDGap <= fastSum.WorstTVDGap {
		t.Errorf("slow mixer worst gap %v <= fast %v", slowSum.WorstTVDGap, fastSum.WorstTVDGap)
	}
	if slowSum.MeanNormalizedEntropy >= fastSum.MeanNormalizedEntropy {
		t.Errorf("slow mixer entropy %v >= fast %v",
			slowSum.MeanNormalizedEntropy, fastSum.MeanNormalizedEntropy)
	}
	if slowSum.Senders != 15 || fastSum.Senders != 15 {
		t.Errorf("senders = %d/%d, want 15", slowSum.Senders, fastSum.Senders)
	}
}

func TestRequiredWalkLength(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	w, ok, err := RequiredWalkLength(context.Background(), g, 10, 0.05, 100, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || w < 2 {
		t.Fatalf("required walk length = %d,%v", w, ok)
	}
	// Deploying at that length must meet the gap target for the same
	// sampled senders.
	sum, err := MeasureAll(g, 10, Config{WalkLength: w}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.WorstTVDGap >= 0.05 {
		t.Errorf("worst gap %v at required length %d, want < 0.05", sum.WorstTVDGap, w)
	}
}

func TestValidation(t *testing.T) {
	g, err := gen.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(g, 0, Config{WalkLength: 0}); err == nil {
		t.Error("Measure(walk length 0): want error")
	}
	var empty graph.Graph
	if _, err := Measure(&empty, 0, Config{WalkLength: 3}); err == nil {
		t.Error("Measure(empty): want error")
	}
	if _, err := MeasureAll(g, 0, Config{WalkLength: 3}, 1); err == nil {
		t.Error("MeasureAll(k=0): want error")
	}
	if _, _, err := RequiredWalkLength(context.Background(), g, 3, 0, 10, false, 1); err == nil {
		t.Error("RequiredWalkLength(eps=0): want error")
	}
	if _, _, err := RequiredWalkLength(context.Background(), g, 3, 0.1, 0, false, 1); err == nil {
		t.Error("RequiredWalkLength(maxLen=0): want error")
	}
}

func TestEntropyBounds(t *testing.T) {
	g, err := gen.Cycle(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3, 9, 27} {
		rep, err := Measure(g, 0, Config{WalkLength: w, Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Entropy < 0 || rep.NormalizedEntropy > 1+1e-12 {
			t.Errorf("w=%d: entropy %v normalized %v out of bounds", w, rep.Entropy, rep.NormalizedEntropy)
		}
		if rep.TVDGap < 0 || rep.TVDGap > 1 {
			t.Errorf("w=%d: gap %v out of [0,1]", w, rep.TVDGap)
		}
		if math.IsNaN(rep.EffectiveAnonymitySet) {
			t.Errorf("w=%d: NaN anonymity set", w)
		}
	}
}
