package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks that arbitrary input never panics and that any
// successfully parsed graph survives a write→read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# nodes: 5\n0 1\n")
	f.Add("")
	f.Add("0 0\n")
	f.Add("a b\n")
	f.Add("9999999 1\n")
	f.Add("1 2 3 4\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: %v vs %v", g2, g)
		}
		var degSum int64
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			degSum += int64(g.Degree(v))
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("handshake lemma violated: %d vs 2*%d", degSum, g.NumEdges())
		}
	})
}
