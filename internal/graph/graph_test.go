package graph

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// pathGraph returns the path 0-1-2-...-(n-1).
func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return b.Build()
}

// cliqueGraph returns the complete graph K_n.
func cliqueGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := b.AddEdge(NodeID(i), NodeID(j)); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 {
		t.Errorf("NumNodes = %d, want 0", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
	if g.MaxDegree() != 0 || g.MinDegree() != 0 {
		t.Errorf("degrees of empty graph = %d/%d, want 0/0", g.MinDegree(), g.MaxDegree())
	}
	if _, err := g.StationaryDistribution(); err == nil {
		t.Error("StationaryDistribution on empty graph: want error")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	err := b.AddEdge(1, 1)
	if !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("AddEdge(1,1) = %v, want ErrSelfLoop", err)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	tests := []struct{ u, v NodeID }{{0, 3}, {3, 0}, {-1, 0}, {0, -1}}
	for _, tt := range tests {
		if err := b.AddEdge(tt.u, tt.v); !errors.Is(err, ErrNodeRange) {
			t.Errorf("AddEdge(%d,%d) = %v, want ErrNodeRange", tt.u, tt.v, err)
		}
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(4)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("degrees = %d,%d, want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	b := NewBuilder(6)
	edges := []Edge{{5, 0}, {3, 1}, {0, 3}, {4, 0}, {2, 5}, {1, 0}}
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		ns := g.Neighbors(v)
		if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
			t.Errorf("Neighbors(%d) = %v not sorted", v, ns)
		}
		for _, u := range ns {
			if !g.HasEdge(u, v) {
				t.Errorf("edge (%d,%d) present but (%d,%d) missing", v, u, u, v)
			}
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := pathGraph(t, 4)
	tests := []struct {
		u, v NodeID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, false},
		{3, 2, true}, {0, 3, false}, {0, 0, false},
		{-1, 0, false}, {0, 99, false},
	}
	for _, tt := range tests {
		if got := g.HasEdge(tt.u, tt.v); got != tt.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := cliqueGraph(t, 5)
	es := g.Edges()
	if len(es) != 10 {
		t.Fatalf("len(Edges) = %d, want 10", len(es))
	}
	g2, err := FromEdges(5, es)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumNodes() != g.NumNodes() {
		t.Errorf("round trip mismatch: %v vs %v", g2, g)
	}
}

func TestStationaryDistributionSumsToOne(t *testing.T) {
	g := pathGraph(t, 10)
	pi, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum(pi) = %v, want 1", sum)
	}
	// Endpoints have degree 1, middle nodes degree 2; 2m = 18.
	if math.Abs(pi[0]-1.0/18) > 1e-12 {
		t.Errorf("pi[0] = %v, want 1/18", pi[0])
	}
	if math.Abs(pi[5]-2.0/18) > 1e-12 {
		t.Errorf("pi[5] = %v, want 2/18", pi[5])
	}
}

func TestDegreeStats(t *testing.T) {
	g := pathGraph(t, 5)
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Errorf("MinDegree = %d, want 1", g.MinDegree())
	}
	want := 2 * 4.0 / 5.0
	if math.Abs(g.AverageDegree()-want) > 1e-12 {
		t.Errorf("AverageDegree = %v, want %v", g.AverageDegree(), want)
	}
}

func TestCanonicalEdge(t *testing.T) {
	e := Edge{U: 5, V: 2}.Canonical()
	if e.U != 2 || e.V != 5 {
		t.Errorf("Canonical = %+v, want {2 5}", e)
	}
	e2 := Edge{U: 1, V: 7}.Canonical()
	if e2.U != 1 || e2.V != 7 {
		t.Errorf("Canonical of ordered edge changed: %+v", e2)
	}
}

// Property: for any random simple graph built via the Builder, the handshake
// lemma holds and every adjacency is symmetric.
func TestBuildInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		nEdges := rng.Intn(3 * n)
		for i := 0; i < nEdges; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			b.AddEdgeSafe(u, v)
		}
		g := b.Build()
		var degSum int64
		for v := NodeID(0); int(v) < n; v++ {
			degSum += int64(g.Degree(v))
			for _, u := range g.Neighbors(v) {
				if u == v {
					return false // self loop survived
				}
				if !g.HasEdge(u, v) {
					return false // asymmetric adjacency
				}
			}
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	g := pathGraph(t, 3)
	if got, want := g.String(), "graph{n=3 m=2}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
