package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrNoCandidates is returned by SampleNodes when the candidate set the
// filter admits is empty.
var ErrNoCandidates = errors.New("graph: no candidate nodes to sample")

// SampleNodes draws k distinct nodes uniformly at random with a seeded
// Fisher–Yates shuffle, or every candidate (in shuffled order) when the
// graph has fewer than k. It is the one seeded source sampler shared by
// the mixing measurement (walk.SampleSources) and the expansion
// measurement (expansion.SampledSources), so the two measurements sample
// comparable source sets from the same root seed.
//
// The seed-derivation scheme is: an experiment's root seed is passed
// through unchanged for its primary sample, and derived per-item streams
// (one RNG per sampled source, repetition, or defense instance) come from
// parallel.SeedFor(root, i). SampleNodes itself consumes only the seed it
// is given, so its output is a pure function of (graph, k, seed,
// nonIsolated) — independent of worker count and call order.
//
// With nonIsolated, zero-degree nodes are excluded — required by walk
// sources (the walk is undefined on them), not by BFS cores. Candidates
// are enumerated in node-ID order before shuffling, so the sample is
// deterministic for a fixed graph.
func SampleNodes(g View, k int, seed int64, nonIsolated bool) ([]NodeID, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: sample size %d must be >= 1", k)
	}
	candidates := make([]NodeID, 0, g.NumNodes())
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if !nonIsolated || g.Degree(v) > 0 {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if k > len(candidates) {
		k = len(candidates)
	}
	out := make([]NodeID, k)
	copy(out, candidates[:k])
	return out, nil
}

// BFSPool amortizes BFSWorker scratch (the O(n) frontier queue and
// visited/distance array) across goroutines. Unlike a plain per-goroutine
// NewBFSWorker, a pool lets a fan-out that processes many short phases
// reuse scratch across phases without threading worker state through the
// call chain, and idle scratch is reclaimable by the GC.
type BFSPool struct {
	pool sync.Pool
	gets atomic.Int64
	news atomic.Int64
}

// NewBFSPool returns a pool of BFS workers bound to g.
func NewBFSPool(g View) *BFSPool {
	p := &BFSPool{}
	p.pool.New = func() any {
		p.news.Add(1)
		return NewBFSWorker(g)
	}
	return p
}

// Get returns a BFS worker for exclusive use until Put.
func (p *BFSPool) Get() *BFSWorker {
	p.gets.Add(1)
	return p.pool.Get().(*BFSWorker)
}

// Stats reports how many Gets the pool has served and how many of them
// had to build a fresh worker; gets - news is the number of scratch
// reuses ("pool hits"), the quantity the observability layer tracks to
// confirm the fan-out amortizes its O(n) buffers.
func (p *BFSPool) Stats() (gets, news int64) {
	return p.gets.Load(), p.news.Load()
}

// Put returns a worker to the pool. The worker's last BFSResult (whose
// Dist and LevelSizes slices alias worker scratch) must not be read
// afterwards — the next Get+Run, possibly on another goroutine, silently
// overwrites it. Callers that keep anything past Put must copy it first
// (BFSResult.Clone, or a targeted copy of the slice they need).
func (p *BFSPool) Put(w *BFSWorker) { p.pool.Put(w) }
