package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := cliqueGraph(t, 8)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %v vs %v", g2, g)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Errorf("edge %v lost", e)
		}
	}
}

func TestBinaryEmptyAndIsolated(t *testing.T) {
	// Graph with isolated nodes only.
	g := NewBuilder(7).Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 7 || g2.NumEdges() != 0 {
		t.Errorf("round trip = %v, want n=7 m=0", g2)
	}
}

func TestBinaryCompactness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(2000)
	for i := 0; i < 12000; i++ {
		b.AddEdgeSafe(NodeID(rng.Intn(2000)), NodeID(rng.Intn(2000)))
	}
	g := b.Build()
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(&txt, g); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len()/2 {
		t.Errorf("binary %d bytes vs text %d: expected at least 2x compaction", bin.Len(), txt.Len())
	}
}

func TestBinaryCorruption(t *testing.T) {
	g := pathGraph(t, 10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Wrong magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("wrong magic: %v, want ErrBadFormat", err)
	}
	// Truncated.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-2])); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated: %v, want ErrBadFormat", err)
	}
	// Empty.
	if _, err := ReadBinary(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("empty: %v, want ErrBadFormat", err)
	}
	// Bit flip in the edge payload: caught by the CRC footer even when the
	// damaged varints still decode to plausible edges.
	for i := 6; i < len(data)-4; i++ {
		bad := bytes.Clone(data)
		bad[i] ^= 0x04
		if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("bit flip at %d: %v, want ErrBadFormat", i, err)
		}
	}
	// Bit flip in the footer itself.
	bad = bytes.Clone(data)
	bad[len(data)-3] ^= 0x80
	if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("footer flip: %v, want ErrBadFormat", err)
	}
}

// TestScanBinaryEdges drives the streaming scanner directly: it must
// yield the canonical edge sequence without materializing a graph, and
// propagate yield errors verbatim.
func TestScanBinaryEdges(t *testing.T) {
	g := cliqueGraph(t, 6)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var got []Edge
	n, m, err := ScanBinaryEdges(bytes.NewReader(data), func(u, v NodeID) error {
		got = append(got, Edge{U: u, V: v})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != g.NumNodes() || m != g.NumEdges() {
		t.Fatalf("scan n/m = (%d,%d), want (%d,%d)", n, m, g.NumNodes(), g.NumEdges())
	}
	want := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("scanned %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Yield errors abort the scan and surface unchanged.
	sentinel := errors.New("stop")
	if _, _, err := ScanBinaryEdges(bytes.NewReader(data), func(u, v NodeID) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("yield error: %v, want sentinel", err)
	}
}

func TestBinarySaveLoad(t *testing.T) {
	g := cliqueGraph(t, 6)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 15 {
		t.Errorf("loaded edges = %d, want 15", g2.NumEdges())
	}
	if _, err := LoadBinary(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("LoadBinary(missing): want error")
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdgeSafe(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !g2.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// FuzzReadBinary: arbitrary bytes must never panic; valid parses must
// satisfy the simple-graph invariants.
func FuzzReadBinary(f *testing.F) {
	g, _ := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	var buf bytes.Buffer
	_ = WriteBinary(&buf, g)
	f.Add(buf.Bytes())
	f.Add([]byte("TNG1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var degSum int64
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			degSum += int64(g.Degree(v))
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("handshake lemma violated")
		}
	})
}
