package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The binary format stores the canonical edge list delta-encoded with
// uvarints, which compresses social graphs to roughly 1.5–2.5 bytes per
// edge (versus ~12 in the text format) and parses an order of magnitude
// faster — useful for caching generated datasets between experiment runs.
//
// Layout: magic "TNG1" | uvarint n | uvarint m | m edge records |
// crc32(IEEE, everything before the footer) as 4 little-endian bytes.
// Edges are sorted canonically; each record is (uGap, v) where uGap is
// the U-delta from the previous edge and v is V-u (both uvarint), so runs
// of edges from the same node cost one byte for the U side. The CRC
// footer makes truncation and bit rot detectable: a cut-off stream used
// to be silently mis-parseable mid-varint, now every reader verifies the
// checksum and rejects the file with ErrBadFormat.

var binaryMagic = [4]byte{'T', 'N', 'G', '1'}

// ErrBadFormat is returned when binary input is not a valid graph file.
var ErrBadFormat = errors.New("graph: bad binary format")

// crcWriter forwards writes to w while accumulating a CRC32 (IEEE) of
// every byte written, so writers emit the integrity footer without
// buffering the stream.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.sum = crc32.Update(cw.sum, crc32.IEEETable, p[:n])
	return n, err
}

// crcReader wraps a buffered reader with the same running CRC32 on the
// read side. It implements io.ByteReader so binary.ReadUvarint can
// consume it directly.
type crcReader struct {
	r       *bufio.Reader
	sum     uint32
	scratch [1]byte
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err != nil {
		return 0, err
	}
	cr.scratch[0] = b
	cr.sum = crc32.Update(cr.sum, crc32.IEEETable, cr.scratch[:])
	return b, nil
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.sum = crc32.Update(cr.sum, crc32.IEEETable, p[:n])
	return n, err
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("write binary magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := cw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(g.NumNodes())); err != nil {
		return fmt.Errorf("write binary header: %w", err)
	}
	if err := putUvarint(uint64(g.NumEdges())); err != nil {
		return fmt.Errorf("write binary header: %w", err)
	}
	prevU := NodeID(0)
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if err := putUvarint(uint64(u - prevU)); err != nil {
				return fmt.Errorf("write binary edge: %w", err)
			}
			if err := putUvarint(uint64(v - u)); err != nil {
				return fmt.Errorf("write binary edge: %w", err)
			}
			prevU = u
		}
	}
	var footer [4]byte
	binary.LittleEndian.PutUint32(footer[:], cw.sum)
	if _, err := bw.Write(footer[:]); err != nil {
		return fmt.Errorf("write binary footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush binary graph: %w", err)
	}
	return nil
}

// ScanBinaryEdges streams the canonical edges of a TNG1 stream to yield
// without building a graph, in O(1) memory — the primitive behind both
// ReadBinary and the bounded-memory TNG1→TNG2 conversion. It returns the
// declared node and edge counts after verifying the CRC footer. Records
// must be strictly increasing in canonical (u, v) order (which is what
// WriteBinary produces); anything else — including a truncated stream or
// a checksum mismatch — is an ErrBadFormat. A yield error aborts the
// scan and is returned verbatim.
func ScanBinaryEdges(r io.Reader, yield func(u, v NodeID) error) (int, int64, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return 0, 0, fmt.Errorf("%w: magic %q", ErrBadFormat, magic[:])
	}
	n64, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: node count: %v", ErrBadFormat, err)
	}
	m64, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: edge count: %v", ErrBadFormat, err)
	}
	const maxNodes = 1 << 31
	if n64 > maxNodes {
		return 0, 0, fmt.Errorf("%w: node count %d too large", ErrBadFormat, n64)
	}
	n := int(n64)
	if n64 > 1 && m64 > n64*(n64-1)/2 || n64 <= 1 && m64 > 0 {
		return 0, 0, fmt.Errorf("%w: edge count %d impossible for %d nodes", ErrBadFormat, m64, n64)
	}
	prevU := uint64(0)
	prevV := int64(-1)
	for i := uint64(0); i < m64; i++ {
		uGap, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		vGap, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		u := prevU + uGap
		v := u + vGap
		if vGap == 0 || v >= uint64(n) {
			return 0, 0, fmt.Errorf("%w: edge %d (%d,%d) out of range", ErrBadFormat, i, u, v)
		}
		if uGap > 0 {
			prevV = -1
		}
		if int64(v) <= prevV {
			return 0, 0, fmt.Errorf("%w: edge %d (%d,%d) out of canonical order", ErrBadFormat, i, u, v)
		}
		if err := yield(NodeID(u), NodeID(v)); err != nil {
			return 0, 0, err
		}
		prevU = u
		prevV = int64(v)
	}
	want := cr.sum
	var footer [4]byte
	if _, err := io.ReadFull(cr.r, footer[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: missing crc footer: %v", ErrBadFormat, err)
	}
	if got := binary.LittleEndian.Uint32(footer[:]); got != want {
		return 0, 0, fmt.Errorf("%w: crc mismatch %08x != %08x", ErrBadFormat, got, want)
	}
	return n, int64(m64), nil
}

// ReadBinary parses the compact binary format, verifying the CRC footer.
func ReadBinary(r io.Reader) (*Graph, error) {
	var edges []Edge
	n, m, err := ScanBinaryEdges(r, func(u, v NodeID) error {
		edges = append(edges, Edge{U: u, V: v})
		return nil
	})
	if err != nil {
		return nil, err
	}
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdgeSafe(e.U, e.V)
	}
	g := b.Build()
	if g.NumEdges() != m {
		return nil, fmt.Errorf("%w: %d edges declared, %d distinct", ErrBadFormat, m, g.NumEdges())
	}
	return g, nil
}

// SaveBinary writes g to the named file in binary format.
func SaveBinary(path string, g *Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save binary graph: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return WriteBinary(f, g)
}

// LoadBinary reads a graph from the named binary file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load binary graph: %w", err)
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("load binary graph %s: %w", path, err)
	}
	return g, nil
}
