package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// The binary format stores the canonical edge list delta-encoded with
// uvarints, which compresses social graphs to roughly 1.5–2.5 bytes per
// edge (versus ~12 in the text format) and parses an order of magnitude
// faster — useful for caching generated datasets between experiment runs.
//
// Layout: magic "TNG1" | uvarint n | uvarint m | m edge records.
// Edges are sorted canonically; each record is (uGap, v) where uGap is
// the U-delta from the previous edge and v is V-u (both uvarint), so runs
// of edges from the same node cost one byte for the U side.

var binaryMagic = [4]byte{'T', 'N', 'G', '1'}

// ErrBadFormat is returned when binary input is not a valid graph file.
var ErrBadFormat = errors.New("graph: bad binary format")

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("write binary magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(g.NumNodes())); err != nil {
		return fmt.Errorf("write binary header: %w", err)
	}
	if err := putUvarint(uint64(g.NumEdges())); err != nil {
		return fmt.Errorf("write binary header: %w", err)
	}
	prevU := NodeID(0)
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if err := putUvarint(uint64(u - prevU)); err != nil {
				return fmt.Errorf("write binary edge: %w", err)
			}
			if err := putUvarint(uint64(v - u)); err != nil {
				return fmt.Errorf("write binary edge: %w", err)
			}
			prevU = u
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush binary graph: %w", err)
	}
	return nil
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic[:])
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: node count: %v", ErrBadFormat, err)
	}
	m64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: edge count: %v", ErrBadFormat, err)
	}
	const maxNodes = 1 << 31
	if n64 > maxNodes {
		return nil, fmt.Errorf("%w: node count %d too large", ErrBadFormat, n64)
	}
	n := int(n64)
	if m64 > n64*(n64-1)/2 {
		return nil, fmt.Errorf("%w: edge count %d impossible for %d nodes", ErrBadFormat, m64, n64)
	}
	b := NewBuilder(n)
	prevU := uint64(0)
	for i := uint64(0); i < m64; i++ {
		uGap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		vGap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		u := prevU + uGap
		v := u + vGap
		if vGap == 0 || v >= uint64(n) {
			return nil, fmt.Errorf("%w: edge %d (%d,%d) out of range", ErrBadFormat, i, u, v)
		}
		b.AddEdgeSafe(NodeID(u), NodeID(v))
		prevU = u
	}
	g := b.Build()
	if g.NumEdges() != int64(m64) {
		return nil, fmt.Errorf("%w: %d edges declared, %d distinct", ErrBadFormat, m64, g.NumEdges())
	}
	return g, nil
}

// SaveBinary writes g to the named file in binary format.
func SaveBinary(path string, g *Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save binary graph: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return WriteBinary(f, g)
}

// LoadBinary reads a graph from the named binary file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load binary graph: %w", err)
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("load binary graph %s: %w", path, err)
	}
	return g, nil
}
