package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// liveEdgeSet collects the live canonical edges of a view as a packed set.
func liveEdgeSet(v View) map[uint64]bool {
	out := map[uint64]bool{}
	v.VisitEdges(func(e Edge) bool {
		out[uint64(e.U)<<32|uint64(e.V)] = true
		return true
	})
	return out
}

// bruteDelta computes the expected MaskDelta from two live-edge sets and
// two alive sets.
func bruteDelta(oldAlive, newAlive []bool, oldEdges, newEdges map[uint64]bool) *MaskDelta {
	d := &MaskDelta{}
	for v := range oldAlive {
		switch {
		case oldAlive[v] && !newAlive[v]:
			d.NodesDown = append(d.NodesDown, NodeID(v))
		case !oldAlive[v] && newAlive[v]:
			d.NodesUp = append(d.NodesUp, NodeID(v))
		}
	}
	for e := range oldEdges {
		if !newEdges[e] {
			d.EdgesLost = append(d.EdgesLost, Edge{U: NodeID(e >> 32), V: NodeID(e & 0xffffffff)})
		}
	}
	for e := range newEdges {
		if !oldEdges[e] {
			d.EdgesGained = append(d.EdgesGained, Edge{U: NodeID(e >> 32), V: NodeID(e & 0xffffffff)})
		}
	}
	sortEdges := func(es []Edge) {
		sort.Slice(es, func(i, j int) bool {
			if es[i].U != es[j].U {
				return es[i].U < es[j].U
			}
			return es[i].V < es[j].V
		})
	}
	sortEdges(d.EdgesLost)
	sortEdges(d.EdgesGained)
	return d
}

func aliveSlice(mv *MaskedView) []bool {
	out := make([]bool, mv.NumNodes())
	for v := range out {
		out[v] = mv.Alive(NodeID(v))
	}
	return out
}

func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func nodesEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMaskDiffSnapshotEquivalence drives a MaskedView through random
// mutation rounds (kills, revivals, drops, restores) and checks that
// DiffSnapshot reports exactly the brute-force live-topology difference
// every round.
func TestMaskDiffSnapshotEquivalence(t *testing.T) {
	g := randomGraph(t, 200, 0.05, 7)
	mv := NewMaskedView(g)
	rng := rand.New(rand.NewSource(11))

	var snap *MaskSnapshot
	var delta *MaskDelta
	var edges []Edge
	g.VisitEdges(func(e Edge) bool { edges = append(edges, e); return true })

	for round := 0; round < 25; round++ {
		oldAlive := aliveSlice(mv)
		oldEdges := liveEdgeSet(mv)
		snap = mv.Snapshot(snap)

		// Random mutation batch: flip some nodes, drop/restore some edges.
		for i := 0; i < 10; i++ {
			v := NodeID(rng.Intn(g.NumNodes()))
			mv.SetAlive(v, !mv.Alive(v))
		}
		for i := 0; i < 20; i++ {
			e := edges[rng.Intn(len(edges))]
			if rng.Intn(2) == 0 {
				mv.DropEdge(e.U, e.V)
			} else {
				mv.RestoreEdge(e.U, e.V)
			}
		}

		delta = mv.DiffSnapshot(snap, delta)
		want := bruteDelta(oldAlive, aliveSlice(mv), oldEdges, liveEdgeSet(mv))
		if !nodesEqual(delta.NodesDown, want.NodesDown) {
			t.Fatalf("round %d: NodesDown = %v, want %v", round, delta.NodesDown, want.NodesDown)
		}
		if !nodesEqual(delta.NodesUp, want.NodesUp) {
			t.Fatalf("round %d: NodesUp = %v, want %v", round, delta.NodesUp, want.NodesUp)
		}
		if !edgesEqual(delta.EdgesLost, want.EdgesLost) {
			t.Fatalf("round %d: EdgesLost = %v, want %v", round, delta.EdgesLost, want.EdgesLost)
		}
		if !edgesEqual(delta.EdgesGained, want.EdgesGained) {
			t.Fatalf("round %d: EdgesGained = %v, want %v", round, delta.EdgesGained, want.EdgesGained)
		}
	}
}

// TestMaskRestoreEdge checks the RestoreEdge bookkeeping: degrees, edge
// counts, and idempotence, including around down endpoints.
func TestMaskRestoreEdge(t *testing.T) {
	g := randomGraph(t, 50, 0.2, 3)
	mv := NewMaskedView(g)
	var e Edge
	g.VisitEdges(func(x Edge) bool { e = x; return false })

	if mv.RestoreEdge(e.U, e.V) {
		t.Fatal("restoring a present edge should be a no-op")
	}
	wantEdges := mv.NumEdges()
	degU, degV := mv.Degree(e.U), mv.Degree(e.V)
	if !mv.DropEdge(e.U, e.V) {
		t.Fatal("drop failed")
	}
	if !mv.RestoreEdge(e.U, e.V) {
		t.Fatal("restore failed")
	}
	if mv.NumEdges() != wantEdges || mv.Degree(e.U) != degU || mv.Degree(e.V) != degV {
		t.Fatalf("drop+restore not an identity: edges %d want %d, deg %d/%d want %d/%d",
			mv.NumEdges(), wantEdges, mv.Degree(e.U), mv.Degree(e.V), degU, degV)
	}
	if !mv.HasEdge(e.U, e.V) {
		t.Fatal("restored edge missing")
	}

	// Restoring an edge with a down endpoint flips only the drop bit.
	mv.DropEdge(e.U, e.V)
	mv.SetAlive(e.U, false)
	edges := mv.NumEdges()
	if !mv.RestoreEdge(e.U, e.V) {
		t.Fatal("restore with down endpoint failed")
	}
	if mv.NumEdges() != edges {
		t.Fatal("restore with down endpoint must not change the live edge count")
	}
	mv.SetAlive(e.U, true)
	if !mv.HasEdge(e.U, e.V) {
		t.Fatal("edge should be live after endpoint revival")
	}
}
