// Package graph provides the immutable, compressed-sparse-row (CSR) backed
// simple undirected graph that every measurement and defense in this
// repository operates on.
//
// The model follows §III-A of Mohaisen et al. (ICDCS 2011 Workshops):
// G = (V, E) is simple (no self loops, no parallel edges), undirected and
// unweighted; V corresponds to social actors and E to their ties. Nodes are
// dense integer identifiers in [0, N). The stochastic transition matrix P
// used by the random-walk machinery assigns probability 1/deg(v) to each
// neighbor of v (Eq. 1 of the paper); it is never materialized — packages
// that need it walk the CSR adjacency directly.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// NodeID identifies a vertex. IDs are dense: a graph with N nodes uses
// exactly the IDs 0..N-1.
type NodeID int32

// Edge is an undirected edge between two nodes. The zero value is the
// (valid, if dull) self-loop at node 0 and is rejected by Builder.AddEdge.
type Edge struct {
	U, V NodeID
}

// Canonical returns the edge with endpoints ordered so that U <= V. Two
// undirected edges are equal iff their canonical forms are equal.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an immutable simple undirected graph in CSR form. The zero value
// is the empty graph. Graph values are safe for concurrent use by multiple
// goroutines because they are never mutated after construction.
type Graph struct {
	// offsets has length n+1; the neighbors of node v occupy
	// adjacency[offsets[v]:offsets[v+1]], sorted ascending.
	offsets   []int64
	adjacency []NodeID

	// stationary caches StationaryDistribution, which is hot under
	// repeated churn-epoch evaluation. Guarded by once; safe because the
	// topology is immutable.
	stationary struct {
		once sync.Once
		pi   []float64
		err  error
	}
}

var (
	// ErrSelfLoop is returned by Builder.AddEdge for an edge (v, v).
	ErrSelfLoop = errors.New("graph: self loop")
	// ErrNodeRange is returned when a node identifier is outside [0, N).
	ErrNodeRange = errors.New("graph: node out of range")
)

// NumNodes returns |V|.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int64 {
	if len(g.offsets) == 0 {
		return 0
	}
	return int64(len(g.adjacency)) / 2
}

// Degree returns deg(v), the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adjacency[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) >= g.NumNodes() || int(v) >= g.NumNodes() || u < 0 || v < 0 {
		return false
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Valid reports whether v is a node of the graph.
func (g *Graph) Valid(v NodeID) bool {
	return v >= 0 && int(v) < g.NumNodes()
}

// Edges returns every undirected edge exactly once, in canonical order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				out = append(out, Edge{U: v, V: w})
			}
		}
	}
	return out
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	minDeg := math.MaxInt
	for v := NodeID(0); int(v) < n; v++ {
		if d := g.Degree(v); d < minDeg {
			minDeg = d
		}
	}
	return minDeg
}

// AverageDegree returns 2m/n, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return float64(2*g.NumEdges()) / float64(n)
}

// Degrees returns a fresh slice with the degree of every node.
func (g *Graph) Degrees() []int {
	out := make([]int, g.NumNodes())
	for v := range out {
		out[v] = g.Degree(NodeID(v))
	}
	return out
}

// errStationaryEdgeless is the shared stationary-distribution error for
// graphs and views without edges.
var errStationaryEdgeless = errors.New("graph: stationary distribution undefined for edgeless graph")

// StationaryDistribution returns π = [deg(v)/2m] for the random walk on a
// simple graph (§III-C). It returns an error if the graph has no edges,
// because the walk has no stationary distribution there.
//
// The distribution is computed once and cached (it is hot under repeated
// churn-epoch evaluation); the returned slice is shared and must not be
// modified.
func (g *Graph) StationaryDistribution() ([]float64, error) {
	g.stationary.once.Do(func() {
		m2 := float64(2 * g.NumEdges())
		if m2 == 0 {
			g.stationary.err = errStationaryEdgeless
			return
		}
		pi := make([]float64, g.NumNodes())
		for v := range pi {
			pi[v] = float64(g.Degree(NodeID(v))) / m2
		}
		g.stationary.pi = pi
	})
	return g.stationary.pi, g.stationary.err
}

// String implements fmt.Stringer with a compact size summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumNodes(), g.NumEdges())
}

// Builder accumulates edges and produces an immutable Graph. The zero value
// is unusable; create builders with NewBuilder. Builders are not safe for
// concurrent use.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph over the node set {0..n-1}.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NumNodes returns the node-set size the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the undirected edge (u, v). Self loops and out-of-range
// endpoints are errors; duplicate edges are accepted and deduplicated by
// Build.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, u, v)
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeRange, u, v, b.n)
	}
	b.edges = append(b.edges, Edge{U: u, V: v}.Canonical())
	return nil
}

// AddEdgeSafe is AddEdge for callers that have already validated endpoints,
// e.g. generators that produce edges by construction. It silently drops
// self loops instead of erroring, which is the convention the random graph
// generators want.
func (b *Builder) AddEdgeSafe(u, v NodeID) {
	if u == v {
		return
	}
	b.edges = append(b.edges, Edge{U: u, V: v}.Canonical())
}

// NumPendingEdges returns the number of (possibly duplicate) edges recorded
// so far.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph, deduplicating parallel edges.
// The builder remains usable afterwards (further AddEdge calls accumulate
// on the same edge multiset).
func (b *Builder) Build() *Graph {
	// Sort canonical edges and deduplicate.
	es := make([]Edge, len(b.edges))
	copy(es, b.edges)
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	uniq := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			uniq = append(uniq, e)
		}
	}

	deg := make([]int64, b.n)
	for _, e := range uniq {
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int64, b.n+1)
	for v := 0; v < b.n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adjacency := make([]NodeID, offsets[b.n])
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range uniq {
		adjacency[cursor[e.U]] = e.V
		cursor[e.U]++
		adjacency[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{offsets: offsets, adjacency: adjacency}
	// Neighbor lists must be sorted for HasEdge's binary search. Insertion
	// order above is sorted by construction for the U side but not the V
	// side, so sort each list.
	for v := 0; v < b.n; v++ {
		ns := g.adjacency[offsets[v]:offsets[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	return g
}

// FromEdges builds a graph over n nodes from an edge list, validating every
// edge.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
