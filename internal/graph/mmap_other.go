//go:build !unix

package graph

import (
	"errors"
	"os"
)

// errNoMmap makes OpenMapped fall back to the verified copy-load on
// platforms without a memory-mapping syscall shim.
var errNoMmap = errors.New("graph: mmap unsupported on this platform")

func mmapFile(*os.File, int) ([]byte, error) { return nil, errNoMmap }

func munmapFile([]byte) error { return nil }
