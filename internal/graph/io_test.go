package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := cliqueGraph(t, 7)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: got %v, want %v", g2, g)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Errorf("edge %v lost in round trip", e)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# a comment\n% another\n\n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("got %v, want n=3 m=2", g)
	}
}

func TestReadEdgeListNodesHeader(t *testing.T) {
	// Header declares more nodes than appear in edges: isolated tail nodes.
	in := "# nodes: 10\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Errorf("NumNodes = %d, want 10 from header", g.NumNodes())
	}
}

func TestReadEdgeListDropsSelfLoops(t *testing.T) {
	in := "0 0\n0 1\n1 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 (self loops dropped)", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"one field", "0\n"},
		{"non-numeric", "a b\n"},
		{"negative", "-1 2\n"},
		{"second non-numeric", "0 x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadEdgeList(%q): want error", tt.in)
			}
		})
	}
}

func TestSaveLoadEdgeList(t *testing.T) {
	g := pathGraph(t, 20)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 20 || g2.NumEdges() != 19 {
		t.Errorf("loaded %v, want n=20 m=19", g2)
	}
}

func TestLoadEdgeListMissingFile(t *testing.T) {
	if _, err := LoadEdgeList(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("LoadEdgeList(missing): want error")
	}
}

// Property: write→read is the identity on random graphs (modulo isolated
// trailing nodes, which the header preserves).
func TestEdgeListRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdgeSafe(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !g2.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
