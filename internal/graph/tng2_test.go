package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// writeFile dumps raw bytes for OpenMapped tests.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// resealTNG2 recomputes the checksum of a (possibly forged) image so only
// the CSR-invariant validation can reject it.
func resealTNG2(data []byte) {
	sum := crc32.ChecksumIEEE(data[:len(data)-tng2FooterSize])
	binary.LittleEndian.PutUint32(data[len(data)-tng2FooterSize:], sum)
}

// tng2Bytes serializes g to a TNG2 image.
func tng2Bytes(t *testing.T, v View) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func graphsEqual(t *testing.T, want *Graph, got View, label string) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: n/m = (%d,%d), want (%d,%d)",
			label, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	var buf []NodeID
	for v := NodeID(0); int(v) < want.NumNodes(); v++ {
		buf = got.AppendNeighbors(v, buf[:0])
		ns := want.Neighbors(v)
		if len(buf) != len(ns) {
			t.Fatalf("%s: node %d degree %d, want %d", label, v, len(buf), len(ns))
		}
		for i := range ns {
			if buf[i] != ns[i] {
				t.Fatalf("%s: node %d neighbor %d = %d, want %d", label, v, i, buf[i], ns[i])
			}
		}
	}
}

func TestTNG2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"clique", cliqueGraph(t, 9)},
		{"path", pathGraph(t, 17)},
		{"random", randomGraph(t, 200, 0.05, 4)},
		{"isolated", NewBuilder(11).Build()},
		{"empty", NewBuilder(0).Build()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := tng2Bytes(t, tc.g)
			got, err := ReadTNG2(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			graphsEqual(t, tc.g, got, "read")
		})
	}
}

func TestTNG2OpenMapped(t *testing.T) {
	g := randomGraph(t, 300, 0.03, 9)
	path := filepath.Join(t.TempDir(), "g.tng2")
	if err := SaveCSR(path, g); err != nil {
		t.Fatal(err)
	}
	mg, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, mg, "mapped")
	// The mapped view must serve the CSR fast paths.
	if _, ok := AsCSR(mg); !ok {
		t.Error("mapped view is not a CSRSource")
	}
	if _, ok := View(mg).(NeighborSlicer); !ok {
		t.Error("mapped view is not a NeighborSlicer")
	}
	if err := mg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mg.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestTNG2OpenMappedViaLoadCSR(t *testing.T) {
	g := pathGraph(t, 25)
	path := filepath.Join(t.TempDir(), "g.tng2")
	if err := SaveCSR(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got, "loadcsr")
	if _, err := LoadCSR(filepath.Join(t.TempDir(), "missing.tng2")); err == nil {
		t.Error("LoadCSR(missing): want error")
	}
}

// TestTNG2Corruption damages every region of a valid image — header,
// section table, offsets, adjacency, checksum, trailer, length — and
// requires both readers to reject each with ErrBadFormat.
func TestTNG2Corruption(t *testing.T) {
	g := randomGraph(t, 60, 0.12, 2)
	data := tng2Bytes(t, g)

	damage := map[string]func([]byte) []byte{
		"magic":          func(d []byte) []byte { d[0] = 'X'; return d },
		"version":        func(d []byte) []byte { d[4] = 99; return d },
		"node-count":     func(d []byte) []byte { d[8] ^= 0xFF; return d },
		"edge-count":     func(d []byte) []byte { d[16] ^= 0xFF; return d },
		"section-table":  func(d []byte) []byte { d[32] ^= 0x01; return d },
		"offsets-bytes":  func(d []byte) []byte { d[tng2HeaderSize+9] ^= 0x10; return d },
		"adjacency-byte": func(d []byte) []byte { d[len(d)-tng2FooterSize-2] ^= 0x40; return d },
		"crc":            func(d []byte) []byte { d[len(d)-8] ^= 0x01; return d },
		"trailer":        func(d []byte) []byte { d[len(d)-1] = '?'; return d },
		"truncated":      func(d []byte) []byte { return d[:len(d)-5] },
		"extended":       func(d []byte) []byte { return append(d, 0) },
		"empty":          func(d []byte) []byte { return nil },
	}
	for name, fn := range damage {
		t.Run(name, func(t *testing.T) {
			bad := fn(bytes.Clone(data))
			if _, err := ReadTNG2(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
				t.Errorf("ReadTNG2: %v, want ErrBadFormat", err)
			}
			path := filepath.Join(t.TempDir(), "bad.tng2")
			if err := writeFile(path, bad); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenMapped(path); !errors.Is(err, ErrBadFormat) {
				t.Errorf("OpenMapped: %v, want ErrBadFormat", err)
			}
		})
	}
}

// TestTNG2BadCSRBody forges an image whose checksum is valid but whose
// CSR payload violates the invariants; validateCSR must catch it.
func TestTNG2BadCSRBody(t *testing.T) {
	g, err := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	data := tng2Bytes(t, g)
	// Point node 0's first neighbor at itself (self loop), then re-seal
	// the checksum so only validateCSR can object.
	forged := bytes.Clone(data)
	forged[tng2HeaderSize+(4+1)*8] = 0 // first adjacency entry: neighbor of node 0 -> 0
	resealTNG2(forged)
	if _, err := ReadTNG2(bytes.NewReader(forged)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("self loop body: %v, want ErrBadFormat", err)
	}

	// Decreasing offsets.
	forged = bytes.Clone(data)
	forged[tng2HeaderSize+2*8] = 0xFF
	resealTNG2(forged)
	if _, err := ReadTNG2(bytes.NewReader(forged)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad offsets body: %v, want ErrBadFormat", err)
	}
}

func TestWriteCSRRejectsInconsistentView(t *testing.T) {
	// A view whose Degree disagrees with NumEdges must be rejected by the
	// degree-sum check rather than producing a malformed file.
	v := brokenDegreeView{Graph: pathGraph(t, 5)}
	if err := WriteCSR(&bytes.Buffer{}, v); err == nil {
		t.Error("WriteCSR accepted a view with an inconsistent degree sum")
	}
}

// brokenDegreeView doubles NumEdges to break the handshake invariant.
type brokenDegreeView struct{ *Graph }

func (b brokenDegreeView) NumEdges() int64 { return b.Graph.NumEdges() * 2 }

// FuzzReadTNG2: arbitrary bytes must never panic; valid parses must
// satisfy the simple-graph invariants.
func FuzzReadTNG2(f *testing.F) {
	g, _ := FromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	var buf bytes.Buffer
	_ = WriteCSR(&buf, g)
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:tng2HeaderSize])
	f.Add(seed[:len(seed)-tng2FooterSize])
	f.Add([]byte("TNG2"))
	f.Add([]byte{})
	flip := bytes.Clone(seed)
	flip[tng2HeaderSize+3] ^= 0x80
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadTNG2(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("non-format error from in-memory reader: %v", err)
			}
			return
		}
		var degSum int64
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			degSum += int64(g.Degree(v))
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("handshake lemma violated")
		}
	})
}
