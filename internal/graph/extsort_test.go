package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

// csrWriterGraph pushes the same random edge stream (with duplicates and
// self loops) through a CSRWriter and a Builder and returns both results.
func csrWriterGraph(t *testing.T, n, tries, bufArcs int, seed int64) (*Graph, *Graph, CSRStats) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w, err := NewCSRWriter(n, CSRWriterConfig{TempDir: t.TempDir(), BufferArcs: bufArcs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	b := NewBuilder(n)
	for i := 0; i < tries; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		b.AddEdgeSafe(u, v)
		if err := w.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	st, err := w.Finish(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadTNG2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return b.Build(), got, st
}

func TestCSRWriterMatchesBuilder(t *testing.T) {
	want, got, st := csrWriterGraph(t, 150, 2000, 1<<21, 1)
	graphsEqual(t, want, got, "in-memory")
	if st.Runs != 0 || st.SpilledBytes != 0 {
		t.Errorf("unexpected spills for in-memory build: %+v", st)
	}
	if st.Nodes != want.NumNodes() || st.Edges != want.NumEdges() {
		t.Errorf("stats %+v disagree with builder (%d,%d)", st, want.NumNodes(), want.NumEdges())
	}
}

func TestCSRWriterSpillsMatchBuilder(t *testing.T) {
	// A 64-arc buffer forces dozens of sorted runs plus a residual buffer;
	// the k-way merge with global dedup must still reproduce Builder output.
	want, got, st := csrWriterGraph(t, 120, 3000, 64, 7)
	graphsEqual(t, want, got, "spilled")
	if st.Runs < 2 {
		t.Errorf("expected >= 2 spill runs, got %+v", st)
	}
	if st.SpilledBytes == 0 {
		t.Error("expected nonzero spilled bytes")
	}
}

func TestCSRWriterEmptyAndIsolated(t *testing.T) {
	w, err := NewCSRWriter(9, CSRWriterConfig{TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Self loops only: dropped, so the graph is edgeless.
	for i := NodeID(0); i < 9; i++ {
		if err := w.AddEdge(i, i); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	st, err := w.Finish(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 9 || st.Edges != 0 {
		t.Errorf("stats = %+v, want n=9 m=0", st)
	}
	g, err := ReadTNG2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 9 || g.NumEdges() != 0 {
		t.Errorf("graph = %v, want n=9 m=0", g)
	}
}

func TestCSRWriterErrors(t *testing.T) {
	w, err := NewCSRWriter(4, CSRWriterConfig{TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AddEdge(0, 4); err == nil {
		t.Error("AddEdge(0,4) with n=4: want range error")
	}
	if err := w.AddEdge(-1, 0); err == nil {
		t.Error("AddEdge(-1,0): want range error")
	}
	var buf bytes.Buffer
	if _, err := w.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(&buf); err == nil {
		t.Error("second Finish: want error")
	}
	if err := w.AddEdge(0, 1); err == nil {
		t.Error("AddEdge after Finish: want error")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, err := NewCSRWriter(-1, CSRWriterConfig{}); err == nil {
		t.Error("NewCSRWriter(-1): want error")
	}
	if _, err := NewCSRWriter(4, CSRWriterConfig{BufferArcs: 1}); err == nil {
		t.Error("BufferArcs=1: want error")
	}
}

func TestCSRWriterFinishFileOpensMapped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w, err := NewCSRWriter(80, CSRWriterConfig{TempDir: t.TempDir(), BufferArcs: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	b := NewBuilder(80)
	for i := 0; i < 600; i++ {
		u, v := NodeID(rng.Intn(80)), NodeID(rng.Intn(80))
		b.AddEdgeSafe(u, v)
		if err := w.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "g.tng2")
	if _, err := w.FinishFile(path); err != nil {
		t.Fatal(err)
	}
	mg, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	graphsEqual(t, b.Build(), mg, "finishfile-mapped")
}
