//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so the page cache
// backs every mapping of the same file with one physical copy. The
// mapping outlives the file descriptor.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
