package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomGraph builds a deterministic Erdős–Rényi-ish graph with a Builder
// — the reference construction every view is compared against.
func randomGraph(t *testing.T, n int, p float64, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdgeSafe(NodeID(u), NodeID(v))
			}
		}
	}
	return b.Build()
}

// viewEdges collects VisitEdges output.
func viewEdges(v View) []Edge {
	var out []Edge
	v.VisitEdges(func(e Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

// checkViewMatchesGraph asserts v and want describe the same topology,
// member by member: counts, degrees, neighbor lists, edge iteration, and
// materialization.
func checkViewMatchesGraph(t *testing.T, v View, want *Graph) {
	t.Helper()
	if v.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", v.NumNodes(), want.NumNodes())
	}
	if v.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", v.NumEdges(), want.NumEdges())
	}
	var buf []NodeID
	for u := NodeID(0); int(u) < want.NumNodes(); u++ {
		if v.Degree(u) != want.Degree(u) {
			t.Fatalf("Degree(%d) = %d, want %d", u, v.Degree(u), want.Degree(u))
		}
		buf = v.AppendNeighbors(u, buf[:0])
		wantNs := want.Neighbors(u)
		if len(buf) != len(wantNs) {
			t.Fatalf("Neighbors(%d) = %v, want %v", u, buf, wantNs)
		}
		for i := range buf {
			if buf[i] != wantNs[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", u, buf, wantNs)
			}
		}
	}
	got, wantEdges := viewEdges(v), want.Edges()
	if len(got) != len(wantEdges) {
		t.Fatalf("VisitEdges yielded %d edges, want %d", len(got), len(wantEdges))
	}
	for i := range got {
		if got[i] != wantEdges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], wantEdges[i])
		}
	}
	mat := Materialize(v)
	if !reflect.DeepEqual(mat.Edges(), wantEdges) && !(len(wantEdges) == 0 && len(mat.Edges()) == 0) {
		t.Fatalf("Materialize edges diverge from reference")
	}
	if mat.NumNodes() != want.NumNodes() {
		t.Fatalf("Materialize NumNodes = %d, want %d", mat.NumNodes(), want.NumNodes())
	}
}

func TestEquivalenceViewMaskedVsRebuild(t *testing.T) {
	g := randomGraph(t, 120, 0.08, 1)
	mv := NewMaskedView(g)
	rng := rand.New(rand.NewSource(2))

	alive := make([]bool, g.NumNodes())
	for i := range alive {
		alive[i] = true
	}
	dropped := make(map[Edge]bool)

	// reference rebuilds the surviving graph from scratch with a Builder.
	reference := func() *Graph {
		b := NewBuilder(g.NumNodes())
		for _, e := range g.Edges() {
			if alive[e.U] && alive[e.V] && !dropped[e] {
				b.AddEdgeSafe(e.U, e.V)
			}
		}
		return b.Build()
	}

	edges := g.Edges()
	for round := 0; round < 6; round++ {
		// Kill a batch of random nodes, drop a batch of random edges,
		// revive a couple of previously killed nodes.
		for i := 0; i < 10; i++ {
			v := NodeID(rng.Intn(g.NumNodes()))
			alive[v] = false
			mv.SetAlive(v, false)
		}
		for i := 0; i < 15; i++ {
			e := edges[rng.Intn(len(edges))]
			if mv.DropEdge(e.U, e.V) != !dropped[e] {
				t.Fatalf("round %d: DropEdge(%v) first-drop report disagrees with reference", round, e)
			}
			dropped[e] = true
		}
		for i := 0; i < 3; i++ {
			v := NodeID(rng.Intn(g.NumNodes()))
			alive[v] = true
			mv.SetAlive(v, true)
		}
		want := reference()
		checkViewMatchesGraph(t, mv, want)
		for _, e := range edges {
			wantUp := alive[e.U] && alive[e.V] && !dropped[e]
			if mv.HasEdge(e.U, e.V) != wantUp {
				t.Fatalf("round %d: HasEdge(%v) = %v, want %v", round, e, mv.HasEdge(e.U, e.V), wantUp)
			}
			if mv.Dropped(e.U, e.V) != dropped[e] {
				t.Fatalf("round %d: Dropped(%v) = %v, want %v", round, e, mv.Dropped(e.U, e.V), dropped[e])
			}
		}
	}

	// Reset restores the substrate exactly.
	mv.Reset()
	checkViewMatchesGraph(t, mv, g)
	if mv.NumAlive() != g.NumNodes() {
		t.Fatalf("NumAlive after Reset = %d, want %d", mv.NumAlive(), g.NumNodes())
	}
}

func TestEquivalenceViewMaskedFullyChurned(t *testing.T) {
	g := randomGraph(t, 40, 0.2, 3)
	mv := NewMaskedView(g)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		mv.SetAlive(v, false)
	}
	if mv.NumAlive() != 0 || mv.NumEdges() != 0 {
		t.Fatalf("fully churned view: alive=%d edges=%d, want 0/0", mv.NumAlive(), mv.NumEdges())
	}
	checkViewMatchesGraph(t, mv, NewBuilder(g.NumNodes()).Build())
	if _, err := Stationary(mv); err == nil {
		t.Fatal("Stationary on edgeless view: want error")
	}
}

func TestEquivalenceViewInducedVsSubgraph(t *testing.T) {
	g := randomGraph(t, 100, 0.1, 4)
	rng := rand.New(rand.NewSource(5))
	var nodes []NodeID
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if rng.Float64() < 0.5 {
			nodes = append(nodes, v)
		}
	}
	iv, err := NewInducedView(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	want := InducedSubgraph(g, nodes)
	checkViewMatchesGraph(t, iv, want)
	for i, v := range nodes {
		if iv.OriginalID(NodeID(i)) != v {
			t.Fatalf("OriginalID(%d) = %d, want %d", i, iv.OriginalID(NodeID(i)), v)
		}
		if local, ok := iv.LocalID(v); !ok || local != NodeID(i) {
			t.Fatalf("LocalID(%d) = %d,%v, want %d", v, local, ok, i)
		}
	}

	// Induced view of a masked view: kill some nodes first, then compare
	// against the subgraph induced on the rebuilt masked topology.
	mv := NewMaskedView(g)
	for v := NodeID(0); int(v) < 30; v++ {
		mv.SetAlive(v, false)
	}
	ivm, err := NewInducedView(mv, nodes)
	if err != nil {
		t.Fatal(err)
	}
	checkViewMatchesGraph(t, ivm, InducedSubgraph(mv, nodes))
}

func TestEquivalenceViewInducedEmpty(t *testing.T) {
	g := randomGraph(t, 20, 0.3, 6)
	iv, err := NewInducedView(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iv.NumNodes() != 0 || iv.NumEdges() != 0 {
		t.Fatalf("empty induced view: n=%d m=%d", iv.NumNodes(), iv.NumEdges())
	}
	viewEdges(iv) // must not panic
}

func TestEquivalenceViewPrefixVsBuilder(t *testing.T) {
	const n = 60
	rng := rand.New(rand.NewSource(7))
	var arrivals []Edge
	for i := 0; i < 400; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		// Duplicates on purpose: the log must keep first arrivals only.
		arrivals = append(arrivals, Edge{U: u, V: v})
	}
	log, err := NewGrowthLog(n, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []struct{ arrivals, nodes int }{
		{0, 0}, {0, n}, {10, 15}, {len(arrivals) / 2, n / 2},
		{len(arrivals) / 2, n}, {len(arrivals), n}, {len(arrivals), n / 3},
	} {
		pv, err := log.Prefix(cut.arrivals, cut.nodes)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(cut.nodes)
		for _, e := range arrivals[:cut.arrivals] {
			if int(e.U) < cut.nodes && int(e.V) < cut.nodes {
				b.AddEdgeSafe(e.U, e.V)
			}
		}
		checkViewMatchesGraph(t, pv, b.Build())
	}
	if !reflect.DeepEqual(log.Final().Edges(), Materialize(mustPrefix(t, log, len(arrivals), n)).Edges()) {
		t.Fatal("full prefix diverges from Final")
	}
}

func mustPrefix(t *testing.T, log *GrowthLog, arrivals, nodes int) *PrefixView {
	t.Helper()
	pv, err := log.Prefix(arrivals, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return pv
}

func TestEquivalenceViewMaterializeInto(t *testing.T) {
	g := randomGraph(t, 80, 0.1, 8)
	mv := NewMaskedView(g)
	var off []int64
	var adj []NodeID
	var prev *Graph
	for round := 0; round < 4; round++ {
		mv.SetAlive(NodeID(10*round), false)
		mv.DropEdge(g.Edges()[round].U, g.Edges()[round].V)
		var got *Graph
		got, off, adj = MaterializeInto(mv, off, adj)
		want := Materialize(mv)
		if !reflect.DeepEqual(got.Edges(), want.Edges()) && got.NumEdges() != 0 {
			t.Fatalf("round %d: MaterializeInto diverges from Materialize", round)
		}
		if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("round %d: size mismatch", round)
		}
		prev = got
	}
	_ = prev
}

func TestEquivalenceViewStationary(t *testing.T) {
	g := randomGraph(t, 90, 0.08, 9)
	mv := NewMaskedView(g)
	for v := NodeID(0); v < 20; v++ {
		mv.SetAlive(v, false)
	}
	got, err := Stationary(mv)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Materialize(mv).StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pi[%d] = %v, want %v (must be bit-identical)", i, got[i], want[i])
		}
	}
}

func TestStationaryDistributionCached(t *testing.T) {
	g := randomGraph(t, 50, 0.2, 10)
	a, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("StationaryDistribution not cached: repeated calls returned distinct slices")
	}
}
