package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// BFSResult holds the outcome of a breadth-first search from a single
// source: per-node distances (-1 for unreachable) and the number of nodes
// discovered at each level, which is exactly the L_i sequence the paper's
// expansion measurement (§III-D) consumes.
//
// ALIASING: a result produced by BFSWorker.Run shares its Dist and
// LevelSizes slices with the worker's scratch. It is valid only until the
// worker's next Run — in particular, a result retained after returning
// its worker to a BFSPool is silently overwritten by whoever draws that
// worker next. Callers that outlive the worker must Clone first.
type BFSResult struct {
	Source NodeID
	// Dist[v] is the hop distance from Source to v, or -1 if unreachable.
	Dist []int32
	// LevelSizes[i] is the number of nodes at distance i; LevelSizes[0]==1.
	LevelSizes []int64
	// Reached is the total number of nodes reachable from Source,
	// including the source itself.
	Reached int
}

// Eccentricity returns the largest finite distance from the source.
func (r *BFSResult) Eccentricity() int {
	return len(r.LevelSizes) - 1
}

// Clone returns a deep copy whose Dist and LevelSizes are freshly
// allocated, safe to retain after the producing worker runs again or
// goes back to its pool.
func (r *BFSResult) Clone() *BFSResult {
	return &BFSResult{
		Source:     r.Source,
		Dist:       append([]int32(nil), r.Dist...),
		LevelSizes: append([]int64(nil), r.LevelSizes...),
		Reached:    r.Reached,
	}
}

// BFS runs a breadth-first search from src, allocating its own scratch
// space. The result aliases that private scratch, which is never reused,
// so it is safe to retain. For repeated searches over the same graph use
// a BFSWorker (and Clone any result that must outlive the next Run).
func BFS(g View, src NodeID) (*BFSResult, error) {
	w := NewBFSWorker(g)
	return w.Run(src)
}

// BFSWorker amortizes BFS scratch allocations across many runs on the same
// graph view. Workers are not safe for concurrent use; make one per
// goroutine.
type BFSWorker struct {
	v      View
	nbr    *Adj
	dist   []int32
	queue  []NodeID
	levels []int64
}

// NewBFSWorker returns a worker bound to v.
func NewBFSWorker(v View) *BFSWorker {
	return &BFSWorker{
		v:     v,
		nbr:   NewAdj(v),
		dist:  make([]int32, v.NumNodes()),
		queue: make([]NodeID, 0, v.NumNodes()),
	}
}

// Run performs a BFS from src. The returned result's Dist and LevelSizes
// slices alias worker scratch reused by the next Run on this worker;
// callers that need the result afterwards (or after a BFSPool.Put) must
// copy what they keep, e.g. via BFSResult.Clone.
func (w *BFSWorker) Run(src NodeID) (*BFSResult, error) {
	if !w.v.Valid(src) {
		return nil, fmt.Errorf("%w: bfs source %d", ErrNodeRange, src)
	}
	for i := range w.dist {
		w.dist[i] = -1
	}
	w.queue = w.queue[:0]
	w.queue = append(w.queue, src)
	w.dist[src] = 0
	levelSizes := append(w.levels[:0], 1)
	reached := 1

	head := 0
	for head < len(w.queue) {
		v := w.queue[head]
		head++
		dv := w.dist[v]
		for _, u := range w.nbr.Neighbors(v) {
			if w.dist[u] < 0 {
				w.dist[u] = dv + 1
				w.queue = append(w.queue, u)
				reached++
				if int(dv+1) == len(levelSizes) {
					levelSizes = append(levelSizes, 0)
				}
				levelSizes[dv+1]++
			}
		}
	}
	w.levels = levelSizes
	return &BFSResult{Source: src, Dist: w.dist, LevelSizes: levelSizes, Reached: reached}, nil
}

// ConnectedComponents labels every node with a component index in [0, k)
// and returns the labels along with the size of each component, largest
// first component is NOT guaranteed; use LargestComponent for that.
func ConnectedComponents(g View) (labels []int32, sizes []int64) {
	n := g.NumNodes()
	nbr := NewAdj(g)
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []NodeID
	next := int32(0)
	for s := NodeID(0); int(s) < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = next
		size := int64(1)
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range nbr.Neighbors(v) {
				if labels[u] < 0 {
					labels[u] = next
					size++
					queue = append(queue, u)
				}
			}
		}
		sizes = append(sizes, size)
		next++
	}
	return labels, sizes
}

// NumComponents returns the number of connected components.
func NumComponents(g View) int {
	_, sizes := ConnectedComponents(g)
	return len(sizes)
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected.
func IsConnected(g View) bool {
	return g.NumNodes() == 0 || NumComponents(g) == 1
}

// largestComponentNodes returns the ascending node IDs of the largest
// connected component; ties break toward the component containing the
// smallest node ID.
func largestComponentNodes(g View) []NodeID {
	labels, sizes := ConnectedComponents(g)
	best := int32(0)
	for i, s := range sizes {
		if s > sizes[best] {
			best = int32(i)
		}
	}
	keep := make([]NodeID, 0, sizes[best])
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if labels[v] == best {
			keep = append(keep, v)
		}
	}
	return keep
}

// LargestComponent returns the induced subgraph of the largest connected
// component together with the mapping from new IDs to original IDs. Ties
// break toward the component containing the smallest original node ID.
func LargestComponent(g View) (*Graph, []NodeID) {
	keep := largestComponentNodes(g)
	return InducedSubgraph(g, keep), keep
}

// LargestComponentView is LargestComponent without the CSR copy: the
// largest component as a zero-copy InducedView over g, with the same
// ascending stable remapping.
func LargestComponentView(g View) (*InducedView, []NodeID) {
	keep := largestComponentNodes(g)
	iv, err := NewInducedView(g, keep)
	if err != nil {
		// Unreachable: component nodes are valid by construction.
		panic(err)
	}
	return iv, keep
}

// InducedSubgraph returns the subgraph induced by nodes (which must be
// distinct and valid), with node i of the result corresponding to nodes[i].
func InducedSubgraph(g View, nodes []NodeID) *Graph {
	remap := make(map[NodeID]NodeID, len(nodes))
	for i, v := range nodes {
		remap[v] = NodeID(i)
	}
	nbr := NewAdj(g)
	b := NewBuilder(len(nodes))
	for i, v := range nodes {
		for _, u := range nbr.Neighbors(v) {
			j, ok := remap[u]
			if ok && NodeID(i) < j {
				b.AddEdgeSafe(NodeID(i), j)
			}
		}
	}
	return b.Build()
}

// Diameter computes the exact diameter of a connected graph by running a
// BFS from every node. It is O(n·m) and intended for the small and medium
// graphs used in tests and calibration; the experiments use
// EstimateDiameter instead.
func Diameter(g View) (int, error) {
	if g.NumNodes() == 0 {
		return 0, errors.New("graph: diameter of empty graph")
	}
	if !IsConnected(g) {
		return 0, errors.New("graph: diameter undefined for disconnected graph")
	}
	w := NewBFSWorker(g)
	diam := 0
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		r, err := w.Run(v)
		if err != nil {
			return 0, err
		}
		if e := r.Eccentricity(); e > diam {
			diam = e
		}
	}
	return diam, nil
}

// EstimateDiameter lower-bounds the diameter with the classic double-sweep
// heuristic repeated `sweeps` times from pseudo-deterministic start nodes.
// On social graphs the bound is usually exact or off by one, which is all
// the expansion experiments need (they use it to size envelope arrays).
func EstimateDiameter(g View, sweeps int) (int, error) {
	n := g.NumNodes()
	if n == 0 {
		return 0, errors.New("graph: diameter of empty graph")
	}
	if sweeps < 1 {
		sweeps = 1
	}
	w := NewBFSWorker(g)
	best := 0
	start := NodeID(0)
	for s := 0; s < sweeps; s++ {
		r, err := w.Run(start)
		if err != nil {
			return 0, err
		}
		// Move to a farthest node and sweep again.
		far := start
		farD := int32(0)
		for v := NodeID(0); int(v) < n; v++ {
			if r.Dist[v] > farD {
				farD = r.Dist[v]
				far = v
			}
		}
		r2, err := w.Run(far)
		if err != nil {
			return 0, err
		}
		if e := r2.Eccentricity(); e > best {
			best = e
		}
		// Next sweep starts from a node at median distance to diversify.
		start = medianDistanceNode(r2)
	}
	return best, nil
}

func medianDistanceNode(r *BFSResult) NodeID {
	target := int64(r.Reached / 2)
	var seen int64
	for d, c := range r.LevelSizes {
		seen += c
		if seen >= target {
			for v := NodeID(0); int(v) < len(r.Dist); v++ {
				if int(r.Dist[v]) == d {
					return v
				}
			}
		}
	}
	return r.Source
}

// ClusteringCoefficient returns the local clustering coefficient of v:
// the fraction of pairs of neighbors of v that are themselves adjacent.
// Nodes with degree < 2 have coefficient 0 by convention.
func ClusteringCoefficient(g *Graph, v NodeID) float64 {
	ns := g.Neighbors(v)
	d := len(ns)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(ns[i], ns[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// AverageClustering returns the mean local clustering coefficient over all
// nodes. O(sum deg^2); fine up to medium graphs.
func AverageClustering(g *Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	total := 0.0
	for v := NodeID(0); int(v) < n; v++ {
		total += ClusteringCoefficient(g, v)
	}
	return total / float64(n)
}

// TriangleCount returns the number of triangles using the forward
// algorithm: orient each edge from lower-rank to higher-rank (rank =
// degree order) and intersect forward adjacencies, which costs
// O(m^{3/2}) instead of O(Σ deg²).
func TriangleCount(g *Graph) int64 {
	n := g.NumNodes()
	// rank[v]: position in degree-ascending order (ties by ID).
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	rank := make([]int32, n)
	for i, v := range order {
		rank[v] = int32(i)
	}
	// forward[v]: neighbors with higher rank, in rank order of insertion.
	forward := make([][]NodeID, n)
	var count int64
	for i := 0; i < n; i++ {
		v := order[i]
		for _, u := range g.Neighbors(v) {
			if rank[u] <= rank[v] {
				continue
			}
			// Count common forward neighbors of v and u processed so far.
			count += intersectCount(forward[v], forward[u])
			forward[u] = append(forward[u], v)
		}
	}
	return count
}

// intersectCount counts common elements of two small unsorted slices.
func intersectCount(a, b []NodeID) int64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	set := make(map[NodeID]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	var c int64
	for _, x := range b {
		if _, ok := set[x]; ok {
			c++
		}
	}
	return c
}

// Transitivity returns the global clustering coefficient
// 3·triangles / wedges, where a wedge is an ordered pair of distinct
// neighbors of a node. Returns 0 when the graph has no wedges.
func Transitivity(g *Graph) float64 {
	var wedges int64
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		d := int64(g.Degree(v))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(TriangleCount(g)) / float64(wedges)
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's assortativity coefficient). Returns NaN for graphs where
// it is undefined (no edges, or all degrees equal).
func DegreeAssortativity(g *Graph) float64 {
	m := g.NumEdges()
	if m == 0 {
		return math.NaN()
	}
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	cnt := 0.0
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		dv := float64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if u <= v {
				continue
			}
			du := float64(g.Degree(u))
			// Count each edge twice, once per orientation, to symmetrize.
			sumXY += 2 * dv * du
			sumX += dv + du
			sumY += dv + du
			sumX2 += dv*dv + du*du
			sumY2 += dv*dv + du*du
			cnt += 2
		}
	}
	num := sumXY/cnt - (sumX/cnt)*(sumY/cnt)
	den := math.Sqrt(sumX2/cnt-(sumX/cnt)*(sumX/cnt)) * math.Sqrt(sumY2/cnt-(sumY/cnt)*(sumY/cnt))
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
