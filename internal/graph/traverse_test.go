package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSPath(t *testing.T) {
	g := pathGraph(t, 5)
	r, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if int(r.Dist[v]) != v {
			t.Errorf("Dist[%d] = %d, want %d", v, r.Dist[v], v)
		}
	}
	if r.Eccentricity() != 4 {
		t.Errorf("Eccentricity = %d, want 4", r.Eccentricity())
	}
	if r.Reached != 5 {
		t.Errorf("Reached = %d, want 5", r.Reached)
	}
	for i, c := range r.LevelSizes {
		if c != 1 {
			t.Errorf("LevelSizes[%d] = %d, want 1", i, c)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	r, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reached != 2 {
		t.Errorf("Reached = %d, want 2", r.Reached)
	}
	if r.Dist[2] != -1 || r.Dist[3] != -1 {
		t.Errorf("unreachable nodes have Dist %d,%d, want -1,-1", r.Dist[2], r.Dist[3])
	}
}

func TestBFSInvalidSource(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := BFS(g, 7); err == nil {
		t.Error("BFS with out-of-range source: want error")
	}
	if _, err := BFS(g, -1); err == nil {
		t.Error("BFS with negative source: want error")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	for _, e := range []Edge{{0, 1}, {1, 2}, {3, 4}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build() // components: {0,1,2}, {3,4}, {5}, {6}
	labels, sizes := ConnectedComponents(g)
	if len(sizes) != 4 {
		t.Fatalf("components = %d, want 4", len(sizes))
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("nodes 0,1,2 not in same component")
	}
	if labels[3] != labels[4] {
		t.Error("nodes 3,4 not in same component")
	}
	if labels[5] == labels[6] {
		t.Error("isolated nodes 5,6 share a component")
	}
	if NumComponents(g) != 4 {
		t.Errorf("NumComponents = %d, want 4", NumComponents(g))
	}
	if IsConnected(g) {
		t.Error("IsConnected = true for disconnected graph")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(8)
	// Component A: 0-1-2-3 (4 nodes), component B: 4-5 (2 nodes), isolated 6,7.
	for _, e := range []Edge{{0, 1}, {1, 2}, {2, 3}, {4, 5}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	sub, ids := LargestComponent(g)
	if sub.NumNodes() != 4 {
		t.Fatalf("largest component has %d nodes, want 4", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Errorf("largest component has %d edges, want 3", sub.NumEdges())
	}
	want := []NodeID{0, 1, 2, 3}
	for i, v := range ids {
		if v != want[i] {
			t.Errorf("ids[%d] = %d, want %d", i, v, want[i])
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cliqueGraph(t, 5)
	sub := InducedSubgraph(g, []NodeID{1, 3, 4})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Errorf("induced K3 = %v, want n=3 m=3", sub)
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", pathGraph(t, 5), 4},
		{"clique6", cliqueGraph(t, 6), 1},
		{"single", NewBuilder(1).Build(), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Diameter(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Diameter = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDiameterErrors(t *testing.T) {
	var empty Graph
	if _, err := Diameter(&empty); err == nil {
		t.Error("Diameter(empty): want error")
	}
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Diameter(b.Build()); err == nil {
		t.Error("Diameter(disconnected): want error")
	}
}

func TestEstimateDiameterLowerBoundsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := NewBuilder(n)
		// Random connected graph: a random spanning tree plus extras.
		for v := 1; v < n; v++ {
			b.AddEdgeSafe(NodeID(v), NodeID(rng.Intn(v)))
		}
		for i := 0; i < n/2; i++ {
			b.AddEdgeSafe(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		exact, err := Diameter(g)
		if err != nil {
			return false
		}
		est, err := EstimateDiameter(g, 4)
		if err != nil {
			return false
		}
		return est <= exact && est >= (exact+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle with a pendant: nodes 0,1,2 triangle; 3 attached to 0.
	b := NewBuilder(4)
	for _, e := range []Edge{{0, 1}, {1, 2}, {0, 2}, {0, 3}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if got := ClusteringCoefficient(g, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("cc(1) = %v, want 1", got)
	}
	// Node 0 has neighbors {1,2,3}; only pair (1,2) is linked: 1/3.
	if got := ClusteringCoefficient(g, 0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("cc(0) = %v, want 1/3", got)
	}
	if got := ClusteringCoefficient(g, 3); got != 0 {
		t.Errorf("cc(pendant) = %v, want 0", got)
	}
	if got := AverageClustering(g); math.Abs(got-(1.0/3+1+1+0)/4) > 1e-12 {
		t.Errorf("AverageClustering = %v", got)
	}
}

func TestAverageClusteringClique(t *testing.T) {
	g := cliqueGraph(t, 6)
	if got := AverageClustering(g); math.Abs(got-1) > 1e-12 {
		t.Errorf("AverageClustering(K6) = %v, want 1", got)
	}
}

func TestDegreeAssortativityRegular(t *testing.T) {
	// On a cycle, all degrees are equal so assortativity is undefined (NaN).
	b := NewBuilder(6)
	for i := 0; i < 6; i++ {
		if err := b.AddEdge(NodeID(i), NodeID((i+1)%6)); err != nil {
			t.Fatal(err)
		}
	}
	if got := DegreeAssortativity(b.Build()); !math.IsNaN(got) {
		t.Errorf("assortativity of regular graph = %v, want NaN", got)
	}
	var empty Graph
	if got := DegreeAssortativity(&empty); !math.IsNaN(got) {
		t.Errorf("assortativity of empty graph = %v, want NaN", got)
	}
}

func TestDegreeAssortativityStar(t *testing.T) {
	// Stars are maximally disassortative: coefficient -1.
	b := NewBuilder(5)
	for i := 1; i < 5; i++ {
		if err := b.AddEdge(0, NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := DegreeAssortativity(b.Build()); math.Abs(got-(-1)) > 1e-9 {
		t.Errorf("assortativity(star) = %v, want -1", got)
	}
}

// Property: BFS level sizes sum to Reached and distances respect edges
// (|d(u)-d(v)| <= 1 across any edge in the same component).
func TestBFSInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdgeSafe(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		r, err := BFS(g, NodeID(rng.Intn(n)))
		if err != nil {
			return false
		}
		var sum int64
		for _, c := range r.LevelSizes {
			sum += c
		}
		if sum != int64(r.Reached) {
			return false
		}
		for _, e := range g.Edges() {
			du, dv := r.Dist[e.U], r.Dist[e.V]
			if (du < 0) != (dv < 0) {
				return false // one endpoint reached, the other not
			}
			if du >= 0 && dv >= 0 && du-dv > 1 || dv-du > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
