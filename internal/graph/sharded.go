package graph

import (
	"fmt"
	"sort"
)

// ShardedGraph partitions a graph's node range into contiguous,
// arc-balanced shards, each a CSR fragment whose adjacency aliases the
// substrate where possible (CSR-backed views, including mmap-backed
// Mapped graphs, are sliced zero-copy; other views are materialized
// shard by shard). Shard s owns the rows [Range(s)); neighbor lists
// still carry global node IDs, so cross-shard edges need no translation
// — a per-shard worker reads any row's neighbors but writes only state
// it owns, which is what makes the sharded kernels race-free and
// bit-identical to the monolithic ones (see internal/kernels).
//
// ShardedGraph implements View and NeighborSlicer but deliberately NOT
// CSRSource: dispatch sites that ask AsCSR get false and either take the
// per-shard path (walk, expansion, spectral) or traverse generically via
// Adj (k-core, BFS, connectivity), so measurements never silently flatten
// the shards back into one array.
type ShardedGraph struct {
	n      int
	m      int64
	starts []NodeID // len shards+1; shard s owns [starts[s], starts[s+1])
	shards []shardCSR
}

// shardCSR is one node range's CSR fragment. offsets is global-valued
// (offsets[i]-arcBase indexes adj), so a CSR-backed substrate can be
// sliced without rewriting the offsets.
type shardCSR struct {
	base    NodeID
	arcBase int64
	offsets []int64  // len rows+1, global arc offsets
	adj     []NodeID // this shard's arcs, global neighbor IDs
}

// NewSharded partitions v into the given number of contiguous node-range
// shards, balanced by arc count. Shards must be >= 1; ranges may be
// empty when shards exceeds the node count. CSR-backed views are sliced
// zero-copy.
func NewSharded(v View, shards int) (*ShardedGraph, error) {
	if shards < 1 {
		return nil, fmt.Errorf("graph: sharded graph needs >= 1 shard, got %d", shards)
	}
	n := v.NumNodes()
	m := v.NumEdges()
	sg := &ShardedGraph{n: n, m: m}

	// Global offsets: either aliased from the CSR substrate or rebuilt
	// from one Degree pass (O(n), no adjacency copy yet).
	var offsets []int64
	var adjacency []NodeID // nil when the substrate is not CSR-backed
	if g, ok := AsCSR(v); ok {
		offsets = g.offsets
		adjacency = g.adjacency
	} else {
		offsets = make([]int64, n+1)
		for u := 0; u < n; u++ {
			offsets[u+1] = offsets[u] + int64(v.Degree(NodeID(u)))
		}
	}
	arcs := offsets[n]

	// Arc-balanced contiguous ranges: boundary s is the first node whose
	// cumulative arc count reaches s/shards of the total, found by binary
	// search over the monotone offsets.
	sg.starts = make([]NodeID, shards+1)
	for s := 1; s < shards; s++ {
		target := arcs * int64(s) / int64(shards)
		lo := sort.Search(n+1, func(i int) bool { return offsets[i] >= target })
		if lo < int(sg.starts[s-1]) {
			lo = int(sg.starts[s-1])
		}
		sg.starts[s] = NodeID(lo)
	}
	sg.starts[shards] = NodeID(n)

	sg.shards = make([]shardCSR, shards)
	for s := 0; s < shards; s++ {
		lo, hi := int(sg.starts[s]), int(sg.starts[s+1])
		sc := shardCSR{
			base:    NodeID(lo),
			arcBase: offsets[lo],
			offsets: offsets[lo : hi+1],
		}
		if adjacency != nil {
			sc.adj = adjacency[offsets[lo]:offsets[hi]]
		} else {
			sc.adj = make([]NodeID, 0, offsets[hi]-offsets[lo])
			for u := lo; u < hi; u++ {
				sc.adj = v.AppendNeighbors(NodeID(u), sc.adj)
			}
			if int64(len(sc.adj)) != offsets[hi]-offsets[lo] {
				return nil, fmt.Errorf("graph: view degrees disagree with neighbor lists in shard %d", s)
			}
		}
		sg.shards[s] = sc
	}
	return sg, nil
}

// AsSharded returns the ShardedGraph behind v, unwrapping nothing: only
// a *ShardedGraph itself reports true. Dispatch sites use it the way
// they use AsCSR.
func AsSharded(v View) (*ShardedGraph, bool) {
	sg, ok := v.(*ShardedGraph)
	return sg, ok
}

// NumShards returns the shard count.
func (sg *ShardedGraph) NumShards() int { return len(sg.shards) }

// Range returns shard s's node range [lo, hi).
func (sg *ShardedGraph) Range(s int) (lo, hi NodeID) {
	return sg.starts[s], sg.starts[s+1]
}

// ShardOf returns the shard owning node v.
func (sg *ShardedGraph) ShardOf(v NodeID) int {
	// Binary search over the shard boundaries: the last start <= v.
	lo, hi := 0, len(sg.shards)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if sg.starts[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// NumNodes implements View.
func (sg *ShardedGraph) NumNodes() int { return sg.n }

// NumEdges implements View.
func (sg *ShardedGraph) NumEdges() int64 { return sg.m }

// Valid implements View.
func (sg *ShardedGraph) Valid(v NodeID) bool { return v >= 0 && int(v) < sg.n }

// Degree implements View.
func (sg *ShardedGraph) Degree(v NodeID) int {
	sc := &sg.shards[sg.ShardOf(v)]
	i := v - sc.base
	return int(sc.offsets[i+1] - sc.offsets[i])
}

// Neighbors returns the sorted (global-ID) neighbor list of v, aliasing
// shard storage; it must not be modified.
func (sg *ShardedGraph) Neighbors(v NodeID) []NodeID {
	sc := &sg.shards[sg.ShardOf(v)]
	i := v - sc.base
	return sc.adj[sc.offsets[i]-sc.arcBase : sc.offsets[i+1]-sc.arcBase]
}

// AppendNeighbors implements View.
func (sg *ShardedGraph) AppendNeighbors(v NodeID, buf []NodeID) []NodeID {
	return append(buf, sg.Neighbors(v)...)
}

// VisitEdges implements View, yielding canonical edges ascending.
func (sg *ShardedGraph) VisitEdges(visit func(Edge) bool) {
	for v := NodeID(0); int(v) < sg.n; v++ {
		for _, w := range sg.Neighbors(v) {
			if v < w && !visit(Edge{U: v, V: w}) {
				return
			}
		}
	}
}

var (
	_ View           = (*ShardedGraph)(nil)
	_ NeighborSlicer = (*ShardedGraph)(nil)
)
