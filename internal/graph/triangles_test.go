package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTriangleCountKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"K4", cliqueGraph(t, 4), 4},
		{"K5", cliqueGraph(t, 5), 10},
		{"path", pathGraph(t, 6), 0},
		{"single", NewBuilder(1).Build(), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TriangleCount(tt.g); got != tt.want {
				t.Errorf("TriangleCount = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestTriangleCountTriangleWithTail(t *testing.T) {
	b := NewBuilder(5)
	for _, e := range []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if got := TriangleCount(b.Build()); got != 1 {
		t.Errorf("TriangleCount = %d, want 1", got)
	}
}

func TestTransitivityKnown(t *testing.T) {
	if got := Transitivity(cliqueGraph(t, 6)); math.Abs(got-1) > 1e-12 {
		t.Errorf("Transitivity(K6) = %v, want 1", got)
	}
	if got := Transitivity(pathGraph(t, 5)); got != 0 {
		t.Errorf("Transitivity(path) = %v, want 0", got)
	}
	var empty Graph
	if got := Transitivity(&empty); got != 0 {
		t.Errorf("Transitivity(empty) = %v, want 0", got)
	}
	// Triangle plus a pendant (4 nodes): 1 triangle; wedges: deg 2,2,3,1
	// -> 1+1+3+0 = 5; transitivity = 3/5.
	b := NewBuilder(4)
	for _, e := range []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if got := Transitivity(b.Build()); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Transitivity = %v, want 0.6", got)
	}
}

// naiveTriangles counts triangles by enumerating node triples through
// adjacency, for cross-validation.
func naiveTriangles(g *Graph) int64 {
	var count int64
	n := g.NumNodes()
	for a := NodeID(0); int(a) < n; a++ {
		for _, b := range g.Neighbors(a) {
			if b <= a {
				continue
			}
			for _, c := range g.Neighbors(b) {
				if c <= b {
					continue
				}
				if g.HasEdge(a, c) {
					count++
				}
			}
		}
	}
	return count
}

func TestTriangleCountMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdgeSafe(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		return TriangleCount(g) == naiveTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
