package graph

import (
	"sync"
	"testing"
)

// sampleTestGraph builds a path 0-1-2-...-6 plus isolated nodes 7, 8, 9.
func sampleTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(10)
	for v := NodeID(0); v < 6; v++ {
		if err := b.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestSampleNodesDistinctAndSeeded(t *testing.T) {
	g := sampleTestGraph(t)
	a, err := SampleNodes(g, 5, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5 {
		t.Fatalf("len = %d, want 5", len(a))
	}
	seen := make(map[NodeID]bool)
	for _, v := range a {
		if seen[v] {
			t.Fatalf("duplicate node %d", v)
		}
		seen[v] = true
	}
	b, err := SampleNodes(g, 5, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different sample at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c, err := SampleNodes(g, 5, 43, false)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestSampleNodesNonIsolatedFilter(t *testing.T) {
	g := sampleTestGraph(t)
	got, err := SampleNodes(g, 100, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("len = %d, want all 7 non-isolated nodes", len(got))
	}
	for _, v := range got {
		if g.Degree(v) == 0 {
			t.Errorf("sampled isolated node %d", v)
		}
	}
	all, err := SampleNodes(g, 100, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("len = %d, want all 10 nodes", len(all))
	}
}

func TestSampleNodesErrors(t *testing.T) {
	g := sampleTestGraph(t)
	if _, err := SampleNodes(g, 0, 1, false); err == nil {
		t.Error("k=0: want error")
	}
	empty := NewBuilder(3).Build()
	if _, err := SampleNodes(empty, 2, 1, true); err == nil {
		t.Error("all-isolated with nonIsolated: want error")
	}
	none := NewBuilder(0).Build()
	if _, err := SampleNodes(none, 1, 1, false); err == nil {
		t.Error("empty graph: want error")
	}
}

func TestBFSPoolReuseAndConcurrency(t *testing.T) {
	g := sampleTestGraph(t)
	p := NewBFSPool(g)
	w := p.Get()
	r, err := w.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reached != 7 {
		t.Fatalf("Reached = %d, want 7", r.Reached)
	}
	p.Put(w)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(src NodeID) {
			defer wg.Done()
			w := p.Get()
			defer p.Put(w)
			for j := 0; j < 50; j++ {
				r, err := w.Run(src)
				if err != nil {
					t.Error(err)
					return
				}
				if r.Reached != 7 {
					t.Errorf("Reached = %d, want 7", r.Reached)
					return
				}
			}
		}(NodeID(i % 7))
	}
	wg.Wait()
}
