package graph

import (
	"fmt"
	"sort"
	"sync"
)

// InducedView is a zero-copy induced-subgraph view: the subgraph of a base
// view on a node subset, with stable ID remapping — local IDs are assigned
// in ascending original-ID order, exactly the mapping InducedSubgraph uses.
// It backs the k-core and Sybil-region cuts without copying adjacency.
//
// The view snapshots the base's degrees at construction; if the base is
// mutable (a MaskedView), mutating it invalidates the InducedView, which
// must then be rebuilt. Between mutations it is safe for concurrent
// readers.
type InducedView struct {
	base View
	// csr is the fast path when the base is CSR-backed.
	csr *Graph
	// nodes maps local ID -> original ID, strictly ascending.
	nodes []NodeID
	// local maps original ID -> local ID, -1 for nodes outside the subset.
	local    []int32
	deg      []int32
	numEdges int64

	mu  sync.Mutex
	mat *Graph
}

// NewInducedView returns the induced-subgraph view of base on nodes. The
// node list is copied, sorted and deduplicated; out-of-range nodes are an
// error. Construction is O(|nodes| log |nodes| + vol(nodes)).
func NewInducedView(base View, nodes []NodeID) (*InducedView, error) {
	sorted := make([]NodeID, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:0]
	for i, v := range sorted {
		if !base.Valid(v) {
			return nil, fmt.Errorf("%w: %d with n=%d", ErrNodeRange, v, base.NumNodes())
		}
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	iv := &InducedView{
		base:  base,
		nodes: uniq,
		local: make([]int32, base.NumNodes()),
		deg:   make([]int32, len(uniq)),
	}
	if g, ok := AsCSR(base); ok {
		iv.csr = g
	}
	for i := range iv.local {
		iv.local[i] = -1
	}
	for i, v := range uniq {
		iv.local[v] = int32(i)
	}
	var buf []NodeID
	for i, v := range uniq {
		buf = base.AppendNeighbors(v, buf[:0])
		d := int32(0)
		for _, w := range buf {
			if iv.local[w] >= 0 {
				d++
			}
		}
		iv.deg[i] = d
		iv.numEdges += int64(d)
	}
	iv.numEdges /= 2
	return iv, nil
}

// NumNodes implements View.
func (iv *InducedView) NumNodes() int { return len(iv.nodes) }

// NumEdges implements View.
func (iv *InducedView) NumEdges() int64 { return iv.numEdges }

// Valid implements View.
func (iv *InducedView) Valid(v NodeID) bool { return v >= 0 && int(v) < len(iv.nodes) }

// Degree implements View.
func (iv *InducedView) Degree(v NodeID) int { return int(iv.deg[v]) }

// OriginalID returns the base-view ID of local node v.
func (iv *InducedView) OriginalID(v NodeID) NodeID { return iv.nodes[v] }

// LocalID returns the local ID of base-view node v, or false if v is not in
// the subset.
func (iv *InducedView) LocalID(v NodeID) (NodeID, bool) {
	if int(v) >= len(iv.local) || v < 0 || iv.local[v] < 0 {
		return 0, false
	}
	return NodeID(iv.local[v]), true
}

// Nodes returns the subset as ascending original IDs. The slice is shared
// and must not be modified.
func (iv *InducedView) Nodes() []NodeID { return iv.nodes }

// AppendNeighbors implements View. Local IDs ascend with original IDs, so
// remapping the base's sorted neighbor list in place keeps it sorted.
func (iv *InducedView) AppendNeighbors(v NodeID, buf []NodeID) []NodeID {
	orig := iv.nodes[v]
	if iv.csr != nil {
		for _, w := range iv.csr.Neighbors(orig) {
			if l := iv.local[w]; l >= 0 {
				buf = append(buf, NodeID(l))
			}
		}
		return buf
	}
	// Generic base: append original neighbors after the caller's prefix,
	// then filter+remap that tail in place — no scratch, concurrency-safe.
	start := len(buf)
	buf = iv.base.AppendNeighbors(orig, buf)
	tail := buf[start:]
	k := 0
	for _, w := range tail {
		if l := iv.local[w]; l >= 0 {
			tail[k] = NodeID(l)
			k++
		}
	}
	return buf[:start+k]
}

// VisitEdges implements View. The base yields canonical edges ascending and
// the remap is monotone, so filtered remapped edges stay canonical and
// ascending.
func (iv *InducedView) VisitEdges(visit func(Edge) bool) {
	iv.base.VisitEdges(func(e Edge) bool {
		lu, lv := iv.local[e.U], iv.local[e.V]
		if lu < 0 || lv < 0 {
			return true
		}
		return visit(Edge{U: NodeID(lu), V: NodeID(lv)})
	})
}

// Materialize implements Materializer with a cached linear CSR copy. The
// result must not be modified.
func (iv *InducedView) Materialize() *Graph {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	if iv.mat == nil {
		iv.mat = materializeCSR(iv)
	}
	return iv.mat
}

var _ Materializer = (*InducedView)(nil)
