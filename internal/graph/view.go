package graph

import "fmt"

// View is the read-only graph abstraction shared by every measurement in the
// repository. *Graph implements it directly; MaskedView, InducedView and
// PrefixView implement it zero-copy over a substrate *Graph, so churned,
// induced and growth-prefix variants of one graph can be measured without
// materializing a CSR copy per variant.
//
// Contract, mirroring Graph: nodes are dense IDs in [0, NumNodes());
// neighbor lists are sorted ascending and free of self loops and
// duplicates; NumEdges counts each undirected edge once; VisitEdges yields
// canonical edges (U < V) in ascending (U, V) order. Views must be safe for
// concurrent readers; mutable views (MaskedView) additionally require that
// mutation is not concurrent with reads.
type View interface {
	// NumNodes returns |V|.
	NumNodes() int
	// NumEdges returns |E|, each undirected edge counted once.
	NumEdges() int64
	// Valid reports whether v is a node of the view.
	Valid(v NodeID) bool
	// Degree returns the number of neighbors of v in the view.
	Degree(v NodeID) int
	// AppendNeighbors appends the sorted neighbor list of v to buf and
	// returns the extended slice. Appending (rather than returning an
	// aliased slice, as Graph.Neighbors does) lets masked and remapped
	// views stay allocation-free with a caller-owned buffer.
	AppendNeighbors(v NodeID, buf []NodeID) []NodeID
	// VisitEdges calls visit for every edge in canonical ascending order
	// until visit returns false.
	VisitEdges(visit func(Edge) bool)
}

// CSRSource is implemented by views that are directly backed by a CSR
// *Graph with no masking or remapping — in practice, *Graph itself. The
// batched kernels (internal/kernels) require raw CSR arrays; dispatch sites
// use AsCSR to take the kernel path without a copy when they can.
type CSRSource interface {
	View
	// CSR returns the backing CSR graph. The result views the same
	// topology: same node IDs, same edges.
	CSR() *Graph
}

// NeighborSlicer is implemented by views that can return an aliased,
// allocation-free neighbor slice — *Graph, Mapped and ShardedGraph. The
// slice must be sorted ascending, must not be modified, and is only
// guaranteed valid until the next call on the same view. Traversal
// helpers (Adj, and through it BFS, k-core peeling, connectivity) use it
// as a generic fast path, so mapped and sharded graphs traverse at CSR
// speed without implementing CSRSource.
type NeighborSlicer interface {
	View
	// Neighbors returns the sorted neighbor list of v without copying.
	Neighbors(v NodeID) []NodeID
}

// Materializer is implemented by views that cache their own CSR
// materialization. Materialize prefers it over rebuilding.
type Materializer interface {
	View
	// Materialize returns a CSR copy of the view with identical node IDs
	// and edges. Implementations cache the copy; callers must not modify
	// the result.
	Materialize() *Graph
}

// AppendNeighbors implements View. The appended elements alias nothing; buf
// may be retained by the caller.
func (g *Graph) AppendNeighbors(v NodeID, buf []NodeID) []NodeID {
	return append(buf, g.Neighbors(v)...)
}

// VisitEdges implements View, yielding canonical edges in ascending order.
func (g *Graph) VisitEdges(visit func(Edge) bool) {
	n := g.NumNodes()
	for v := NodeID(0); int(v) < n; v++ {
		for _, w := range g.Neighbors(v) {
			if v < w && !visit(Edge{U: v, V: w}) {
				return
			}
		}
	}
}

// CSR implements CSRSource: a Graph is its own CSR backing.
func (g *Graph) CSR() *Graph { return g }

// AsCSR returns the raw CSR graph behind v when v is CSR-backed
// (zero-copy), and (nil, false) otherwise.
func AsCSR(v View) (*Graph, bool) {
	if s, ok := v.(CSRSource); ok {
		return s.CSR(), true
	}
	return nil, false
}

// Materialize returns a CSR *Graph with exactly the view's nodes and edges.
// CSR-backed views are returned as-is (zero copy); views that cache their
// own materialization (MaskedView, InducedView, PrefixView) return the
// cached copy; anything else is rebuilt. Because view neighbor lists are
// already sorted and deduplicated, rebuilding is a linear O(n+m) pass —
// not the O(m log m) sort a Builder pays. The result must not be modified.
//
// This is the kernel escape hatch: measurement entry points that dispatch
// to the batched CSR kernels above the kernel cutoff call Materialize once
// and amortize the copy across the whole measurement.
func Materialize(v View) *Graph {
	if g, ok := AsCSR(v); ok {
		return g
	}
	if m, ok := v.(Materializer); ok {
		return m.Materialize()
	}
	return materializeCSR(v)
}

// materializeCSR builds a CSR copy of an arbitrary view in O(n+m) without
// sorting, relying on the View contract that neighbor lists are sorted.
func materializeCSR(v View) *Graph {
	g, _, _ := MaterializeInto(v, nil, nil)
	return g
}

// MaterializeInto is Materialize with caller-owned storage: it fills (and
// grows if needed) the offsets and adjacency buffers with a CSR copy of v
// and returns a fresh *Graph header over them plus the buffers for reuse.
// Unlike Materialize it never returns a cached or aliased graph, and the
// returned graph is only valid until the buffers are reused — it is the
// allocation-free path for callers that re-materialize a mutating view
// every epoch.
func MaterializeInto(v View, offsets []int64, adjacency []NodeID) (*Graph, []int64, []NodeID) {
	n := v.NumNodes()
	if cap(offsets) < n+1 {
		offsets = make([]int64, n+1)
	}
	offsets = offsets[:n+1]
	offsets[0] = 0
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + int64(v.Degree(NodeID(u)))
	}
	if int64(cap(adjacency)) < offsets[n] {
		adjacency = make([]NodeID, 0, offsets[n])
	}
	// Append each node's list onto the shared buffer; keeping the returned
	// slice matters, because a view may append (and then discard) more than
	// Degree elements transiently, reallocating past the reserved capacity.
	adjacency = adjacency[:0]
	for u := 0; u < n; u++ {
		adjacency = v.AppendNeighbors(NodeID(u), adjacency)
		if int64(len(adjacency)) != offsets[u+1] {
			panic(fmt.Sprintf("graph: view degree %d of node %d disagrees with its neighbor list",
				v.Degree(NodeID(u)), u))
		}
	}
	return &Graph{offsets: offsets, adjacency: adjacency}, offsets, adjacency
}

// Stationary returns π = [deg(v)/2m] of the lazy-free random walk on the
// view (§III-C), erroring on an edgeless view. For a plain *Graph it
// returns the graph's cached distribution; the result must not be modified
// in either case.
func Stationary(v View) ([]float64, error) {
	if g, ok := AsCSR(v); ok {
		return g.StationaryDistribution()
	}
	m2 := float64(2 * v.NumEdges())
	if m2 == 0 {
		return nil, errStationaryEdgeless
	}
	pi := make([]float64, v.NumNodes())
	for u := range pi {
		pi[u] = float64(v.Degree(NodeID(u))) / m2
	}
	return pi, nil
}

// Adj is a per-goroutine neighbor cursor over a View. On CSR-backed views
// Neighbors is the zero-copy aliased slice; otherwise neighbors are
// appended into one reused buffer, so steady-state traversal allocates
// nothing either way. An Adj must not be shared between goroutines, and a
// returned slice is only valid until the next Neighbors call.
type Adj struct {
	sl  NeighborSlicer
	v   View
	buf []NodeID
}

// NewAdj returns a cursor for v.
func NewAdj(v View) *Adj {
	if s, ok := v.(NeighborSlicer); ok {
		return &Adj{sl: s}
	}
	return &Adj{v: v}
}

// Neighbors returns the sorted neighbor list of u, valid until the next
// call. The slice must not be modified.
func (a *Adj) Neighbors(u NodeID) []NodeID {
	if a.sl != nil {
		return a.sl.Neighbors(u)
	}
	a.buf = a.v.AppendNeighbors(u, a.buf[:0])
	return a.buf
}

var (
	_ CSRSource      = (*Graph)(nil)
	_ View           = (*Graph)(nil)
	_ NeighborSlicer = (*Graph)(nil)
)

// AvgDegree returns 2m/n for a view (Graph.AverageDegree generalized), or
// 0 for an empty view.
func AvgDegree(v View) float64 {
	n := v.NumNodes()
	if n == 0 {
		return 0
	}
	return float64(2*v.NumEdges()) / float64(n)
}
