package graph_test

import (
	"fmt"
	"log"

	"github.com/trustnet/trustnet/internal/graph"
)

// Build a small friendship graph and query its structure.
func Example() {
	b := graph.NewBuilder(5)
	for _, e := range []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()
	fmt.Println(g)
	fmt.Println("deg(2) =", g.Degree(2))
	fmt.Println("triangle:", g.HasEdge(0, 1) && g.HasEdge(1, 2) && g.HasEdge(0, 2))
	d, err := graph.Diameter(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("diameter =", d)
	// Output:
	// graph{n=5 m=5}
	// deg(2) = 3
	// triangle: true
	// diameter = 3
}

// BFS exposes the level structure the expansion measurement consumes.
func ExampleBFS() {
	b := graph.NewBuilder(6)
	for _, e := range []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 4}, {U: 3, V: 5},
	} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			log.Fatal(err)
		}
	}
	r, err := graph.BFS(b.Build(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("levels:", r.LevelSizes)
	fmt.Println("eccentricity:", r.Eccentricity())
	// Output:
	// levels: [1 2 2 1]
	// eccentricity: 3
}
