package graph

import (
	"fmt"
	"sort"
	"sync"
)

// GrowthLog indexes a growth sequence — an edge list in arrival order over
// a final node set — so that any prefix of the growth is a zero-copy
// PrefixView instead of a per-snapshot CSR rebuild. The final graph's CSR
// is built once; every adjacency slot is stamped with the arrival index of
// its edge (first arrival wins for duplicates, matching Builder's
// deduplication), and a prefix view filters slots by that stamp.
type GrowthLog struct {
	g *Graph
	// when[i] is the arrival index (into the original edge sequence) of
	// the edge stored at adjacency slot i.
	when        []int32
	numArrivals int
}

// NewGrowthLog builds the index for a growth sequence of edges (arrival
// order) over n final nodes, validating every edge as FromEdges does.
func NewGrowthLog(n int, edges []Edge) (*GrowthLog, error) {
	type rec struct {
		e Edge
		t int32
	}
	recs := make([]rec, 0, len(edges))
	for t, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, e.U, e.V)
		}
		if e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeRange, e.U, e.V, n)
		}
		recs = append(recs, rec{e: e.Canonical(), t: int32(t)})
	}
	// Sort by canonical edge, earliest arrival first, and keep the first
	// arrival of each edge — the prefix then contains an edge iff its
	// first occurrence is inside the prefix, which is exactly what a
	// Builder over the prefix would deduplicate to.
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].e.U != recs[j].e.U {
			return recs[i].e.U < recs[j].e.U
		}
		if recs[i].e.V != recs[j].e.V {
			return recs[i].e.V < recs[j].e.V
		}
		return recs[i].t < recs[j].t
	})
	uniq := recs[:0]
	for i, r := range recs {
		if i == 0 || r.e != recs[i-1].e {
			uniq = append(uniq, r)
		}
	}

	deg := make([]int64, n)
	for _, r := range uniq {
		deg[r.e.U]++
		deg[r.e.V]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adjacency := make([]NodeID, offsets[n])
	when := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, r := range uniq {
		adjacency[cursor[r.e.U]] = r.e.V
		when[cursor[r.e.U]] = r.t
		cursor[r.e.U]++
		adjacency[cursor[r.e.V]] = r.e.U
		when[cursor[r.e.V]] = r.t
		cursor[r.e.V]++
	}
	// The U-side insertions above are sorted by construction, the V-side
	// ones are not; sort each node's segment by neighbor, carrying the
	// arrival stamps along.
	type slot struct {
		w NodeID
		t int32
	}
	var scratch []slot
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		scratch = scratch[:0]
		for i := lo; i < hi; i++ {
			scratch = append(scratch, slot{w: adjacency[i], t: when[i]})
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i].w < scratch[j].w })
		for i, s := range scratch {
			adjacency[lo+int64(i)] = s.w
			when[lo+int64(i)] = s.t
		}
	}
	return &GrowthLog{
		g:           &Graph{offsets: offsets, adjacency: adjacency},
		when:        when,
		numArrivals: len(edges),
	}, nil
}

// Final returns the full-growth graph. The result must not be modified.
func (l *GrowthLog) Final() *Graph { return l.g }

// NumArrivals returns the length of the original edge sequence, including
// duplicates.
func (l *GrowthLog) NumArrivals() int { return l.numArrivals }

// Prefix returns the view after the first arrivals edges have arrived,
// restricted to the first nodes node IDs — the state of a growth process
// that has spawned `nodes` nodes and `arrivals` edge events.
func (l *GrowthLog) Prefix(arrivals, nodes int) (*PrefixView, error) {
	if arrivals < 0 || arrivals > l.numArrivals {
		return nil, fmt.Errorf("graph: prefix arrivals %d outside [0,%d]", arrivals, l.numArrivals)
	}
	if nodes < 0 || nodes > l.g.NumNodes() {
		return nil, fmt.Errorf("graph: prefix nodes %d outside [0,%d]", nodes, l.g.NumNodes())
	}
	pv := &PrefixView{
		log:      l,
		arrivals: int32(arrivals),
		n:        nodes,
		deg:      make([]int32, nodes),
	}
	for v := 0; v < nodes; v++ {
		lo, hi := l.g.offsets[v], l.g.offsets[v+1]
		d := int32(0)
		for i := lo; i < hi; i++ {
			if int(l.g.adjacency[i]) < nodes && l.when[i] < pv.arrivals {
				d++
			}
		}
		pv.deg[v] = d
		pv.numEdges += int64(d)
	}
	pv.numEdges /= 2
	return pv, nil
}

// PrefixView is the zero-copy graph of a growth prefix: the edges whose
// first arrival index is below the cutoff, among the first n nodes. It is
// immutable and safe for concurrent readers.
type PrefixView struct {
	log      *GrowthLog
	arrivals int32
	n        int
	deg      []int32
	numEdges int64

	mu  sync.Mutex
	mat *Graph
}

// NumNodes implements View.
func (pv *PrefixView) NumNodes() int { return pv.n }

// NumEdges implements View.
func (pv *PrefixView) NumEdges() int64 { return pv.numEdges }

// Valid implements View.
func (pv *PrefixView) Valid(v NodeID) bool { return v >= 0 && int(v) < pv.n }

// Degree implements View.
func (pv *PrefixView) Degree(v NodeID) int { return int(pv.deg[v]) }

func (pv *PrefixView) keep(i int64) bool {
	return int(pv.log.g.adjacency[i]) < pv.n && pv.log.when[i] < pv.arrivals
}

// AppendNeighbors implements View.
func (pv *PrefixView) AppendNeighbors(v NodeID, buf []NodeID) []NodeID {
	g := pv.log.g
	lo, hi := g.offsets[v], g.offsets[v+1]
	for i := lo; i < hi; i++ {
		if pv.keep(i) {
			buf = append(buf, g.adjacency[i])
		}
	}
	return buf
}

// VisitEdges implements View.
func (pv *PrefixView) VisitEdges(visit func(Edge) bool) {
	g := pv.log.g
	for v := NodeID(0); int(v) < pv.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			if w := g.adjacency[i]; w > v && pv.keep(i) && !visit(Edge{U: v, V: w}) {
				return
			}
		}
	}
}

// Materialize implements Materializer with a cached linear CSR copy. The
// result must not be modified.
func (pv *PrefixView) Materialize() *Graph {
	pv.mu.Lock()
	defer pv.mu.Unlock()
	if pv.mat == nil {
		pv.mat = materializeCSR(pv)
	}
	return pv.mat
}

var _ Materializer = (*PrefixView)(nil)
