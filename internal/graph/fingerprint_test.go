package graph

import (
	"path/filepath"
	"testing"
)

// fingerprintTestGraph builds a small deterministic graph.
func fingerprintTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(8)
	edges := [][2]NodeID{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {1, 5},
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	g := fingerprintTestGraph(t)
	fp := Fingerprint(g)
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex digits", fp)
	}
	if again := Fingerprint(g); again != fp {
		t.Fatalf("fingerprint not deterministic: %s vs %s", fp, again)
	}

	// One extra edge must change the digest.
	b := NewBuilder(8)
	g.VisitEdges(func(e Edge) bool { b.AddEdgeSafe(e.U, e.V); return true })
	b.AddEdgeSafe(0, 4)
	if other := Fingerprint(b.Build()); other == fp {
		t.Fatal("fingerprint unchanged after adding an edge")
	}

	// Same edges, one more (isolated) node must change the digest too.
	b2 := NewBuilder(9)
	g.VisitEdges(func(e Edge) bool { b2.AddEdgeSafe(e.U, e.V); return true })
	if other := Fingerprint(b2.Build()); other == fp {
		t.Fatal("fingerprint unchanged after adding a node")
	}
}

// The digest must be identical across every substrate form of the same
// topology: monolithic CSR, mmap-backed TNG2, and the sharded engine.
func TestFingerprintConsistentAcrossForms(t *testing.T) {
	g := fingerprintTestGraph(t)
	want := Fingerprint(g)

	path := filepath.Join(t.TempDir(), "g.tng2")
	if err := SaveCSR(path, g); err != nil {
		t.Fatal(err)
	}
	mg, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	if got := Fingerprint(mg); got != want {
		t.Errorf("mapped fingerprint %s, want %s", got, want)
	}

	for _, shards := range []int{1, 2, 3} {
		sg, err := NewSharded(g, shards)
		if err != nil {
			t.Fatal(err)
		}
		if got := Fingerprint(sg); got != want {
			t.Errorf("%d-shard fingerprint %s, want %s", shards, got, want)
		}
	}

	// A masked view with nothing masked digests identically as well.
	mv := NewMaskedView(g)
	if got := Fingerprint(mv); got != want {
		t.Errorf("unmasked view fingerprint %s, want %s", got, want)
	}
}

func TestFingerprintEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if fp := Fingerprint(g); len(fp) != 16 {
		t.Fatalf("empty-graph fingerprint %q", fp)
	}
}
