package graph

import (
	"math/rand"
	"path/filepath"
	"testing"
)

var shardCounts = []int{1, 2, 7}

// TestEquivalenceShardedView checks that a ShardedGraph is observationally
// identical to its substrate through every View method, at 1, 2 and 7
// shards (7 exceeds some components' natural split, forcing empty and
// tiny shards).
func TestEquivalenceShardedView(t *testing.T) {
	graphs := map[string]*Graph{
		"random":   randomGraph(t, 163, 0.07, 5),
		"path":     pathGraph(t, 40),
		"isolated": NewBuilder(13).Build(),
		"tiny":     cliqueGraph(t, 3),
	}
	for name, g := range graphs {
		for _, shards := range shardCounts {
			sg, err := NewSharded(g, shards)
			if err != nil {
				t.Fatal(err)
			}
			label := name
			if sg.NumShards() != shards {
				t.Fatalf("%s: NumShards = %d, want %d", label, sg.NumShards(), shards)
			}
			graphsEqual(t, g, sg, label)
			for v := NodeID(0); int(v) < g.NumNodes(); v++ {
				if sg.Degree(v) != g.Degree(v) {
					t.Fatalf("%s: degree(%d) = %d, want %d", label, v, sg.Degree(v), g.Degree(v))
				}
				ns, want := sg.Neighbors(v), g.Neighbors(v)
				if len(ns) != len(want) {
					t.Fatalf("%s: neighbors(%d) length %d, want %d", label, v, len(ns), len(want))
				}
				for i := range want {
					if ns[i] != want[i] {
						t.Fatalf("%s: neighbors(%d)[%d] = %d, want %d", label, v, i, ns[i], want[i])
					}
				}
				s := sg.ShardOf(v)
				lo, hi := sg.Range(s)
				if v < lo || v >= hi {
					t.Fatalf("%s: ShardOf(%d) = %d with range [%d,%d)", label, v, s, lo, hi)
				}
			}
			// Edge enumeration in canonical order.
			want := g.Edges()
			i := 0
			sg.VisitEdges(func(e Edge) bool {
				if i >= len(want) || e != want[i] {
					t.Fatalf("%s: VisitEdges[%d] = %v", label, i, e)
				}
				i++
				return true
			})
			if i != len(want) {
				t.Fatalf("%s: VisitEdges yielded %d edges, want %d", label, i, len(want))
			}
		}
	}
}

// TestEquivalenceShardedRanges checks the partition is contiguous, covers
// [0, n) exactly, and that every shard's arc span matches its node range.
func TestEquivalenceShardedRanges(t *testing.T) {
	g := randomGraph(t, 211, 0.06, 8)
	for _, shards := range shardCounts {
		sg, err := NewSharded(g, shards)
		if err != nil {
			t.Fatal(err)
		}
		prev := NodeID(0)
		for s := 0; s < sg.NumShards(); s++ {
			lo, hi := sg.Range(s)
			if lo != prev || hi < lo {
				t.Fatalf("shards=%d: range %d = [%d,%d), prev end %d", shards, s, lo, hi, prev)
			}
			prev = hi
		}
		if int(prev) != g.NumNodes() {
			t.Fatalf("shards=%d: ranges end at %d, want %d", shards, prev, g.NumNodes())
		}
	}
}

// TestEquivalenceShardedOverMapped runs the sharded view over an
// mmap-backed substrate: the shard adjacency must alias the mapping
// (zero-copy) and still agree with the original graph.
func TestEquivalenceShardedOverMapped(t *testing.T) {
	g := randomGraph(t, 120, 0.08, 12)
	path := filepath.Join(t.TempDir(), "g.tng2")
	if err := SaveCSR(path, g); err != nil {
		t.Fatal(err)
	}
	mg, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	for _, shards := range shardCounts {
		sg, err := NewSharded(mg, shards)
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, g, sg, "mapped-sharded")
	}
	// Zero-copy: shard 0's adjacency must point into the mapped arrays.
	sg, err := NewSharded(mg, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := mg.CSR().adjacency
	if len(base) > 0 {
		adj := sg.shards[0].adj
		if len(adj) == 0 || &adj[0] != &base[0] {
			t.Error("shard 0 adjacency does not alias the mapped CSR")
		}
	}
}

// TestEquivalenceShardedNonCSRSubstrate shards a masked view (no CSR
// backing), exercising the materialize-per-shard path.
func TestEquivalenceShardedNonCSRSubstrate(t *testing.T) {
	g := randomGraph(t, 90, 0.1, 3)
	mv := NewMaskedView(g)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 15; i++ {
		mv.SetAlive(NodeID(rng.Intn(90)), false)
	}
	want := mv.Materialize()
	for _, shards := range shardCounts {
		sg, err := NewSharded(mv, shards)
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, want, sg, "masked-sharded")
	}
}

func TestShardedErrors(t *testing.T) {
	g := cliqueGraph(t, 4)
	if _, err := NewSharded(g, 0); err == nil {
		t.Error("NewSharded(g, 0): want error")
	}
	if _, ok := AsSharded(g); ok {
		t.Error("AsSharded(*Graph): want false")
	}
	sg, err := NewSharded(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := AsSharded(sg); !ok || got != sg {
		t.Error("AsSharded(sharded): want itself")
	}
	// ShardedGraph must NOT flatten back to CSR via AsCSR: dispatch sites
	// rely on that to take the per-shard paths.
	if _, ok := AsCSR(sg); ok {
		t.Error("AsCSR(sharded): want false")
	}
}
