package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	builder := NewBuilder(n)
	for v := 1; v < n; v++ {
		builder.AddEdgeSafe(NodeID(v), NodeID(rng.Intn(v)))
	}
	for i := 0; i < 5*n; i++ {
		builder.AddEdgeSafe(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return builder.Build()
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	edges := make([]Edge, 6*n)
	for i := range edges {
		edges[i] = Edge{U: NodeID(rng.Intn(n)), V: NodeID(rng.Intn(n))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := NewBuilder(n)
		for _, e := range edges {
			builder.AddEdgeSafe(e.U, e.V)
		}
		_ = builder.Build()
	}
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b, 10000)
	w := NewBFSWorker(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(NodeID(i%10000), NodeID((i*7)%10000))
	}
}
