package graph

import (
	"math/bits"
	"sort"
)

// MaskSnapshot is a frozen copy of a MaskedView's structural state — the
// alive-node and dropped-slot bitmaps — taken with Snapshot. Diffing a
// snapshot against the view's current state (DiffSnapshot) yields the
// exact live-topology delta between two fault epochs, which is what the
// incremental measurement pipelines consume. A snapshot is O(n/64 + m/32)
// words and is reused across epochs by passing it back to Snapshot.
type MaskSnapshot struct {
	alive []uint64
	drop  []uint64
	valid bool
}

// Valid reports whether the snapshot holds a state captured by Snapshot.
func (s *MaskSnapshot) Valid() bool { return s != nil && s.valid }

// Snapshot copies the view's current alive/drop bitmaps into s, reusing
// its buffers when they fit, and returns s (allocating a MaskSnapshot
// when s is nil). The snapshot is immutable from the view's side: later
// mutations of the view do not affect it.
func (mv *MaskedView) Snapshot(s *MaskSnapshot) *MaskSnapshot {
	if s == nil {
		s = &MaskSnapshot{}
	}
	s.alive = append(s.alive[:0], mv.alive...)
	s.drop = append(s.drop[:0], mv.drop...)
	s.valid = true
	return s
}

// MaskDelta is the live-topology difference between a MaskSnapshot (the
// "old" epoch) and a MaskedView's current state (the "new" epoch), as
// computed by DiffSnapshot. Edge deltas are over the LIVE topology: an
// edge counts as lost whether it was explicitly dropped or lost an
// endpoint to churn, and as gained whether it was restored or had an
// endpoint revive. All four slices are sorted (nodes ascending, edges in
// canonical ascending (U, V) order) and free of duplicates.
type MaskDelta struct {
	// NodesDown are nodes alive in the old state and down in the new.
	NodesDown []NodeID
	// NodesUp are nodes down in the old state and alive in the new.
	NodesUp []NodeID
	// EdgesLost are edges live in the old state and not live in the new.
	EdgesLost []Edge
	// EdgesGained are edges live in the new state and not live in the old.
	EdgesGained []Edge
}

// Empty reports whether the delta carries no change.
func (d *MaskDelta) Empty() bool {
	return len(d.NodesDown) == 0 && len(d.NodesUp) == 0 &&
		len(d.EdgesLost) == 0 && len(d.EdgesGained) == 0
}

// Touched returns the sorted, deduplicated set of nodes incident to any
// change in the delta: flipped nodes plus every endpoint of a lost or
// gained edge. This is the "dirty" set the invalidation rules of the
// incremental pipelines start from.
func (d *MaskDelta) Touched() []NodeID {
	out := make([]NodeID, 0, len(d.NodesDown)+len(d.NodesUp)+2*(len(d.EdgesLost)+len(d.EdgesGained)))
	out = append(out, d.NodesDown...)
	out = append(out, d.NodesUp...)
	for _, e := range d.EdgesLost {
		out = append(out, e.U, e.V)
	}
	for _, e := range d.EdgesGained {
		out = append(out, e.U, e.V)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// snapAlive reads node v's aliveness out of the snapshot bitmap.
func (s *MaskSnapshot) snapAlive(v NodeID) bool {
	return s.alive[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0
}

// snapDropped reads adjacency slot i's drop bit out of the snapshot.
func (s *MaskSnapshot) snapDropped(slot int64) bool {
	return s.drop[slot>>6]&(1<<(uint64(slot)&63)) != 0
}

// DiffSnapshot computes the live-topology delta from the snapshot state
// to the view's current state, appending into d's slices (allocating d
// when nil) and returning it. The cost is one word-wise scan of both
// bitmaps plus work proportional to the change: O(n/64 + m/64 +
// Δ·(deg + log deg)). prev must have been taken from this view (same
// substrate); passing a snapshot of another view corrupts the result.
func (mv *MaskedView) DiffSnapshot(prev *MaskSnapshot, d *MaskDelta) *MaskDelta {
	if d == nil {
		d = &MaskDelta{}
	}
	d.NodesDown = d.NodesDown[:0]
	d.NodesUp = d.NodesUp[:0]
	d.EdgesLost = d.EdgesLost[:0]
	d.EdgesGained = d.EdgesGained[:0]

	// Candidate edges, packed canonically as u<<32|v with u < v. A live
	// edge can only change state through an endpoint aliveness flip or a
	// drop-bit flip, so scanning those two XOR streams covers every
	// possible change.
	var cand []uint64
	pack := func(u, v NodeID) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}

	// Node flips (ascending by construction of the word scan).
	for w := range mv.alive {
		x := mv.alive[w] ^ prev.alive[w]
		for x != 0 {
			b := x & (-x)
			v := NodeID(w<<6 + bits.TrailingZeros64(b))
			if mv.Alive(v) {
				d.NodesUp = append(d.NodesUp, v)
			} else {
				d.NodesDown = append(d.NodesDown, v)
			}
			lo, hi := mv.g.offsets[v], mv.g.offsets[v+1]
			for i := lo; i < hi; i++ {
				cand = append(cand, pack(v, mv.g.adjacency[i]))
			}
			x ^= b
		}
	}

	// Drop-bit flips: map the adjacency slot back to its owning row via a
	// binary search over the offsets array.
	for w := range mv.drop {
		x := mv.drop[w] ^ prev.drop[w]
		for x != 0 {
			b := x & (-x)
			slot := int64(w<<6 + bits.TrailingZeros64(b))
			u := rowOfSlot(mv.g.offsets, slot)
			cand = append(cand, pack(u, mv.g.adjacency[slot]))
			x ^= b
		}
	}

	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	var last uint64
	for i, c := range cand {
		if i > 0 && c == last {
			continue
		}
		last = c
		u, v := NodeID(c>>32), NodeID(c&0xffffffff)
		slot, ok := mv.slotOf(u, v)
		if !ok {
			continue // unreachable: candidates come from the adjacency itself
		}
		liveOld := prev.snapAlive(u) && prev.snapAlive(v) && !prev.snapDropped(slot)
		liveNew := mv.Alive(u) && mv.Alive(v) && !mv.dropped(slot)
		switch {
		case liveOld && !liveNew:
			d.EdgesLost = append(d.EdgesLost, Edge{U: u, V: v})
		case !liveOld && liveNew:
			d.EdgesGained = append(d.EdgesGained, Edge{U: u, V: v})
		}
	}
	return d
}

// rowOfSlot returns the node whose CSR segment contains adjacency slot i:
// the largest u with offsets[u] <= i.
func rowOfSlot(offsets []int64, slot int64) NodeID {
	// offsets has n+1 entries; find the first offset > slot, row is one
	// before it.
	lo, hi := 0, len(offsets)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if offsets[mid+1] > slot {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return NodeID(lo)
}
