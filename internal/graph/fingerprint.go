package graph

import (
	"fmt"
	"hash/crc64"
)

// fingerprintTable is the CRC-64/ECMA table Fingerprint streams
// through; package-level so repeated fingerprints share it.
var fingerprintTable = crc64.MakeTable(crc64.ECMA)

// Fingerprint returns the canonical digest of a view's topology: a
// CRC-64 (ECMA) streamed over the node count, edge count, and every
// node's degree and sorted neighbor list in ascending node order, each
// value as a 64-bit little-endian word. Because the View contract fixes
// node identity and neighbor order, the digest is identical for the
// monolithic CSR, the mmap-backed Mapped form, the ShardedGraph, and
// any zero-copy view of equal topology — it is the graph half of the
// measurement-artifact cache key, shared across every substrate form.
//
// The stream is buffered, so the cost is one sequential O(n+m) pass
// with no per-edge allocation.
func Fingerprint(v View) string {
	h := crc64.New(fingerprintTable)
	// Chunked writes keep crc64's slicing-by-8 fast path hot instead of
	// feeding it 8 bytes at a time.
	buf := make([]byte, 0, 1<<15)
	flush := func() {
		if len(buf) > 0 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	put := func(x uint64) {
		if len(buf)+8 > cap(buf) {
			flush()
		}
		buf = append(buf,
			byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
			byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
	}
	n := v.NumNodes()
	put(uint64(n))
	put(uint64(v.NumEdges()))
	var nbr []NodeID
	for u := 0; u < n; u++ {
		nbr = v.AppendNeighbors(NodeID(u), nbr[:0])
		put(uint64(len(nbr)))
		for _, w := range nbr {
			put(uint64(w))
		}
	}
	flush()
	return fmt.Sprintf("%016x", h.Sum64())
}
