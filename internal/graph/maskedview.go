package graph

import (
	"fmt"
	"sort"
	"sync"
)

// MaskedView is a zero-copy view of a substrate graph with some nodes down
// and some edges dropped — the shape a churn/fault schedule produces. Down
// nodes keep their IDs but become isolated (degree 0); dropped edges
// disappear from both endpoints. Degrees and the live-edge count are
// maintained incrementally by the mutators, so measurement never pays a
// rebuild: advancing a churn epoch is Reset + a fresh round of SetAlive /
// DropEdge calls, all O(deg) or cheaper per call.
//
// Mutation must not be concurrent with reads (including Materialize);
// between mutations the view is safe for any number of concurrent readers.
type MaskedView struct {
	g *Graph
	// alive is a node bitmap: bit v set means node v is up.
	alive []uint64
	// drop is an adjacency-slot bitmap over g's CSR adjacency array: bit i
	// set means the directed half-edge stored at adjacency[i] is dropped.
	// DropEdge sets both directions, so the view stays symmetric.
	drop []uint64
	// deg[v] is the live degree of v: neighbors that are alive and reached
	// through a non-dropped slot. Zero for down nodes.
	deg      []int32
	numAlive int
	numEdges int64

	// mu guards the cached materialization only; concurrent readers may
	// race on Materialize.
	mu  sync.Mutex
	mat *Graph
}

// NewMaskedView returns a view of g with every node alive and every edge
// present.
func NewMaskedView(g *Graph) *MaskedView {
	n := g.NumNodes()
	mv := &MaskedView{
		g:     g,
		alive: make([]uint64, (n+63)/64),
		drop:  make([]uint64, (len(g.adjacency)+63)/64),
		deg:   make([]int32, n),
	}
	mv.Reset()
	return mv
}

// Reset restores the all-alive, no-drops state in O(n + m/64).
func (mv *MaskedView) Reset() {
	n := mv.g.NumNodes()
	for i := range mv.alive {
		mv.alive[i] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 && len(mv.alive) > 0 {
		mv.alive[len(mv.alive)-1] = (uint64(1) << rem) - 1
	}
	for i := range mv.drop {
		mv.drop[i] = 0
	}
	for v := 0; v < n; v++ {
		mv.deg[v] = int32(mv.g.Degree(NodeID(v)))
	}
	mv.numAlive = n
	mv.numEdges = mv.g.NumEdges()
	mv.invalidate()
}

// Substrate returns the underlying graph the view masks.
func (mv *MaskedView) Substrate() *Graph { return mv.g }

// NumNodes implements View. Node IDs stay dense: down nodes still count,
// they are just isolated.
func (mv *MaskedView) NumNodes() int { return mv.g.NumNodes() }

// NumEdges implements View: the number of live edges (both endpoints alive,
// not dropped).
func (mv *MaskedView) NumEdges() int64 { return mv.numEdges }

// Valid implements View.
func (mv *MaskedView) Valid(v NodeID) bool { return mv.g.Valid(v) }

// Degree implements View: the live degree of v, 0 for down nodes.
func (mv *MaskedView) Degree(v NodeID) int { return int(mv.deg[v]) }

// Alive reports whether node v is up.
func (mv *MaskedView) Alive(v NodeID) bool {
	return mv.alive[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0
}

// NumAlive returns the number of up nodes.
func (mv *MaskedView) NumAlive() int { return mv.numAlive }

func (mv *MaskedView) dropped(slot int64) bool {
	return mv.drop[slot>>6]&(1<<(uint64(slot)&63)) != 0
}

// AppendNeighbors implements View.
func (mv *MaskedView) AppendNeighbors(v NodeID, buf []NodeID) []NodeID {
	if !mv.Alive(v) {
		return buf
	}
	lo, hi := mv.g.offsets[v], mv.g.offsets[v+1]
	for i := lo; i < hi; i++ {
		if w := mv.g.adjacency[i]; mv.Alive(w) && !mv.dropped(i) {
			buf = append(buf, w)
		}
	}
	return buf
}

// VisitEdges implements View, yielding live canonical edges ascending.
func (mv *MaskedView) VisitEdges(visit func(Edge) bool) {
	n := mv.g.NumNodes()
	for v := NodeID(0); int(v) < n; v++ {
		if !mv.Alive(v) || mv.deg[v] == 0 {
			continue
		}
		lo, hi := mv.g.offsets[v], mv.g.offsets[v+1]
		for i := lo; i < hi; i++ {
			w := mv.g.adjacency[i]
			if w <= v {
				continue
			}
			if mv.Alive(w) && !mv.dropped(i) && !visit(Edge{U: v, V: w}) {
				return
			}
		}
	}
}

// HasEdge reports whether the live edge (u, v) exists in the view.
func (mv *MaskedView) HasEdge(u, v NodeID) bool {
	if !mv.g.Valid(u) || !mv.g.Valid(v) || !mv.Alive(u) || !mv.Alive(v) {
		return false
	}
	slot, ok := mv.slotOf(u, v)
	return ok && !mv.dropped(slot)
}

// Dropped reports whether the substrate edge (u, v) exists and has been
// dropped by DropEdge — independent of endpoint liveness.
func (mv *MaskedView) Dropped(u, v NodeID) bool {
	if !mv.g.Valid(u) || !mv.g.Valid(v) {
		return false
	}
	slot, ok := mv.slotOf(u, v)
	return ok && mv.dropped(slot)
}

// slotOf binary-searches u's CSR segment for neighbor v.
func (mv *MaskedView) slotOf(u, v NodeID) (int64, bool) {
	lo, hi := mv.g.offsets[u], mv.g.offsets[u+1]
	ns := mv.g.adjacency[lo:hi]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i < len(ns) && ns[i] == v {
		return lo + int64(i), true
	}
	return 0, false
}

// SetAlive marks node v up or down, updating live degrees and the edge
// count incrementally in O(deg(v)). Reviving a node restores every
// non-dropped edge to its live neighbors.
func (mv *MaskedView) SetAlive(v NodeID, alive bool) {
	if mv.Alive(v) == alive {
		return
	}
	if alive {
		mv.alive[uint32(v)>>6] |= 1 << (uint32(v) & 63)
		mv.numAlive++
		lo, hi := mv.g.offsets[v], mv.g.offsets[v+1]
		live := int32(0)
		for i := lo; i < hi; i++ {
			if w := mv.g.adjacency[i]; mv.Alive(w) && w != v && !mv.dropped(i) {
				mv.deg[w]++
				live++
			}
		}
		mv.deg[v] = live
		mv.numEdges += int64(live)
	} else {
		mv.numEdges -= int64(mv.deg[v])
		lo, hi := mv.g.offsets[v], mv.g.offsets[v+1]
		for i := lo; i < hi; i++ {
			if w := mv.g.adjacency[i]; mv.Alive(w) && w != v && !mv.dropped(i) {
				mv.deg[w]--
			}
		}
		mv.deg[v] = 0
		mv.alive[uint32(v)>>6] &^= 1 << (uint32(v) & 63)
		mv.numAlive--
	}
	mv.invalidate()
}

// DropEdge removes the substrate edge (u, v) from the view in both
// directions, O(log deg) per endpoint. It reports whether the edge existed
// and was not already dropped; dropping a missing edge is a no-op.
func (mv *MaskedView) DropEdge(u, v NodeID) bool {
	if !mv.g.Valid(u) || !mv.g.Valid(v) || u == v {
		return false
	}
	su, ok := mv.slotOf(u, v)
	if !ok || mv.dropped(su) {
		return false
	}
	sv, ok := mv.slotOf(v, u)
	if !ok {
		// Unreachable on a well-formed symmetric CSR.
		panic(fmt.Sprintf("graph: asymmetric adjacency for edge (%d,%d)", u, v))
	}
	mv.drop[su>>6] |= 1 << (uint64(su) & 63)
	mv.drop[sv>>6] |= 1 << (uint64(sv) & 63)
	if mv.Alive(u) && mv.Alive(v) {
		mv.deg[u]--
		mv.deg[v]--
		mv.numEdges--
	}
	mv.invalidate()
	return true
}

// RestoreEdge undoes a DropEdge: the substrate edge (u, v) becomes
// present again in both directions, O(log deg) per endpoint. It reports
// whether the edge existed and was dropped; restoring a present or
// missing edge is a no-op. Degrees and the live-edge count update only
// when both endpoints are alive, mirroring DropEdge.
func (mv *MaskedView) RestoreEdge(u, v NodeID) bool {
	if !mv.g.Valid(u) || !mv.g.Valid(v) || u == v {
		return false
	}
	su, ok := mv.slotOf(u, v)
	if !ok || !mv.dropped(su) {
		return false
	}
	sv, ok := mv.slotOf(v, u)
	if !ok {
		// Unreachable on a well-formed symmetric CSR.
		panic(fmt.Sprintf("graph: asymmetric adjacency for edge (%d,%d)", u, v))
	}
	mv.drop[su>>6] &^= 1 << (uint64(su) & 63)
	mv.drop[sv>>6] &^= 1 << (uint64(sv) & 63)
	if mv.Alive(u) && mv.Alive(v) {
		mv.deg[u]++
		mv.deg[v]++
		mv.numEdges++
	}
	mv.invalidate()
	return true
}

func (mv *MaskedView) invalidate() {
	mv.mu.Lock()
	mv.mat = nil
	mv.mu.Unlock()
}

// Materialize implements Materializer: a cached linear CSR copy of the live
// topology, invalidated by any mutation. The result must not be modified.
func (mv *MaskedView) Materialize() *Graph {
	mv.mu.Lock()
	defer mv.mu.Unlock()
	if mv.mat == nil {
		mv.mat = materializeCSR(mv)
	}
	return mv.mat
}

var _ Materializer = (*MaskedView)(nil)
