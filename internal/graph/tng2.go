package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// TNG2 is the mmap-oriented on-disk CSR format: where TNG1 optimizes for
// size (delta-coded varints that must be decoded edge by edge), TNG2
// stores the raw CSR arrays so a reader can map the file and use the
// offset/neighbor sections in place — load time is O(1) plus the
// checksum pass, and the page cache shares one copy of a graph across
// every process measuring it.
//
// Layout (all integers little-endian):
//
//	 0   magic "TNG2"
//	 4   format version (u32) = 1
//	 8   n, node count (u64)
//	16   m, undirected edge count (u64); the arc count is 2m
//	24   offsets section start (u64) = 64
//	32   offsets section length in bytes (u64) = (n+1)·8
//	40   adjacency section start (u64) = 64 + (n+1)·8
//	48   adjacency section length in bytes (u64) = 2m·4
//	56   reserved (u64) = 0
//	64   offsets section: (n+1) × int64 — CSR row offsets into adjacency
//	 …   adjacency section: 2m × int32 — sorted neighbor lists
//	end-8  crc32 (IEEE, u32) over every preceding byte
//	end-4  trailer magic "2GNT"
//
// The header is 64 bytes so the offsets section is 8-aligned in the
// page-aligned mapping and the adjacency section (which starts a
// multiple of 8 later) is 4-aligned; both can therefore be aliased as
// []int64 / []NodeID without copying. Readers verify the checksum and
// the full CSR invariants (monotone offsets; sorted, in-range, loop-free
// neighbor lists) before handing out a graph, so a truncated or
// corrupted file is an ErrBadFormat, never a panic later.
const (
	tng2HeaderSize = 64
	tng2FooterSize = 8
	tng2Version    = 1
	tng2MinSize    = tng2HeaderSize + 8 + tng2FooterSize // empty graph: one offsets entry
)

var (
	tng2Magic   = [4]byte{'T', 'N', 'G', '2'}
	tng2Trailer = [4]byte{'2', 'G', 'N', 'T'}
)

// hostLittleEndian reports whether the CPU stores integers little-endian,
// in which case the TNG2 sections can be aliased in place; big-endian
// hosts fall back to an explicit decode-copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// tng2Header encodes the fixed-size header for a graph with n nodes and
// m undirected edges.
func tng2Header(n int, m int64) [tng2HeaderSize]byte {
	var h [tng2HeaderSize]byte
	le := binary.LittleEndian
	copy(h[0:4], tng2Magic[:])
	le.PutUint32(h[4:8], tng2Version)
	le.PutUint64(h[8:16], uint64(n))
	le.PutUint64(h[16:24], uint64(m))
	offLen := uint64(n+1) * 8
	le.PutUint64(h[24:32], tng2HeaderSize)
	le.PutUint64(h[32:40], offLen)
	le.PutUint64(h[40:48], tng2HeaderSize+offLen)
	le.PutUint64(h[48:56], uint64(2*m)*4)
	return h
}

// WriteCSR writes v in the TNG2 format, streaming: one O(n) degree pass
// sizes the header, then offsets and neighbor lists are emitted through
// a running CRC with O(1) extra memory — no edge sort, no dedup map, no
// materialized CSR copy. Combine with CSRWriter (which produces TNG2
// from an unsorted edge stream) for the bounded-memory generation path.
func WriteCSR(w io.Writer, v View) error {
	n := v.NumNodes()
	m := v.NumEdges()
	var arcs int64
	for u := 0; u < n; u++ {
		arcs += int64(v.Degree(NodeID(u)))
	}
	if arcs != 2*m {
		return fmt.Errorf("graph: degree sum %d disagrees with 2m=%d", arcs, 2*m)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw}
	h := tng2Header(n, m)
	if _, err := cw.Write(h[:]); err != nil {
		return fmt.Errorf("write csr header: %w", err)
	}
	var scratch [8]byte
	le := binary.LittleEndian
	off := int64(0)
	le.PutUint64(scratch[:], 0)
	if _, err := cw.Write(scratch[:]); err != nil {
		return fmt.Errorf("write csr offsets: %w", err)
	}
	for u := 0; u < n; u++ {
		off += int64(v.Degree(NodeID(u)))
		le.PutUint64(scratch[:], uint64(off))
		if _, err := cw.Write(scratch[:]); err != nil {
			return fmt.Errorf("write csr offsets: %w", err)
		}
	}
	var nbuf []NodeID
	for u := 0; u < n; u++ {
		nbuf = v.AppendNeighbors(NodeID(u), nbuf[:0])
		for _, x := range nbuf {
			le.PutUint32(scratch[:4], uint32(x))
			if _, err := cw.Write(scratch[:4]); err != nil {
				return fmt.Errorf("write csr adjacency: %w", err)
			}
		}
	}
	var footer [tng2FooterSize]byte
	le.PutUint32(footer[0:4], cw.sum)
	copy(footer[4:8], tng2Trailer[:])
	if _, err := bw.Write(footer[:]); err != nil {
		return fmt.Errorf("write csr footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush csr graph: %w", err)
	}
	return nil
}

// SaveCSR writes v to the named file in TNG2 format.
func SaveCSR(path string, v View) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save csr graph: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return WriteCSR(f, v)
}

// parseTNG2 validates the header, section geometry, checksum, and
// trailer of a complete TNG2 image and returns the node/edge counts and
// the raw section bytes. It does not validate the CSR invariants — the
// caller does that on the decoded (or aliased) arrays.
func parseTNG2(data []byte) (n int, m int64, offB, adjB []byte, err error) {
	le := binary.LittleEndian
	if len(data) < tng2MinSize {
		return 0, 0, nil, nil, fmt.Errorf("%w: %d bytes is shorter than the minimum TNG2 file", ErrBadFormat, len(data))
	}
	if [4]byte(data[0:4]) != tng2Magic {
		return 0, 0, nil, nil, fmt.Errorf("%w: magic %q", ErrBadFormat, data[0:4])
	}
	if v := le.Uint32(data[4:8]); v != tng2Version {
		return 0, 0, nil, nil, fmt.Errorf("%w: unsupported TNG2 version %d", ErrBadFormat, v)
	}
	n64 := le.Uint64(data[8:16])
	m64 := le.Uint64(data[16:24])
	const maxNodes = 1 << 31
	if n64 > maxNodes {
		return 0, 0, nil, nil, fmt.Errorf("%w: node count %d too large", ErrBadFormat, n64)
	}
	if m64 > math.MaxInt64/4 {
		return 0, 0, nil, nil, fmt.Errorf("%w: edge count %d too large", ErrBadFormat, m64)
	}
	n = int(n64)
	m = int64(m64)
	offLen := uint64(n+1) * 8
	adjLen := uint64(2*m) * 4
	if le.Uint64(data[24:32]) != tng2HeaderSize ||
		le.Uint64(data[32:40]) != offLen ||
		le.Uint64(data[40:48]) != tng2HeaderSize+offLen ||
		le.Uint64(data[48:56]) != adjLen {
		return 0, 0, nil, nil, fmt.Errorf("%w: section table disagrees with n=%d m=%d", ErrBadFormat, n, m)
	}
	want := uint64(tng2HeaderSize) + offLen + adjLen + tng2FooterSize
	if uint64(len(data)) != want {
		return 0, 0, nil, nil, fmt.Errorf("%w: %d bytes, want %d for n=%d m=%d", ErrBadFormat, len(data), want, n, m)
	}
	body := data[: len(data)-tng2FooterSize : len(data)-tng2FooterSize]
	if [4]byte(data[len(data)-4:]) != tng2Trailer {
		return 0, 0, nil, nil, fmt.Errorf("%w: bad trailer magic", ErrBadFormat)
	}
	sum := crc32.ChecksumIEEE(body)
	if got := le.Uint32(data[len(data)-8 : len(data)-4]); got != sum {
		return 0, 0, nil, nil, fmt.Errorf("%w: crc mismatch %08x != %08x", ErrBadFormat, got, sum)
	}
	offB = data[tng2HeaderSize : tng2HeaderSize+offLen]
	adjB = data[tng2HeaderSize+offLen : uint64(tng2HeaderSize)+offLen+adjLen]
	return n, m, offB, adjB, nil
}

// validateCSR checks the full CSR invariants of a decoded TNG2 image:
// monotone offsets starting at 0 and ending at 2m, and sorted, strictly
// ascending, in-range, loop-free neighbor lists. O(n+m); it is what lets
// every later consumer index the arrays without bounds anxiety.
func validateCSR(offsets []int64, adj []NodeID, n int, m int64) error {
	if offsets[0] != 0 {
		return fmt.Errorf("%w: offsets[0] = %d", ErrBadFormat, offsets[0])
	}
	if offsets[n] != int64(len(adj)) || offsets[n] != 2*m {
		return fmt.Errorf("%w: offsets end %d, want %d arcs", ErrBadFormat, offsets[n], 2*m)
	}
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		// hi is bounds-checked before slicing: monotonicity alone would
		// only catch an oversized intermediate offset after indexing past
		// the adjacency array. lo >= 0 follows inductively from
		// offsets[0] == 0 plus this per-row check.
		if hi < lo || hi > int64(len(adj)) {
			return fmt.Errorf("%w: offsets of node %d out of order or out of bounds", ErrBadFormat, u)
		}
		prev := NodeID(-1)
		for _, v := range adj[lo:hi] {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("%w: neighbor %d of node %d out of range", ErrBadFormat, v, u)
			}
			if int(v) == u {
				return fmt.Errorf("%w: self loop at node %d", ErrBadFormat, u)
			}
			if v <= prev {
				return fmt.Errorf("%w: neighbors of node %d not strictly ascending", ErrBadFormat, u)
			}
			prev = v
		}
	}
	return nil
}

// decodeTNG2 builds freshly allocated CSR arrays from the raw section
// bytes — the portable (any-endian) load path.
func decodeTNG2(n int, m int64, offB, adjB []byte) (*Graph, error) {
	le := binary.LittleEndian
	offsets := make([]int64, n+1)
	for i := range offsets {
		x := le.Uint64(offB[i*8:])
		if x > math.MaxInt64 {
			return nil, fmt.Errorf("%w: offset %d overflows", ErrBadFormat, x)
		}
		offsets[i] = int64(x)
	}
	adj := make([]NodeID, 2*m)
	for i := range adj {
		adj[i] = NodeID(int32(le.Uint32(adjB[i*4:])))
	}
	if err := validateCSR(offsets, adj, n, m); err != nil {
		return nil, err
	}
	return &Graph{offsets: offsets, adjacency: adj}, nil
}

// ReadTNG2 parses a TNG2 stream into an in-memory graph, verifying the
// checksum and the CSR invariants. It is the portable load path; use
// OpenMapped to alias the arrays straight out of the page cache instead.
func ReadTNG2(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("read csr graph: %w", err)
	}
	n, m, offB, adjB, err := parseTNG2(data)
	if err != nil {
		return nil, err
	}
	return decodeTNG2(n, m, offB, adjB)
}

// LoadCSR reads a graph from the named TNG2 file into memory.
func LoadCSR(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load csr graph: %w", err)
	}
	defer f.Close()
	g, err := ReadTNG2(f)
	if err != nil {
		return nil, fmt.Errorf("load csr graph %s: %w", path, err)
	}
	return g, nil
}

// Mapped is a read-only graph view backed by a memory-mapped TNG2 file:
// on little-endian unix hosts its CSR slices alias the mapping directly
// (zero-copy; the kernel pages neighbor lists in on demand and one page
// cache copy serves every process), elsewhere it degrades to a verified
// copy-load. It implements View, CSRSource and NeighborSlicer, so both
// the monolithic kernels and a ShardedGraph can sit on top of it without
// copying the arrays.
//
// Close unmaps the file; using the view (or any graph or shard derived
// from it) after Close panics. Mapped views are safe for concurrent
// readers, like every immutable graph.
type Mapped struct {
	g    *Graph
	data []byte // non-nil only while an actual mapping is live
	path string
}

// OpenMapped maps the named TNG2 file and returns the aliasing view.
// The checksum and full CSR invariants are verified before the view is
// returned, so a truncated or corrupt file fails here with ErrBadFormat.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open mapped graph: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("open mapped graph %s: %w", path, err)
	}
	if st.Size() < tng2MinSize || st.Size() > math.MaxInt-1 {
		return nil, fmt.Errorf("open mapped graph %s: %w: %d bytes", path, ErrBadFormat, st.Size())
	}
	data, err := mmapFile(f, int(st.Size()))
	if err != nil {
		// No mmap on this platform: verified copy-load.
		g, err := ReadTNG2(f)
		if err != nil {
			return nil, fmt.Errorf("open mapped graph %s: %w", path, err)
		}
		return &Mapped{g: g, path: path}, nil
	}
	n, m, offB, adjB, err := parseTNG2(data)
	if err != nil {
		_ = munmapFile(data)
		return nil, fmt.Errorf("open mapped graph %s: %w", path, err)
	}
	if !hostLittleEndian {
		g, err := decodeTNG2(n, m, offB, adjB)
		_ = munmapFile(data)
		if err != nil {
			return nil, fmt.Errorf("open mapped graph %s: %w", path, err)
		}
		return &Mapped{g: g, path: path}, nil
	}
	offsets := unsafe.Slice((*int64)(unsafe.Pointer(&offB[0])), n+1)
	var adj []NodeID
	if m > 0 {
		adj = unsafe.Slice((*NodeID)(unsafe.Pointer(&adjB[0])), 2*m)
	}
	if err := validateCSR(offsets, adj, n, m); err != nil {
		_ = munmapFile(data)
		return nil, fmt.Errorf("open mapped graph %s: %w", path, err)
	}
	return &Mapped{g: &Graph{offsets: offsets, adjacency: adj}, data: data, path: path}, nil
}

// Close releases the mapping. It is idempotent; any use of the view or
// of graphs derived from it after Close panics rather than reading
// unmapped memory.
func (mg *Mapped) Close() error {
	data := mg.data
	mg.data = nil
	mg.g = nil
	if data == nil {
		return nil
	}
	return munmapFile(data)
}

// Path returns the file the view was opened from — stable across the
// view's lifetime (unlike the graph data, it survives Close), so a
// registry holding mapped graphs can list and evict by it.
func (mg *Mapped) Path() string { return mg.path }

// CSR implements CSRSource: the backing graph aliases the mapping, so
// the batched kernels run directly over the file's pages.
func (mg *Mapped) CSR() *Graph { return mg.g }

// NumNodes implements View.
func (mg *Mapped) NumNodes() int { return mg.g.NumNodes() }

// NumEdges implements View.
func (mg *Mapped) NumEdges() int64 { return mg.g.NumEdges() }

// Valid implements View.
func (mg *Mapped) Valid(v NodeID) bool { return mg.g.Valid(v) }

// Degree implements View.
func (mg *Mapped) Degree(v NodeID) int { return mg.g.Degree(v) }

// Neighbors returns the sorted neighbor list of v, aliasing the mapping.
func (mg *Mapped) Neighbors(v NodeID) []NodeID { return mg.g.Neighbors(v) }

// AppendNeighbors implements View.
func (mg *Mapped) AppendNeighbors(v NodeID, buf []NodeID) []NodeID {
	return mg.g.AppendNeighbors(v, buf)
}

// VisitEdges implements View.
func (mg *Mapped) VisitEdges(visit func(Edge) bool) { mg.g.VisitEdges(visit) }

var (
	_ View      = (*Mapped)(nil)
	_ CSRSource = (*Mapped)(nil)
)
