package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
)

// CSRWriter builds a TNG2 file from an unordered edge stream in bounded
// memory — the generation path for graphs too large for Builder, whose
// sort+dedup needs the whole edge multiset in RAM at once. Each accepted
// edge becomes two directed arcs packed into uint64s (src in the high 32
// bits, so integer order is (src, dst) order); arcs accumulate in a
// fixed-size buffer that is sorted, deduplicated and spilled to a
// temporary run file when full. Finish k-way-merges the runs (twice: one
// pass counts degrees for the offsets section, one pass streams the
// adjacency section) and writes the TNG2 image through a running CRC, so
// peak memory is O(BufferArcs + n) regardless of the edge count.
//
// CSRWriters are not safe for concurrent use. Always Close a writer —
// also after a successful Finish — to remove its spill files.
type CSRWriter struct {
	n        int
	buf      []uint64
	cap      int
	runs     []*os.File
	dir      string // lazily created spill directory, removed by Close
	tempDir  string
	spilled  int64
	finished bool
}

// CSRWriterConfig tunes a CSRWriter.
type CSRWriterConfig struct {
	// TempDir is where spill runs go; empty means the system temp
	// directory. The bounded-memory generation paths pass "out" so spill
	// traffic stays inside the repository's scratch area.
	TempDir string
	// BufferArcs caps the in-memory arc buffer (8 bytes per arc). The
	// default 1<<21 (16 MiB) keeps a 10^7-node generation comfortably
	// under typical container limits; tests shrink it to force spills.
	BufferArcs int
}

// CSRStats summarizes a finished CSRWriter.
type CSRStats struct {
	// Nodes and Edges are the written graph's n and m.
	Nodes int
	Edges int64
	// Runs is the number of spill files merged (0 for an in-memory build).
	Runs int
	// SpilledBytes is the total run-file volume written to disk.
	SpilledBytes int64
}

// NewCSRWriter returns a writer for a graph over the node set {0..n-1}.
func NewCSRWriter(n int, cfg CSRWriterConfig) (*CSRWriter, error) {
	if n < 0 || n > 1<<31 {
		return nil, fmt.Errorf("graph: csr writer node count %d out of range", n)
	}
	bufArcs := cfg.BufferArcs
	if bufArcs == 0 {
		bufArcs = 1 << 21
	}
	if bufArcs < 2 {
		return nil, fmt.Errorf("graph: csr writer buffer of %d arcs cannot hold one edge", bufArcs)
	}
	return &CSRWriter{
		n:       n,
		buf:     make([]uint64, 0, bufArcs),
		cap:     bufArcs,
		tempDir: cfg.TempDir,
	}, nil
}

// AddEdge records the undirected edge (u, v). Self loops are silently
// dropped and duplicates are merged, matching Builder semantics;
// out-of-range endpoints are errors.
func (w *CSRWriter) AddEdge(u, v NodeID) error {
	if w.finished {
		return fmt.Errorf("graph: csr writer already finished")
	}
	if u < 0 || v < 0 || int(u) >= w.n || int(v) >= w.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeRange, u, v, w.n)
	}
	if u == v {
		return nil
	}
	if len(w.buf)+2 > w.cap {
		if err := w.spill(); err != nil {
			return err
		}
	}
	w.buf = append(w.buf, uint64(u)<<32|uint64(uint32(v)), uint64(v)<<32|uint64(uint32(u)))
	return nil
}

// spill sorts and dedups the buffer and appends it as a run file.
func (w *CSRWriter) spill() error {
	sortDedup(&w.buf)
	if len(w.buf) == 0 {
		return nil
	}
	if w.dir == "" {
		dir, err := os.MkdirTemp(w.tempDir, "trustnet-extsort-")
		if err != nil {
			return fmt.Errorf("graph: csr writer spill dir: %w", err)
		}
		w.dir = dir
	}
	f, err := os.CreateTemp(w.dir, "run-*.arcs")
	if err != nil {
		return fmt.Errorf("graph: csr writer spill: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var scratch [8]byte
	for _, a := range w.buf {
		binary.LittleEndian.PutUint64(scratch[:], a)
		if _, err := bw.Write(scratch[:]); err != nil {
			f.Close()
			return fmt.Errorf("graph: csr writer spill: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("graph: csr writer spill: %w", err)
	}
	w.spilled += int64(len(w.buf)) * 8
	w.runs = append(w.runs, f)
	w.buf = w.buf[:0]
	return nil
}

// sortDedup sorts arcs ascending and removes consecutive duplicates.
func sortDedup(buf *[]uint64) {
	b := *buf
	slices.Sort(b)
	*buf = slices.Compact(b)
}

// runReader streams one sorted spill run (or the in-memory buffer).
type runReader struct {
	br      *bufio.Reader
	mem     []uint64
	cur     uint64
	ok      bool
	scratch [8]byte
}

func (r *runReader) advance() error {
	if r.br == nil {
		if len(r.mem) == 0 {
			r.ok = false
			return nil
		}
		r.cur = r.mem[0]
		r.mem = r.mem[1:]
		r.ok = true
		return nil
	}
	if _, err := io.ReadFull(r.br, r.scratch[:]); err != nil {
		if err == io.EOF {
			r.ok = false
			return nil
		}
		return fmt.Errorf("graph: csr writer merge: %w", err)
	}
	r.cur = binary.LittleEndian.Uint64(r.scratch[:])
	r.ok = true
	return nil
}

// merge streams the union of all runs and the buffer in ascending arc
// order with global dedup, calling fn once per distinct arc. It can be
// run repeatedly; each pass re-reads the spill runs from the start.
func (w *CSRWriter) merge(fn func(arc uint64) error) error {
	readers := make([]*runReader, 0, len(w.runs)+1)
	for _, f := range w.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("graph: csr writer merge: %w", err)
		}
		readers = append(readers, &runReader{br: bufio.NewReaderSize(f, 1<<20)})
	}
	readers = append(readers, &runReader{mem: w.buf})
	// Binary min-heap of reader indices ordered by current arc.
	heap := make([]*runReader, 0, len(readers))
	less := func(a, b *runReader) bool { return a.cur < b.cur }
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(heap) && less(heap[l], heap[s]) {
				s = l
			}
			if r < len(heap) && less(heap[r], heap[s]) {
				s = r
			}
			if s == i {
				return
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
	}
	for _, r := range readers {
		if err := r.advance(); err != nil {
			return err
		}
		if r.ok {
			heap = append(heap, r)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i)
	}
	var last uint64
	first := true
	for len(heap) > 0 {
		r := heap[0]
		arc := r.cur
		if first || arc != last {
			if err := fn(arc); err != nil {
				return err
			}
			last = arc
			first = false
		}
		if err := r.advance(); err != nil {
			return err
		}
		if !r.ok {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return nil
}

// Finish sorts the residual buffer, merges every run, and writes the
// complete TNG2 image to out. The writer only accepts Close afterwards.
func (w *CSRWriter) Finish(out io.Writer) (CSRStats, error) {
	if w.finished {
		return CSRStats{}, fmt.Errorf("graph: csr writer already finished")
	}
	w.finished = true
	sortDedup(&w.buf)

	// Pass 1: degrees. offsets[src+1] counts arcs out of src, then the
	// prefix sum turns counts into CSR offsets.
	offsets := make([]int64, w.n+1)
	var arcs int64
	err := w.merge(func(a uint64) error {
		offsets[(a>>32)+1]++
		arcs++
		return nil
	})
	if err != nil {
		return CSRStats{}, err
	}
	for i := 0; i < w.n; i++ {
		offsets[i+1] += offsets[i]
	}
	m := arcs / 2

	bw := bufio.NewWriterSize(out, 1<<16)
	cw := &crcWriter{w: bw}
	h := tng2Header(w.n, m)
	if _, err := cw.Write(h[:]); err != nil {
		return CSRStats{}, fmt.Errorf("graph: csr writer header: %w", err)
	}
	var scratch [8]byte
	le := binary.LittleEndian
	for _, off := range offsets {
		le.PutUint64(scratch[:], uint64(off))
		if _, err := cw.Write(scratch[:]); err != nil {
			return CSRStats{}, fmt.Errorf("graph: csr writer offsets: %w", err)
		}
	}
	// Pass 2: the adjacency section is the dst halves of the merged arc
	// stream, which arrives already grouped by src and sorted by dst —
	// exactly CSR neighbor-list order.
	err = w.merge(func(a uint64) error {
		le.PutUint32(scratch[:4], uint32(a))
		_, werr := cw.Write(scratch[:4])
		return werr
	})
	if err != nil {
		return CSRStats{}, fmt.Errorf("graph: csr writer adjacency: %w", err)
	}
	var footer [tng2FooterSize]byte
	le.PutUint32(footer[0:4], cw.sum)
	copy(footer[4:8], tng2Trailer[:])
	if _, err := bw.Write(footer[:]); err != nil {
		return CSRStats{}, fmt.Errorf("graph: csr writer footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return CSRStats{}, fmt.Errorf("graph: csr writer flush: %w", err)
	}
	return CSRStats{Nodes: w.n, Edges: m, Runs: len(w.runs), SpilledBytes: w.spilled}, nil
}

// FinishFile is Finish writing to the named file.
func (w *CSRWriter) FinishFile(path string) (CSRStats, error) {
	f, err := os.Create(path)
	if err != nil {
		return CSRStats{}, fmt.Errorf("graph: csr writer: %w", err)
	}
	st, ferr := w.Finish(f)
	if cerr := f.Close(); ferr == nil && cerr != nil {
		ferr = fmt.Errorf("graph: csr writer close %s: %w", path, cerr)
	}
	return st, ferr
}

// Close removes the writer's spill files. It is idempotent and safe to
// defer immediately after NewCSRWriter.
func (w *CSRWriter) Close() error {
	for _, f := range w.runs {
		f.Close()
	}
	w.runs = nil
	w.buf = nil
	if w.dir != "" {
		dir := w.dir
		w.dir = ""
		return os.RemoveAll(dir)
	}
	return nil
}
