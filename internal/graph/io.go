package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The edge-list format is the same whitespace-separated "u v" per line
// format the SNAP datasets referenced in Table I of the paper ship in.
// Lines starting with '#' or '%' are comments. Node IDs must be
// non-negative integers; the node count is max(id)+1 unless a header
// comment of the form "# nodes: N" raises it.

// WriteEdgeList writes g in edge-list text format, one canonical edge per
// line, preceded by a size header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes: %d\n# edges: %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return fmt.Errorf("write edge list header: %w", err)
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				bw.WriteString(strconv.Itoa(int(v)))
				bw.WriteByte(' ')
				bw.WriteString(strconv.Itoa(int(u)))
				bw.WriteByte('\n')
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush edge list: %w", err)
	}
	return nil
}

// ReadEdgeList parses the edge-list text format. Self loops are dropped,
// duplicate edges merged.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var edges []Edge
	declaredNodes := -1
	maxID := NodeID(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' || line[0] == '%' {
			if n, ok := parseNodesHeader(line); ok {
				declaredNodes = n
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("edge list line %d: want 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: %w", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: %w", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("edge list line %d: negative node id", lineNo)
		}
		if u == v {
			continue // drop self loops, as the paper's simple-graph model requires
		}
		e := Edge{U: NodeID(u), V: NodeID(v)}.Canonical()
		if e.V > maxID {
			maxID = e.V
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan edge list: %w", err)
	}
	n := int(maxID) + 1
	if declaredNodes > n {
		n = declaredNodes
	}
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdgeSafe(e.U, e.V)
	}
	return b.Build(), nil
}

func parseNodesHeader(line string) (int, bool) {
	rest, ok := strings.CutPrefix(line, "# nodes:")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// SaveEdgeList writes g to the named file, creating or truncating it.
func SaveEdgeList(path string, g *Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save edge list: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return WriteEdgeList(f, g)
}

// LoadEdgeList reads a graph from the named edge-list file.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load edge list: %w", err)
	}
	defer f.Close()
	g, err := ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("load edge list %s: %w", path, err)
	}
	return g, nil
}
