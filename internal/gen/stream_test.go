package gen

import (
	"bytes"
	"testing"

	"github.com/trustnet/trustnet/internal/graph"
)

// sameTopology fails unless a and b have identical node sets and edge sets.
func sameTopology(t *testing.T, a, b *graph.Graph, label string) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: n/m mismatch: (%d,%d) vs (%d,%d)",
			label, a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s: edge %d differs: %v vs %v", label, i, ae[i], be[i])
		}
	}
}

func TestStreamBAMatchesEager(t *testing.T) {
	eager, err := BarabasiAlbert(500, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	es, err := StreamBA(500, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Build(es)
	if err != nil {
		t.Fatal(err)
	}
	sameTopology(t, eager, streamed, "ba")
	// Replays must be deterministic.
	again, err := Build(es)
	if err != nil {
		t.Fatal(err)
	}
	sameTopology(t, streamed, again, "ba replay")
}

func TestStreamRMATMatchesEager(t *testing.T) {
	cfg := RMATConfig{Scale: 9, Edges: 4000, A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: 7}
	eager, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	es, err := StreamRMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Build(es)
	if err != nil {
		t.Fatal(err)
	}
	sameTopology(t, eager, streamed, "rmat")
}

func TestStreamSBMMatchesEager(t *testing.T) {
	cfg := SBMConfig{BlockSizes: []int{120, 80, 200}, PIn: 0.08, POut: 0.004, Seed: 11}
	eager, _, err := SBM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	es, err := StreamSBM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Build(es)
	if err != nil {
		t.Fatal(err)
	}
	sameTopology(t, eager, streamed, "sbm")
}

func TestStreamSBMDensePIn(t *testing.T) {
	cfg := SBMConfig{BlockSizes: []int{30, 20}, PIn: 1, POut: 0.5, Seed: 3}
	eager, _, err := SBM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	es, err := StreamSBM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Build(es)
	if err != nil {
		t.Fatal(err)
	}
	sameTopology(t, eager, streamed, "sbm dense")
}

func TestStreamClusteredPAMatchesEager(t *testing.T) {
	cfg := ClusteredPAConfig{Communities: 4, CommunitySize: 120, Attach: 3, Bridges: 2, Seed: 21}
	eager, _, err := ClusteredPA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	es, err := StreamClusteredPA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Build(es)
	if err != nil {
		t.Fatal(err)
	}
	sameTopology(t, eager, streamed, "clustered-pa")
}

// TestStreamCSRRoundTrip drives the whole bounded-memory path: stream a
// generator through the external-sort writer with a tiny buffer (forcing
// spills), read the TNG2 image back, and compare against the eager build.
func TestStreamCSRRoundTrip(t *testing.T) {
	eager, err := BarabasiAlbert(300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	es, err := StreamBA(300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, err := StreamCSR(es, &buf, graph.CSRWriterConfig{TempDir: t.TempDir(), BufferArcs: 128})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs == 0 {
		t.Fatalf("expected spill runs with BufferArcs=128, got none")
	}
	got, err := graph.ReadTNG2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != eager.NumNodes() || st.Edges != eager.NumEdges() {
		t.Fatalf("stats (%d,%d) disagree with eager (%d,%d)",
			st.Nodes, st.Edges, eager.NumNodes(), eager.NumEdges())
	}
	sameTopology(t, eager, got, "stream-csr")
}

func TestStreamConstructorValidation(t *testing.T) {
	if _, err := StreamBA(3, 3, 1); err == nil {
		t.Error("StreamBA accepted n <= attach")
	}
	if _, err := StreamRMAT(RMATConfig{Scale: 0, Edges: 1}); err == nil {
		t.Error("StreamRMAT accepted scale 0")
	}
	if _, err := StreamSBM(SBMConfig{}); err == nil {
		t.Error("StreamSBM accepted empty blocks")
	}
	if _, err := StreamClusteredPA(ClusteredPAConfig{Communities: 1, Bridges: 1}); err == nil {
		t.Error("StreamClusteredPA accepted one community")
	}
}
