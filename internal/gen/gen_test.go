package gen

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/trustnet/trustnet/internal/graph"
)

func TestCycle(t *testing.T) {
	g, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Errorf("C5 = %v, want n=5 m=5", g)
	}
	for v := graph.NodeID(0); int(v) < 5; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("deg(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2): want error")
	}
}

func TestPath(t *testing.T) {
	g, err := Path(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Errorf("P4 edges = %d, want 3", g.NumEdges())
	}
	if _, err := Path(0); err == nil {
		t.Error("Path(0): want error")
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 15 {
		t.Errorf("K6 edges = %d, want 15", g.NumEdges())
	}
	if _, err := Complete(0); err == nil {
		t.Error("Complete(0): want error")
	}
}

func TestStar(t *testing.T) {
	g, err := Star(7)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 6 {
		t.Errorf("hub degree = %d, want 6", g.Degree(0))
	}
	if g.NumEdges() != 6 {
		t.Errorf("star edges = %d, want 6", g.NumEdges())
	}
	if _, err := Star(1); err == nil {
		t.Error("Star(1): want error")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Errorf("grid nodes = %d, want 12", g.NumNodes())
	}
	// Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Errorf("grid edges = %d, want 17", g.NumEdges())
	}
	if _, err := Grid(0, 3); err == nil {
		t.Error("Grid(0,3): want error")
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 {
		t.Errorf("Q4 nodes = %d, want 16", g.NumNodes())
	}
	if g.NumEdges() != 32 { // d * 2^(d-1)
		t.Errorf("Q4 edges = %d, want 32", g.NumEdges())
	}
	for v := graph.NodeID(0); int(v) < 16; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("deg(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0): want error")
	}
	if _, err := Hypercube(30); err == nil {
		t.Error("Hypercube(30): want error")
	}
}

func TestGNMExactEdgeCount(t *testing.T) {
	g, err := GNM(50, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 200 {
		t.Errorf("gnm edges = %d, want exactly 200", g.NumEdges())
	}
	if _, err := GNM(1, 0, 1); err == nil {
		t.Error("GNM(1,0): want error")
	}
	if _, err := GNM(10, 100, 1); err == nil {
		t.Error("GNM over max edges: want error")
	}
}

func TestGNMDeterministic(t *testing.T) {
	a, err := GNM(40, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GNM(40, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestGNPEdgeDensity(t *testing.T) {
	n, p := 500, 0.05
	g, err := GNP(n, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	expect := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if math.Abs(got-expect) > 4*math.Sqrt(expect) {
		t.Errorf("gnp edges = %v, want about %v", got, expect)
	}
}

func TestGNPDegenerateCases(t *testing.T) {
	g, err := GNP(10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("gnp p=0 has %d edges", g.NumEdges())
	}
	g, err = GNP(10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 45 {
		t.Errorf("gnp p=1 has %d edges, want 45", g.NumEdges())
	}
	if _, err := GNP(10, 1.5, 1); err == nil {
		t.Error("GNP(p=1.5): want error")
	}
	if _, err := GNP(0, 0.5, 1); err == nil {
		t.Error("GNP(n=0): want error")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	n, attach := 300, 3
	g, err := BarabasiAlbert(n, attach, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != n {
		t.Errorf("ba nodes = %d, want %d", g.NumNodes(), n)
	}
	// Every non-seed node contributes exactly `attach` edges (minus dedups,
	// which the target-set construction prevents).
	wantEdges := int64(attach*(attach+1)/2 + (n-attach-1)*attach)
	if g.NumEdges() != wantEdges {
		t.Errorf("ba edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if g.MinDegree() < attach {
		t.Errorf("ba min degree = %d, want >= %d", g.MinDegree(), attach)
	}
	if !graph.IsConnected(g) {
		t.Error("ba graph disconnected")
	}
	// Heavy tail: the max degree should dwarf the attach parameter.
	if g.MaxDegree() < 4*attach {
		t.Errorf("ba max degree = %d, suspiciously small", g.MaxDegree())
	}
	if _, err := BarabasiAlbert(3, 3, 1); err == nil {
		t.Error("BarabasiAlbert(n<=attach): want error")
	}
	if _, err := BarabasiAlbert(10, 0, 1); err == nil {
		t.Error("BarabasiAlbert(attach=0): want error")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz(200, 6, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Errorf("ws nodes = %d", g.NumNodes())
	}
	// n*k/2 edges before rewiring; rewiring can only merge duplicates.
	if g.NumEdges() > 600 || g.NumEdges() < 550 {
		t.Errorf("ws edges = %d, want close to 600", g.NumEdges())
	}
	// Low beta keeps strong clustering relative to a random graph.
	if cc := graph.AverageClustering(g); cc < 0.2 {
		t.Errorf("ws clustering = %v, want >= 0.2 at beta=0.1", cc)
	}
	for _, bad := range []struct {
		n, k int
		beta float64
	}{{10, 3, 0.1}, {10, 0, 0.1}, {4, 6, 0.1}, {10, 4, -0.5}, {10, 4, 1.5}} {
		if _, err := WattsStrogatz(bad.n, bad.k, bad.beta, 1); err == nil {
			t.Errorf("WattsStrogatz(%d,%d,%v): want error", bad.n, bad.k, bad.beta)
		}
	}
}

func TestPowerLawConfiguration(t *testing.T) {
	g, err := PowerLawConfiguration(1000, 2.5, 2, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1000 {
		t.Errorf("plc nodes = %d", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Fatal("plc produced no edges")
	}
	if g.MaxDegree() > 100 {
		t.Errorf("plc max degree = %d exceeds cap 100", g.MaxDegree())
	}
	for _, bad := range []struct {
		n              int
		gamma          float64
		minDeg, maxDeg int
	}{{1, 2.5, 2, 10}, {100, 0.5, 2, 10}, {100, 2.5, 0, 10}, {100, 2.5, 5, 4}, {100, 2.5, 2, 100}} {
		if _, err := PowerLawConfiguration(bad.n, bad.gamma, bad.minDeg, bad.maxDeg, 1); err == nil {
			t.Errorf("PowerLawConfiguration(%+v): want error", bad)
		}
	}
}

func TestSBM(t *testing.T) {
	cfg := SBMConfig{BlockSizes: []int{50, 50, 50}, PIn: 0.3, POut: 0.005, Seed: 2}
	g, labels, err := SBM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 150 || len(labels) != 150 {
		t.Fatalf("sbm size = %d/%d, want 150/150", g.NumNodes(), len(labels))
	}
	within, across := 0, 0
	for _, e := range g.Edges() {
		if labels[e.U] == labels[e.V] {
			within++
		} else {
			across++
		}
	}
	if within <= 10*across {
		t.Errorf("sbm within=%d across=%d, want strong community structure", within, across)
	}
	if _, _, err := SBM(SBMConfig{}); err == nil {
		t.Error("SBM(empty): want error")
	}
	if _, _, err := SBM(SBMConfig{BlockSizes: []int{0}}); err == nil {
		t.Error("SBM(zero block): want error")
	}
	if _, _, err := SBM(SBMConfig{BlockSizes: []int{5}, PIn: 2}); err == nil {
		t.Error("SBM(pin=2): want error")
	}
}

func TestSBMDensePIn(t *testing.T) {
	g, _, err := SBM(SBMConfig{BlockSizes: []int{10, 10}, PIn: 1, POut: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint K10s.
	if g.NumEdges() != 90 {
		t.Errorf("edges = %d, want 90", g.NumEdges())
	}
	if graph.NumComponents(g) != 2 {
		t.Errorf("components = %d, want 2", graph.NumComponents(g))
	}
}

func TestClusteredPA(t *testing.T) {
	cfg := ClusteredPAConfig{Communities: 4, CommunitySize: 100, Attach: 3, Bridges: 2, Seed: 13}
	g, labels, err := ClusteredPA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 400 {
		t.Errorf("cpa nodes = %d, want 400", g.NumNodes())
	}
	if !graph.IsConnected(g) {
		t.Error("cpa graph should be connected via ring bridges")
	}
	across := 0
	for _, e := range g.Edges() {
		if labels[e.U] != labels[e.V] {
			across++
		}
	}
	if across == 0 || across > 4*cfg.Bridges {
		t.Errorf("cpa cross edges = %d, want in (0, %d]", across, 4*cfg.Bridges)
	}
	for _, bad := range []ClusteredPAConfig{
		{Communities: 1, CommunitySize: 10, Attach: 2, Bridges: 1},
		{Communities: 3, CommunitySize: 2, Attach: 2, Bridges: 1},
		{Communities: 3, CommunitySize: 10, Attach: 2, Bridges: 0},
	} {
		if _, _, err := ClusteredPA(bad); err == nil {
			t.Errorf("ClusteredPA(%+v): want error", bad)
		}
	}
}

func TestPairFromIndex(t *testing.T) {
	n := 5
	idx := int64(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(idx, n)
			if gu != u || gv != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

// Property: all generators produce simple graphs (no self loops; symmetric;
// degree sum = 2m) — delegated to the Builder, but verify end to end for
// the seeded ones.
func TestGeneratorsSimpleQuick(t *testing.T) {
	f := func(seed int64) bool {
		gs := make([]*graph.Graph, 0, 4)
		if g, err := GNM(30, 60, seed); err == nil {
			gs = append(gs, g)
		}
		if g, err := GNP(30, 0.2, seed); err == nil {
			gs = append(gs, g)
		}
		if g, err := BarabasiAlbert(30, 2, seed); err == nil {
			gs = append(gs, g)
		}
		if g, err := WattsStrogatz(30, 4, 0.3, seed); err == nil {
			gs = append(gs, g)
		}
		for _, g := range gs {
			var degSum int64
			for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
				degSum += int64(g.Degree(v))
				for _, u := range g.Neighbors(v) {
					if u == v {
						return false
					}
				}
			}
			if degSum != 2*g.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRMAT(t *testing.T) {
	cfg := RMATConfig{Scale: 10, Edges: 8000, A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: 3}
	g, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1024 {
		t.Errorf("rmat nodes = %d, want 1024", g.NumNodes())
	}
	if g.NumEdges() < 4000 || g.NumEdges() > 8000 {
		t.Errorf("rmat edges = %d, want in (4000, 8000]", g.NumEdges())
	}
	// Skewed quadrants produce a heavy-tailed degree distribution: the
	// hub should dwarf the average degree.
	if float64(g.MaxDegree()) < 5*g.AverageDegree() {
		t.Errorf("rmat max degree %d vs avg %.1f: tail too light", g.MaxDegree(), g.AverageDegree())
	}
	for _, bad := range []RMATConfig{
		{Scale: 0, Edges: 10, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 30, Edges: 10, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 4, Edges: 0, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 4, Edges: 10, A: 0.6, B: 0.3, C: 0.3},
		{Scale: 4, Edges: 10, A: -0.1, B: 0.3, C: 0.3},
		{Scale: 4, Edges: 10, A: 0.25, B: 0.25, C: 0.25, Noise: 0.7},
	} {
		if _, err := RMAT(bad); err == nil {
			t.Errorf("RMAT(%+v): want error", bad)
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	cfg := RMATConfig{Scale: 8, Edges: 1000, A: 0.5, B: 0.2, C: 0.2, Seed: 9}
	a, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestRMATUniformQuadrantsIsGNPLike(t *testing.T) {
	// With A=B=C=D=0.25 and no noise, edges land uniformly: the degree
	// distribution is near-Poisson, with a light tail.
	g, err := RMAT(RMATConfig{Scale: 10, Edges: 8000, A: 0.25, B: 0.25, C: 0.25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if float64(g.MaxDegree()) > 4*g.AverageDegree() {
		t.Errorf("uniform rmat max degree %d vs avg %.1f: tail too heavy", g.MaxDegree(), g.AverageDegree())
	}
}
