package gen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"github.com/trustnet/trustnet/internal/graph"
)

// EdgeStream is a generator that emits its edge multiset through a
// callback instead of accumulating it in a Builder. Streams never yield
// self loops but may yield duplicate edges (the consumer deduplicates);
// every stream is deterministic: repeated Edges calls replay the
// identical sequence from a fresh seeded rng, and each streaming
// generator consumes its rng in exactly the same order as its eager
// counterpart, so stream and eager builds of the same configuration
// produce the same topology. Combined with graph.CSRWriter the peak
// memory of generate-to-TNG2 is O(sampler state + sort buffer) instead
// of the O(m) edge slice plus O(m log m) sort Builder pays.
type EdgeStream interface {
	// NumNodes returns the node-set size of the generated graph.
	NumNodes() int
	// Edges replays the edge sequence into yield; a yield error aborts
	// the stream and is returned verbatim.
	Edges(yield func(u, v graph.NodeID) error) error
}

// StreamCSR drains an edge stream through an external-sort CSRWriter and
// writes the finished TNG2 image to out — the bounded-memory generation
// path for 10^6+-node graphs.
func StreamCSR(es EdgeStream, out io.Writer, cfg graph.CSRWriterConfig) (graph.CSRStats, error) {
	w, err := graph.NewCSRWriter(es.NumNodes(), cfg)
	if err != nil {
		return graph.CSRStats{}, err
	}
	defer w.Close()
	if err := es.Edges(w.AddEdge); err != nil {
		return graph.CSRStats{}, fmt.Errorf("gen: stream edges: %w", err)
	}
	st, err := w.Finish(out)
	if err != nil {
		return graph.CSRStats{}, err
	}
	if cerr := w.Close(); cerr != nil {
		return st, fmt.Errorf("gen: stream cleanup: %w", cerr)
	}
	return st, nil
}

// Build materializes an edge stream through a Builder — the small-graph
// convenience used by tests and the non-streaming CLI paths.
func Build(es EdgeStream) (*graph.Graph, error) {
	b := graph.NewBuilder(es.NumNodes())
	err := es.Edges(func(u, v graph.NodeID) error {
		b.AddEdgeSafe(u, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// baStream replays the BarabasiAlbert construction.
type baStream struct {
	n, attach int
	seed      int64
}

// StreamBA returns the streaming Barabási–Albert generator. It emits
// exactly the edge sequence BarabasiAlbert(n, attach, seed) feeds its
// builder, so the resulting topology is identical; the degree-
// proportional endpoint array (2m entries) is the only O(m) state — no
// edge slice, no sort.
func StreamBA(n, attach int, seed int64) (EdgeStream, error) {
	if attach < 1 {
		return nil, fmt.Errorf("gen: barabasi-albert needs attach >= 1, got %d", attach)
	}
	if n <= attach {
		return nil, fmt.Errorf("gen: barabasi-albert needs n > attach, got n=%d attach=%d", n, attach)
	}
	return &baStream{n: n, attach: attach, seed: seed}, nil
}

func (s *baStream) NumNodes() int { return s.n }

func (s *baStream) Edges(yield func(u, v graph.NodeID) error) error {
	rng := rand.New(rand.NewSource(s.seed))
	repeated := make([]graph.NodeID, 0, 2*s.attach*s.n)
	seedSize := s.attach + 1
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			if err := yield(graph.NodeID(i), graph.NodeID(j)); err != nil {
				return err
			}
			repeated = append(repeated, graph.NodeID(i), graph.NodeID(j))
		}
	}
	targets := make(map[graph.NodeID]struct{}, s.attach)
	ordered := make([]graph.NodeID, 0, s.attach)
	for v := seedSize; v < s.n; v++ {
		clear(targets)
		for len(targets) < s.attach {
			targets[repeated[rng.Intn(len(repeated))]] = struct{}{}
		}
		// Sorted drain, exactly like the eager generator: the append
		// order feeds back into later degree-proportional draws.
		ordered = ordered[:0]
		for u := range targets {
			ordered = append(ordered, u)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
		for _, u := range ordered {
			if err := yield(graph.NodeID(v), u); err != nil {
				return err
			}
			repeated = append(repeated, graph.NodeID(v), u)
		}
	}
	return nil
}

// rmatStream replays the RMAT construction.
type rmatStream struct {
	cfg RMATConfig
}

// StreamRMAT returns the streaming R-MAT generator, emitting the same
// edge-drop sequence as RMAT(cfg) with O(1) generator state.
func StreamRMAT(cfg RMATConfig) (EdgeStream, error) {
	if cfg.Scale < 1 || cfg.Scale > 24 {
		return nil, fmt.Errorf("gen: rmat scale %d out of [1,24]", cfg.Scale)
	}
	if cfg.Edges < 1 {
		return nil, fmt.Errorf("gen: rmat needs >= 1 edge, got %d", cfg.Edges)
	}
	d := 1 - cfg.A - cfg.B - cfg.C
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || d < 0 {
		return nil, fmt.Errorf("gen: rmat probabilities (%v,%v,%v,%v) invalid", cfg.A, cfg.B, cfg.C, d)
	}
	if cfg.Noise < 0 || cfg.Noise >= 0.5 {
		return nil, fmt.Errorf("gen: rmat noise %v out of [0,0.5)", cfg.Noise)
	}
	return &rmatStream{cfg: cfg}, nil
}

func (s *rmatStream) NumNodes() int { return 1 << s.cfg.Scale }

func (s *rmatStream) Edges(yield func(u, v graph.NodeID) error) error {
	cfg := s.cfg
	d := 1 - cfg.A - cfg.B - cfg.C
	rng := rand.New(rand.NewSource(cfg.Seed))
	for e := int64(0); e < cfg.Edges; e++ {
		u, v := 0, 0
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			a1, b1, c1 := cfg.A, cfg.B, cfg.C
			if cfg.Noise > 0 {
				a1 *= 1 + cfg.Noise*(2*rng.Float64()-1)
				b1 *= 1 + cfg.Noise*(2*rng.Float64()-1)
				c1 *= 1 + cfg.Noise*(2*rng.Float64()-1)
				d1 := d * (1 + cfg.Noise*(2*rng.Float64()-1))
				total := a1 + b1 + c1 + d1
				a1, b1, c1 = a1/total, b1/total, c1/total
			}
			r := rng.Float64()
			switch {
			case r < a1:
			case r < a1+b1:
				v |= 1 << bit
			case r < a1+b1+c1:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue // AddEdgeSafe drops self loops; streams never yield them
		}
		if err := yield(graph.NodeID(u), graph.NodeID(v)); err != nil {
			return err
		}
	}
	return nil
}

// sbmStream replays the SBM construction.
type sbmStream struct {
	cfg    SBMConfig
	n      int
	starts []int
}

// StreamSBM returns the streaming stochastic-block-model generator,
// emitting the same geometric-skipping samples as SBM(cfg) with O(1)
// generator state per block pair.
func StreamSBM(cfg SBMConfig) (EdgeStream, error) {
	if len(cfg.BlockSizes) == 0 {
		return nil, fmt.Errorf("gen: sbm needs at least one block")
	}
	for i, s := range cfg.BlockSizes {
		if s < 1 {
			return nil, fmt.Errorf("gen: sbm block %d has size %d", i, s)
		}
	}
	if cfg.PIn < 0 || cfg.PIn > 1 || cfg.POut < 0 || cfg.POut > 1 {
		return nil, fmt.Errorf("gen: sbm probabilities out of [0,1]: pin=%v pout=%v", cfg.PIn, cfg.POut)
	}
	st := &sbmStream{cfg: cfg, starts: make([]int, len(cfg.BlockSizes)+1)}
	for i, s := range cfg.BlockSizes {
		st.starts[i+1] = st.starts[i] + s
	}
	st.n = st.starts[len(cfg.BlockSizes)]
	return st, nil
}

func (s *sbmStream) NumNodes() int { return s.n }

func (s *sbmStream) Edges(yield func(u, v graph.NodeID) error) error {
	cfg := s.cfg
	starts := s.starts
	rng := rand.New(rand.NewSource(cfg.Seed))
	var yerr error
	sampleBlockPair := func(rowStart, rowEnd, colStart, colEnd int, p float64, diag bool) {
		if yerr != nil || p <= 0 {
			return
		}
		logQ := math.Log(1 - p)
		if p >= 1 {
			for u := rowStart; u < rowEnd; u++ {
				cs := colStart
				if diag {
					cs = u + 1
				}
				for v := cs; v < colEnd; v++ {
					if yerr = yield(graph.NodeID(u), graph.NodeID(v)); yerr != nil {
						return
					}
				}
			}
			return
		}
		var total int64
		rows := int64(rowEnd - rowStart)
		cols := int64(colEnd - colStart)
		if diag {
			total = rows * (rows - 1) / 2
		} else {
			total = rows * cols
		}
		idx := int64(-1)
		for {
			skip := int64(math.Log(1-rng.Float64())/logQ) + 1
			idx += skip
			if idx >= total {
				return
			}
			var u, v int
			if diag {
				u, v = pairFromIndex(idx, rowEnd-rowStart)
				u += rowStart
				v += rowStart
			} else {
				u = rowStart + int(idx/cols)
				v = colStart + int(idx%cols)
			}
			if yerr = yield(graph.NodeID(u), graph.NodeID(v)); yerr != nil {
				return
			}
		}
	}
	for i := range cfg.BlockSizes {
		sampleBlockPair(starts[i], starts[i+1], starts[i], starts[i+1], cfg.PIn, true)
		for j := i + 1; j < len(cfg.BlockSizes); j++ {
			sampleBlockPair(starts[i], starts[i+1], starts[j], starts[j+1], cfg.POut, false)
		}
	}
	return yerr
}

// clusteredStream replays the ClusteredPA construction.
type clusteredStream struct {
	cfg       ClusteredPAConfig
	periphery int
	nucleus   int
	n         int
}

// StreamClusteredPA returns the streaming clustered preferential-
// attachment generator. Each community's nucleus is built eagerly (its
// size is one community, not the whole graph — this is the "O(shard)"
// working set) and drained in canonical order exactly as the eager
// generator does; peripheral attachments and ring bridges replay the
// same outer-rng draw sequence, so the topology matches ClusteredPA(cfg).
func StreamClusteredPA(cfg ClusteredPAConfig) (EdgeStream, error) {
	if cfg.Communities < 2 {
		return nil, fmt.Errorf("gen: clustered-pa needs >= 2 communities, got %d", cfg.Communities)
	}
	if cfg.Bridges < 1 {
		return nil, fmt.Errorf("gen: clustered-pa needs >= 1 bridge, got %d", cfg.Bridges)
	}
	if cfg.Periphery < 0 {
		return nil, fmt.Errorf("gen: clustered-pa periphery %d must be >= 0", cfg.Periphery)
	}
	periphery := cfg.Periphery
	if periphery == 0 {
		periphery = cfg.CommunitySize / 5
		if periphery < 2*cfg.Bridges {
			periphery = 2 * cfg.Bridges
		}
	}
	if periphery < 2*cfg.Bridges {
		return nil, fmt.Errorf("gen: clustered-pa periphery %d must be >= 2·bridges (%d) so no peripheral node carries two bridges",
			periphery, 2*cfg.Bridges)
	}
	nucleus := cfg.CommunitySize - periphery
	if nucleus <= cfg.Attach {
		return nil, fmt.Errorf("gen: clustered-pa nucleus size %d must exceed attach %d (community size %d, periphery %d)",
			nucleus, cfg.Attach, cfg.CommunitySize, periphery)
	}
	return &clusteredStream{
		cfg:       cfg,
		periphery: periphery,
		nucleus:   nucleus,
		n:         cfg.Communities * cfg.CommunitySize,
	}, nil
}

func (s *clusteredStream) NumNodes() int { return s.n }

func (s *clusteredStream) Edges(yield func(u, v graph.NodeID) error) error {
	cfg := s.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	for c := 0; c < cfg.Communities; c++ {
		base := c * cfg.CommunitySize
		sub, err := BarabasiAlbert(s.nucleus, cfg.Attach, cfg.Seed+int64(c)+1)
		if err != nil {
			return fmt.Errorf("clustered-pa community %d: %w", c, err)
		}
		for _, e := range sub.Edges() {
			if err := yield(e.U+graph.NodeID(base), e.V+graph.NodeID(base)); err != nil {
				return err
			}
		}
		for p := 0; p < s.periphery; p++ {
			pv := graph.NodeID(base + s.nucleus + p)
			if err := yield(pv, graph.NodeID(base+rng.Intn(s.nucleus))); err != nil {
				return err
			}
		}
	}
	for c := 0; c < cfg.Communities; c++ {
		next := (c + 1) % cfg.Communities
		for i := 0; i < cfg.Bridges; i++ {
			u := graph.NodeID(c*cfg.CommunitySize + s.nucleus + i)
			v := graph.NodeID(next*cfg.CommunitySize + s.nucleus + s.periphery - 1 - i)
			if err := yield(u, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// StreamTNG1 adapts a TNG1 binary edge file to an EdgeStream: a first
// full scan counts nodes and verifies the checksum (so a corrupt input
// fails before any output exists), and each Edges call replays the
// file's canonical edge sequence. Combined with StreamToFile this is
// the bounded-memory TNG1→TNG2 conversion path.
func StreamTNG1(path string) (EdgeStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	n, _, err := graph.ScanBinaryEdges(bufio.NewReaderSize(f, 1<<20),
		func(u, v graph.NodeID) error { return nil })
	f.Close()
	if err != nil {
		return nil, err
	}
	return &tng1Stream{path: path, n: n}, nil
}

// tng1Stream replays a (pre-verified) TNG1 file's edges.
type tng1Stream struct {
	path string
	n    int
}

// NumNodes implements EdgeStream.
func (s *tng1Stream) NumNodes() int { return s.n }

// Edges implements EdgeStream.
func (s *tng1Stream) Edges(yield func(u, v graph.NodeID) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, _, err = graph.ScanBinaryEdges(bufio.NewReaderSize(f, 1<<20), yield)
	return err
}

// StreamToFile drains es through the bounded-memory CSR writer into a
// TNG2 file at path, spilling sort runs next to the output and removing
// the partial file on any failure.
func StreamToFile(es EdgeStream, path string) (graph.CSRStats, error) {
	f, err := os.Create(path)
	if err != nil {
		return graph.CSRStats{}, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	st, err := StreamCSR(es, bw, graph.CSRWriterConfig{TempDir: filepath.Dir(path)})
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(path)
		return graph.CSRStats{}, err
	}
	return st, nil
}
