// Package gen provides seeded random and deterministic graph generators.
//
// The generators stand in for the real social graphs of Table I of the
// paper, which are not redistributable: each dataset in internal/datasets
// is produced by the generator whose social model matches the original
// (preferential attachment and dense-community models for the fast-mixing
// online social networks, community-structured models for the slow-mixing
// interaction and co-authorship graphs). All generators are deterministic
// given their seed and always return simple graphs.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/trustnet/trustnet/internal/graph"
)

// Cycle returns the cycle graph C_n (n >= 3).
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: cycle needs n >= 3, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdgeSafe(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build(), nil
}

// Path returns the path graph P_n (n >= 1).
func Path(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: path needs n >= 1, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdgeSafe(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build(), nil
}

// Complete returns the complete graph K_n (n >= 1).
func Complete(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: complete graph needs n >= 1, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdgeSafe(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return b.Build(), nil
}

// Star returns the star graph with one hub (node 0) and n-1 leaves.
func Star(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: star needs n >= 2, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdgeSafe(0, graph.NodeID(i))
	}
	return b.Build(), nil
}

// Grid returns the rows×cols 2-D lattice.
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdgeSafe(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdgeSafe(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build(), nil
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes, a
// canonical good expander used to sanity-check the expansion code.
func Hypercube(d int) (*graph.Graph, error) {
	if d < 1 || d > 24 {
		return nil, fmt.Errorf("gen: hypercube dimension must be in [1,24], got %d", d)
	}
	n := 1 << d
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				b.AddEdgeSafe(graph.NodeID(v), graph.NodeID(u))
			}
		}
	}
	return b.Build(), nil
}

// GNM returns a uniform random graph with exactly m distinct edges over n
// nodes (Erdős–Rényi G(n,m)).
func GNM(n int, m int64, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: gnm needs n >= 2, got %d", n)
	}
	maxM := int64(n) * int64(n-1) / 2
	if m < 0 || m > maxM {
		return nil, fmt.Errorf("gen: gnm m=%d out of range [0,%d]", m, maxM)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	seen := make(map[graph.Edge]struct{}, m)
	for int64(len(seen)) < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canonical()
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		b.AddEdgeSafe(e.U, e.V)
	}
	return b.Build(), nil
}

// GNP returns an Erdős–Rényi G(n,p) graph, sampling edges with the
// geometric skipping method so generation is O(n + m) rather than O(n²).
func GNP(n int, p float64, seed int64) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: gnp needs n >= 1, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: gnp p=%v out of [0,1]", p)
	}
	b := graph.NewBuilder(n)
	if p == 0 {
		return b.Build(), nil
	}
	rng := rand.New(rand.NewSource(seed))
	if p == 1 {
		return Complete(n)
	}
	logQ := math.Log(1 - p)
	// Enumerate pairs (v, w) with w < v in row-major order, skipping
	// geometrically many pairs between successive edges.
	v, w := 1, -1
	for v < n {
		skip := int(math.Log(1-rng.Float64())/logQ) + 1
		w += skip
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdgeSafe(graph.NodeID(v), graph.NodeID(w))
		}
	}
	return b.Build(), nil
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// small clique, each new node attaches to `attach` existing nodes chosen
// proportionally to degree. This is the stand-in model for the fast-mixing
// online social networks of Table I (Wiki-vote-, Epinion-, Slashdot-like):
// heavy-tailed degrees, a dense well-connected core, small diameter.
func BarabasiAlbert(n, attach int, seed int64) (*graph.Graph, error) {
	if attach < 1 {
		return nil, fmt.Errorf("gen: barabasi-albert needs attach >= 1, got %d", attach)
	}
	if n <= attach {
		return nil, fmt.Errorf("gen: barabasi-albert needs n > attach, got n=%d attach=%d", n, attach)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// repeated holds one entry per half-edge endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	repeated := make([]graph.NodeID, 0, 2*int(attach)*n)
	seedSize := attach + 1
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			b.AddEdgeSafe(graph.NodeID(i), graph.NodeID(j))
			repeated = append(repeated, graph.NodeID(i), graph.NodeID(j))
		}
	}
	targets := make(map[graph.NodeID]struct{}, attach)
	ordered := make([]graph.NodeID, 0, attach)
	for v := seedSize; v < n; v++ {
		clear(targets)
		for len(targets) < attach {
			targets[repeated[rng.Intn(len(repeated))]] = struct{}{}
		}
		// Drain the set in sorted order: map iteration order is random,
		// and the order of appends to `repeated` feeds back into later
		// degree-proportional draws, so it must be deterministic.
		ordered = ordered[:0]
		for u := range targets {
			ordered = append(ordered, u)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
		for _, u := range ordered {
			b.AddEdgeSafe(graph.NodeID(v), u)
			repeated = append(repeated, graph.NodeID(v), u)
		}
	}
	return b.Build(), nil
}

// WattsStrogatz builds a small-world ring lattice over n nodes where each
// node connects to its k nearest neighbors (k even), then rewires each
// edge's far endpoint with probability beta. Low beta yields slow-mixing,
// highly clustered graphs; high beta approaches a random graph.
func WattsStrogatz(n, k int, beta float64, seed int64) (*graph.Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("gen: watts-strogatz needs even k >= 2, got %d", k)
	}
	if n <= k {
		return nil, fmt.Errorf("gen: watts-strogatz needs n > k, got n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: watts-strogatz beta=%v out of [0,1]", beta)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for off := 1; off <= k/2; off++ {
			u := (v + off) % n
			if rng.Float64() < beta {
				// Rewire to a uniform random non-self target. Duplicates
				// are merged by the builder, slightly lowering the edge
				// count, exactly as in the standard WS construction.
				u = rng.Intn(n)
				for u == v {
					u = rng.Intn(n)
				}
			}
			b.AddEdgeSafe(graph.NodeID(v), graph.NodeID(u))
		}
	}
	return b.Build(), nil
}

// PowerLawConfiguration samples a degree sequence d_i ∝ i^(-1/(gamma-1))
// via the inverse-CDF transform truncated at maxDeg, then wires a simple
// graph with the erased configuration model (self loops and multi-edges
// dropped). Useful for matching a target degree exponent without the
// correlations preferential attachment introduces.
func PowerLawConfiguration(n int, gamma float64, minDeg, maxDeg int, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: configuration model needs n >= 2, got %d", n)
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("gen: power-law exponent must exceed 1, got %v", gamma)
	}
	if minDeg < 1 || maxDeg < minDeg || maxDeg >= n {
		return nil, fmt.Errorf("gen: degree bounds [%d,%d] invalid for n=%d", minDeg, maxDeg, n)
	}
	rng := rand.New(rand.NewSource(seed))
	degrees := make([]int, n)
	stubCount := 0
	for i := range degrees {
		// Inverse CDF of P(D >= d) ∝ d^{1-gamma} on [minDeg, maxDeg].
		u := rng.Float64()
		lo := math.Pow(float64(minDeg), 1-gamma)
		hi := math.Pow(float64(maxDeg), 1-gamma)
		d := int(math.Pow(lo+u*(hi-lo), 1/(1-gamma)))
		if d < minDeg {
			d = minDeg
		}
		if d > maxDeg {
			d = maxDeg
		}
		degrees[i] = d
		stubCount += d
	}
	if stubCount%2 == 1 {
		degrees[0]++
		stubCount++
	}
	stubs := make([]graph.NodeID, 0, stubCount)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.NodeID(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		b.AddEdgeSafe(stubs[i], stubs[i+1]) // erased model: loops dropped, dups merged
	}
	return b.Build(), nil
}

// RMATConfig parameterizes the recursive-matrix (R-MAT / stochastic
// Kronecker) generator of Chakrabarti et al., the model behind the
// "graphs over time" observations the paper cites ([8]): each edge drops
// into one of four adjacency-matrix quadrants with probabilities
// (A, B, C, D), recursively, producing skewed degrees and a hierarchical
// self-similar community structure.
type RMATConfig struct {
	// Scale is log2 of the node count (n = 2^Scale).
	Scale int
	// Edges is the number of edge-drop attempts (self loops and
	// duplicates merge, so the result has at most this many edges).
	Edges int64
	// A, B, C are the quadrant probabilities (D = 1-A-B-C). The classic
	// skewed setting is A=0.57, B=0.19, C=0.19.
	A, B, C float64
	// Noise perturbs the quadrant probabilities by ±Noise per level to
	// avoid lattice artifacts; 0.1 is typical.
	Noise float64
	// Seed makes generation deterministic.
	Seed int64
}

// RMAT samples a recursive-matrix graph.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if cfg.Scale < 1 || cfg.Scale > 24 {
		return nil, fmt.Errorf("gen: rmat scale %d out of [1,24]", cfg.Scale)
	}
	if cfg.Edges < 1 {
		return nil, fmt.Errorf("gen: rmat needs >= 1 edge, got %d", cfg.Edges)
	}
	d := 1 - cfg.A - cfg.B - cfg.C
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || d < 0 {
		return nil, fmt.Errorf("gen: rmat probabilities (%v,%v,%v,%v) invalid", cfg.A, cfg.B, cfg.C, d)
	}
	if cfg.Noise < 0 || cfg.Noise >= 0.5 {
		return nil, fmt.Errorf("gen: rmat noise %v out of [0,0.5)", cfg.Noise)
	}
	n := 1 << cfg.Scale
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(n)
	for e := int64(0); e < cfg.Edges; e++ {
		u, v := 0, 0
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			a1, b1, c1 := cfg.A, cfg.B, cfg.C
			if cfg.Noise > 0 {
				// Multiplicative noise, renormalized.
				a1 *= 1 + cfg.Noise*(2*rng.Float64()-1)
				b1 *= 1 + cfg.Noise*(2*rng.Float64()-1)
				c1 *= 1 + cfg.Noise*(2*rng.Float64()-1)
				d1 := d * (1 + cfg.Noise*(2*rng.Float64()-1))
				total := a1 + b1 + c1 + d1
				a1, b1, c1 = a1/total, b1/total, c1/total
			}
			r := rng.Float64()
			switch {
			case r < a1:
				// top-left: nothing to add
			case r < a1+b1:
				v |= 1 << bit
			case r < a1+b1+c1:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		b.AddEdgeSafe(graph.NodeID(u), graph.NodeID(v))
	}
	return b.Build(), nil
}

// SBMConfig parameterizes a stochastic block model.
type SBMConfig struct {
	// BlockSizes gives the number of nodes in each community.
	BlockSizes []int
	// PIn is the within-community edge probability.
	PIn float64
	// POut is the cross-community edge probability.
	POut float64
	// Seed makes generation deterministic.
	Seed int64
}

// SBM samples a stochastic block model. With PIn >> POut the result is a
// tight-knit multi-community graph — the slow-mixing regime the paper
// associates with strict-trust social networks (§II, discussion of [17]).
// The returned labels give each node's community.
func SBM(cfg SBMConfig) (*graph.Graph, []int, error) {
	if len(cfg.BlockSizes) == 0 {
		return nil, nil, fmt.Errorf("gen: sbm needs at least one block")
	}
	for i, s := range cfg.BlockSizes {
		if s < 1 {
			return nil, nil, fmt.Errorf("gen: sbm block %d has size %d", i, s)
		}
	}
	if cfg.PIn < 0 || cfg.PIn > 1 || cfg.POut < 0 || cfg.POut > 1 {
		return nil, nil, fmt.Errorf("gen: sbm probabilities out of [0,1]: pin=%v pout=%v", cfg.PIn, cfg.POut)
	}
	n := 0
	for _, s := range cfg.BlockSizes {
		n += s
	}
	labels := make([]int, n)
	starts := make([]int, len(cfg.BlockSizes)+1)
	for i, s := range cfg.BlockSizes {
		starts[i+1] = starts[i] + s
		for v := starts[i]; v < starts[i+1]; v++ {
			labels[v] = i
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(n)
	sampleBlockPair := func(rowStart, rowEnd, colStart, colEnd int, p float64, diag bool) {
		if p <= 0 {
			return
		}
		// Bernoulli sampling with geometric skipping over the (implicit)
		// pair enumeration, mirroring GNP.
		logQ := math.Log(1 - p)
		if p >= 1 {
			for u := rowStart; u < rowEnd; u++ {
				cs := colStart
				if diag {
					cs = u + 1
				}
				for v := cs; v < colEnd; v++ {
					b.AddEdgeSafe(graph.NodeID(u), graph.NodeID(v))
				}
			}
			return
		}
		var total int64
		rows := int64(rowEnd - rowStart)
		cols := int64(colEnd - colStart)
		if diag {
			total = rows * (rows - 1) / 2
		} else {
			total = rows * cols
		}
		idx := int64(-1)
		for {
			skip := int64(math.Log(1-rng.Float64())/logQ) + 1
			idx += skip
			if idx >= total {
				return
			}
			var u, v int
			if diag {
				u, v = pairFromIndex(idx, rowEnd-rowStart)
				u += rowStart
				v += rowStart
			} else {
				u = rowStart + int(idx/cols)
				v = colStart + int(idx%cols)
			}
			b.AddEdgeSafe(graph.NodeID(u), graph.NodeID(v))
		}
	}
	for i := range cfg.BlockSizes {
		sampleBlockPair(starts[i], starts[i+1], starts[i], starts[i+1], cfg.PIn, true)
		for j := i + 1; j < len(cfg.BlockSizes); j++ {
			sampleBlockPair(starts[i], starts[i+1], starts[j], starts[j+1], cfg.POut, false)
		}
	}
	return b.Build(), labels, nil
}

// pairFromIndex maps a linear index in [0, n(n-1)/2) to the idx-th pair
// (u, v) with u < v in lexicographic order over an n-node block.
func pairFromIndex(idx int64, n int) (int, int) {
	u := 0
	remaining := idx
	for {
		rowLen := int64(n - 1 - u)
		if remaining < rowLen {
			return u, u + 1 + int(remaining)
		}
		remaining -= rowLen
		u++
	}
}

// ClusteredPAConfig parameterizes ClusteredPA.
type ClusteredPAConfig struct {
	// Communities is the number of communities.
	Communities int
	// CommunitySize is the total number of nodes per community, including
	// its peripheral nodes.
	CommunitySize int
	// Attach is the preferential-attachment parameter inside a community.
	Attach int
	// Bridges is the number of inter-community edges added per adjacent
	// community pair on a ring of communities (pair (i, i+1 mod C)).
	Bridges int
	// Periphery is the number of low-degree peripheral nodes per
	// community. Each peripheral node attaches to exactly one random
	// nucleus member and carries at most one bridge edge, so its degree
	// never reaches the nucleus attach parameter — this is what makes the
	// high-k cores split per community, mirroring the weak-tie structure
	// of real co-authorship graphs. Must be at least 2·Bridges; defaults
	// to max(2·Bridges, CommunitySize/5) when 0.
	Periphery int
	// Seed makes generation deterministic.
	Seed int64
}

// ClusteredPA builds the slow-mixing co-authorship stand-in: each community
// is a Barabási–Albert nucleus (dense local core) ringed by low-degree
// peripheral nodes, and adjacent communities on a ring are joined by bridge
// edges between peripheral nodes. Mixing is bottlenecked by the bridges,
// reproducing the tight-knit community structure the paper observes in the
// Physics co-authorship graphs; because the bridges run through weak ties,
// the high-k cores split into one component per community, reproducing the
// multi-core structure of Figure 5 (f)–(j).
func ClusteredPA(cfg ClusteredPAConfig) (*graph.Graph, []int, error) {
	if cfg.Communities < 2 {
		return nil, nil, fmt.Errorf("gen: clustered-pa needs >= 2 communities, got %d", cfg.Communities)
	}
	if cfg.Bridges < 1 {
		return nil, nil, fmt.Errorf("gen: clustered-pa needs >= 1 bridge, got %d", cfg.Bridges)
	}
	if cfg.Periphery < 0 {
		return nil, nil, fmt.Errorf("gen: clustered-pa periphery %d must be >= 0", cfg.Periphery)
	}
	periphery := cfg.Periphery
	if periphery == 0 {
		periphery = cfg.CommunitySize / 5
		if periphery < 2*cfg.Bridges {
			periphery = 2 * cfg.Bridges
		}
	}
	if periphery < 2*cfg.Bridges {
		return nil, nil, fmt.Errorf("gen: clustered-pa periphery %d must be >= 2·bridges (%d) so no peripheral node carries two bridges",
			periphery, 2*cfg.Bridges)
	}
	nucleus := cfg.CommunitySize - periphery
	if nucleus <= cfg.Attach {
		return nil, nil, fmt.Errorf("gen: clustered-pa nucleus size %d must exceed attach %d (community size %d, periphery %d)",
			nucleus, cfg.Attach, cfg.CommunitySize, periphery)
	}
	n := cfg.Communities * cfg.CommunitySize
	labels := make([]int, n)
	b := graph.NewBuilder(n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for c := 0; c < cfg.Communities; c++ {
		base := c * cfg.CommunitySize
		sub, err := BarabasiAlbert(nucleus, cfg.Attach, cfg.Seed+int64(c)+1)
		if err != nil {
			return nil, nil, fmt.Errorf("clustered-pa community %d: %w", c, err)
		}
		for _, e := range sub.Edges() {
			b.AddEdgeSafe(e.U+graph.NodeID(base), e.V+graph.NodeID(base))
		}
		// Peripheral nodes occupy IDs [base+nucleus, base+CommunitySize);
		// each attaches to one random nucleus member (degree 1 before
		// bridges, at most 2 after, so coreness stays below Attach).
		for p := 0; p < periphery; p++ {
			pv := graph.NodeID(base + nucleus + p)
			b.AddEdgeSafe(pv, graph.NodeID(base+rng.Intn(nucleus)))
		}
		for v := 0; v < cfg.CommunitySize; v++ {
			labels[base+v] = c
		}
	}
	// Bridge i of community pair (c, c+1) leaves through peripheral slot
	// i and arrives at peripheral slot Periphery-1-i; with Periphery >=
	// 2·Bridges the outgoing and incoming slots never collide, so every
	// peripheral node carries at most one bridge.
	for c := 0; c < cfg.Communities; c++ {
		next := (c + 1) % cfg.Communities
		for i := 0; i < cfg.Bridges; i++ {
			u := graph.NodeID(c*cfg.CommunitySize + nucleus + i)
			v := graph.NodeID(next*cfg.CommunitySize + nucleus + periphery - 1 - i)
			b.AddEdgeSafe(u, v)
		}
	}
	return b.Build(), labels, nil
}
