package trustnetd

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/trustnet/trustnet/internal/jobs"
	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/resilience"
)

// Observability instruments for the job queue.
var (
	obsJobsEnqueued  = obs.Default().Counter("trustnetd.jobs.enqueued")
	obsJobsCompleted = obs.Default().Counter("trustnetd.jobs.completed")
	obsJobsFailed    = obs.Default().Counter("trustnetd.jobs.failed")
	obsJobsRejected  = obs.Default().Counter("trustnetd.jobs.rejected")
)

// Job states reported by the status endpoint.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// task is one queued measurement: the bound job, the pinned graph, and
// the mutable status the API reports. Status fields are guarded by the
// queue mutex.
type task struct {
	status JobStatus
	// seq is the task's position in the enqueue sequence; it seeds the
	// retry jitter so concurrent tasks back off on distinct schedules.
	seq     int
	job     jobs.Job
	release func() // unpins the graph; called exactly once, after the run
	done    chan struct{}
}

// queue is the daemon's async measurement executor: a bounded intake
// channel drained by a fixed worker pool. Each task runs through a
// jobs.Runner sharing the daemon's artifact store and single-flight
// group, under a resilience.Policy whose per-attempt deadline bounds
// every try. Drain closes the intake and waits for queued work to
// finish — in-flight measurements complete, they are never severed.
type queue struct {
	store  *jobs.Store
	flight *jobs.Flight
	outDir string
	policy resilience.Policy

	mu     sync.Mutex
	tasks  map[string]*task
	order  []string
	nextID int
	closed bool

	pending chan *task
	wg      sync.WaitGroup

	// runCtx cancels in-flight measurements when a drain deadline
	// expires; until then workers run under it unbounded.
	runCtx    context.Context
	cancelRun context.CancelFunc
}

// newQueue starts workers goroutines draining a depth-bounded intake.
func newQueue(store *jobs.Store, outDir string, workers, depth int, policy resilience.Policy) *queue {
	if workers < 1 {
		workers = 2
	}
	if depth < 1 {
		depth = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &queue{
		store:     store,
		flight:    &jobs.Flight{},
		outDir:    outDir,
		policy:    policy,
		tasks:     make(map[string]*task),
		pending:   make(chan *task, depth),
		runCtx:    ctx,
		cancelRun: cancel,
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// enqueue admits a bound job pinned to a graph, returning its status
// snapshot. The release callback is invoked after the run (or
// immediately on rejection), never before.
func (q *queue) enqueue(j jobs.Job, info GraphInfo, graphKey string, release func()) (JobStatus, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		release()
		obsJobsRejected.Inc()
		return JobStatus{}, fmt.Errorf("queue is draining")
	}
	q.nextID++
	id := fmt.Sprintf("j-%06d", q.nextID)
	t := &task{
		status: JobStatus{
			ID:                id,
			Job:               j.Name(),
			Graph:             graphKey,
			GraphFingerprint:  info.Fingerprint,
			ConfigFingerprint: j.Fingerprint(),
			State:             StateQueued,
		},
		seq:     q.nextID,
		job:     j,
		release: release,
		done:    make(chan struct{}),
	}
	select {
	case q.pending <- t:
	default:
		q.mu.Unlock()
		release()
		obsJobsRejected.Inc()
		return JobStatus{}, fmt.Errorf("queue is full (%d pending)", cap(q.pending))
	}
	q.tasks[id] = t
	q.order = append(q.order, id)
	st := t.status
	q.mu.Unlock()
	obsJobsEnqueued.Inc()
	return st, nil
}

// worker drains the intake until Drain closes it.
func (q *queue) worker() {
	defer q.wg.Done()
	for t := range q.pending {
		q.run(t)
	}
}

// run executes one task through the cache-and-dedup runner under the
// retry policy, recording the outcome on the task status.
func (q *queue) run(t *task) {
	q.mu.Lock()
	t.status.State = StateRunning
	q.mu.Unlock()

	runner := &jobs.Runner{
		Cache:  q.store,
		Flight: q.flight,
		Env:    jobs.Env{GraphFingerprint: t.status.GraphFingerprint},
		OutDir: filepath.Join(q.outDir, "jobs", t.status.ID),
		Stdout: io.Discard,
	}
	var cached bool
	start := time.Now()
	pol := q.policy
	pol.Seed = int64(t.seq) // per-task deterministic jitter seed
	outcome, err := pol.Run(q.runCtx, func(ctx context.Context, _ int) error {
		var runErr error
		cached, runErr = runner.Run(ctx, t.job)
		return runErr
	})
	t.release()

	q.mu.Lock()
	t.status.Cached = cached
	t.status.Attempts = outcome.Attempts
	t.status.WallSeconds = time.Since(start).Seconds()
	if err != nil {
		t.status.State = StateFailed
		t.status.Error = err.Error()
	} else {
		t.status.State = StateDone
	}
	q.mu.Unlock()
	close(t.done)
	if err != nil {
		obsJobsFailed.Inc()
	} else {
		obsJobsCompleted.Inc()
	}
}

// get returns a task's status snapshot.
func (q *queue) get(id string) (JobStatus, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tasks[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("job %q not found", id)
	}
	return t.status, nil
}

// wait blocks until the task finishes or ctx ends, returning the final
// status. It backs the poll endpoint's optional wait parameter.
func (q *queue) wait(ctx context.Context, id string) (JobStatus, error) {
	q.mu.Lock()
	t, ok := q.tasks[id]
	q.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("job %q not found", id)
	}
	select {
	case <-t.done:
	case <-ctx.Done():
	}
	return q.get(id)
}

// list returns every task's status in enqueue order.
func (q *queue) list() []JobStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobStatus, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.tasks[id].status)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// drain stops intake and waits up to timeout for queued and running
// tasks to finish. Tasks still running at the deadline are canceled
// through the run context (they fail with a context error rather than
// being abandoned mid-write). It reports whether the queue drained
// cleanly.
func (q *queue) drain(timeout time.Duration) bool {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.pending)
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		q.cancelRun()
		<-done
		return false
	}
}
