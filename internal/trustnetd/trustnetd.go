// Package trustnetd is the long-lived measurement service over the
// typed job layer: an HTTP daemon that turns the repo's one-shot
// measurement pipeline into an always-on API.
//
// The daemon exposes three surfaces. A graph registry accepts uploads
// (TNG2 directly, TNG1 through the streaming converter) and synthesis
// requests (the gen streaming generators through the external-sort CSR
// writer), keys every entry by the canonical graph.Fingerprint, and
// holds each graph as a zero-copy mmap view — a million-node graph
// serves measurements without ever loading into daemon RAM, and
// eviction is refcounted so a view is never unmapped under a running
// kernel. An async measurement queue resolves job names through a
// jobs.Registry, runs them through the jobs.Runner with single-flight
// dedup and the content-addressed artifact Store — identical requests
// are answered from cache byte-for-byte, concurrent identical requests
// execute once — under a resilience.Policy with fresh per-attempt
// deadlines. Typed routes describe themselves: an OpenAPI document is
// derived by reflection from the request/response structs, /metrics
// serves the internal/obs registry, and SIGTERM drains queued work and
// in-flight responses before exit.
package trustnetd

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/trustnet/trustnet/internal/jobs"
	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/resilience"
)

// Config sizes and wires a Server. The zero value of every field takes
// a sensible default from New.
type Config struct {
	// DataDir holds registered graph files (TNG2). Required.
	DataDir string
	// CacheDir holds the content-addressed artifact store. Required.
	CacheDir string
	// OutDir receives per-job output files. Required.
	OutDir string
	// CacheMaxBytes caps the artifact store; 0 leaves it unbounded.
	CacheMaxBytes int64
	// Workers is the measurement worker-pool size (default 2).
	Workers int
	// QueueDepth bounds queued-but-unstarted jobs (default 256).
	QueueDepth int
	// JobTimeout is the per-attempt measurement deadline (default 10m).
	JobTimeout time.Duration
	// MaxAttempts is the retry budget per job (default 2: one retry for
	// transient failures; deterministic failures are never retried).
	MaxAttempts int
	// DrainTimeout bounds shutdown: queued jobs get this long to finish
	// before in-flight measurements are canceled (default 30s).
	DrainTimeout time.Duration
}

// Server is the daemon: graph registry, measurement queue, artifact
// store, and the routed HTTP surface over them.
type Server struct {
	cfg     Config
	graphs  *graphRegistry
	queue   *queue
	store   *jobs.Store
	mux     *http.ServeMux
	openapi []byte
}

// New builds a Server from cfg, creating the data directory and
// starting the measurement worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" || cfg.CacheDir == "" || cfg.OutDir == "" {
		return nil, fmt.Errorf("trustnetd: DataDir, CacheDir, and OutDir are required")
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 2
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	graphs, err := newGraphRegistry(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	store := jobs.NewStore(cfg.CacheDir)
	if cfg.CacheMaxBytes > 0 {
		store.SetMaxBytes(cfg.CacheMaxBytes)
	}
	policy := resilience.Policy{
		MaxAttempts:    cfg.MaxAttempts,
		BaseDelay:      200 * time.Millisecond,
		MaxDelay:       5 * time.Second,
		Jitter:         0.2,
		AttemptTimeout: cfg.JobTimeout,
	}
	s := &Server{
		cfg:    cfg,
		graphs: graphs,
		queue:  newQueue(store, cfg.OutDir, cfg.Workers, cfg.QueueDepth, policy),
		store:  store,
	}
	routes := s.routes()
	s.mux = buildMux(routes)
	doc, err := openAPIDocument(routes)
	if err != nil {
		return nil, fmt.Errorf("trustnetd: openapi: %w", err)
	}
	s.openapi = doc
	return s, nil
}

// routes is the typed route table: every API operation with its method,
// Go 1.22 ServeMux pattern, and request/response struct types. The mux
// and the OpenAPI document are both derived from it, so the spec cannot
// drift from the code.
func (s *Server) routes() []route {
	return []route{
		{"GET", "/v1/graphs", "List registered graphs",
			nil, GraphList{}, s.handleListGraphs},
		{"GET", "/v1/graphs/{name}", "Get one graph by name or fingerprint",
			nil, GraphInfo{}, s.handleGetGraph},
		{"PUT", "/v1/graphs/{name}", "Upload a graph file (TNG2, or TNG1 with ?format=tng1)",
			nil, GraphInfo{}, s.handleUploadGraph},
		{"POST", "/v1/graphs/{name}/generate", "Synthesize a graph with a streaming generator",
			GenerateRequest{}, GraphInfo{}, s.handleGenerateGraph},
		{"DELETE", "/v1/graphs/{name}", "Evict a graph (deferred past running measurements)",
			nil, GraphInfo{}, s.handleEvictGraph},
		{"GET", "/v1/catalog", "List the measurement catalog",
			nil, Catalog{}, s.handleCatalog},
		{"POST", "/v1/jobs", "Enqueue a measurement against a registered graph",
			JobRequest{}, JobStatus{}, s.handleEnqueueJob},
		{"GET", "/v1/jobs", "List measurement jobs",
			nil, JobList{}, s.handleListJobs},
		{"GET", "/v1/jobs/{id}", "Poll one job (?wait=30s long-polls)",
			nil, JobStatus{}, s.handleGetJob},
		{"GET", "/v1/jobs/{id}/artifact", "Fetch the stored artifact envelope, byte-identical across cache replays",
			nil, nil, s.handleJobArtifact},
		{"GET", "/healthz", "Liveness probe",
			nil, nil, s.handleHealthz},
		{"GET", "/v1/openapi.json", "This document",
			nil, nil, s.handleOpenAPI},
	}
}

// buildMux mounts the route table plus /metrics on a Go 1.22 pattern
// mux (method-qualified patterns, {wildcard} path values).
func buildMux(routes []route) *http.ServeMux {
	mux := http.NewServeMux()
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" "+rt.pattern, rt.handler)
	}
	mux.Handle("GET /metrics", obs.Default().Handler())
	return mux
}

// Handler returns the daemon's routed HTTP surface, for embedding and
// httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve binds addr and serves until ctx is canceled, then drains: the
// measurement queue finishes (bounded by DrainTimeout), in-flight HTTP
// responses complete (obs.DrainServer — never severed by Close), and
// every idle graph view is unmapped. The bound address is reported
// through ready, so ":0" callers can discover the port.
func (s *Server) Serve(ctx context.Context, addr string, ready func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("trustnetd: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
	case err := <-errc:
		s.Close()
		return fmt.Errorf("trustnetd: serve: %w", err)
	}
	// Stop accepting and finish queued measurements first: their final
	// status must be observable through the still-serving API.
	s.queue.drain(s.cfg.DrainTimeout)
	err = obs.DrainServer(srv, 5*time.Second)
	s.graphs.closeAll()
	return err
}

// Close drains the queue and unmaps idle graphs without an HTTP server
// to tear down — the shutdown path for embedded (httptest) use.
func (s *Server) Close() {
	s.queue.drain(s.cfg.DrainTimeout)
	s.graphs.closeAll()
}
