package trustnetd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/jobs"
	"github.com/trustnet/trustnet/internal/obs"
)

// newTestServer builds a daemon over temp dirs and serves it through
// httptest.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	root := t.TempDir()
	s, err := New(Config{
		DataDir:      filepath.Join(root, "data"),
		CacheDir:     filepath.Join(root, "cache"),
		OutDir:       root,
		Workers:      2,
		JobTimeout:   time.Minute,
		DrainTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// doJSON issues a request with an optional JSON body and decodes the
// JSON response into out, returning the status code.
func doJSON(t *testing.T, method, url string, in, out any) int {
	t.Helper()
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// generateGraph registers a small deterministic BA graph under name.
func generateGraph(t *testing.T, ts *httptest.Server, name string) GraphInfo {
	t.Helper()
	var info GraphInfo
	code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+name+"/generate",
		GenerateRequest{Model: "ba", Nodes: 500, Attach: 4, Seed: 7}, &info)
	if code != http.StatusCreated {
		t.Fatalf("generate %s: status %d", name, code)
	}
	return info
}

// waitDone long-polls a job until it leaves the queue/running states.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"?wait=5s", nil, &st)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
	}
}

// fetchArtifact returns the raw artifact envelope bytes of a done job.
func fetchArtifact(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifact")
	if err != nil {
		t.Fatalf("artifact %s: %v", id, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("artifact %s: read: %v", id, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s: status %d: %s", id, resp.StatusCode, data)
	}
	return data
}

// TestUploadMatchesGeneratedFingerprint uploads the bytes of a locally
// generated TNG2 file and expects the canonical fingerprint to equal
// the daemon-generated copy of the same model/seed — same topology,
// same identity, regardless of how the graph arrived.
func TestUploadMatchesGeneratedFingerprint(t *testing.T) {
	_, ts := newTestServer(t)
	gen1 := generateGraph(t, ts, "generated")

	es, err := gen.StreamBA(500, 4, 7)
	if err != nil {
		t.Fatalf("StreamBA: %v", err)
	}
	local := filepath.Join(t.TempDir(), "local.tng2")
	if _, err := gen.StreamToFile(es, local); err != nil {
		t.Fatalf("StreamToFile: %v", err)
	}
	data, err := os.ReadFile(local)
	if err != nil {
		t.Fatalf("read local: %v", err)
	}
	req, err := http.NewRequest("PUT", ts.URL+"/v1/graphs/uploaded", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var up GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decode upload response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	if up.Fingerprint != gen1.Fingerprint {
		t.Fatalf("fingerprint mismatch: uploaded %s vs generated %s", up.Fingerprint, gen1.Fingerprint)
	}
	if up.Nodes != 500 || up.Edges == 0 {
		t.Fatalf("bad uploaded info: %+v", up)
	}

	var list GraphList
	doJSON(t, "GET", ts.URL+"/v1/graphs", nil, &list)
	if len(list.Graphs) != 2 {
		t.Fatalf("want 2 graphs, got %d", len(list.Graphs))
	}

	// Lookup by fingerprint resolves the same way as by name.
	var byFP GraphInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+gen1.Fingerprint, nil, &byFP); code != http.StatusOK {
		t.Fatalf("lookup by fingerprint: status %d", code)
	}
}

// TestJobMatchesDirectRunnerBytes runs mixing through the daemon and
// through a jobs.Runner directly, and expects the daemon's artifact
// endpoint to serve exactly the bytes the Store writes — the HTTP
// surface adds nothing and loses nothing.
func TestJobMatchesDirectRunnerBytes(t *testing.T) {
	s, ts := newTestServer(t)
	info := generateGraph(t, ts, "g")
	cfg := MeasureConfig{Seed: 3, Sources: 4, MaxSteps: 30}

	var st JobStatus
	code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{Graph: "g", Job: "mixing", Config: cfg}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("enqueue: status %d", code)
	}
	st = waitDone(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Cached {
		t.Fatalf("first run reported cached")
	}
	viaHTTP := fetchArtifact(t, ts, st.ID)

	// Direct run against the same graph file with an independent store.
	s.graphs.mu.Lock()
	graphPath := s.graphs.byName["g"].mapped.Path()
	s.graphs.mu.Unlock()
	mg, err := graph.OpenMapped(graphPath)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer mg.Close()
	reg, err := Jobs(mg, cfg)
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	j, err := reg.Lookup("mixing")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	store := jobs.NewStore(filepath.Join(t.TempDir(), "cache"))
	runner := &jobs.Runner{
		Cache:  store,
		Env:    jobs.Env{GraphFingerprint: info.Fingerprint},
		OutDir: t.TempDir(),
		Stdout: io.Discard,
	}
	if _, err := runner.Run(context.Background(), j); err != nil {
		t.Fatalf("direct run: %v", err)
	}
	direct, err := os.ReadFile(store.Path("mixing", jobs.Key("mixing", info.Fingerprint, j.Fingerprint())))
	if err != nil {
		t.Fatalf("read direct envelope: %v", err)
	}
	if !bytes.Equal(viaHTTP, direct) {
		t.Fatalf("daemon artifact differs from direct runner envelope (%d vs %d bytes)", len(viaHTTP), len(direct))
	}
}

// TestSecondIdenticalRequestServedFromCache asserts the daemonsmoke
// contract over httptest: an identical second request answers from the
// artifact cache — zero additional executions by the jobs.run.executed
// counter — with byte-identical artifact bytes.
func TestSecondIdenticalRequestServedFromCache(t *testing.T) {
	_, ts := newTestServer(t)
	generateGraph(t, ts, "g")
	cfg := MeasureConfig{Seed: 3, Sources: 4, MaxSteps: 30}
	executed := obs.Default().Counter("jobs.run.executed")

	run := func() (JobStatus, []byte) {
		var st JobStatus
		code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{Graph: "g", Job: "mixing", Config: cfg}, &st)
		if code != http.StatusAccepted {
			t.Fatalf("enqueue: status %d", code)
		}
		st = waitDone(t, ts, st.ID)
		if st.State != StateDone {
			t.Fatalf("job failed: %s", st.Error)
		}
		return st, fetchArtifact(t, ts, st.ID)
	}

	st1, body1 := run()
	before := executed.Value()
	st2, body2 := run()
	after := executed.Value()

	if st1.Cached {
		t.Fatalf("first run reported cached")
	}
	if !st2.Cached {
		t.Fatalf("second identical run not served from cache")
	}
	if after != before {
		t.Fatalf("second run executed a kernel: jobs.run.executed %d -> %d", before, after)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache replay not byte-identical (%d vs %d bytes)", len(body1), len(body2))
	}
	if st1.ID == st2.ID {
		t.Fatalf("distinct requests shared a job ID")
	}
}

// TestJobNameSuggestion expects a typo to be answered with the
// registry's nearest-name suggestion.
func TestJobNameSuggestion(t *testing.T) {
	_, ts := newTestServer(t)
	generateGraph(t, ts, "g")
	var errResp ErrorResponse
	code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{Graph: "g", Job: "mixng"}, &errResp)
	if code != http.StatusBadRequest {
		t.Fatalf("typo enqueue: status %d", code)
	}
	if !strings.Contains(errResp.Error, "mixing") {
		t.Fatalf("no suggestion in error: %q", errResp.Error)
	}
}

// TestEvictIsDeferredPastRunningJob evicts a graph while a measurement
// is queued against it: the name disappears immediately, new enqueues
// fail, but the running job still completes (the view stays mapped
// until its release).
func TestEvictIsDeferredPastRunningJob(t *testing.T) {
	_, ts := newTestServer(t)
	generateGraph(t, ts, "g")
	cfg := MeasureConfig{Seed: 9, Sources: 8, MaxSteps: 120}

	var st JobStatus
	code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{Graph: "g", Job: "mixing", Config: cfg}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("enqueue: status %d", code)
	}
	var evicted GraphInfo
	if code := doJSON(t, "DELETE", ts.URL+"/v1/graphs/g", nil, &evicted); code != http.StatusOK {
		t.Fatalf("evict: status %d", code)
	}
	var errResp ErrorResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/g", nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("get after evict: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{Graph: "g", Job: "mixing"}, &errResp); code != http.StatusNotFound {
		t.Fatalf("enqueue after evict: status %d", code)
	}
	st = waitDone(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("in-flight job should survive eviction, got %s: %s", st.State, st.Error)
	}
}

// TestCatalogAndOpenAPI sanity-checks the self-description surfaces:
// the catalog lists the full battery, and the OpenAPI document derived
// from the route table names the routes and typed schemas.
func TestCatalogAndOpenAPI(t *testing.T) {
	_, ts := newTestServer(t)

	var cat Catalog
	if code := doJSON(t, "GET", ts.URL+"/v1/catalog", nil, &cat); code != http.StatusOK {
		t.Fatalf("catalog: status %d", code)
	}
	if len(cat.Jobs) != len(measureSpecs) {
		t.Fatalf("catalog lists %d jobs, want %d", len(cat.Jobs), len(measureSpecs))
	}

	var doc struct {
		OpenAPI string                    `json:"openapi"`
		Paths   map[string]map[string]any `json:"paths"`
		Comp    struct {
			Schemas map[string]any `json:"schemas"`
		} `json:"components"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/openapi.json", nil, &doc); code != http.StatusOK {
		t.Fatalf("openapi: status %d", code)
	}
	if !strings.HasPrefix(doc.OpenAPI, "3.") {
		t.Fatalf("openapi version %q", doc.OpenAPI)
	}
	for _, p := range []string{"/v1/graphs", "/v1/graphs/{name}", "/v1/jobs", "/v1/jobs/{id}/artifact"} {
		if _, ok := doc.Paths[p]; !ok {
			t.Fatalf("openapi missing path %s", p)
		}
	}
	for _, schema := range []string{"GraphInfo", "JobStatus", "JobRequest", "GenerateRequest", "ErrorResponse"} {
		if _, ok := doc.Comp.Schemas[schema]; !ok {
			t.Fatalf("openapi missing schema %s", schema)
		}
	}
	if _, ok := doc.Paths["/v1/jobs"]["post"].(map[string]any); !ok {
		t.Fatalf("openapi missing POST /v1/jobs operation")
	}
}

// TestMetricsEndpoint expects /metrics to serve the obs snapshot.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if code := doJSON(t, "GET", ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.Counters == nil {
		t.Fatalf("metrics snapshot has no counters section")
	}
}

// TestQueueRejectsAfterDrain verifies that a drained daemon refuses new
// work instead of silently dropping it.
func TestQueueRejectsAfterDrain(t *testing.T) {
	s, ts := newTestServer(t)
	generateGraph(t, ts, "g")
	s.queue.drain(time.Second)
	var errResp ErrorResponse
	code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{Graph: "g", Job: "mixing"}, &errResp)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("enqueue after drain: status %d (%s)", code, errResp.Error)
	}
}

// TestInvalidGraphName rejects names that could escape the data dir.
func TestInvalidGraphName(t *testing.T) {
	_, ts := newTestServer(t)
	var errResp ErrorResponse
	code := doJSON(t, "POST", ts.URL+"/v1/graphs/..%2fescape/generate",
		GenerateRequest{Model: "ba", Nodes: 10}, &errResp)
	if code != http.StatusBadRequest && code != http.StatusNotFound {
		t.Fatalf("bad name accepted: status %d", code)
	}
}
