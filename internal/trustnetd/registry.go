package trustnetd

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/obs"
)

// Observability instruments for the graph registry.
var (
	obsGraphsRegistered = obs.Default().Counter("trustnetd.graphs.registered")
	obsGraphsEvicted    = obs.Default().Counter("trustnetd.graphs.evicted")
)

// graphName validates registry names: they become file names under the
// data directory and path segments in the API, so the alphabet is tight.
var graphName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// errGraphExists reports a name collision on registration.
var errGraphExists = fmt.Errorf("graph name already registered")

// errGraphNotFound reports a lookup miss.
var errGraphNotFound = fmt.Errorf("graph not found")

// graphEntry is one registered graph: the mmap-backed view, its
// canonical fingerprint, and the reference count that keeps eviction
// from unmapping pages a running measurement is still reading.
type graphEntry struct {
	info   GraphInfo
	mapped *graph.Mapped
	// refs counts measurements currently holding the view; dying marks
	// an evicted entry whose unmap is deferred to the last release.
	refs  int
	dying bool
}

// graphRegistry is the daemon's registered-graph table. Graphs live as
// TNG2 files under dir and are held as zero-copy graph.Mapped views, so
// a million-node graph serves measurements without loading into RAM.
// All lifecycle transitions (register, acquire, release, evict) are
// serialized by mu; eviction while a measurement holds the view is
// deferred until the last reference drops, never unmapping under a
// running kernel.
type graphRegistry struct {
	dir string
	mu  sync.Mutex
	// seq makes every registration's backing file unique: a name can be
	// evicted while pinned and immediately re-registered, and the new
	// build must never truncate the file the dying entry still has
	// mapped (nor may the dying entry's deferred close delete the new
	// entry's file).
	seq    uint64
	byName map[string]*graphEntry
}

// newGraphRegistry returns a registry rooted at dir, creating it.
func newGraphRegistry(dir string) (*graphRegistry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trustnetd: data dir: %w", err)
	}
	return &graphRegistry{dir: dir, byName: make(map[string]*graphEntry)}, nil
}

// list returns the registered graphs sorted by name.
func (r *graphRegistry) list() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.byName))
	for _, e := range r.byName {
		if e == nil {
			continue // registration in progress
		}
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// register builds, validates, fingerprints, and publishes a graph under
// name. build must write a complete TNG2 file at the path it receives;
// the registry then mmap-opens it (which verifies the checksum and CSR
// invariants) and computes the canonical graph.Fingerprint. The name is
// reserved for the duration of the build, so two concurrent uploads of
// one name cannot interleave; any failure releases the name and removes
// the partial file.
func (r *graphRegistry) register(name, source string, build func(path string) error) (GraphInfo, error) {
	if !graphName.MatchString(name) {
		return GraphInfo{}, fmt.Errorf("invalid graph name %q (want %s)", name, graphName)
	}
	r.mu.Lock()
	if _, dup := r.byName[name]; dup {
		r.mu.Unlock()
		return GraphInfo{}, fmt.Errorf("%w: %q", errGraphExists, name)
	}
	r.byName[name] = nil // reserve while building
	r.seq++
	// The sequence suffix keeps the path unique per registration, so a
	// re-registered name never reuses a file a dying (evicted-but-pinned)
	// predecessor still has mapped.
	path := filepath.Join(r.dir, fmt.Sprintf("%s.%d.tng2", name, r.seq))
	r.mu.Unlock()
	entry, err := buildEntry(name, source, path, build)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		delete(r.byName, name)
		os.Remove(path)
		return GraphInfo{}, err
	}
	r.byName[name] = entry
	obsGraphsRegistered.Inc()
	return entry.info, nil
}

// buildEntry runs the slow half of register outside the registry lock:
// the build itself, the verified mmap open, and the O(n+m) fingerprint.
func buildEntry(name, source, path string, build func(path string) error) (*graphEntry, error) {
	if err := build(path); err != nil {
		return nil, err
	}
	mg, err := graph.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		mg.Close()
		return nil, err
	}
	return &graphEntry{
		info: GraphInfo{
			Name:        name,
			Fingerprint: graph.Fingerprint(mg),
			Nodes:       mg.NumNodes(),
			Edges:       mg.NumEdges(),
			Bytes:       st.Size(),
			Source:      source,
		},
		mapped: mg,
	}, nil
}

// lookup resolves a graph by registry name or canonical fingerprint.
// Callers hold r.mu.
func (r *graphRegistry) lookupLocked(key string) (*graphEntry, error) {
	if e, ok := r.byName[key]; ok && e != nil {
		return e, nil
	}
	for _, e := range r.byName {
		if e != nil && e.info.Fingerprint == key {
			return e, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", errGraphNotFound, key)
}

// get returns a graph's info by name or fingerprint.
func (r *graphRegistry) get(key string) (GraphInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, err := r.lookupLocked(key)
	if err != nil {
		return GraphInfo{}, err
	}
	return e.info, nil
}

// acquire pins a graph for a measurement: the returned view stays
// mapped until the paired release is called, even across an eviction.
func (r *graphRegistry) acquire(key string) (GraphInfo, *graph.Mapped, func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, err := r.lookupLocked(key)
	if err != nil {
		return GraphInfo{}, nil, nil, err
	}
	e.refs++
	release := func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		e.refs--
		if e.refs == 0 && e.dying {
			r.closeLocked(e)
		}
	}
	return e.info, e.mapped, release, nil
}

// evict unregisters a graph by name or fingerprint. The entry leaves
// the table immediately (no new acquires resolve it); the unmap and
// file removal happen now when idle, or at the last release when a
// measurement still holds the view.
func (r *graphRegistry) evict(key string) (GraphInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, err := r.lookupLocked(key)
	if err != nil {
		return GraphInfo{}, err
	}
	delete(r.byName, e.info.Name)
	obsGraphsEvicted.Inc()
	if e.refs == 0 {
		r.closeLocked(e)
	} else {
		e.dying = true
	}
	return e.info, nil
}

// closeLocked unmaps and deletes an entry's backing file. Callers hold
// r.mu and have already removed the entry from the table.
func (r *graphRegistry) closeLocked(e *graphEntry) {
	path := e.mapped.Path()
	_ = e.mapped.Close()
	if path != "" {
		_ = os.Remove(path)
	}
}

// closeAll unmaps every idle entry at shutdown; busy entries are left
// to their releases (the queue drains before this runs, so in practice
// the table is idle).
func (r *graphRegistry) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, e := range r.byName {
		if e == nil || e.refs > 0 {
			continue
		}
		delete(r.byName, name)
		_ = e.mapped.Close()
	}
}
