package trustnetd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/jobs"
)

// GraphInfo describes one registered graph: the canonical topology
// fingerprint (the graph half of every artifact cache key), the size of
// the mmap-backed TNG2 file serving it, and how it arrived.
type GraphInfo struct {
	// Name is the registry name the graph was registered under.
	Name string `json:"name"`
	// Fingerprint is the canonical graph.Fingerprint of the topology —
	// identical for equal graphs regardless of source or substrate.
	Fingerprint string `json:"fingerprint"`
	// Nodes and Edges size the graph.
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
	// Bytes is the on-disk size of the backing TNG2 file.
	Bytes int64 `json:"bytes"`
	// Source records provenance: "upload:tng2", "upload:tng1", or
	// "generate:<model>".
	Source string `json:"source"`
}

// GraphList is the graph-listing response.
type GraphList struct {
	Graphs []GraphInfo `json:"graphs"`
}

// GenerateRequest asks the daemon to synthesize a graph with one of the
// streaming generators, writing it straight to a mmap-ready TNG2 file
// in bounded memory. Model selects the generator; the other fields are
// per-model knobs (unused ones are ignored).
type GenerateRequest struct {
	// Model is one of "ba", "rmat", "sbm", "clustered-pa".
	Model string `json:"model"`
	// Nodes and Attach parameterize "ba" (attach defaults to 8).
	Nodes  int `json:"nodes,omitempty"`
	Attach int `json:"attach,omitempty"`
	// Scale, Edges, A, B, C, Noise parameterize "rmat" (the quadrant
	// probabilities default to the classic 0.57/0.19/0.19 skew).
	Scale int     `json:"scale,omitempty"`
	Edges int64   `json:"edges,omitempty"`
	A     float64 `json:"a,omitempty"`
	B     float64 `json:"b,omitempty"`
	C     float64 `json:"c,omitempty"`
	Noise float64 `json:"noise,omitempty"`
	// BlockSizes, PIn, POut parameterize "sbm".
	BlockSizes []int   `json:"block_sizes,omitempty"`
	PIn        float64 `json:"p_in,omitempty"`
	POut       float64 `json:"p_out,omitempty"`
	// Communities, CommunitySize, Bridges, Periphery parameterize
	// "clustered-pa" (Attach is shared with "ba").
	Communities   int `json:"communities,omitempty"`
	CommunitySize int `json:"community_size,omitempty"`
	Bridges       int `json:"bridges,omitempty"`
	Periphery     int `json:"periphery,omitempty"`
	// Seed makes generation deterministic; 0 means 1.
	Seed int64 `json:"seed,omitempty"`
}

// JobRequest enqueues one measurement against a registered graph.
type JobRequest struct {
	// Graph names the target by registry name or canonical fingerprint.
	Graph string `json:"graph"`
	// Job is a measurement name from the catalog (mixing, expansion,
	// coreness, slem); near-misses are answered with a suggestion.
	Job string `json:"job"`
	// Config tunes the measurement; zero fields take daemon defaults.
	Config MeasureConfig `json:"config"`
}

// JobStatus is the lifecycle snapshot of one queued measurement. The
// two fingerprints plus the job name identify the artifact cache slot
// the result lives in, so equal requests are answerable from cache (or
// deduplicated in flight) without re-running any kernel.
type JobStatus struct {
	// ID is the daemon-assigned job identifier ("j-000001").
	ID string `json:"id"`
	// Job and Graph echo the request (Graph as the key the client used).
	Job   string `json:"job"`
	Graph string `json:"graph"`
	// GraphFingerprint and ConfigFingerprint are the artifact cache key
	// halves the run is addressed under.
	GraphFingerprint  string `json:"graph_fingerprint"`
	ConfigFingerprint string `json:"config_fingerprint"`
	// State is queued, running, done, or failed.
	State string `json:"state"`
	// Cached reports whether the result was replayed from the artifact
	// store (or a concurrent identical run) without executing.
	Cached bool `json:"cached"`
	// Attempts counts retry-policy attempts consumed (0 until the run
	// starts).
	Attempts int `json:"attempts,omitempty"`
	// WallSeconds is the wall-clock run time including retries.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Error carries the failure message when State is failed.
	Error string `json:"error,omitempty"`
}

// JobList is the job-listing response, in enqueue order.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// CatalogEntry describes one measurement the daemon can run.
type CatalogEntry struct {
	// Name is what JobRequest.Job must spell.
	Name string `json:"name"`
	// Summary states what the measurement computes, with the paper
	// section it reproduces.
	Summary string `json:"summary"`
	// DefaultFingerprint is the config fingerprint of the default
	// MeasureConfig — what an empty request config resolves to.
	DefaultFingerprint string `json:"default_fingerprint"`
}

// Catalog is the measurement-catalog response.
type Catalog struct {
	Jobs []CatalogEntry `json:"jobs"`
}

// ErrorResponse is the uniform error body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// maxUploadBytes caps graph-upload request bodies (1 GiB — enough for a
// hundred-million-edge TNG2 file, small enough to bound a hostile body).
const maxUploadBytes = 1 << 30

// writeJSON answers with an indented JSON body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps registry sentinels onto HTTP statuses and answers
// with the uniform error envelope.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, errGraphNotFound):
		status = http.StatusNotFound
	case errors.Is(err, errGraphExists):
		status = http.StatusConflict
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

// handleListGraphs answers GET /v1/graphs.
func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, GraphList{Graphs: s.graphs.list()})
}

// handleGetGraph answers GET /v1/graphs/{name} (name or fingerprint).
func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	info, err := s.graphs.get(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleUploadGraph answers PUT /v1/graphs/{name}: the body is a graph
// file, TNG2 by default or TNG1 with ?format=tng1 (converted through
// the streaming pipeline in bounded memory). The file is checksum- and
// invariant-verified by the mmap open before the name becomes visible.
func (s *Server) handleUploadGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "tng2"
	}
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	var build func(path string) error
	switch format {
	case "tng2":
		build = func(path string) error { return copyToFile(body, path) }
	case "tng1":
		build = func(path string) error {
			tmp := path + ".upload.tng"
			if err := copyToFile(body, tmp); err != nil {
				return err
			}
			defer os.Remove(tmp)
			es, err := gen.StreamTNG1(tmp)
			if err != nil {
				return err
			}
			_, err = gen.StreamToFile(es, path)
			return err
		}
	default:
		writeError(w, fmt.Errorf("unknown format %q (want tng2 or tng1)", format))
		return
	}
	info, err := s.graphs.register(name, "upload:"+format, build)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// copyToFile streams r to a new file at path.
func copyToFile(r io.Reader, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		return fmt.Errorf("upload: %w", err)
	}
	return f.Close()
}

// handleGenerateGraph answers POST /v1/graphs/{name}/generate: it runs
// the requested streaming generator through the external-sort CSR
// writer, so even million-node graphs are synthesized directly to their
// mmap-ready file without materializing in RAM.
func (s *Server) handleGenerateGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req GenerateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	es, err := streamFor(req)
	if err != nil {
		writeError(w, err)
		return
	}
	info, err := s.graphs.register(name, "generate:"+req.Model, func(path string) error {
		_, err := gen.StreamToFile(es, path)
		return err
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// streamFor resolves a GenerateRequest to its streaming generator,
// applying the daemon defaults for omitted knobs.
func streamFor(req GenerateRequest) (gen.EdgeStream, error) {
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	switch req.Model {
	case "ba":
		attach := req.Attach
		if attach == 0 {
			attach = 8
		}
		return gen.StreamBA(req.Nodes, attach, seed)
	case "rmat":
		a, b, c := req.A, req.B, req.C
		if a == 0 && b == 0 && c == 0 {
			a, b, c = 0.57, 0.19, 0.19
		}
		return gen.StreamRMAT(gen.RMATConfig{
			Scale: req.Scale, Edges: req.Edges,
			A: a, B: b, C: c, Noise: req.Noise, Seed: seed,
		})
	case "sbm":
		return gen.StreamSBM(gen.SBMConfig{
			BlockSizes: req.BlockSizes, PIn: req.PIn, POut: req.POut, Seed: seed,
		})
	case "clustered-pa":
		return gen.StreamClusteredPA(gen.ClusteredPAConfig{
			Communities: req.Communities, CommunitySize: req.CommunitySize,
			Attach: req.Attach, Bridges: req.Bridges, Periphery: req.Periphery,
			Seed: seed,
		})
	default:
		return nil, fmt.Errorf("unknown model %q (want ba, rmat, sbm, or clustered-pa)", req.Model)
	}
}

// handleEvictGraph answers DELETE /v1/graphs/{name}. The name leaves
// the registry immediately; the unmap and file removal are deferred
// past any measurement still holding the view.
func (s *Server) handleEvictGraph(w http.ResponseWriter, r *http.Request) {
	info, err := s.graphs.evict(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleCatalog answers GET /v1/catalog with the measurement battery.
func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	reg, err := Jobs(nil, MeasureConfig{})
	if err != nil {
		writeError(w, err)
		return
	}
	cat := Catalog{}
	for _, spec := range measureSpecs {
		j, err := reg.Lookup(spec.name)
		if err != nil {
			writeError(w, err)
			return
		}
		cat.Jobs = append(cat.Jobs, CatalogEntry{
			Name:               spec.name,
			Summary:            spec.summary,
			DefaultFingerprint: j.Fingerprint(),
		})
	}
	writeJSON(w, http.StatusOK, cat)
}

// handleEnqueueJob answers POST /v1/jobs: it pins the target graph,
// resolves the job name through the per-graph jobs.Registry (so typos
// get nearest-name suggestions), and admits the bound job to the queue.
// The graph stays pinned — safe from eviction-unmap — until the run
// finishes.
func (s *Server) handleEnqueueJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	info, mapped, release, err := s.graphs.acquire(req.Graph)
	if err != nil {
		writeError(w, err)
		return
	}
	reg, err := Jobs(mapped, req.Config)
	if err != nil {
		release()
		writeError(w, err)
		return
	}
	j, err := reg.Lookup(req.Job)
	if err != nil {
		release()
		writeError(w, err)
		return
	}
	st, err := s.queue.enqueue(j, info, req.Graph, release)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleListJobs answers GET /v1/jobs.
func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, JobList{Jobs: s.queue.list()})
}

// handleGetJob answers GET /v1/jobs/{id}. An optional ?wait=<duration>
// blocks up to that long for the job to finish, turning the poll loop
// into a single long poll.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		st  JobStatus
		err error
	)
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, perr := time.ParseDuration(waitStr)
		if perr != nil || d < 0 {
			writeError(w, fmt.Errorf("invalid wait %q", waitStr))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		st, err = s.queue.wait(ctx, id)
	} else {
		st, err = s.queue.get(id)
	}
	if err != nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobArtifact answers GET /v1/jobs/{id}/artifact with the stored
// artifact envelope, byte-for-byte as the Store wrote it. Because the
// envelope is content-addressed by (job, graph, config), two identical
// requests — one computed, one replayed from cache — serve identical
// bytes, which is exactly what the daemon smoke test asserts.
func (s *Server) handleJobArtifact(w http.ResponseWriter, r *http.Request) {
	st, err := s.queue.get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: err.Error()})
		return
	}
	if st.State != StateDone {
		writeJSON(w, http.StatusConflict,
			ErrorResponse{Error: fmt.Sprintf("job %s is %s, artifact available when done", st.ID, st.State)})
		return
	}
	key := jobs.Key(st.Job, st.GraphFingerprint, st.ConfigFingerprint)
	f, err := os.Open(s.store.Path(st.Job, key))
	if err != nil {
		writeJSON(w, http.StatusNotFound,
			ErrorResponse{Error: fmt.Sprintf("artifact for job %s not in store", st.ID)})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = io.Copy(w, f)
}

// handleHealthz answers GET /healthz for liveness probes.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleOpenAPI answers GET /v1/openapi.json with the API document
// derived from the route table's typed request/response structs.
func (s *Server) handleOpenAPI(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(s.openapi)
}
