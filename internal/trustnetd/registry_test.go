package trustnetd

import (
	"os"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
)

// registerBA registers a small deterministic BA graph under name,
// writing through the streaming generator like the generate handler.
func registerBA(t *testing.T, r *graphRegistry, name string, seed int64) GraphInfo {
	t.Helper()
	info, err := r.register(name, "test", func(path string) error {
		es, err := gen.StreamBA(200, 3, seed)
		if err != nil {
			return err
		}
		_, err = gen.StreamToFile(es, path)
		return err
	})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return info
}

// TestReregisterWhilePinnedKeepsBothFiles is the regression test for
// the eviction/re-registration lifecycle: evicting a pinned graph and
// immediately re-registering the same name must not let the new build
// truncate the file the dying entry still has mapped, and the dying
// entry's deferred close must remove only its own backing file, never
// the new entry's.
func TestReregisterWhilePinnedKeepsBothFiles(t *testing.T) {
	r, err := newGraphRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("newGraphRegistry: %v", err)
	}
	registerBA(t, r, "g", 1)

	// Pin the first registration (a running measurement), then evict it.
	_, oldView, release, err := r.acquire("g")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	oldPath := oldView.Path()
	if _, err := r.evict("g"); err != nil {
		t.Fatalf("evict: %v", err)
	}

	// Re-register the same name while the old entry is dying. A second
	// seed gives the new file different bytes, so corruption of the old
	// mapping would be observable.
	registerBA(t, r, "g", 2)
	r.mu.Lock()
	newPath := r.byName["g"].mapped.Path()
	r.mu.Unlock()
	if newPath == oldPath {
		t.Fatalf("re-registration reused the dying entry's backing file %s", oldPath)
	}
	if _, err := os.Stat(oldPath); err != nil {
		t.Fatalf("dying entry's file removed before its last release: %v", err)
	}

	// The pinned view must still be readable after the re-registration.
	if oldView.NumNodes() != 200 {
		t.Fatalf("pinned view corrupted: %d nodes", oldView.NumNodes())
	}

	// The last release unmaps and deletes the old file — and only it.
	release()
	if _, err := os.Stat(oldPath); !os.IsNotExist(err) {
		t.Fatalf("dying entry's file not removed at last release (stat: %v)", err)
	}
	if _, err := os.Stat(newPath); err != nil {
		t.Fatalf("release of the dying entry removed the new entry's file: %v", err)
	}
	if _, err := r.get("g"); err != nil {
		t.Fatalf("new entry unusable after old entry's release: %v", err)
	}
}
