package trustnetd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"regexp"
	"sort"
	"strings"
)

// route is one row of the typed route table: the HTTP operation plus
// the request/response struct types it decodes and encodes. The mux is
// built from the first three fields, the OpenAPI document from all of
// them — one source of truth, no drift.
type route struct {
	method  string
	pattern string
	summary string
	// request and response are struct instances (zero values) whose
	// types drive schema derivation; nil means no JSON body on that
	// side.
	request  any
	response any
	handler  http.HandlerFunc
}

// pathParam extracts {wildcard} segments from Go 1.22 mux patterns —
// the same syntax OpenAPI uses for path parameters.
var pathParam = regexp.MustCompile(`\{([a-zA-Z0-9_]+)\}`)

// openAPIDocument derives an OpenAPI 3 document from the route table by
// reflecting over each route's typed request and response structs.
// Struct types land in components.schemas under their Go type name and
// are referenced by $ref, so shared shapes (GraphInfo, JobStatus)
// appear once.
func openAPIDocument(routes []route) ([]byte, error) {
	schemas := map[string]any{}
	paths := map[string]map[string]any{}
	for _, rt := range routes {
		op := map[string]any{
			"summary":   rt.summary,
			"responses": map[string]any{},
		}
		var params []any
		for _, m := range pathParam.FindAllStringSubmatch(rt.pattern, -1) {
			params = append(params, map[string]any{
				"name":     m[1],
				"in":       "path",
				"required": true,
				"schema":   map[string]any{"type": "string"},
			})
		}
		if params != nil {
			op["parameters"] = params
		}
		if rt.request != nil {
			ref, err := schemaFor(reflect.TypeOf(rt.request), schemas)
			if err != nil {
				return nil, err
			}
			op["requestBody"] = map[string]any{
				"required": true,
				"content":  map[string]any{"application/json": map[string]any{"schema": ref}},
			}
		}
		resp := map[string]any{"description": "OK"}
		if rt.response != nil {
			ref, err := schemaFor(reflect.TypeOf(rt.response), schemas)
			if err != nil {
				return nil, err
			}
			resp["content"] = map[string]any{"application/json": map[string]any{"schema": ref}}
		}
		op["responses"].(map[string]any)["200"] = resp
		errRef, err := schemaFor(reflect.TypeOf(ErrorResponse{}), schemas)
		if err != nil {
			return nil, err
		}
		op["responses"].(map[string]any)["default"] = map[string]any{
			"description": "Error",
			"content":     map[string]any{"application/json": map[string]any{"schema": errRef}},
		}
		if paths[rt.pattern] == nil {
			paths[rt.pattern] = map[string]any{}
		}
		paths[rt.pattern][strings.ToLower(rt.method)] = op
	}
	doc := map[string]any{
		"openapi": "3.0.3",
		"info": map[string]any{
			"title":       "trustnetd",
			"description": "Long-lived social-graph measurement service: graph registry, async measurement queue, content-addressed artifact cache.",
			"version":     "1",
		},
		"paths":      paths,
		"components": map[string]any{"schemas": schemas},
	}
	return json.MarshalIndent(doc, "", "  ")
}

// schemaFor returns a $ref to t's schema, deriving and memoizing it in
// schemas on first sight. Only plain-data shapes appear in the API
// types, so the supported kinds are deliberately few; an unsupported
// kind is a programming error surfaced at daemon startup, not a
// silently wrong spec.
func schemaFor(t reflect.Type, schemas map[string]any) (map[string]any, error) {
	if t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("top-level schema for non-struct %s", t)
	}
	name := t.Name()
	if name == "" {
		return nil, fmt.Errorf("anonymous struct in route table")
	}
	ref := map[string]any{"$ref": "#/components/schemas/" + name}
	if _, done := schemas[name]; done {
		return ref, nil
	}
	schemas[name] = map[string]any{} // reserve before recursing (cycles)
	props := map[string]any{}
	var required []string
	if err := structProps(t, schemas, props, &required); err != nil {
		return nil, err
	}
	obj := map[string]any{"type": "object", "properties": props}
	if len(required) > 0 {
		sort.Strings(required)
		obj["required"] = required
	}
	schemas[name] = obj
	return ref, nil
}

// structProps fills props from t's exported fields, honoring json tags
// (name, "-", omitempty → not required) and flattening embedded
// structs the way encoding/json does.
func structProps(t reflect.Type, schemas map[string]any, props map[string]any, required *[]string) error {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("json")
		name, opts, _ := strings.Cut(tag, ",")
		if name == "-" {
			continue
		}
		if f.Anonymous && name == "" && f.Type.Kind() == reflect.Struct {
			if err := structProps(f.Type, schemas, props, required); err != nil {
				return err
			}
			continue
		}
		if name == "" {
			name = f.Name
		}
		sch, err := fieldSchema(f.Type, schemas)
		if err != nil {
			return fmt.Errorf("field %s.%s: %w", t.Name(), f.Name, err)
		}
		props[name] = sch
		if !strings.Contains(opts, "omitempty") {
			*required = append(*required, name)
		}
	}
	return nil
}

// fieldSchema maps one Go type onto its OpenAPI schema.
func fieldSchema(t reflect.Type, schemas map[string]any) (any, error) {
	switch t.Kind() {
	case reflect.String:
		return map[string]any{"type": "string"}, nil
	case reflect.Bool:
		return map[string]any{"type": "boolean"}, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return map[string]any{"type": "integer", "format": "int64"}, nil
	case reflect.Float32, reflect.Float64:
		return map[string]any{"type": "number", "format": "double"}, nil
	case reflect.Slice, reflect.Array:
		item, err := fieldSchema(t.Elem(), schemas)
		if err != nil {
			return nil, err
		}
		return map[string]any{"type": "array", "items": item}, nil
	case reflect.Struct:
		return schemaFor(t, schemas)
	case reflect.Pointer:
		return fieldSchema(t.Elem(), schemas)
	default:
		return nil, fmt.Errorf("unsupported kind %s", t.Kind())
	}
}
