package trustnetd

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/jobs"
	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/walk"
)

// MeasureConfig is the typed, fingerprinted configuration of one
// queued measurement — the config half of its artifact cache key.
// Worker count is deliberately absent: the repo's determinism contract
// makes results bit-identical at any parallelism, so artifacts are
// shared across differently-sized deployments.
type MeasureConfig struct {
	// Seed drives source sampling and the spectral start vector.
	Seed int64 `json:"seed,omitempty"`
	// Sources is the number of sampled walk sources (mixing).
	Sources int `json:"sources,omitempty"`
	// MaxSteps bounds the walk length explored (mixing).
	MaxSteps int `json:"max_steps,omitempty"`
	// ExpansionSources is the number of sampled BFS cores (expansion).
	ExpansionSources int `json:"expansion_sources,omitempty"`
	// Tolerance is the SLEM power-iteration tolerance (slem); 0 uses
	// the spectral package default.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Epsilon is the variation-distance target for mixing-time readouts
	// and Sinclair bounds; 0 means 1/n.
	Epsilon float64 `json:"epsilon,omitempty"`
}

// fill resolves the zero values to the daemon defaults, so equal
// requests fingerprint equally whether the client spelled the defaults
// out or omitted them.
func (c MeasureConfig) fill() MeasureConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sources == 0 {
		c.Sources = 64
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200
	}
	if c.ExpansionSources == 0 {
		c.ExpansionSources = 64
	}
	return c
}

// measureKey is the fingerprinted config struct: the job name plus the
// filled MeasureConfig, so two measurements with equal knobs never
// share a cache slot.
type measureKey struct {
	Job string `json:"job"`
	MeasureConfig
}

// measureSpec is one catalog entry: a registry name and a run body
// bound late to the graph under measurement.
type measureSpec struct {
	name    string
	summary string
	run     func(ctx context.Context, g graph.View, cfg MeasureConfig, b *jobs.Builder) error
}

// measureSpecs is the daemon's measurement battery: the paper's §III
// property probes, one addressable job each.
var measureSpecs = []measureSpec{
	{"mixing", "sampling-method mixing time (paper §III-C, Figure 1)", mixingJob},
	{"expansion", "BFS-envelope expansion factors (paper §III-D, Figures 3-4)", expansionJob},
	{"coreness", "k-core decomposition and degeneracy (paper §III-B, Figure 2)", corenessJob},
	{"slem", "second largest eigenvalue modulus and Sinclair bounds (paper §III-C)", slemJob},
}

// Jobs builds the per-graph measurement battery as a jobs.Registry: one
// typed job per paper measurement, bound to g under the filled cfg. The
// registry resolves request names case-insensitively with nearest-name
// suggestions. A nil g yields a catalog-only registry — names and
// fingerprints are valid, running a job is not.
func Jobs(g graph.View, cfg MeasureConfig) (*jobs.Registry, error) {
	cfg = cfg.fill()
	reg := jobs.NewRegistry()
	for _, spec := range measureSpecs {
		spec := spec
		j := jobs.New(spec.name, measureKey{Job: spec.name, MeasureConfig: cfg},
			func(ctx context.Context, env jobs.Env) (*jobs.Artifact, error) {
				if g == nil {
					return nil, fmt.Errorf("trustnetd: job %s not bound to a graph", spec.name)
				}
				b := jobs.NewBuilder()
				if err := spec.run(ctx, g, cfg, b); err != nil {
					return nil, err
				}
				return b.Artifact(), nil
			})
		if err := reg.Register(j); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// epsilonFor resolves the variation-distance target: an explicit
// configuration wins, else the paper's 1/n.
func epsilonFor(cfg MeasureConfig, n int) float64 {
	if cfg.Epsilon > 0 {
		return cfg.Epsilon
	}
	return 1 / float64(n)
}

// mixingJob measures the sampling-method mixing time: per-step TVD
// envelopes over sampled sources, filed as mixing.csv, with the T(ε)
// readout and the canonical result fingerprint in the summary.
func mixingJob(ctx context.Context, g graph.View, cfg MeasureConfig, b *jobs.Builder) error {
	res, err := walk.MeasureMixing(ctx, g, walk.MixingConfig{
		MaxSteps: cfg.MaxSteps,
		Sources:  cfg.Sources,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return err
	}
	eps := epsilonFor(cfg, g.NumNodes())
	t, within := res.MixingTime(eps)
	if within {
		b.Printf("mixing time T(%.2e) = %d steps (worst of %d sources)\n", eps, t, len(res.Sources))
	} else {
		b.Printf("did not mix to eps=%.2e within %d steps (final worst TVD %.4f)\n",
			eps, len(res.MaxTVD), res.MaxTVD[len(res.MaxTVD)-1])
	}
	b.Printf("fingerprint %s\n", jobs.MixingFingerprint(res))
	series := []report.Series{
		{Name: "min_tvd", X: stepAxis(len(res.MinTVD)), Y: res.MinTVD},
		{Name: "mean_tvd", X: stepAxis(len(res.MeanTVD)), Y: res.MeanTVD},
		{Name: "max_tvd", X: stepAxis(len(res.MaxTVD)), Y: res.MaxTVD},
	}
	return b.SaveCSV("mixing.csv", series)
}

// stepAxis returns the 1-based walk-length axis of a TVD curve.
func stepAxis(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	return x
}

// expansionJob measures BFS-envelope expansion over sampled cores,
// filing the per-set-size factor curve and summarizing the minimum and
// small-set mean α.
func expansionJob(ctx context.Context, g graph.View, cfg MeasureConfig, b *jobs.Builder) error {
	sources, err := expansion.SampledSources(g, cfg.ExpansionSources, cfg.Seed)
	if err != nil {
		return err
	}
	res, err := expansion.Measure(ctx, g, expansion.Config{Sources: sources})
	if err != nil {
		return err
	}
	var x, mean []float64
	minAlpha := 0.0
	first := true
	for _, k := range res.FactorBySetSize.Keys() {
		s, ok := res.FactorBySetSize.Get(k)
		if !ok {
			continue
		}
		x = append(x, float64(k))
		mean = append(mean, s.Mean())
		if first || s.Min() < minAlpha {
			minAlpha = s.Min()
			first = false
		}
	}
	b.Printf("expansion: min alpha = %.4f over %d cores (max eccentricity %d)\n",
		minAlpha, res.Sources, res.MaxEccentricity)
	b.Printf("fingerprint %s\n", jobs.ExpansionFingerprint(res))
	return b.SaveCSV("expansion.csv", []report.Series{{Name: "mean_alpha", X: x, Y: mean}})
}

// corenessJob runs the k-core decomposition, filing the coreness ECDF
// and summarizing the degeneracy and mean coreness.
func corenessJob(ctx context.Context, g graph.View, cfg MeasureConfig, b *jobs.Builder) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dec, err := kcore.Decompose(g)
	if err != nil {
		return err
	}
	samples := dec.CorenessECDFSamples()
	var mean float64
	for _, c := range samples {
		mean += c
	}
	if len(samples) > 0 {
		mean /= float64(len(samples))
	}
	b.Printf("coreness: degeneracy %d, mean coreness %.3f over %d nodes\n",
		dec.Degeneracy(), mean, g.NumNodes())
	b.Printf("fingerprint %s\n", jobs.CorenessFingerprint(dec))
	counts := make([]float64, dec.Degeneracy()+1)
	for _, c := range dec.CorenessValues() {
		counts[c]++
	}
	x := make([]float64, len(counts))
	for i := range x {
		x[i] = float64(i)
	}
	return b.SaveCSV("coreness.csv", []report.Series{{Name: "nodes_at_coreness", X: x, Y: counts}})
}

// slemJob computes the second largest eigenvalue modulus and the
// Sinclair mixing-time bounds it implies at the configured ε.
func slemJob(ctx context.Context, g graph.View, cfg MeasureConfig, b *jobs.Builder) error {
	res, err := spectral.SLEMContext(ctx, g, spectral.Config{Tolerance: cfg.Tolerance, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	b.Printf("slem: mu = %.6f (converged=%v after %d iterations)\n", res.SLEM, res.Converged, res.Iterations)
	if res.SLEM > 0 && res.SLEM < 1 {
		eps := epsilonFor(cfg, g.NumNodes())
		bounds, err := spectral.MixingBounds(g.NumNodes(), res.SLEM, eps)
		if err != nil {
			return err
		}
		b.Printf("Sinclair bounds at eps=%.2e: %.1f <= T <= %.1f\n", eps, bounds.Lower, bounds.Upper)
	}
	return nil
}
