// Package core is the paper's primary contribution as a library: a
// measurement suite that, given any social graph, quantifies the three
// algorithmic properties Sybil defenses rely on — mixing time (sampling
// method and spectral bound, §III-C), graph expansion (§III-D), and core
// structure (§III-B) — and the cross-property analysis of §IV/§V relating
// them (fast mixing ⇔ one large core; expansion ⇔ mixing).
package core

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/stats"
	"github.com/trustnet/trustnet/internal/walk"
)

// Config tunes the suite. The zero value selects scaled-down defaults
// suitable for the synthetic datasets.
type Config struct {
	// MixingSources is the number of sampled walk sources (paper: 1000).
	// Defaults to 50.
	MixingSources int
	// MixingMaxSteps bounds the measured walk length. Defaults to 200.
	MixingMaxSteps int
	// Epsilon is the variation-distance target for T(ε). Defaults to
	// Θ(1/n) — the fast-mixing criterion of §III-C — floored at 1e-4.
	Epsilon float64
	// ExpansionSources limits the expansion measurement to a sample of
	// cores; 0 measures from every node as the paper does.
	ExpansionSources int
	// SpectralTolerance is the SLEM power-iteration tolerance. Defaults
	// to 1e-7 (community graphs have clustered spectra).
	SpectralTolerance float64
	// Seed makes the whole suite deterministic.
	Seed int64
	// Workers bounds parallelism in the mixing and expansion
	// measurements; <= 0 uses GOMAXPROCS.
	Workers int
}

func (c *Config) fill(n int) {
	if c.MixingSources == 0 {
		c.MixingSources = 50
	}
	if c.MixingMaxSteps == 0 {
		c.MixingMaxSteps = 200
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1 / float64(n)
		if c.Epsilon < 1e-4 {
			c.Epsilon = 1e-4
		}
	}
	if c.SpectralTolerance == 0 {
		c.SpectralTolerance = 1e-7
	}
}

// CoreSummary condenses the k-core decomposition for the cross-property
// analysis.
type CoreSummary struct {
	// Degeneracy is the largest k with a non-empty core.
	Degeneracy int
	// TopCoreNuTilde is ν̃_k at k = degeneracy (relative size of the
	// degree-condition core).
	TopCoreNuTilde float64
	// TopCoreNu is ν_k at k = degeneracy (relative size of the largest
	// connected core).
	TopCoreNu float64
	// TopCoreComponents is the number of connected cores at k =
	// degeneracy — 1 for the paper's fast mixers, several for the slow
	// ones.
	TopCoreComponents int
	// MeanCoreness is the average node coreness.
	MeanCoreness float64
	// Levels is the full per-k series behind Figure 5.
	Levels []kcore.LevelStats
	// CorenessECDF holds the Figure 2 distribution.
	CorenessECDF *stats.ECDF
}

// ExpansionSummary condenses the envelope measurement.
type ExpansionSummary struct {
	// MinAlpha is the smallest observed expansion factor over envelopes
	// of at most n/2 nodes — the sampled vertex-expansion analogue.
	MinAlpha float64
	// MeanAlphaSmallSets averages α over envelopes of at most n/10 nodes,
	// the regime GateKeeper's ticket distribution operates in.
	MeanAlphaSmallSets float64
	// Result keeps the full per-set-size aggregation (Figures 3 and 4).
	Result *expansion.Result
}

// Report is the complete measurement of one graph.
type Report struct {
	Name  string
	Nodes int
	Edges int64

	// SLEM is μ; Bounds are the Sinclair bounds at Epsilon.
	SLEM   float64
	Bounds spectral.Bounds

	// Mixing holds the sampling-method curves; MixingTime is T(ε) for
	// the worst sampled source (0 if not reached within MixingMaxSteps,
	// see MixedWithinBudget).
	Mixing            *walk.MixingResult
	MixingTime        int
	MixedWithinBudget bool
	Epsilon           float64

	Cores     CoreSummary
	Expansion ExpansionSummary
}

// Measure runs the full suite on g. The graph must be connected (use
// graph.LargestComponent first, as every measurement study does). It
// accepts any graph.View — including an mmap-backed graph.Mapped or a
// graph.ShardedGraph, which routes every kernel through its per-shard
// path — and the report is bit-identical across substrates.
func Measure(ctx context.Context, name string, g graph.View, cfg Config) (*Report, error) {
	n := g.NumNodes()
	if n < 3 {
		return nil, fmt.Errorf("core: graph %q too small (%d nodes)", name, n)
	}
	if !graph.IsConnected(g) {
		return nil, fmt.Errorf("core: graph %q is not connected; measure its largest component", name)
	}
	cfg.fill(n)

	rep := &Report{
		Name:    name,
		Nodes:   n,
		Edges:   g.NumEdges(),
		Epsilon: cfg.Epsilon,
	}

	// Spectral bound (§III-C).
	sr, err := spectral.SLEM(g, spectral.Config{Tolerance: cfg.SpectralTolerance, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: slem of %q: %w", name, err)
	}
	rep.SLEM = sr.SLEM
	if sr.SLEM > 0 && sr.SLEM < 1 {
		b, err := spectral.MixingBounds(n, sr.SLEM, cfg.Epsilon)
		if err != nil {
			return nil, fmt.Errorf("core: bounds of %q: %w", name, err)
		}
		rep.Bounds = b
	}

	// Sampling-method mixing measurement (§III-C, Figure 1).
	mix, err := walk.MeasureMixing(ctx, g, walk.MixingConfig{
		MaxSteps: cfg.MixingMaxSteps,
		Sources:  cfg.MixingSources,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: mixing of %q: %w", name, err)
	}
	rep.Mixing = mix
	rep.MixingTime, rep.MixedWithinBudget = mix.MixingTime(cfg.Epsilon)

	// Core structure (§III-B, Figures 2 and 5).
	dec, err := kcore.Decompose(g)
	if err != nil {
		return nil, fmt.Errorf("core: decompose %q: %w", name, err)
	}
	levels := dec.Levels()
	cs := CoreSummary{
		Degeneracy: dec.Degeneracy(),
		Levels:     levels,
	}
	if len(levels) > 0 {
		top := levels[len(levels)-1]
		cs.TopCoreNuTilde = top.NuTilde
		cs.TopCoreNu = top.Nu
		cs.TopCoreComponents = top.Components
	}
	var meanCore float64
	samples := dec.CorenessECDFSamples()
	for _, c := range samples {
		meanCore += c
	}
	cs.MeanCoreness = meanCore / float64(len(samples))
	ecdf, err := stats.NewECDF(samples)
	if err != nil {
		return nil, fmt.Errorf("core: coreness ecdf of %q: %w", name, err)
	}
	cs.CorenessECDF = ecdf
	rep.Cores = cs

	// Expansion (§III-D, Figures 3 and 4).
	ecfg := expansion.Config{Workers: cfg.Workers}
	if cfg.ExpansionSources > 0 {
		srcs, err := expansion.SampledSources(g, cfg.ExpansionSources, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: expansion sources of %q: %w", name, err)
		}
		ecfg.Sources = srcs
	}
	exp, err := expansion.Measure(ctx, g, ecfg)
	if err != nil {
		return nil, fmt.Errorf("core: expansion of %q: %w", name, err)
	}
	es := ExpansionSummary{Result: exp}
	if a, ok := exp.VertexExpansion(n); ok {
		es.MinAlpha = a
	}
	var sum stats.Summary
	for _, size := range exp.FactorBySetSize.Keys() {
		if size > int64(n)/10 {
			continue
		}
		s, ok := exp.FactorBySetSize.Get(size)
		if ok {
			sum.Add(s.Mean())
		}
	}
	es.MeanAlphaSmallSets = sum.Mean()
	rep.Expansion = es
	return rep, nil
}

// EffectiveMixingSteps returns the measured T(ε) when reached, and
// otherwise the measurement budget (a lower bound on the true mixing
// time), which is how the cross-graph comparisons rank graphs that did
// not mix within budget.
func (r *Report) EffectiveMixingSteps() float64 {
	if r.MixedWithinBudget {
		return float64(r.MixingTime)
	}
	return float64(len(r.Mixing.MaxTVD)) * (1 + r.Mixing.MaxTVD[len(r.Mixing.MaxTVD)-1])
}

// CrossAnalysis is the §V correlational analysis across graphs.
type CrossAnalysis struct {
	// MixingVsTopCoreNu is the Spearman correlation between mixing
	// slowness and the relative size of the top connected core. The
	// paper's claim is a strong negative correlation (fast mixers have
	// big cores).
	MixingVsTopCoreNu float64
	// MixingVsCoreComponents correlates mixing slowness with the number
	// of connected cores at the degeneracy (positive per the paper).
	MixingVsCoreComponents float64
	// MixingVsExpansion correlates mixing slowness with the mean
	// expansion factor over small sets (negative per §V: expansion and
	// mixing are "analogous").
	MixingVsExpansion float64
	// SLEMVsMixing sanity-checks the two mixing measurements against
	// each other (positive).
	SLEMVsMixing float64
}

// Analyze computes the cross-property correlations over a set of reports.
func Analyze(reports []*Report) (*CrossAnalysis, error) {
	if len(reports) < 3 {
		return nil, fmt.Errorf("core: need >= 3 reports for correlation, got %d", len(reports))
	}
	slow := make([]float64, len(reports))
	nu := make([]float64, len(reports))
	comps := make([]float64, len(reports))
	alpha := make([]float64, len(reports))
	mus := make([]float64, len(reports))
	for i, r := range reports {
		slow[i] = r.EffectiveMixingSteps()
		nu[i] = r.Cores.TopCoreNu
		comps[i] = float64(r.Cores.TopCoreComponents)
		alpha[i] = r.Expansion.MeanAlphaSmallSets
		mus[i] = r.SLEM
	}
	out := &CrossAnalysis{}
	var err error
	if out.MixingVsTopCoreNu, err = stats.Spearman(slow, nu); err != nil {
		return nil, err
	}
	if out.MixingVsCoreComponents, err = stats.Spearman(slow, comps); err != nil {
		return nil, err
	}
	if out.MixingVsExpansion, err = stats.Spearman(slow, alpha); err != nil {
		return nil, err
	}
	if out.SLEMVsMixing, err = stats.Spearman(mus, slow); err != nil {
		return nil, err
	}
	// Constant columns (e.g. every graph having a single core) make a
	// correlation undefined; those entries are NaN and callers must
	// handle them.
	return out, nil
}
