package core

import (
	"context"
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func fastGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(500, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func slowGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 8, CommunitySize: 64, Attach: 4, Bridges: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMeasureFastMixer(t *testing.T) {
	g := fastGraph(t)
	rep, err := Measure(context.Background(), "fast", g, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "fast" || rep.Nodes != 500 {
		t.Errorf("header = %s/%d", rep.Name, rep.Nodes)
	}
	if rep.SLEM <= 0 || rep.SLEM >= 1 {
		t.Errorf("SLEM = %v, want in (0,1)", rep.SLEM)
	}
	if !rep.MixedWithinBudget {
		t.Error("fast mixer did not mix within budget")
	}
	if rep.Bounds.Upper <= 0 {
		t.Errorf("bounds = %+v", rep.Bounds)
	}
	if float64(rep.MixingTime) > math.Ceil(rep.Bounds.Upper) {
		t.Errorf("measured T = %d exceeds Sinclair upper bound %v", rep.MixingTime, rep.Bounds.Upper)
	}
	if rep.Cores.Degeneracy != 5 {
		t.Errorf("degeneracy = %d, want 5 for BA attach=5", rep.Cores.Degeneracy)
	}
	if rep.Cores.TopCoreComponents != 1 {
		t.Errorf("top core components = %d, want 1 for a fast mixer", rep.Cores.TopCoreComponents)
	}
	if rep.Cores.TopCoreNu < 0.9 {
		t.Errorf("top core ν = %v, want ~1 for BA", rep.Cores.TopCoreNu)
	}
	if rep.Expansion.MinAlpha <= 0 || rep.Expansion.MeanAlphaSmallSets <= 0 {
		t.Errorf("expansion summary = %+v", rep.Expansion)
	}
}

func TestMeasureContrastsFastAndSlow(t *testing.T) {
	ctx := context.Background()
	fast, err := Measure(ctx, "fast", fastGraph(t), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Measure(ctx, "slow", slowGraph(t), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fast.SLEM >= slow.SLEM {
		t.Errorf("SLEM fast %v >= slow %v", fast.SLEM, slow.SLEM)
	}
	if fast.EffectiveMixingSteps() >= slow.EffectiveMixingSteps() {
		t.Errorf("mixing fast %v >= slow %v", fast.EffectiveMixingSteps(), slow.EffectiveMixingSteps())
	}
	if slow.Cores.TopCoreComponents < 2 {
		t.Errorf("slow mixer has %d top cores, want several", slow.Cores.TopCoreComponents)
	}
	if fast.Cores.TopCoreNu <= slow.Cores.TopCoreNu {
		t.Errorf("top core ν fast %v <= slow %v", fast.Cores.TopCoreNu, slow.Cores.TopCoreNu)
	}
	if fast.Expansion.MeanAlphaSmallSets <= slow.Expansion.MeanAlphaSmallSets {
		t.Errorf("expansion fast %v <= slow %v",
			fast.Expansion.MeanAlphaSmallSets, slow.Expansion.MeanAlphaSmallSets)
	}
}

func TestMeasureValidation(t *testing.T) {
	ctx := context.Background()
	tiny, err := gen.Complete(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(ctx, "tiny", tiny, Config{}); err == nil {
		t.Error("Measure(tiny): want error")
	}
	b := graph.NewBuilder(6)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(ctx, "disc", b.Build(), Config{}); err == nil {
		t.Error("Measure(disconnected): want error")
	}
}

func TestMeasureSampledExpansion(t *testing.T) {
	g := fastGraph(t)
	rep, err := Measure(context.Background(), "sampled", g, Config{Seed: 2, ExpansionSources: 25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expansion.Result.Sources != 25 {
		t.Errorf("expansion sources = %d, want 25", rep.Expansion.Result.Sources)
	}
}

func TestAnalyzeRecoverssPaperCorrelations(t *testing.T) {
	ctx := context.Background()
	var reports []*Report
	// Three fast, three slow graphs of varied sizes.
	for i, n := range []int{300, 450, 600} {
		g, err := gen.BarabasiAlbert(n, 4+i, int64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Measure(ctx, "fast", g, Config{Seed: 1, MixingSources: 20})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	for i, c := range []int{5, 8, 11} {
		g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
			Communities: c, CommunitySize: 60, Attach: 4, Bridges: 1, Seed: int64(20 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Measure(ctx, "slow", g, Config{Seed: 1, MixingSources: 20})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	an, err := Analyze(reports)
	if err != nil {
		t.Fatal(err)
	}
	if !(an.MixingVsTopCoreNu < 0) {
		t.Errorf("mixing↔topCoreNu = %v, want negative (fast mixers have big cores)", an.MixingVsTopCoreNu)
	}
	if !(an.MixingVsCoreComponents > 0) {
		t.Errorf("mixing↔coreComponents = %v, want positive (slow mixers split)", an.MixingVsCoreComponents)
	}
	if !(an.MixingVsExpansion < 0) {
		t.Errorf("mixing↔expansion = %v, want negative (expansion tracks mixing)", an.MixingVsExpansion)
	}
	if !(an.SLEMVsMixing > 0) {
		t.Errorf("slem↔mixing = %v, want positive", an.SLEMVsMixing)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("Analyze(nil): want error")
	}
}

func TestEffectiveMixingStepsFallback(t *testing.T) {
	g := slowGraph(t)
	rep, err := Measure(context.Background(), "slow", g, Config{Seed: 1, MixingMaxSteps: 10, MixingSources: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MixedWithinBudget {
		t.Skip("slow graph unexpectedly mixed in 10 steps")
	}
	if rep.EffectiveMixingSteps() <= 10 {
		t.Errorf("EffectiveMixingSteps = %v, want > budget of 10", rep.EffectiveMixingSteps())
	}
}
