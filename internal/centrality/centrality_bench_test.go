package centrality

import (
	"context"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
)

func BenchmarkBetweennessExact(b *testing.B) {
	g, err := gen.BarabasiAlbert(1000, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Betweenness(ctx, g, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBetweennessSampled(b *testing.B) {
	g, err := gen.BarabasiAlbert(5000, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Betweenness(ctx, g, Config{Pivots: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRank(b *testing.B) {
	g, err := gen.BarabasiAlbert(10000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PageRank(g, PageRankConfig{Tolerance: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloseness(b *testing.B) {
	g, err := gen.BarabasiAlbert(1000, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Closeness(ctx, g, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
