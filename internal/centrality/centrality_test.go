package centrality

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func exactBetweenness(t *testing.T, g *graph.Graph) []float64 {
	t.Helper()
	bc, err := Betweenness(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

func TestBetweennessPath(t *testing.T) {
	g, err := gen.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	bc := exactBetweenness(t, g)
	want := []float64{0, 3, 4, 3, 0}
	for v := range want {
		if math.Abs(bc[v]-want[v]) > 1e-9 {
			t.Errorf("bc[%d] = %v, want %v", v, bc[v], want[v])
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	g, err := gen.Star(8) // hub 0, 7 leaves
	if err != nil {
		t.Fatal(err)
	}
	bc := exactBetweenness(t, g)
	if want := 21.0; math.Abs(bc[0]-want) > 1e-9 { // C(7,2)
		t.Errorf("hub bc = %v, want %v", bc[0], want)
	}
	for v := 1; v < 8; v++ {
		if bc[v] != 0 {
			t.Errorf("leaf bc[%d] = %v, want 0", v, bc[v])
		}
	}
}

func TestBetweennessCliqueAndCycle(t *testing.T) {
	g, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	for v, b := range exactBetweenness(t, g) {
		if b != 0 {
			t.Errorf("K6 bc[%d] = %v, want 0", v, b)
		}
	}
	g, err = gen.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	for v, b := range exactBetweenness(t, g) {
		if math.Abs(b-1) > 1e-9 {
			t.Errorf("C5 bc[%d] = %v, want 1", v, b)
		}
	}
}

func TestBetweennessSplitShortestPaths(t *testing.T) {
	// C4: each distance-2 pair has two shortest paths, so each midpoint
	// gets credit 1/2 per pair; each node is midpoint of 1 pair: bc = 0.5.
	g, err := gen.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	for v, b := range exactBetweenness(t, g) {
		if math.Abs(b-0.5) > 1e-9 {
			t.Errorf("C4 bc[%d] = %v, want 0.5", v, b)
		}
	}
}

// naiveBetweenness computes betweenness by explicit all-pairs shortest
// path counting, for cross-validation.
func naiveBetweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		// BFS with path counts.
		dist := make([]int, n)
		sigma := make([]float64, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		sigma[s] = 1
		queue := []graph.NodeID{graph.NodeID(s)}
		var order []graph.NodeID
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
				}
			}
		}
		delta := make([]float64, n)
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range g.Neighbors(w) {
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if int(w) != s {
				bc[w] += delta[w]
			}
		}
	}
	for v := range bc {
		bc[v] /= 2
	}
	return bc
}

func TestBetweennessMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdgeSafe(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.Build()
		got, err := Betweenness(context.Background(), g, Config{Workers: 1 + rng.Intn(4)})
		if err != nil {
			return false
		}
		want := naiveBetweenness(g)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBetweennessSampledApproximates(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactBetweenness(t, g)
	approx, err := Betweenness(context.Background(), g, Config{Pivots: 120})
	if err != nil {
		t.Fatal(err)
	}
	// The two rankings should share most of the top-10.
	topExact := TopK(exact, 10)
	topApprox := TopK(approx, 10)
	inExact := map[graph.NodeID]bool{}
	for _, v := range topExact {
		inExact[v] = true
	}
	overlap := 0
	for _, v := range topApprox {
		if inExact[v] {
			overlap++
		}
	}
	if overlap < 6 {
		t.Errorf("top-10 overlap = %d, want >= 6", overlap)
	}
	// Totals should agree within a modest factor.
	var se, sa float64
	for v := range exact {
		se += exact[v]
		sa += approx[v]
	}
	if sa < se/2 || sa > se*2 {
		t.Errorf("sampled total %v vs exact %v: off by more than 2x", sa, se)
	}
}

func TestBetweennessErrors(t *testing.T) {
	var empty graph.Graph
	if _, err := Betweenness(context.Background(), &empty, Config{}); err == nil {
		t.Error("Betweenness(empty): want error")
	}
	g, err := gen.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Betweenness(context.Background(), g, Config{Pivots: -1}); err == nil {
		t.Error("Betweenness(pivots<0): want error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	big, err := gen.BarabasiAlbert(500, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Betweenness(ctx, big, Config{Workers: 1}); err == nil {
		t.Error("Betweenness(cancelled): want error")
	}
}

func TestClosenessPath(t *testing.T) {
	g, err := gen.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := Closeness(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2: distances 2,1,1,2 => 4/6; full reach => *1.
	if math.Abs(cc[2]-4.0/6) > 1e-9 {
		t.Errorf("cc[2] = %v, want %v", cc[2], 4.0/6)
	}
	// Node 0: distances 1,2,3,4 => 4/10.
	if math.Abs(cc[0]-0.4) > 1e-9 {
		t.Errorf("cc[0] = %v, want 0.4", cc[0])
	}
	if cc[2] <= cc[0] {
		t.Error("center should have higher closeness than endpoint")
	}
}

func TestClosenessDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	g := b.Build() // node 4 isolated
	cc, err := Closeness(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cc[4] != 0 {
		t.Errorf("isolated closeness = %v, want 0", cc[4])
	}
	// Component {0,1}: reach 1, sum 1 => 1 * (1/4) = 0.25.
	if math.Abs(cc[0]-0.25) > 1e-9 {
		t.Errorf("cc[0] = %v, want 0.25", cc[0])
	}
	var empty graph.Graph
	if _, err := Closeness(context.Background(), &empty, Config{}); err == nil {
		t.Error("Closeness(empty): want error")
	}
}

func TestClosenessCancelled(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Closeness(ctx, g, Config{Workers: 1}); err == nil {
		t.Error("Closeness(cancelled): want error")
	}
}

func TestTopK(t *testing.T) {
	vals := []float64{3, 9, 1, 9, 5}
	top := TopK(vals, 3)
	want := []graph.NodeID{1, 3, 4}
	for i := range want {
		if top[i] != want[i] {
			t.Errorf("TopK[%d] = %d, want %d", i, top[i], want[i])
		}
	}
	if got := TopK(vals, 99); len(got) != 5 {
		t.Errorf("TopK(k>n) len = %d, want 5", len(got))
	}
	if got := TopK(nil, 3); len(got) != 0 {
		t.Errorf("TopK(nil) len = %d", len(got))
	}
}

func TestHighDegreeNodesCentralInBA(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	bc := exactBetweenness(t, g)
	top := TopK(bc, 5)
	// The top-betweenness nodes in a BA graph are its hubs: all should
	// have degree far above the attachment parameter.
	for _, v := range top {
		if g.Degree(v) < 10 {
			t.Errorf("top-betweenness node %d has degree %d, expected a hub", v, g.Degree(v))
		}
	}
}
