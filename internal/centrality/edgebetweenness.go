package centrality

import (
	"context"
	"errors"
	"fmt"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/parallel"
)

// EdgeScore is an undirected edge with its betweenness value.
type EdgeScore struct {
	Edge  graph.Edge
	Score float64
}

// EdgeBetweenness computes shortest-path betweenness for every edge with
// the Brandes edge variant (each unordered source pair counted once).
// Attack edges in a Sybil attack are bridges between two well-connected
// regions, so they acquire anomalously high edge betweenness — the signal
// the bridge-removal defense (internal/sybil/bridgecut) exploits.
func EdgeBetweenness(ctx context.Context, g graph.View, cfg Config) (map[graph.Edge]float64, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("centrality: empty graph")
	}
	sources, scale, err := pivotSources(g, cfg.Pivots)
	if err != nil {
		return nil, err
	}
	// Sharded per-slot edge maps, merged in slot order after the fan-out.
	workers := parallel.Workers(cfg.Workers, len(sources))
	partials := make([]map[graph.Edge]float64, workers)
	states := make([]*brandesState, workers)
	for s := 0; s < workers; s++ {
		partials[s] = make(map[graph.Edge]float64, int(g.NumEdges()))
		states[s] = newBrandesState(g)
	}
	err = parallel.ForEach(ctx, workers, len(sources), func(slot, i int) error {
		states[slot].runEdges(sources[i], partials[slot])
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("centrality: edge betweenness: %w", err)
	}
	out := make(map[graph.Edge]float64, int(g.NumEdges()))
	for _, p := range partials {
		for e, v := range p {
			out[e] += v
		}
	}
	for e := range out {
		out[e] *= scale / 2
	}
	return out, nil
}

// runEdges accumulates per-edge dependencies from source s into acc.
func (st *brandesState) runEdges(s graph.NodeID, acc map[graph.Edge]float64) {
	for i := range st.dist {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
	}
	st.queue = st.queue[:0]
	st.order = st.order[:0]

	st.dist[s] = 0
	st.sigma[s] = 1
	st.queue = append(st.queue, s)
	for head := 0; head < len(st.queue); head++ {
		v := st.queue[head]
		st.order = append(st.order, v)
		for _, u := range st.nbr.Neighbors(v) {
			if st.dist[u] < 0 {
				st.dist[u] = st.dist[v] + 1
				st.queue = append(st.queue, u)
			}
			if st.dist[u] == st.dist[v]+1 {
				st.sigma[u] += st.sigma[v]
			}
		}
	}
	for i := len(st.order) - 1; i >= 0; i-- {
		w := st.order[i]
		for _, v := range st.nbr.Neighbors(w) {
			if st.dist[v] == st.dist[w]-1 {
				c := st.sigma[v] / st.sigma[w] * (1 + st.delta[w])
				st.delta[v] += c
				acc[graph.Edge{U: v, V: w}.Canonical()] += c
			}
		}
	}
}

// TopEdges returns the k highest-betweenness edges, descending. Ties
// break toward the lexicographically smaller edge.
func TopEdges(scores map[graph.Edge]float64, k int) []EdgeScore {
	out := make([]EdgeScore, 0, len(scores))
	for e, s := range scores {
		out = append(out, EdgeScore{Edge: e, Score: s})
	}
	// Partial selection: k is small in every use here.
	if k > len(out) {
		k = len(out)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			a, b := out[best], out[j]
			if b.Score > a.Score ||
				(b.Score == a.Score && (b.Edge.U < a.Edge.U ||
					(b.Edge.U == a.Edge.U && b.Edge.V < a.Edge.V))) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out[:k]
}
