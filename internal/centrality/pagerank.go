package centrality

import (
	"errors"
	"fmt"
	"math"

	"github.com/trustnet/trustnet/internal/graph"
)

// PageRankConfig controls the PageRank iteration.
type PageRankConfig struct {
	// Damping is the probability of following an edge rather than
	// teleporting. Defaults to 0.85.
	Damping float64
	// Tolerance is the L1 convergence threshold. Defaults to 1e-10.
	Tolerance float64
	// MaxIterations bounds the iteration count. Defaults to 1000.
	MaxIterations int
	// Personalize, when non-nil, teleports to this distribution instead
	// of uniform — the personalized PageRank used as a trust ranking in
	// the defenses-as-ranking view of Viswanath et al. It must sum to 1.
	Personalize []float64
}

func (c *PageRankConfig) fill(n int) error {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Damping <= 0 || c.Damping >= 1 {
		return fmt.Errorf("centrality: damping %v out of (0,1)", c.Damping)
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-10
	}
	if c.Tolerance <= 0 {
		return fmt.Errorf("centrality: tolerance %v must be > 0", c.Tolerance)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 1000
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("centrality: max iterations %d must be >= 1", c.MaxIterations)
	}
	if c.Personalize != nil {
		if len(c.Personalize) != n {
			return fmt.Errorf("centrality: personalization length %d, graph has %d nodes", len(c.Personalize), n)
		}
		sum := 0.0
		for _, p := range c.Personalize {
			if p < 0 {
				return errors.New("centrality: personalization has negative mass")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("centrality: personalization sums to %v, want 1", sum)
		}
	}
	return nil
}

// PageRank computes (optionally personalized) PageRank on the undirected
// graph. Dangling (isolated) nodes redistribute their mass to the
// teleport distribution.
func PageRank(g graph.View, cfg PageRankConfig) ([]float64, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("centrality: empty graph")
	}
	if err := cfg.fill(n); err != nil {
		return nil, err
	}
	teleport := cfg.Personalize
	if teleport == nil {
		teleport = make([]float64, n)
		for i := range teleport {
			teleport[i] = 1 / float64(n)
		}
	}
	cur := make([]float64, n)
	copy(cur, teleport)
	next := make([]float64, n)
	nbr := graph.NewAdj(g)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for v := graph.NodeID(0); int(v) < n; v++ {
			mass := cur[v]
			if mass == 0 {
				continue
			}
			ns := nbr.Neighbors(v)
			if len(ns) == 0 {
				dangling += mass
				continue
			}
			share := mass / float64(len(ns))
			for _, u := range ns {
				next[u] += share
			}
		}
		delta := 0.0
		for v := range next {
			nv := cfg.Damping*(next[v]+dangling*teleport[v]) + (1-cfg.Damping)*teleport[v]
			delta += math.Abs(nv - cur[v])
			next[v] = nv
		}
		cur, next = next, cur
		if delta < cfg.Tolerance {
			return cur, nil
		}
	}
	return cur, nil
}
