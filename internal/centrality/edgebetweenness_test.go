package centrality

import (
	"context"
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func TestEdgeBetweennessPath(t *testing.T) {
	g, err := gen.Path(4) // edges: 0-1, 1-2, 2-3
	if err != nil {
		t.Fatal(err)
	}
	scores, err := EdgeBetweenness(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Pairs crossing 0-1: (0,1),(0,2),(0,3) = 3. Crossing 1-2: 4.
	want := map[graph.Edge]float64{
		{U: 0, V: 1}: 3,
		{U: 1, V: 2}: 4,
		{U: 2, V: 3}: 3,
	}
	for e, w := range want {
		if got := scores[e]; math.Abs(got-w) > 1e-9 {
			t.Errorf("eb[%v] = %v, want %v", e, got, w)
		}
	}
}

func TestEdgeBetweennessSumInvariant(t *testing.T) {
	// Sum of edge betweenness over all edges equals the sum of pairwise
	// distances (each pair contributes its path length, split across its
	// paths' edges).
	g, err := gen.BarabasiAlbert(120, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := EdgeBetweenness(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range scores {
		sum += v
	}
	var distSum float64
	w := graph.NewBFSWorker(g)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		r, err := w.Run(v)
		if err != nil {
			t.Fatal(err)
		}
		for d, c := range r.LevelSizes {
			distSum += float64(d) * float64(c)
		}
	}
	distSum /= 2 // each unordered pair counted twice
	if math.Abs(sum-distSum) > 1e-6*distSum {
		t.Errorf("edge betweenness sum %v != pairwise distance sum %v", sum, distSum)
	}
}

func TestEdgeBetweennessFindsBridge(t *testing.T) {
	// Two K10s joined by one bridge: the bridge dominates.
	b := graph.NewBuilder(20)
	for base := 0; base < 20; base += 10 {
		for i := base; i < base+10; i++ {
			for j := i + 1; j < base+10; j++ {
				if err := b.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(9, 10); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	scores, err := EdgeBetweenness(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	top := TopEdges(scores, 1)
	if len(top) != 1 || top[0].Edge != (graph.Edge{U: 9, V: 10}) {
		t.Fatalf("top edge = %+v, want the bridge 9-10", top)
	}
	// The bridge carries all 100 cross-pairs.
	if math.Abs(top[0].Score-100) > 1e-9 {
		t.Errorf("bridge score = %v, want 100", top[0].Score)
	}
}

func TestEdgeBetweennessErrors(t *testing.T) {
	var empty graph.Graph
	if _, err := EdgeBetweenness(context.Background(), &empty, Config{}); err == nil {
		t.Error("EdgeBetweenness(empty): want error")
	}
	g, err := gen.BarabasiAlbert(400, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EdgeBetweenness(ctx, g, Config{Workers: 1}); err == nil {
		t.Error("EdgeBetweenness(cancelled): want error")
	}
}

func TestTopEdges(t *testing.T) {
	scores := map[graph.Edge]float64{
		{U: 0, V: 1}: 5,
		{U: 1, V: 2}: 9,
		{U: 2, V: 3}: 9,
		{U: 3, V: 4}: 1,
	}
	top := TopEdges(scores, 2)
	if top[0].Edge != (graph.Edge{U: 1, V: 2}) || top[1].Edge != (graph.Edge{U: 2, V: 3}) {
		t.Errorf("TopEdges = %+v", top)
	}
	if got := TopEdges(scores, 99); len(got) != 4 {
		t.Errorf("TopEdges(k>m) len = %d", len(got))
	}
	if got := TopEdges(nil, 3); len(got) != 0 {
		t.Errorf("TopEdges(nil) = %v", got)
	}
}
