package centrality

import (
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func TestPageRankUniformOnRegular(t *testing.T) {
	// On a vertex-transitive graph PageRank is uniform.
	g, err := gen.Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range pr {
		if math.Abs(p-0.1) > 1e-8 {
			t.Errorf("pr[%d] = %v, want 0.1", v, p)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v, want 1", sum)
	}
	// Hubs rank above the median.
	top := TopK(pr, 3)
	for _, v := range top {
		if g.Degree(v) < 3*3 {
			t.Errorf("top PageRank node %d has degree %d, expected a hub", v, g.Degree(v))
		}
	}
}

func TestPageRankStarHub(t *testing.T) {
	g, err := gen.Star(11)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 11; v++ {
		if pr[0] <= pr[v] {
			t.Errorf("hub pr %v <= leaf pr %v", pr[0], pr[v])
		}
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// Isolated node: mass redistributes, total stays 1.
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build() // node 3 isolated
	pr, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v, want 1", sum)
	}
	if pr[3] <= 0 {
		t.Errorf("isolated node pr = %v, want > 0 (teleport mass)", pr[3])
	}
}

func TestPersonalizedPageRankLocalizes(t *testing.T) {
	// Two cliques with one bridge: personalizing on clique A keeps most
	// mass there.
	b := graph.NewBuilder(12)
	for base := 0; base < 12; base += 6 {
		for i := base; i < base+6; i++ {
			for j := i + 1; j < base+6; j++ {
				if err := b.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	personalize := make([]float64, 12)
	personalize[0] = 1
	pr, err := PageRank(g, PageRankConfig{Personalize: personalize})
	if err != nil {
		t.Fatal(err)
	}
	var massA, massB float64
	for v := 0; v < 6; v++ {
		massA += pr[v]
	}
	for v := 6; v < 12; v++ {
		massB += pr[v]
	}
	if massA < 3*massB {
		t.Errorf("personalized mass A %v vs B %v, want strong localization", massA, massB)
	}
}

func TestPageRankValidation(t *testing.T) {
	var empty graph.Graph
	if _, err := PageRank(&empty, PageRankConfig{}); err == nil {
		t.Error("PageRank(empty): want error")
	}
	g, err := gen.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	bad := []PageRankConfig{
		{Damping: 1.5},
		{Damping: -0.1},
		{Tolerance: -1},
		{MaxIterations: -1},
		{Personalize: []float64{1}},                // wrong length
		{Personalize: []float64{2, 0, 0, -1}},      // negative
		{Personalize: []float64{0.5, 0.5, 0.5, 0}}, // not normalized
	}
	for _, cfg := range bad {
		if _, err := PageRank(g, cfg); err == nil {
			t.Errorf("PageRank(%+v): want error", cfg)
		}
	}
}
