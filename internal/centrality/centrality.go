// Package centrality implements the node-centrality measures §I of the
// paper lists among the algorithmic properties trustworthy-computing
// systems are built on: shortest-path betweenness (used for Sybil defense
// by Quercia–Hailes and measured by the authors' companion betweenness
// study) and closeness (used for content sharing and anonymity in
// OneSwarm-style systems).
//
// Betweenness uses Brandes' exact algorithm — O(nm) on unweighted graphs
// via one BFS plus a dependency back-propagation per source — with an
// optional sampled-pivots estimator for larger graphs. All functions
// treat the graph as unweighted and undirected, matching the paper's
// model.
package centrality

import (
	"context"
	"errors"
	"fmt"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/parallel"
)

// Config controls a centrality computation.
type Config struct {
	// Pivots samples this many source nodes instead of running from all
	// n (0 = exact). Sampled betweenness values are scaled by n/pivots
	// so they estimate the exact ones.
	Pivots int
	// Workers bounds parallelism; <= 0 uses GOMAXPROCS.
	Workers int
}

// Betweenness computes (exact or pivot-sampled) shortest-path betweenness
// for every node. Endpoint pairs are excluded, and each unordered pair is
// counted once, following the standard convention for undirected graphs.
func Betweenness(ctx context.Context, g graph.View, cfg Config) ([]float64, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("centrality: empty graph")
	}
	sources, scale, err := pivotSources(g, cfg.Pivots)
	if err != nil {
		return nil, err
	}
	// Sharded accumulation: slot s owns partials[s] and its Brandes
	// scratch, so the fan-out needs no locks; shards merge in slot order.
	workers := parallel.Workers(cfg.Workers, len(sources))
	partials := make([][]float64, workers)
	states := make([]*brandesState, workers)
	for s := 0; s < workers; s++ {
		partials[s] = make([]float64, n)
		states[s] = newBrandesState(g)
	}
	err = parallel.ForEach(ctx, workers, len(sources), func(slot, i int) error {
		states[slot].run(sources[i], partials[slot])
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("centrality: betweenness: %w", err)
	}
	out := make([]float64, n)
	for _, p := range partials {
		for v := range out {
			out[v] += p[v]
		}
	}
	// Each unordered pair was visited from both endpoints in the exact
	// case; halve, then apply the sampling scale.
	for v := range out {
		out[v] *= scale / 2
	}
	return out, nil
}

// brandesState holds per-worker scratch for Brandes' algorithm, including
// its own neighbor cursor so concurrent slots never share a view buffer.
type brandesState struct {
	nbr   *graph.Adj
	dist  []int32
	sigma []float64
	delta []float64
	queue []graph.NodeID
	order []graph.NodeID
}

func newBrandesState(g graph.View) *brandesState {
	n := g.NumNodes()
	return &brandesState{
		nbr:   graph.NewAdj(g),
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		queue: make([]graph.NodeID, 0, n),
		order: make([]graph.NodeID, 0, n),
	}
}

// run accumulates source-dependencies from s into acc.
func (st *brandesState) run(s graph.NodeID, acc []float64) {
	for i := range st.dist {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
	}
	st.queue = st.queue[:0]
	st.order = st.order[:0]

	st.dist[s] = 0
	st.sigma[s] = 1
	st.queue = append(st.queue, s)
	for head := 0; head < len(st.queue); head++ {
		v := st.queue[head]
		st.order = append(st.order, v)
		for _, u := range st.nbr.Neighbors(v) {
			if st.dist[u] < 0 {
				st.dist[u] = st.dist[v] + 1
				st.queue = append(st.queue, u)
			}
			if st.dist[u] == st.dist[v]+1 {
				st.sigma[u] += st.sigma[v]
			}
		}
	}
	// Back-propagate dependencies in reverse BFS order.
	for i := len(st.order) - 1; i >= 0; i-- {
		w := st.order[i]
		for _, v := range st.nbr.Neighbors(w) {
			if st.dist[v] == st.dist[w]-1 {
				st.delta[v] += st.sigma[v] / st.sigma[w] * (1 + st.delta[w])
			}
		}
		if w != s {
			acc[w] += st.delta[w]
		}
	}
}

// Closeness computes closeness centrality: (reachable-1) / sum of
// distances to reachable nodes, scaled by the reachable fraction
// (the Wasserman–Faust correction) so values are comparable across
// components. Isolated nodes get 0.
func Closeness(ctx context.Context, g graph.View, cfg Config) ([]float64, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("centrality: empty graph")
	}
	sources, _, err := pivotSources(g, 0) // closeness is per-node; always all nodes
	if err != nil {
		return nil, err
	}
	// Each item writes only out[v] for its own node, so the fan-out is
	// race-free without shards; BFS scratch comes from a shared pool.
	out := make([]float64, n)
	pool := graph.NewBFSPool(g)
	err = parallel.ForEach(ctx, cfg.Workers, len(sources), func(_, i int) error {
		v := sources[i]
		bfs := pool.Get()
		defer pool.Put(bfs)
		r, err := bfs.Run(v)
		if err != nil {
			return err
		}
		// r aliases pooled scratch; everything below reads it before the
		// deferred Put, and nothing of r escapes this task.
		var sum int64
		for d, c := range r.LevelSizes {
			sum += int64(d) * c
		}
		if sum == 0 {
			return nil
		}
		reach := float64(r.Reached - 1)
		out[v] = reach / float64(sum) * (reach / float64(n-1))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("centrality: closeness: %w", err)
	}
	return out, nil
}

// pivotSources returns the source set and the betweenness scale factor.
func pivotSources(g graph.View, pivots int) ([]graph.NodeID, float64, error) {
	n := g.NumNodes()
	if pivots < 0 {
		return nil, 0, fmt.Errorf("centrality: negative pivot count %d", pivots)
	}
	if pivots == 0 || pivots >= n {
		all := make([]graph.NodeID, n)
		for v := range all {
			all[v] = graph.NodeID(v)
		}
		return all, 1, nil
	}
	// Deterministic stride probe, as in expansion.SampledSources.
	stride := n/2 + 1
	for gcd(stride, n) != 1 {
		stride++
	}
	out := make([]graph.NodeID, pivots)
	cur := 0
	for i := range out {
		out[i] = graph.NodeID(cur)
		cur = (cur + stride) % n
	}
	return out, float64(n) / float64(pivots), nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TopK returns the indices of the k largest values, descending. Ties
// break toward smaller node IDs.
func TopK(values []float64, k int) []graph.NodeID {
	if k > len(values) {
		k = len(values)
	}
	idx := make([]graph.NodeID, len(values))
	for i := range idx {
		idx[i] = graph.NodeID(i)
	}
	// Partial selection sort: k is small in every use here.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			vi, vj := values[idx[best]], values[idx[j]]
			if vj > vi || (vj == vi && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
