package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.Len() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Errorf("Len/Min/Max = %d/%v/%v", e.Len(), e.Min(), e.Max())
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("NewECDF(nil): want error")
	}
}

func TestECDFFromInts(t *testing.T) {
	e, err := NewECDFFromInts([]int{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.At(3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("At(3) = %v, want 2/3", got)
	}
}

func TestECDFQuantile(t *testing.T) {
	e, err := NewECDF([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ q, want float64 }{
		{0, 10}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
	}
	for _, tt := range tests {
		got, err := e.Quantile(tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := e.Quantile(-0.1); err == nil {
		t.Error("Quantile(-0.1): want error")
	}
	if _, err := e.Quantile(1.1); err == nil {
		t.Error("Quantile(1.1): want error")
	}
}

func TestECDFPoints(t *testing.T) {
	e, err := NewECDF([]float64{1, 1, 2, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	xs, fs := e.Points()
	wantX := []float64{1, 2, 3}
	wantF := []float64{2.0 / 6, 3.0 / 6, 1}
	if len(xs) != 3 {
		t.Fatalf("Points len = %d, want 3", len(xs))
	}
	for i := range xs {
		if xs[i] != wantX[i] || math.Abs(fs[i]-wantF[i]) > 1e-12 {
			t.Errorf("Points[%d] = (%v,%v), want (%v,%v)", i, xs[i], fs[i], wantX[i], wantF[i])
		}
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Count() != 0 {
		t.Error("zero summary not empty")
	}
	for _, x := range []float64{2, 4, 6} {
		s.Add(x)
	}
	if s.Count() != 3 || s.Min() != 2 || s.Max() != 6 {
		t.Errorf("summary = count %d min %v max %v", s.Count(), s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-4) > 1e-12 {
		t.Errorf("Mean = %v, want 4", s.Mean())
	}
	if math.Abs(s.Variance()-8.0/3) > 1e-12 {
		t.Errorf("Variance = %v, want 8/3", s.Variance())
	}
	if math.Abs(s.StdDev()-math.Sqrt(8.0/3)) > 1e-12 {
		t.Errorf("StdDev = %v", s.StdDev())
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	xs := []float64{1, 5, 2, 8, 3}
	for i, x := range xs {
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged summary differs: %+v vs %+v", a, all)
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("merged mean %v, want %v", a.Mean(), all.Mean())
	}
	var empty Summary
	a.Merge(empty) // no-op
	if a.Count() != all.Count() {
		t.Error("merging empty summary changed count")
	}
	var c Summary
	c.Merge(all)
	if c.Count() != all.Count() {
		t.Error("merging into empty summary failed")
	}
}

func TestKeyedSummary(t *testing.T) {
	k := NewKeyedSummary()
	k.Add(10, 1)
	k.Add(10, 3)
	k.Add(20, 5)
	if k.Len() != 2 {
		t.Fatalf("Len = %d, want 2", k.Len())
	}
	keys := k.Keys()
	if len(keys) != 2 || keys[0] != 10 || keys[1] != 20 {
		t.Errorf("Keys = %v", keys)
	}
	s, ok := k.Get(10)
	if !ok || s.Count() != 2 || s.Mean() != 2 {
		t.Errorf("Get(10) = %+v ok=%v", s, ok)
	}
	if _, ok := k.Get(99); ok {
		t.Error("Get(99) = ok, want missing")
	}

	other := NewKeyedSummary()
	other.Add(10, 5)
	other.Add(30, 7)
	k.Merge(other)
	if k.Len() != 3 {
		t.Errorf("after merge Len = %d, want 3", k.Len())
	}
	s, _ = k.Get(10)
	if s.Count() != 3 || s.Max() != 5 {
		t.Errorf("merged Get(10) = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	counts := h.Counts()
	want := []int64{2, 1, 0, 0, 1}
	for i := range counts {
		if counts[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, counts[i], want[i])
		}
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("Outliers = %d,%d, want 1,2", under, over)
	}
	if c := h.BinCenter(0); math.Abs(c-1) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 1", c)
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("NewHistogram(bins=0): want error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("NewHistogram(empty range): want error")
	}
}

func TestPearson(t *testing.T) {
	got, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson(perfect) = %v, want 1", got)
	}
	got, err = Pearson([]float64{1, 2, 3}, []float64{6, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson(anti) = %v, want -1", got)
	}
	got, err = Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got) {
		t.Errorf("Pearson(constant) = %v, want NaN", got)
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Pearson(mismatch): want error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("Pearson(short): want error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform gives rank correlation 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 512, 100000}
	got, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman(monotone) = %v, want 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	got, err := Spearman([]float64{1, 2, 2, 3}, []float64{10, 20, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman(tied identical) = %v, want 1", got)
	}
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Spearman(mismatch): want error")
	}
}

func TestRanksAverageTies(t *testing.T) {
	r := ranks([]float64{10, 20, 10, 30})
	want := []float64{1.5, 3, 1.5, 4}
	for i := range r {
		if r[i] != want[i] {
			t.Errorf("ranks[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

// Property: ECDF.At is monotone and hits 0/1 at the extremes; Quantile and
// At are near-inverse.
func TestECDFQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		if e.At(e.Min()-1) != 0 || e.At(e.Max()) != 1 {
			return false
		}
		prev := -1.0
		sort.Float64s(xs)
		for _, x := range xs {
			cur := e.At(x)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Summary.Merge equals adding all observations to one summary.
func TestSummaryMergeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		var a, b, all Summary
		for i := 0; i < n; i++ {
			x := rng.Float64()*200 - 100
			all.Add(x)
			if rng.Intn(2) == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.Count() == all.Count() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Regression: Add(NaN) used to panic — NaN fails both range comparisons,
// so the bin-index conversion produced a huge negative index. Property:
// every sample in a mix of finite and NaN values is accounted for exactly
// once across bins, outliers, and the invalid bucket.
func TestHistogramNaNQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewHistogram(-5, 5, 1+rng.Intn(10))
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(200)
		var nan int64
		for i := 0; i < n; i++ {
			x := rng.NormFloat64() * 5
			if rng.Intn(4) == 0 {
				x = math.NaN()
				nan++
			}
			h.Add(x)
		}
		var binned int64
		for _, c := range h.Counts() {
			binned += c
		}
		under, over := h.Outliers()
		return h.Invalid() == nan && binned+under+over+h.Invalid() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
