// Package stats provides the small statistical toolkit the measurement
// experiments share: empirical CDFs (Figure 2 of the paper), min/mean/max
// aggregation keyed by set size (Figures 3 and 4), quantile summaries, and
// rank correlations for the cross-property analysis in §V.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied, then sorted).
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, errors.New("stats: ecdf needs at least one sample")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// NewECDFFromInts builds an ECDF from integer samples.
func NewECDFFromInts(samples []int) (*ECDF, error) {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
	}
	return NewECDF(fs)
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th empirical quantile for q in [0, 1] using the
// nearest-rank method.
func (e *ECDF) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	if q == 0 {
		return e.sorted[0], nil
	}
	rank := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return e.sorted[rank], nil
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// Min returns the smallest sample.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Points returns the (x, F(x)) step points of the ECDF at the distinct
// sample values, suitable for plotting Figure 2 style curves.
func (e *ECDF) Points() (xs, fs []float64) {
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); i++ {
		if i+1 < len(e.sorted) && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(i+1)/n)
	}
	return xs, fs
}

// Summary is a running min/mean/max/count accumulator. The zero value is
// ready to use.
type Summary struct {
	count      int64
	sum, sumSq float64
	min, max   float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	s.sum += x
	s.sumSq += x * x
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.count }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Summary) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Variance returns the population variance, or 0 if fewer than 2 samples.
func (s *Summary) Variance() float64 {
	if s.count < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.count) - m*m
	if v < 0 {
		return 0 // numerical guard
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds another summary into s.
func (s *Summary) Merge(o Summary) {
	if o.count == 0 {
		return
	}
	if s.count == 0 {
		*s = o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
	s.sumSq += o.sumSq
}

// KeyedSummary aggregates observations grouped by an int64 key — the
// paper's "for each unique envelope size, the min/mean/max neighbor count"
// aggregation (Figure 3).
type KeyedSummary struct {
	groups map[int64]*Summary
}

// NewKeyedSummary returns an empty keyed aggregator.
func NewKeyedSummary() *KeyedSummary {
	return &KeyedSummary{groups: make(map[int64]*Summary)}
}

// Add folds observation x into the group for key.
func (k *KeyedSummary) Add(key int64, x float64) {
	s, ok := k.groups[key]
	if !ok {
		s = &Summary{}
		k.groups[key] = s
	}
	s.Add(x)
}

// Merge folds another keyed summary into k.
func (k *KeyedSummary) Merge(o *KeyedSummary) {
	for key, s := range o.groups {
		dst, ok := k.groups[key]
		if !ok {
			dst = &Summary{}
			k.groups[key] = dst
		}
		dst.Merge(*s)
	}
}

// Keys returns the keys in ascending order.
func (k *KeyedSummary) Keys() []int64 {
	keys := make([]int64, 0, len(k.groups))
	for key := range k.groups {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Get returns the summary for key and whether it exists. The returned
// summary is a copy.
func (k *KeyedSummary) Get(key int64) (Summary, bool) {
	s, ok := k.groups[key]
	if !ok {
		return Summary{}, false
	}
	return *s, true
}

// Len returns the number of distinct keys.
func (k *KeyedSummary) Len() int { return len(k.groups) }

// Histogram counts samples into uniform-width bins over [lo, hi].
type Histogram struct {
	lo, hi  float64
	counts  []int64
	under   int64
	over    int64
	invalid int64
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram bounds [%v,%v) empty", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int64, bins)}, nil
}

// Add records one sample. NaN samples — reachable from any measurement
// that feeds a Pearson correlation through, which documents a NaN
// return on zero variance — fall into a separate invalid bucket instead
// of panicking: NaN fails both range comparisons, and converting it to a
// bin index would produce an out-of-range value.
func (h *Histogram) Add(x float64) {
	switch {
	case math.IsNaN(x):
		h.invalid++
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
		if i == len(h.counts) {
			i--
		}
		h.counts[i]++
	}
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Outliers returns the number of samples below lo and at-or-above hi.
// NaN samples are counted separately; see Invalid.
func (h *Histogram) Outliers() (under, over int64) { return h.under, h.over }

// Invalid returns the number of NaN samples recorded, which belong to no
// bin and neither outlier side.
func (h *Histogram) Invalid() int64 { return h.invalid }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + (float64(i)+0.5)*w
}

// PowerLawAlpha fits the exponent of a discrete power-law tail
// P(X = x) ∝ x^(-α) to the samples with x >= xmin, using the standard
// maximum-likelihood estimator with the ½-continuity correction
// (Clauset–Shalizi–Newman):
//
//	α ≈ 1 + n / Σ ln(x_i / (xmin - ½))
//
// It is used to check that the synthetic dataset stand-ins reproduce the
// heavy-tailed degree distributions of the crawls they replace. The
// second return value is the number of tail samples used.
func PowerLawAlpha(samples []float64, xmin float64) (float64, int, error) {
	if xmin <= 0.5 {
		return 0, 0, fmt.Errorf("stats: xmin %v must exceed 0.5", xmin)
	}
	var logSum float64
	n := 0
	for _, x := range samples {
		if x < xmin {
			continue
		}
		logSum += math.Log(x / (xmin - 0.5))
		n++
	}
	if n < 2 {
		return 0, n, fmt.Errorf("stats: power-law fit needs >= 2 tail samples, got %d", n)
	}
	if logSum <= 0 {
		return 0, n, errors.New("stats: degenerate tail (all samples at xmin)")
	}
	return 1 + float64(n)/logSum, n, nil
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It errs on mismatched or too-short inputs and returns NaN when
// either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: pearson length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: pearson needs >= 2 samples")
	}
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return math.NaN(), nil
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Spearman returns the Spearman rank correlation of two equal-length
// samples, using average ranks for ties.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: spearman length mismatch %d vs %d", len(xs), len(ys))
	}
	return Pearson(ranks(xs), ranks(ys))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
