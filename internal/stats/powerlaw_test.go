package stats

import (
	"math"
	"math/rand"
	"testing"
)

// paretoSamples draws discrete-ish power-law samples with exponent alpha
// and minimum xmin via inverse-CDF.
func paretoSamples(rng *rand.Rand, n int, alpha, xmin float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := rng.Float64()
		out[i] = math.Floor(xmin * math.Pow(1-u, -1/(alpha-1)))
	}
	return out
}

func TestPowerLawAlphaRecoversExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, alpha := range []float64{2.2, 2.8, 3.5} {
		samples := paretoSamples(rng, 20000, alpha, 10)
		got, n, err := PowerLawAlpha(samples, 10)
		if err != nil {
			t.Fatal(err)
		}
		if n < 15000 {
			t.Fatalf("tail size = %d, generation broken", n)
		}
		if math.Abs(got-alpha) > 0.2 {
			t.Errorf("fit alpha = %v, want %v +- 0.2", got, alpha)
		}
	}
}

func TestPowerLawAlphaValidation(t *testing.T) {
	if _, _, err := PowerLawAlpha([]float64{1, 2, 3}, 0.4); err == nil {
		t.Error("xmin <= 0.5: want error")
	}
	if _, _, err := PowerLawAlpha([]float64{1}, 2); err == nil {
		t.Error("too few tail samples: want error")
	}
	if _, _, err := PowerLawAlpha([]float64{0.9, 0.8}, 2); err == nil {
		t.Error("no tail samples: want error")
	}
}

func TestPowerLawAlphaIgnoresBody(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := paretoSamples(rng, 10000, 2.5, 5)
	// Pollute with sub-xmin noise that the fit must ignore.
	for i := 0; i < 5000; i++ {
		samples = append(samples, rng.Float64()*4)
	}
	got, n, err := PowerLawAlpha(samples, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n > 10000 {
		t.Errorf("tail included body samples: n = %d", n)
	}
	if math.Abs(got-2.5) > 0.2 {
		t.Errorf("fit alpha = %v, want 2.5 +- 0.2", got)
	}
}
