package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Table I", "Dataset", "Nodes", "mu")
	if err := tab.AddRow("wiki-vote", Int(7066), Float(0.899, 3)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("dblp", Int(614981), Float(0.997, 3)); err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "Table I") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "wiki-vote") || !strings.Contains(out, "614981") {
		t.Errorf("missing cells in:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows have same prefix width for column 2.
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tab := NewTable("", "a", "b")
	if err := tab.AddRow("only"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("x", "y", "z"); err == nil {
		t.Error("long row: want error")
	}
	if !strings.Contains(tab.String(), "only") {
		t.Error("short row lost")
	}
}

func TestFormatters(t *testing.T) {
	if Float(1.23456, 2) != "1.23" {
		t.Errorf("Float = %q", Float(1.23456, 2))
	}
	if Int(42) != "42" || Int64(1<<40) != "1099511627776" {
		t.Error("int formatters wrong")
	}
}

func TestSeriesValidate(t *testing.T) {
	s := Series{Name: "a", X: []float64{1}, Y: []float64{2}}
	if err := s.Validate(); err != nil {
		t.Errorf("valid series: %v", err)
	}
	bad := []Series{
		{Name: "", X: []float64{1}, Y: []float64{1}},
		{Name: "b", X: []float64{1, 2}, Y: []float64{1}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", s)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	series := []Series{
		{Name: "fast", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
		{Name: "slow", X: []float64{1}, Y: []float64{0.9}},
	}
	if err := WriteCSV(&b, series); err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\nfast,1,0.5\nfast,2,0.25\nslow,1,0.9\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
	if err := WriteCSV(&b, nil); err == nil {
		t.Error("WriteCSV(nil): want error")
	}
	if err := WriteCSV(&b, []Series{{Name: "x", X: []float64{1}, Y: nil}}); err == nil {
		t.Error("WriteCSV(misaligned): want error")
	}
}

func TestSaveCSVAndTable(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "sub", "fig.csv")
	if err := SaveCSV(csvPath, []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "s,1,2") {
		t.Errorf("csv content = %q", data)
	}

	tab := NewTable("T", "c")
	if err := tab.AddRow("v"); err != nil {
		t.Fatal(err)
	}
	tabPath := filepath.Join(dir, "sub2", "table.txt")
	if err := SaveTable(tabPath, tab); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(tabPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "v") {
		t.Errorf("table content = %q", data)
	}
}

// Regression: Render measured widths in bytes, so multibyte cells (the
// paper's ν̃_k, α headers) over-padded their columns, and the final
// column was padded too, leaving trailing spaces on every line.
func TestTableRenderMultibyteGolden(t *testing.T) {
	tab := NewTable("", "metric", "ν̃_k")
	if err := tab.AddRow("α", "0.5"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("degree", "12"); err != nil {
		t.Fatal(err)
	}
	got := tab.String()
	want := "" +
		"metric  ν̃_k\n" +
		"-------------\n" +
		"α       0.5\n" +
		"degree  12\n"
	if got != want {
		t.Errorf("rendered table = %q, want %q", got, want)
	}
	for _, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		if strings.HasSuffix(line, " ") {
			t.Errorf("trailing space on line %q", line)
		}
	}
}
