// Package report renders experiment output: fixed-width ASCII tables for
// the terminal (the Table I / Table II reproductions) and CSV series
// files for the figure reproductions, one series per column so any
// plotting tool can regenerate the paper's plots.
package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned ASCII table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells, long rows
// are an error.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) > len(t.headers) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.headers))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// AddNote appends an annotation rendered after the rows — used for
// caveats that apply to the whole table, like partial-coverage warnings
// on best-effort results.
func (t *Table) AddNote(note string) { t.notes = append(t.notes, note) }

// Render writes the table to w. Column widths are measured in runes,
// not bytes, so multibyte cells (ν̃_k, α, § in the paper's headers) stay
// aligned, and the final cell of each line is not padded, so rendered
// tables carry no trailing spaces.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, note := range t.notes {
		b.WriteString("note: ")
		b.WriteString(note)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("report: render table: %w", err)
	}
	return nil
}

// String renders the table to a string, for logs and tests.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

// Float formats a float for table cells with sensible precision.
func Float(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// Int formats an int for table cells.
func Int(v int) string { return strconv.Itoa(v) }

// Int64 formats an int64 for table cells.
func Int64(v int64) string { return strconv.FormatInt(v, 10) }

// Series is a named set of (x, y) points — one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Validate checks that X and Y align.
func (s *Series) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("report: series without name")
	}
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
	}
	return nil
}

// WriteCSV writes one or more series in long form (series,x,y per line)
// so a figure's curves live in a single file.
func WriteCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series to write")
	}
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for i := range series {
		s := &series[i]
		if err := s.Validate(); err != nil {
			return err
		}
		for j := range s.X {
			b.WriteString(s.Name)
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(s.X[j], 'g', -1, 64))
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(s.Y[j], 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("report: write csv: %w", err)
	}
	return nil
}

// SaveCSV writes the series to a file, creating parent directories.
func SaveCSV(path string, series []Series) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("report: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("report: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("report: close %s: %w", path, cerr)
		}
	}()
	return WriteCSV(f, series)
}

// SaveTable writes a rendered table to a file, creating parent
// directories.
func SaveTable(path string, t *Table) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("report: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("report: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("report: close %s: %w", path, cerr)
		}
	}()
	return t.Render(f)
}
