package kernels_test

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kernels"
	"github.com/trustnet/trustnet/internal/walk"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.BarabasiAlbert(2000, 8, 42)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkWalkBlockStep measures one blocked propagation step per width;
// width=1 is the per-source cost the block amortizes away.
func BenchmarkWalkBlockStep(b *testing.B) {
	g := benchGraph(b)
	for _, width := range []int{1, kernels.DefaultBlockWidth, kernels.BFSBatchWidth} {
		sources := make([]graph.NodeID, width)
		for j := range sources {
			sources[j] = graph.NodeID((j * 17) % g.NumNodes())
		}
		b.Run(width1Name(width), func(b *testing.B) {
			wb, err := kernels.NewWalkBlock(g, sources, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wb.Step()
			}
		})
	}
}

// BenchmarkWalkDistributionStep is the scalar baseline WalkBlock replaces:
// one dense per-source step.
func BenchmarkWalkDistributionStep(b *testing.B) {
	g := benchGraph(b)
	d, err := walk.NewDistribution(g, 0, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Step()
	}
}

// BenchmarkBFSBatchRun measures a full 64-lane batch against 64 scalar
// pooled BFS runs over the same sources.
func BenchmarkBFSBatchRun(b *testing.B) {
	g := benchGraph(b)
	sources := make([]graph.NodeID, kernels.BFSBatchWidth)
	for j := range sources {
		sources[j] = graph.NodeID((j * 13) % g.NumNodes())
	}
	b.Run("batch64", func(b *testing.B) {
		batch := kernels.NewBFSBatch(g)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := batch.Run(sources); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar64", func(b *testing.B) {
		w := graph.NewBFSWorker(g)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range sources {
				if _, err := w.Run(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func width1Name(w int) string {
	switch w {
	case 1:
		return "width1"
	case kernels.DefaultBlockWidth:
		return "width16"
	default:
		return "width64"
	}
}
