package kernels

import (
	"fmt"
	"math"
	"sort"

	"github.com/trustnet/trustnet/internal/graph"
)

// WalkBlock evolves a block of B exact walk distributions simultaneously.
// The state is a column-blocked n×B buffer: node v's B per-source
// probabilities are contiguous at [v·B, (v+1)·B), so one pass over the
// CSR adjacency advances all B sources — the per-edge work loads each
// neighbor list once per step instead of once per source per step.
//
// The propagation order is the same ascending-node, CSR-neighbor order as
// walk.Distribution.Step, and each column only ever receives additions
// derived from its own source, so every column is bit-for-bit identical
// to the per-source dense loop at any block width: nodes whose mass is
// zero in some column contribute an exact +0.0 there, which cannot
// change the bits of the non-negative partial sums a walk produces.
//
// Early steps use a sparse-frontier fast path: only nodes whose block
// row is (possibly) nonzero are propagated, and only rows touched by the
// previous step are re-zeroed, so a step costs O(edges incident to the
// frontier · B) instead of O((n+m)·B). Once the frontier covers more
// than half the graph the block switches permanently to the dense path,
// whose straight-line scan has the smaller constant.
//
// WalkBlocks are not safe for concurrent use; create one per goroutine.
type WalkBlock struct {
	g     *graph.Graph
	width int
	lazy  bool
	// cur and next are the column-blocked n×width probability buffers.
	cur, next []float64
	// support lists the nodes with a (possibly) nonzero row in cur, in
	// ascending order. nil means dense mode: every node is scanned and
	// the fast path is disabled for the rest of the block's life.
	support []graph.NodeID
	// stale lists the rows of next still holding values from two steps
	// ago; only those need zeroing before the next propagation.
	stale []graph.NodeID
	// mark is the first-touch scratch for building the next support list.
	mark  []bool
	share []float64
	step  int
}

// NewWalkBlock returns a block with column j concentrated at sources[j].
// The block width is len(sources), at most DefaultBlockWidth·4 in the
// auto path but unlimited here; sources must be valid non-isolated nodes
// of a graph with at least one edge, exactly as walk.NewDistribution
// requires.
func NewWalkBlock(g *graph.Graph, sources []graph.NodeID, lazy bool) (*WalkBlock, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("kernels: walk block needs at least one source")
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("kernels: graph has no edges")
	}
	n := g.NumNodes()
	b := len(sources)
	wb := &WalkBlock{
		g:     g,
		width: b,
		lazy:  lazy,
		cur:   make([]float64, n*b),
		next:  make([]float64, n*b),
		mark:  make([]bool, n),
		share: make([]float64, b),
	}
	for j, s := range sources {
		if !g.Valid(s) {
			return nil, fmt.Errorf("kernels: source %d out of range", s)
		}
		if g.Degree(s) == 0 {
			return nil, fmt.Errorf("kernels: source %d is isolated", s)
		}
		wb.cur[int(s)*b+j] = 1
		if !wb.mark[s] {
			wb.mark[s] = true
			wb.support = append(wb.support, s)
		}
	}
	sort.Slice(wb.support, func(i, j int) bool { return wb.support[i] < wb.support[j] })
	for _, s := range wb.support {
		wb.mark[s] = false
	}
	return wb, nil
}

// Width returns the number of source columns in the block.
func (wb *WalkBlock) Width() int { return wb.width }

// StepCount returns the number of steps taken so far.
func (wb *WalkBlock) StepCount() int { return wb.step }

// Dense reports whether the block has handed over from the
// sparse-frontier fast path to the permanent dense scan.
func (wb *WalkBlock) Dense() bool { return wb.support == nil }

// Step advances every column one walk step: p ← pP, or p ← p(I+P)/2 for
// the lazy walk.
func (wb *WalkBlock) Step() {
	if wb.support == nil {
		wb.stepDense()
	} else {
		wb.stepSparse()
	}
	wb.cur, wb.next = wb.next, wb.cur
	wb.step++
}

// propagate pushes node v's row into next. It mirrors the arithmetic of
// walk.Distribution.Step exactly: the lazy half is divided off first and
// each neighbor share is mass/deg — same operations, same order.
func (wb *WalkBlock) propagate(v graph.NodeID, row []float64) {
	b := wb.width
	ns := wb.g.Neighbors(v)
	if len(ns) == 0 {
		// Isolated nodes hold their (zero-by-construction) mass.
		dst := wb.next[int(v)*b : int(v)*b+b]
		for j, m := range row {
			dst[j] += m
		}
		return
	}
	share := wb.share
	if wb.lazy {
		dst := wb.next[int(v)*b : int(v)*b+b]
		for j, m := range row {
			h := m / 2
			dst[j] += h
			share[j] = h / float64(len(ns))
		}
	} else {
		for j, m := range row {
			share[j] = m / float64(len(ns))
		}
	}
	for _, u := range ns {
		dst := wb.next[int(u)*b : int(u)*b+b]
		for j, s := range share {
			dst[j] += s
		}
	}
}

// stepSparse is the frontier path: zero only stale rows, propagate only
// support rows, and record first touches to build the next support list.
func (wb *WalkBlock) stepSparse() {
	b := wb.width
	for _, v := range wb.stale {
		row := wb.next[int(v)*b : int(v)*b+b]
		for j := range row {
			row[j] = 0
		}
	}
	// stale's contents are consumed; reuse its backing array for the new
	// support list built below.
	touched := wb.stale[:0]
	mark := wb.mark
	for _, v := range wb.support {
		row := wb.cur[int(v)*b : int(v)*b+b]
		wb.propagate(v, row)
		// The touched set is v's write targets: itself when lazy or
		// isolated, plus its neighbors.
		ns := wb.g.Neighbors(v)
		if wb.lazy || len(ns) == 0 {
			if !mark[v] {
				mark[v] = true
				touched = append(touched, v)
			}
		}
		for _, u := range ns {
			if !mark[u] {
				mark[u] = true
				touched = append(touched, u)
			}
		}
	}
	// Propagation above reads support in ascending order, so the next
	// step needs touched sorted too for the addition order to keep
	// matching the per-source dense loop.
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	for _, v := range touched {
		mark[v] = false
	}
	wb.stale = wb.support
	wb.support = touched
	if len(touched) > wb.g.NumNodes()/2 {
		// Frontier covers most of the graph: the dense scan is cheaper
		// than list upkeep from here on (supports rarely shrink below
		// half once mixing has spread this far).
		wb.support = nil
		wb.stale = nil
	}
}

// stepDense is the full-scan path used once the frontier has saturated.
func (wb *WalkBlock) stepDense() {
	b := wb.width
	for i := range wb.next {
		wb.next[i] = 0
	}
	n := wb.g.NumNodes()
	for v := 0; v < n; v++ {
		row := wb.cur[v*b : v*b+b]
		any := false
		for _, m := range row {
			if m != 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		wb.propagate(graph.NodeID(v), row)
	}
}

// DistancesTo writes the total variation distance of every column to the
// target distribution into out (length Width), summing |p_v - target_v|
// over ascending v exactly like walk.TotalVariation so each column's
// distance is bit-identical to the per-source measurement.
func (wb *WalkBlock) DistancesTo(target []float64, out []float64) error {
	n := wb.g.NumNodes()
	b := wb.width
	if len(target) != n {
		return fmt.Errorf("kernels: total variation length mismatch %d vs %d", n, len(target))
	}
	if len(out) != b {
		return fmt.Errorf("kernels: distance buffer has %d slots for %d columns", len(out), b)
	}
	for j := range out {
		out[j] = 0
	}
	for v := 0; v < n; v++ {
		row := wb.cur[v*b : v*b+b]
		pv := target[v]
		for j, m := range row {
			out[j] += math.Abs(m - pv)
		}
	}
	for j := range out {
		out[j] /= 2
	}
	return nil
}

// Column copies column j's current distribution into dst (allocated when
// nil) and returns it.
func (wb *WalkBlock) Column(j int, dst []float64) []float64 {
	n := wb.g.NumNodes()
	if dst == nil {
		dst = make([]float64, n)
	}
	for v := 0; v < n; v++ {
		dst[v] = wb.cur[v*wb.width+j]
	}
	return dst
}
