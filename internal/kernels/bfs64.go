package kernels

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/trustnet/trustnet/internal/graph"
)

// BFSBatch advances up to 64 breadth-first searches at once. Each node
// carries one uint64 of per-source state — bit j of visited[v] means
// source j has reached v — so one pass over the frontier's adjacency
// advances every source together: the per-edge work is a single OR
// instead of 64 separate queue pushes, and the adjacency array is
// streamed once per level for the whole batch instead of once per
// source. Level sizes fall out of popcounting the newly set bits, so the
// results are exactly the integer LevelSizes a scalar graph.BFSWorker
// produces, per source, in any batch composition.
//
// A batch holds three n-word masks (24n bytes of scratch); reuse one
// across many Run calls, or draw from a BFSBatchPool under a fan-out.
// BFSBatches are not safe for concurrent use; create one per goroutine.
type BFSBatch struct {
	g *graph.Graph
	// front, next and visited are the per-node source masks.
	front, next, visited []uint64
	// active and touched are the sparse node lists for the current and
	// next frontier.
	active, touched []graph.NodeID
}

// NewBFSBatch returns a batch runner bound to g.
func NewBFSBatch(g *graph.Graph) *BFSBatch {
	n := g.NumNodes()
	return &BFSBatch{
		g:       g,
		front:   make([]uint64, n),
		next:    make([]uint64, n),
		visited: make([]uint64, n),
		active:  make([]graph.NodeID, 0, n),
		touched: make([]graph.NodeID, 0, n),
	}
}

// Run performs one BFS per source (at most BFSBatchWidth of them) and
// returns each source's level-size sequence: out[j][d] is the number of
// nodes at distance d from sources[j], with out[j][0] == 1. The returned
// slices are freshly allocated — unlike graph.BFSWorker.Run they alias
// no batch scratch and stay valid across further Run calls.
func (b *BFSBatch) Run(sources []graph.NodeID) ([][]int64, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("kernels: bfs batch needs at least one source")
	}
	if len(sources) > BFSBatchWidth {
		return nil, fmt.Errorf("kernels: bfs batch of %d sources exceeds %d lanes", len(sources), BFSBatchWidth)
	}
	// Validate before touching any scratch, so a failed Run leaves the
	// batch clean for the next one.
	for _, s := range sources {
		if !b.g.Valid(s) {
			return nil, fmt.Errorf("%w: bfs source %d", graph.ErrNodeRange, s)
		}
	}
	levels := make([][]int64, len(sources))
	b.active = b.active[:0]
	for j, s := range sources {
		levels[j] = append(make([]int64, 0, 8), 1)
		if b.front[s] == 0 {
			b.active = append(b.active, s)
		}
		b.front[s] |= 1 << j
		b.visited[s] |= 1 << j
	}

	depth := 0
	for len(b.active) > 0 {
		depth++
		// Scatter: push every active node's source mask to its neighbors.
		touched := b.touched[:0]
		for _, v := range b.active {
			fv := b.front[v]
			for _, u := range b.g.Neighbors(v) {
				if b.next[u] == 0 {
					touched = append(touched, u)
				}
				b.next[u] |= fv
			}
		}
		// The old frontier is consumed; clear its masks before harvest
		// so front can hold the new frontier.
		for _, v := range b.active {
			b.front[v] = 0
		}
		// Harvest: keep only first-time discoveries, popcount them into
		// the per-source level sizes, and form the next frontier.
		b.active = b.active[:0]
		for _, u := range touched {
			discovered := b.next[u] &^ b.visited[u]
			b.next[u] = 0
			if discovered == 0 {
				continue
			}
			b.visited[u] |= discovered
			b.front[u] = discovered
			b.active = append(b.active, u)
			for rem := discovered; rem != 0; rem &= rem - 1 {
				j := bits.TrailingZeros64(rem)
				if len(levels[j]) == depth {
					levels[j] = append(levels[j], 0)
				}
				levels[j][depth]++
			}
		}
		b.touched = touched[:0]
	}

	// front and next are zero again by construction (every frontier is
	// cleared when consumed, every touched mask on harvest); visited
	// holds every reached node and needs one memclr per Run, amortized
	// over the whole batch.
	for i := range b.visited {
		b.visited[i] = 0
	}
	return levels, nil
}

// BFSBatchPool amortizes BFSBatch scratch (three n-word masks and two
// frontier lists) across goroutines, mirroring graph.BFSPool for the
// scalar workers. Results returned by Run are fresh allocations, so —
// unlike scalar BFSResults — they remain valid after the batch is
// returned to the pool.
type BFSBatchPool struct {
	pool sync.Pool
	gets atomic.Int64
	news atomic.Int64
}

// NewBFSBatchPool returns a pool of batch runners bound to g.
func NewBFSBatchPool(g *graph.Graph) *BFSBatchPool {
	p := &BFSBatchPool{}
	p.pool.New = func() any {
		p.news.Add(1)
		return NewBFSBatch(g)
	}
	return p
}

// Get returns a batch runner for exclusive use until Put.
func (p *BFSBatchPool) Get() *BFSBatch {
	p.gets.Add(1)
	return p.pool.Get().(*BFSBatch)
}

// Stats reports how many Gets the pool has served and how many built a
// fresh runner; gets - news is the number of scratch reuses ("pool
// hits") the observability layer tracks, mirroring graph.BFSPool.Stats.
func (p *BFSBatchPool) Stats() (gets, news int64) {
	return p.gets.Load(), p.news.Load()
}

// Put returns a batch runner to the pool.
func (p *BFSBatchPool) Put(b *BFSBatch) { p.pool.Put(b) }
