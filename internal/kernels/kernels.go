// Package kernels holds the cache-friendly batched measurement kernels
// that the naive per-source loops in internal/walk and internal/expansion
// delegate to on large graphs:
//
//   - WalkBlock evolves a block of B walk distributions per CSR pass
//     (an SpMM-style column-blocked n×B buffer), so one adjacency stream
//     serves B sources per step instead of one — the amortization that
//     "Distributed Computation of Mixing Time" (arXiv:1610.05646)
//     exploits for the bandwidth-bound mixing measurement of Eq. 2.
//   - BFSBatch advances up to 64 BFS cores at once with uint64
//     frontier/visited masks over the CSR, extracting per-source level
//     sizes via popcount — up to ~64× fewer adjacency scans for the
//     expansion measurement of Eq. 4, with exact integer results.
//
// Both kernels preserve the repository's determinism contract
// bit-for-bit. Per-source walk columns are independent and every
// floating-point addition into a column happens in the same ascending
// node order as the per-source dense loop (skipped zero-mass nodes
// contribute exact +0.0, which is a bitwise no-op on the non-negative
// values a walk produces), so blocked results equal per-source results
// at every block width. BFS is integer, so batching cannot change its
// level counts at all.
//
// Callers pick the kernel through their config (walk.MixingConfig.
// BlockSize, expansion.Config.BFSBatch); the zero value auto-selects the
// batched kernel only on graphs with at least MinKernelNodes nodes, the
// same small-graph cutoff style as spectral.SLEM's parallel threshold,
// so tiny graphs keep the naive loops whose constants are smaller.
package kernels

// MinKernelNodes is the auto-selection cutoff: graphs with fewer nodes
// default to the naive per-source loops (mirroring the ≥4096-node
// threshold spectral.SLEM uses for its row-partitioned mat-vec), because
// batching pays off only once per-step buffers outgrow cache and the
// adjacency stream dominates.
const MinKernelNodes = 4096

// DefaultBlockWidth is the walk-propagation block width the auto path
// uses: wide enough to amortize one adjacency stream over many sources,
// narrow enough that a block's n×B working set stays cache-resident.
const DefaultBlockWidth = 16

// BFSBatchWidth is the fixed lane count of the bit-parallel BFS: one
// bit per source in a uint64 word.
const BFSBatchWidth = 64
