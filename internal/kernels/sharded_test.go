package kernels

import (
	"context"
	"math/rand"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

var shardCounts = []int{1, 2, 7}

// TestEquivalenceShardedWalk requires ShardedWalkBlock to be bit-for-bit
// identical to WalkBlock — every column, every step, every TV distance —
// at 1, 2 and 7 shards, lazy and non-lazy, across graph shapes that
// include isolated nodes and bridges.
func TestEquivalenceShardedWalk(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", mustBA(t, 400, 3, 7)},
		{"clustered", mustClustered(t, 4, 60, 3, 1, 11)},
		{"withIsolated", withIsolated(t, mustBA(t, 150, 2, 3), 9)},
	} {
		g := tc.g
		rng := rand.New(rand.NewSource(5))
		sources := make([]graph.NodeID, 0, 10)
		for len(sources) < 10 {
			s := graph.NodeID(rng.Intn(g.NumNodes()))
			if g.Degree(s) > 0 {
				sources = append(sources, s)
			}
		}
		target, err := g.StationaryDistribution()
		if err != nil {
			t.Fatal(err)
		}
		for _, lazy := range []bool{true, false} {
			ref, err := NewWalkBlock(g, sources, lazy)
			if err != nil {
				t.Fatal(err)
			}
			refDist := make([][]float64, 0, 6)
			for step := 0; step < 6; step++ {
				ref.Step()
				d := make([]float64, len(sources))
				if err := ref.DistancesTo(target, d); err != nil {
					t.Fatal(err)
				}
				refDist = append(refDist, d)
			}
			refCols := make([][]float64, len(sources))
			for j := range sources {
				refCols[j] = ref.Column(j, nil)
			}

			for _, shards := range shardCounts {
				for _, workers := range []int{1, 3} {
					sg, err := graph.NewSharded(g, shards)
					if err != nil {
						t.Fatal(err)
					}
					wb, err := NewShardedWalkBlock(sg, sources, lazy)
					if err != nil {
						t.Fatal(err)
					}
					for step := 0; step < 6; step++ {
						if err := wb.Step(ctx, workers); err != nil {
							t.Fatal(err)
						}
						d := make([]float64, len(sources))
						if err := wb.DistancesTo(target, d); err != nil {
							t.Fatal(err)
						}
						for j := range d {
							if d[j] != refDist[step][j] {
								t.Fatalf("%s lazy=%v shards=%d workers=%d step %d col %d: tv %v != %v",
									tc.name, lazy, shards, workers, step, j, d[j], refDist[step][j])
							}
						}
					}
					for j := range sources {
						col := wb.Column(j, nil)
						for v := range col {
							if col[v] != refCols[j][v] {
								t.Fatalf("%s lazy=%v shards=%d: column %d node %d: %v != %v",
									tc.name, lazy, shards, j, v, col[v], refCols[j][v])
							}
						}
					}
				}
			}
		}
	}
}

// TestEquivalenceShardedBFS requires ShardedBFSBatch level sequences to
// equal BFSBatch's for full-width batches at 1, 2 and 7 shards.
func TestEquivalenceShardedBFS(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", mustBA(t, 500, 3, 13)},
		{"clustered", mustClustered(t, 3, 80, 3, 1, 17)},
		{"withIsolated", withIsolated(t, mustBA(t, 200, 2, 19), 7)},
	} {
		g := tc.g
		rng := rand.New(rand.NewSource(23))
		sources := make([]graph.NodeID, BFSBatchWidth)
		for i := range sources {
			sources[i] = graph.NodeID(rng.Intn(g.NumNodes()))
		}
		// Duplicate sources exercise the shared-frontier dedup.
		sources[5] = sources[3]

		ref := NewBFSBatch(g)
		want, err := ref.Run(sources)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardCounts {
			for _, workers := range []int{1, 4} {
				sg, err := graph.NewSharded(g, shards)
				if err != nil {
					t.Fatal(err)
				}
				b := NewShardedBFSBatch(sg)
				got, err := b.Run(ctx, sources, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s shards=%d: %d lanes, want %d", tc.name, shards, len(got), len(want))
				}
				for j := range want {
					if len(got[j]) != len(want[j]) {
						t.Fatalf("%s shards=%d lane %d: %d levels, want %d (%v vs %v)",
							tc.name, shards, j, len(got[j]), len(want[j]), got[j], want[j])
					}
					for d := range want[j] {
						if got[j][d] != want[j][d] {
							t.Fatalf("%s shards=%d lane %d depth %d: %d != %d",
								tc.name, shards, j, d, got[j][d], want[j][d])
						}
					}
				}
				// Scratch must be clean for reuse.
				again, err := b.Run(ctx, sources, workers)
				if err != nil {
					t.Fatal(err)
				}
				for j := range want {
					for d := range want[j] {
						if again[j][d] != want[j][d] {
							t.Fatalf("%s shards=%d: dirty scratch on reuse", tc.name, shards)
						}
					}
				}
			}
		}
	}
}

func TestShardedKernelValidation(t *testing.T) {
	ctx := context.Background()
	g := mustBA(t, 50, 2, 1)
	sg, err := graph.NewSharded(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedWalkBlock(sg, nil, true); err == nil {
		t.Error("empty sources: want error")
	}
	if _, err := NewShardedWalkBlock(sg, []graph.NodeID{99}, true); err == nil {
		t.Error("out-of-range source: want error")
	}
	b := NewShardedBFSBatch(sg)
	if _, err := b.Run(ctx, nil, 1); err == nil {
		t.Error("empty bfs sources: want error")
	}
	if _, err := b.Run(ctx, []graph.NodeID{-1}, 1); err == nil {
		t.Error("bad bfs source: want error")
	}
	big := make([]graph.NodeID, BFSBatchWidth+1)
	if _, err := b.Run(ctx, big, 1); err == nil {
		t.Error("overwide batch: want error")
	}
}

func mustBA(t *testing.T, n, attach int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, attach, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustClustered(t *testing.T, comms, size, attach, bridges int, seed int64) *graph.Graph {
	t.Helper()
	g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: comms, CommunitySize: size, Attach: attach, Bridges: bridges, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// withIsolated pads g with extra isolated nodes (same edges, larger n).
func withIsolated(t *testing.T, g *graph.Graph, extra int) *graph.Graph {
	t.Helper()
	out, err := graph.FromEdges(g.NumNodes()+extra, g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	return out
}
