package kernels

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/parallel"
)

// The sharded kernels run WalkBlock's and BFSBatch's computations over a
// graph.ShardedGraph with one worker per shard. They are gather-form
// rewrites of the scatter monolithic kernels: each shard computes only
// the state of the rows it owns, reading any row's current value but
// writing nothing outside its node range, so the fan-out needs no locks
// and no atomics — and the results are bit-for-bit identical to the
// monolithic kernels at any shard count.
//
// The identity argument for the walk: the monolithic scatter loop
// propagates sources in ascending node order, so destination u's
// additions arrive ordered by source ID — its neighbors ascending, with
// the lazy self-term inserted at u's own position. The gather loop below
// reproduces exactly that addition chain (same values, same order, from
// the same +0.0 start), computing every share with the same expressions
// (half first, then divide by degree) the scatter propagate uses. Nodes
// whose mass is exactly zero contribute +0.0 terms, which cannot change
// the bits of the non-negative partial sums a walk produces — the same
// argument WalkBlock itself relies on to skip zero rows. BFS state is
// integer bitsets combined with OR and popcount sums, which are
// order-independent, so its sharding needs no ordering care beyond
// accumulating the per-shard level counts in shard order.

// ShardedWalkBlock evolves a block of exact walk distributions over a
// sharded graph, one worker per shard. It mirrors WalkBlock's API and
// its bits: column j after k steps equals WalkBlock's column j after k
// steps on the same (monolithic) topology.
//
// A ShardedWalkBlock is not safe for concurrent use; Step itself fans
// out internally. A Step that returns an error (cancellation) leaves the
// block unusable.
type ShardedWalkBlock struct {
	sg    *graph.ShardedGraph
	width int
	lazy  bool
	deg   []int32
	// cur and next are the column-blocked n×width buffers; shard s only
	// ever writes rows in its node range.
	cur, next []float64
	step      int
}

// NewShardedWalkBlock returns a block with column j concentrated at
// sources[j], with the same validation as NewWalkBlock.
func NewShardedWalkBlock(sg *graph.ShardedGraph, sources []graph.NodeID, lazy bool) (*ShardedWalkBlock, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("kernels: walk block needs at least one source")
	}
	if sg.NumEdges() == 0 {
		return nil, fmt.Errorf("kernels: graph has no edges")
	}
	n := sg.NumNodes()
	b := len(sources)
	wb := &ShardedWalkBlock{
		sg:    sg,
		width: b,
		lazy:  lazy,
		deg:   make([]int32, n),
		cur:   make([]float64, n*b),
		next:  make([]float64, n*b),
	}
	for v := 0; v < n; v++ {
		wb.deg[v] = int32(sg.Degree(graph.NodeID(v)))
	}
	for j, s := range sources {
		if !sg.Valid(s) {
			return nil, fmt.Errorf("kernels: source %d out of range", s)
		}
		if wb.deg[s] == 0 {
			return nil, fmt.Errorf("kernels: source %d is isolated", s)
		}
		wb.cur[int(s)*b+j] = 1
	}
	return wb, nil
}

// Width returns the number of source columns in the block.
func (wb *ShardedWalkBlock) Width() int { return wb.width }

// StepCount returns the number of steps taken so far.
func (wb *ShardedWalkBlock) StepCount() int { return wb.step }

// Step advances every column one walk step (p ← pP, or p ← p(I+P)/2
// lazy) with one worker per shard.
func (wb *ShardedWalkBlock) Step(ctx context.Context, workers int) error {
	err := parallel.ForEach(ctx, workers, wb.sg.NumShards(), func(_, s int) error {
		wb.gatherShard(s)
		return nil
	})
	if err != nil {
		return err
	}
	wb.cur, wb.next = wb.next, wb.cur
	wb.step++
	return nil
}

// gatherShard computes the next-step rows shard s owns. For destination
// u the sources are u's neighbors plus (lazily) u itself; they are
// accumulated in ascending source order to replicate the monolithic
// scatter's addition chain exactly.
func (wb *ShardedWalkBlock) gatherShard(s int) {
	b := wb.width
	lo, hi := wb.sg.Range(s)
	for u := lo; u < hi; u++ {
		row := wb.next[int(u)*b : int(u)*b+b]
		for j := range row {
			row[j] = 0
		}
		ns := wb.sg.Neighbors(u)
		if len(ns) == 0 {
			// Isolated nodes hold their mass, un-halved, like the
			// monolithic isolated branch.
			copy(row, wb.cur[int(u)*b:int(u)*b+b])
			continue
		}
		selfDone := !wb.lazy
		for _, v := range ns {
			if !selfDone && v > u {
				cu := wb.cur[int(u)*b : int(u)*b+b]
				for j, m := range cu {
					row[j] += m / 2
				}
				selfDone = true
			}
			cv := wb.cur[int(v)*b : int(v)*b+b]
			dv := float64(wb.deg[v])
			if wb.lazy {
				for j, m := range cv {
					h := m / 2
					row[j] += h / dv
				}
			} else {
				for j, m := range cv {
					row[j] += m / dv
				}
			}
		}
		if !selfDone {
			cu := wb.cur[int(u)*b : int(u)*b+b]
			for j, m := range cu {
				row[j] += m / 2
			}
		}
	}
}

// DistancesTo writes each column's total variation distance to target
// into out, with the same sequential ascending-node fold as
// WalkBlock.DistancesTo — the fold stays single-threaded because
// splitting it per shard would change the floating-point addition order.
func (wb *ShardedWalkBlock) DistancesTo(target []float64, out []float64) error {
	n := wb.sg.NumNodes()
	b := wb.width
	if len(target) != n {
		return fmt.Errorf("kernels: total variation length mismatch %d vs %d", n, len(target))
	}
	if len(out) != b {
		return fmt.Errorf("kernels: distance buffer has %d slots for %d columns", len(out), b)
	}
	for j := range out {
		out[j] = 0
	}
	for v := 0; v < n; v++ {
		row := wb.cur[v*b : v*b+b]
		pv := target[v]
		for j, m := range row {
			out[j] += math.Abs(m - pv)
		}
	}
	for j := range out {
		out[j] /= 2
	}
	return nil
}

// Column copies column j's current distribution into dst (allocated when
// nil) and returns it.
func (wb *ShardedWalkBlock) Column(j int, dst []float64) []float64 {
	n := wb.sg.NumNodes()
	if dst == nil {
		dst = make([]float64, n)
	}
	for v := 0; v < n; v++ {
		dst[v] = wb.cur[v*wb.width+j]
	}
	return dst
}

// shardBFS is one shard's scratch for ShardedBFSBatch.
type shardBFS struct {
	touched []graph.NodeID
	active  []graph.NodeID
	masks   []uint64
	counts  [BFSBatchWidth]int64
}

// ShardedBFSBatch advances up to BFSBatchWidth breadth-first searches at
// once over a sharded graph. Each superstep every shard scans the global
// frontier's adjacency and keeps only the arcs landing in its own node
// range (frontier exchange by filtering, not by message passing), so all
// mask writes stay shard-local. Level sizes are integers, so the results
// equal BFSBatch.Run on the same topology at any shard count.
//
// A ShardedBFSBatch is not safe for concurrent use; Run fans out
// internally. A Run that returns an error leaves the scratch dirty;
// discard the batch.
type ShardedBFSBatch struct {
	sg            *graph.ShardedGraph
	next, visited []uint64
	// active and masks are the aligned frontier list: masks[i] holds the
	// source bits that reached active[i] last superstep. Carrying the
	// frontier as a list (instead of BFSBatch's front array) means a node
	// rediscovered by new lanes while it is still in the old frontier
	// needs no clear-before-harvest ordering across shards.
	active []graph.NodeID
	masks  []uint64
	sh     []shardBFS
}

// NewShardedBFSBatch returns a batch runner bound to sg.
func NewShardedBFSBatch(sg *graph.ShardedGraph) *ShardedBFSBatch {
	n := sg.NumNodes()
	return &ShardedBFSBatch{
		sg:      sg,
		next:    make([]uint64, n),
		visited: make([]uint64, n),
		sh:      make([]shardBFS, sg.NumShards()),
	}
}

// Run performs one BFS per source and returns each source's level-size
// sequence, exactly as BFSBatch.Run does.
func (b *ShardedBFSBatch) Run(ctx context.Context, sources []graph.NodeID, workers int) ([][]int64, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("kernels: bfs batch needs at least one source")
	}
	if len(sources) > BFSBatchWidth {
		return nil, fmt.Errorf("kernels: bfs batch of %d sources exceeds %d lanes", len(sources), BFSBatchWidth)
	}
	for _, s := range sources {
		if !b.sg.Valid(s) {
			return nil, fmt.Errorf("%w: bfs source %d", graph.ErrNodeRange, s)
		}
	}
	levels := make([][]int64, len(sources))
	b.active, b.masks = b.active[:0], b.masks[:0]
	for j, s := range sources {
		levels[j] = append(make([]int64, 0, 8), 1)
		b.visited[s] |= 1 << j
		found := false
		for i, v := range b.active {
			if v == s {
				b.masks[i] |= 1 << j
				found = true
				break
			}
		}
		if !found {
			b.active = append(b.active, s)
			b.masks = append(b.masks, 1<<j)
		}
	}

	shards := b.sg.NumShards()
	depth := 0
	for len(b.active) > 0 {
		depth++
		err := parallel.ForEach(ctx, workers, shards, func(_, s int) error {
			sh := &b.sh[s]
			lo, hi := b.sg.Range(s)
			// Scatter, filtered to owned rows: every shard walks the whole
			// frontier's adjacency but keeps only arcs it owns.
			touched := sh.touched[:0]
			for i, v := range b.active {
				fv := b.masks[i]
				for _, u := range b.sg.Neighbors(v) {
					if u < lo || u >= hi {
						continue
					}
					if b.next[u] == 0 {
						touched = append(touched, u)
					}
					b.next[u] |= fv
				}
			}
			// Harvest shard-locally into this shard's frontier fragment.
			sh.active, sh.masks = sh.active[:0], sh.masks[:0]
			clear(sh.counts[:len(sources)])
			for _, u := range touched {
				discovered := b.next[u] &^ b.visited[u]
				b.next[u] = 0
				if discovered == 0 {
					continue
				}
				b.visited[u] |= discovered
				sh.active = append(sh.active, u)
				sh.masks = append(sh.masks, discovered)
				for rem := discovered; rem != 0; rem &= rem - 1 {
					sh.counts[bits.TrailingZeros64(rem)]++
				}
			}
			sh.touched = touched[:0]
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Splice the shard frontiers and counts together in shard order —
		// deterministic at any worker count because nothing above depended
		// on scheduling.
		b.active, b.masks = b.active[:0], b.masks[:0]
		for s := range b.sh {
			sh := &b.sh[s]
			b.active = append(b.active, sh.active...)
			b.masks = append(b.masks, sh.masks...)
			for j := range levels {
				if c := sh.counts[j]; c != 0 {
					if len(levels[j]) == depth {
						levels[j] = append(levels[j], 0)
					}
					levels[j][depth] += c
				}
			}
		}
	}
	for i := range b.visited {
		b.visited[i] = 0
	}
	return levels, nil
}
