package kernels_test

import (
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kernels"
	"github.com/trustnet/trustnet/internal/walk"
)

// TestEquivalenceWalkBlockVsDistribution is the blocked kernel's core
// property: every column of a WalkBlock is bit-for-bit identical to an
// independent walk.Distribution from the same source, at every step, for
// both the plain and the lazy walk and at several block widths.
func TestEquivalenceWalkBlockVsDistribution(t *testing.T) {
	ba, err := gen.BarabasiAlbert(300, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	cycle, err := gen.Cycle(64) // bipartite: the plain walk oscillates, the lazy walk converges
	if err != nil {
		t.Fatal(err)
	}
	star, err := gen.Star(50)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{"ba": ba, "cycle": cycle, "star": star}

	for name, g := range graphs {
		for _, lazy := range []bool{false, true} {
			for _, width := range []int{1, 2, 5, 16} {
				sources := make([]graph.NodeID, width)
				for j := range sources {
					sources[j] = graph.NodeID((j * 7) % g.NumNodes())
					for g.Degree(sources[j]) == 0 {
						sources[j]++
					}
				}
				wb, err := kernels.NewWalkBlock(g, sources, lazy)
				if err != nil {
					t.Fatalf("%s width=%d: %v", name, width, err)
				}
				refs := make([]*walk.Distribution, width)
				for j, s := range sources {
					refs[j], err = walk.NewDistribution(g, s, lazy)
					if err != nil {
						t.Fatal(err)
					}
				}
				var col []float64
				for step := 0; step < 20; step++ {
					wb.Step()
					for j := range refs {
						refs[j].Step()
						col = wb.Column(j, col)
						for v, want := range refs[j].Probabilities() {
							if got := col[v]; got != want {
								t.Fatalf("%s lazy=%v width=%d step=%d col=%d node=%d: got %x want %x",
									name, lazy, width, step, j, v, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestEquivalenceWalkBlockDistances checks DistancesTo against the
// per-source walk.TotalVariation, bit for bit.
func TestEquivalenceWalkBlockDistances(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	sources := []graph.NodeID{0, 3, 9, 14, 77}
	wb, err := kernels.NewWalkBlock(g, sources, false)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*walk.Distribution, len(sources))
	for j, s := range sources {
		refs[j], err = walk.NewDistribution(g, s, false)
		if err != nil {
			t.Fatal(err)
		}
	}
	dist := make([]float64, len(sources))
	for step := 0; step < 15; step++ {
		wb.Step()
		if err := wb.DistancesTo(pi, dist); err != nil {
			t.Fatal(err)
		}
		for j := range refs {
			refs[j].Step()
			want, err := refs[j].DistanceTo(pi)
			if err != nil {
				t.Fatal(err)
			}
			if dist[j] != want {
				t.Fatalf("step=%d col=%d: got %x want %x", step, j, dist[j], want)
			}
		}
	}
	if math.IsNaN(dist[0]) {
		t.Fatal("distance went NaN")
	}
}

// TestWalkBlockErrors covers the constructor contract.
func TestWalkBlockErrors(t *testing.T) {
	g, err := gen.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kernels.NewWalkBlock(g, nil, false); err == nil {
		t.Error("empty source list: want error")
	}
	if _, err := kernels.NewWalkBlock(g, []graph.NodeID{99}, false); err == nil {
		t.Error("out-of-range source: want error")
	}
	empty := graph.NewBuilder(3).Build()
	if _, err := kernels.NewWalkBlock(empty, []graph.NodeID{0}, false); err == nil {
		t.Error("edgeless graph: want error")
	}
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	withIsolated := b.Build()
	if _, err := kernels.NewWalkBlock(withIsolated, []graph.NodeID{2}, false); err == nil {
		t.Error("isolated source: want error")
	}
}
