package kernels_test

import (
	"reflect"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kernels"
)

// disconnectedGraph builds two components plus an isolated node.
func disconnectedGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(12)
	for _, e := range [][2]graph.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // 4-cycle
		{5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 5}, {5, 7}, // chorded 5-cycle
		// 4 and 10, 11 isolated
	} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestEquivalenceBFSBatchVsScalar: the batch kernel's level sizes must
// equal the scalar BFS's, per source, on random, disconnected and star
// graphs, at several batch widths including a full 64-lane batch.
func TestEquivalenceBFSBatchVsScalar(t *testing.T) {
	ba, err := gen.BarabasiAlbert(500, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	star, err := gen.Star(80)
	if err != nil {
		t.Fatal(err)
	}
	path, err := gen.Path(70) // deep levels: many popcount rounds per lane
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"ba": ba, "star": star, "path": path, "disconnected": disconnectedGraph(t),
	}
	for name, g := range graphs {
		for _, width := range []int{1, 3, 64} {
			batch := kernels.NewBFSBatch(g)
			n := g.NumNodes()
			for start := 0; start < n; start += width {
				end := start + width
				if end > n {
					end = n
				}
				sources := make([]graph.NodeID, 0, end-start)
				for v := start; v < end; v++ {
					sources = append(sources, graph.NodeID(v))
				}
				levels, err := batch.Run(sources)
				if err != nil {
					t.Fatalf("%s width=%d: %v", name, width, err)
				}
				for j, s := range sources {
					ref, err := graph.BFS(g, s)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(levels[j], ref.LevelSizes) {
						t.Fatalf("%s width=%d source=%d: batch %v scalar %v",
							name, width, s, levels[j], ref.LevelSizes)
					}
				}
			}
		}
	}
}

// TestBFSBatchReuse runs the same batch runner back to back and with
// duplicate sources: scratch must come back clean between runs, and a
// result must stay valid after further runs.
func TestBFSBatchReuse(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	batch := kernels.NewBFSBatch(g)
	first, err := batch.Run([]graph.NodeID{0, 0, 5}) // duplicates share a frontier
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first[0], first[1]) {
		t.Fatalf("duplicate sources disagree: %v vs %v", first[0], first[1])
	}
	keep := append([]int64(nil), first[2]...)
	second, err := batch.Run([]graph.NodeID{5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second[0], keep) {
		t.Fatalf("rerun of source 5 diverged: %v vs %v", second[0], keep)
	}
	if !reflect.DeepEqual(first[2], keep) {
		t.Fatal("result from first run was clobbered by the second run")
	}
}

// TestBFSBatchErrors covers the lane-count and validity contract.
func TestBFSBatchErrors(t *testing.T) {
	g, err := gen.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	batch := kernels.NewBFSBatch(g)
	if _, err := batch.Run(nil); err == nil {
		t.Error("empty batch: want error")
	}
	if _, err := batch.Run(make([]graph.NodeID, 65)); err == nil {
		t.Error("65 lanes: want error")
	}
	if _, err := batch.Run([]graph.NodeID{42}); err == nil {
		t.Error("out-of-range source: want error")
	}
}
