package walk

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// countCtx is a context whose Err() flips to DeadlineExceeded after a
// fixed number of calls. With Workers=1 the measurement is sequential
// and consults Err() at deterministic points (once per fan-out item,
// once per walk step), so the interruption lands at exactly the same
// place on every run — unlike a wall-clock deadline.
type countCtx struct {
	context.Context
	calls   atomic.Int64
	budget  int64
	expired atomic.Bool
}

func newCountCtx(budget int64) *countCtx {
	return &countCtx{Context: context.Background(), budget: budget}
}

func (c *countCtx) Err() error {
	if c.calls.Add(1) > c.budget || c.expired.Load() {
		c.expired.Store(true)
		return context.DeadlineExceeded
	}
	return nil
}

func (c *countCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func testMixingConfig() MixingConfig {
	return MixingConfig{MaxSteps: 20, Sources: 6, Lazy: true, Seed: 11, Workers: 1, BlockSize: 1}
}

func TestMeasureMixingBestEffortPartial(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testMixingConfig()
	cfg.BestEffort = true
	// Enough Err() budget for roughly half the sources (one call per
	// fan-out item plus one per walk step).
	ctx := newCountCtx(3 * int64(cfg.MaxSteps+1))
	r, err := MeasureMixing(ctx, g, cfg)
	if err != nil {
		t.Fatalf("best-effort run returned error: %v", err)
	}
	if !r.Partial {
		t.Fatal("interrupted run not flagged Partial")
	}
	if r.Completed <= 0 || r.Completed >= cfg.Sources {
		t.Fatalf("Completed = %d, want strictly between 0 and %d", r.Completed, cfg.Sources)
	}
	if cov := r.Coverage(); cov <= 0 || cov >= 1 {
		t.Fatalf("Coverage() = %v, want in (0, 1)", cov)
	}
	// Salvaged curves are intact, cut-off sources are nil.
	done := 0
	for i, curve := range r.Curves {
		if curve == nil {
			continue
		}
		done++
		if len(curve) != cfg.MaxSteps {
			t.Fatalf("salvaged curve %d has %d steps, want %d", i, len(curve), cfg.MaxSteps)
		}
	}
	if done != r.Completed {
		t.Fatalf("non-nil curves = %d, Completed = %d", done, r.Completed)
	}
	// Aggregates fold only completed curves; they must be finite.
	for tstep := range r.MeanTVD {
		if math.IsInf(r.MinTVD[tstep], 1) || math.IsNaN(r.MeanTVD[tstep]) {
			t.Fatalf("aggregate at step %d not folded: min=%v mean=%v", tstep, r.MinTVD[tstep], r.MeanTVD[tstep])
		}
	}
}

func TestMeasureMixingBestEffortOffPropagatesDeadline(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testMixingConfig()
	ctx := newCountCtx(3 * int64(cfg.MaxSteps+1))
	if _, err := MeasureMixing(ctx, g, cfg); err == nil || !isInterrupt(err) {
		t.Fatalf("without BestEffort, interrupted run = %v, want deadline error", err)
	}
}

func TestMeasureMixingBestEffortZeroCoverageStillErrors(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testMixingConfig()
	cfg.BestEffort = true
	// Budget 0: nothing completes, so there is nothing to salvage.
	if _, err := MeasureMixing(newCountCtx(0), g, cfg); err == nil || !isInterrupt(err) {
		t.Fatalf("zero-coverage best-effort run = %v, want deadline error", err)
	}
}

// The resilience contract: interrupt a run, checkpoint it through a JSON
// round-trip (as internal/resilience would), resume, and the final
// result is bit-identical to the never-interrupted measurement.
func TestMeasureMixingResumeBitIdentical(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testMixingConfig()
	ref, err := MeasureMixing(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cut := cfg
	cut.BestEffort = true
	partial, err := MeasureMixing(newCountCtx(3*int64(cfg.MaxSteps+1)), g, cut)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || partial.Completed == 0 {
		t.Fatalf("setup: expected a partial result, got %+v", partial)
	}

	// Serialize the checkpoint the way the checkpoint store does.
	data, err := json.Marshal(partial.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	var ckpt MixingCheckpoint
	if err := json.Unmarshal(data, &ckpt); err != nil {
		t.Fatal(err)
	}

	resumed := cfg
	resumed.Resume = &ckpt
	got, err := MeasureMixing(context.Background(), g, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || got.Completed != cfg.Sources || got.Coverage() != 1 {
		t.Fatalf("resumed run incomplete: %+v", got)
	}
	for i := range ref.Curves {
		for tstep := range ref.Curves[i] {
			if math.Float64bits(ref.Curves[i][tstep]) != math.Float64bits(got.Curves[i][tstep]) {
				t.Fatalf("curve[%d][%d] differs after resume: %x vs %x", i, tstep,
					math.Float64bits(ref.Curves[i][tstep]), math.Float64bits(got.Curves[i][tstep]))
			}
		}
	}
	if !reflect.DeepEqual(ref.MeanTVD, got.MeanTVD) ||
		!reflect.DeepEqual(ref.MaxTVD, got.MaxTVD) ||
		!reflect.DeepEqual(ref.MinTVD, got.MinTVD) {
		t.Fatal("aggregates differ between resumed and uninterrupted runs")
	}
}

// Resume must also reproduce the uninterrupted result on the blocked
// kernel path, where the cut can land mid-block.
func TestMeasureMixingResumeKernelPath(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testMixingConfig()
	cfg.Sources = 8
	cfg.BlockSize = 3
	ref, err := MeasureMixing(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := cfg
	cut.BestEffort = true
	// The blocked kernel consults Err() once per step per block, so this
	// budget lets the first block finish and cuts the second.
	partial, err := MeasureMixing(newCountCtx(int64(cfg.MaxSteps)+8), g, cut)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial {
		t.Fatalf("setup: expected a partial result, got coverage %v", partial.Coverage())
	}
	resumed := cfg
	resumed.Resume = partial.Checkpoint()
	got, err := MeasureMixing(context.Background(), g, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Curves, got.Curves) {
		t.Fatal("kernel-path curves differ between resumed and uninterrupted runs")
	}
}

func TestMeasureMixingResumeMismatchRejected(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testMixingConfig()
	r, err := MeasureMixing(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different seed samples different sources: the checkpoint is stale.
	stale := cfg
	stale.Seed++
	stale.Resume = r.Checkpoint()
	if _, err := MeasureMixing(context.Background(), g, stale); err == nil {
		t.Fatal("stale checkpoint (different sources) accepted")
	}
	// Different step budget: curves have the wrong length.
	short := cfg
	short.MaxSteps++
	short.Resume = r.Checkpoint()
	if _, err := MeasureMixing(context.Background(), g, short); err == nil {
		t.Fatal("stale checkpoint (different MaxSteps) accepted")
	}
	// A fully-done checkpoint resumes to the identical result without
	// re-measuring anything.
	done := cfg
	done.Resume = r.Checkpoint()
	got, err := MeasureMixing(context.Background(), g, done)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.MeanTVD, got.MeanTVD) {
		t.Fatal("resuming a complete checkpoint changed the result")
	}
}

// Guard against graph.NodeID changing width: the checkpoint JSON wire
// format encodes sources as numbers and must keep doing so.
func TestMixingCheckpointJSONShape(t *testing.T) {
	c := &MixingCheckpoint{Sources: []graph.NodeID{1, 2}, Curves: [][]float64{{0.5}, nil}}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"sources":[1,2],"curves":[[0.5],null]}`
	if string(data) != want {
		t.Fatalf("wire format = %s, want %s", data, want)
	}
}
