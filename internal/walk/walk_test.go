package walk

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func TestTotalVariation(t *testing.T) {
	tests := []struct {
		name string
		p, q []float64
		want float64
	}{
		{"identical", []float64{0.5, 0.5}, []float64{0.5, 0.5}, 0},
		{"disjoint", []float64{1, 0}, []float64{0, 1}, 1},
		{"half", []float64{0.75, 0.25}, []float64{0.25, 0.75}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := TotalVariation(tt.p, tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("TVD = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := TotalVariation([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("TotalVariation(mismatch): want error")
	}
}

func TestDistributionCompleteGraphMixesInstantly(t *testing.T) {
	g, err := gen.Complete(50)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDistribution(g, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	d.Step()
	d.Step()
	tvd, err := d.DistanceTo(pi)
	if err != nil {
		t.Fatal(err)
	}
	// On K_n the walk is within O(1/n) of uniform after two steps.
	if tvd > 0.05 {
		t.Errorf("TVD on K50 after 2 steps = %v, want < 0.05", tvd)
	}
	if d.StepCount() != 2 {
		t.Errorf("StepCount = %d, want 2", d.StepCount())
	}
}

func TestDistributionConservesMass(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDistribution(g, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		d.Step()
		sum := 0.0
		for _, p := range d.Probabilities() {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("step %d: mass = %v, want 1", i+1, sum)
		}
	}
}

func TestDistributionBipartitePeriodicity(t *testing.T) {
	// On an even cycle the plain walk is periodic and never converges,
	// while the lazy walk does.
	g, err := gen.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewDistribution(g, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewDistribution(g, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		plain.Step()
		lazy.Step()
	}
	plainTVD, err := plain.DistanceTo(pi)
	if err != nil {
		t.Fatal(err)
	}
	lazyTVD, err := lazy.DistanceTo(pi)
	if err != nil {
		t.Fatal(err)
	}
	if plainTVD < 0.4 {
		t.Errorf("plain walk TVD on even cycle = %v, expected stuck near 0.5", plainTVD)
	}
	if lazyTVD > 0.01 {
		t.Errorf("lazy walk TVD on even cycle = %v, want < 0.01", lazyTVD)
	}
}

func TestNewDistributionErrors(t *testing.T) {
	var empty graph.Graph
	if _, err := NewDistribution(&empty, 0, false); !errors.Is(err, ErrNoEdges) {
		t.Errorf("NewDistribution(empty) = %v, want ErrNoEdges", err)
	}
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if _, err := NewDistribution(g, 7, false); err == nil {
		t.Error("NewDistribution(out of range): want error")
	}
	if _, err := NewDistribution(g, 2, false); err == nil {
		t.Error("NewDistribution(isolated source): want error")
	}
}

func TestMeasureMixingFastVsSlow(t *testing.T) {
	// Fast mixer: preferential attachment. Slow mixer: clustered
	// communities with few bridges. This is the paper's central contrast.
	fast, err := gen.BarabasiAlbert(400, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 8, CommunitySize: 50, Attach: 3, Bridges: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MixingConfig{MaxSteps: 150, Sources: 20, Lazy: true, Seed: 42}
	fr, err := MeasureMixing(context.Background(), fast, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := MeasureMixing(context.Background(), slow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.1
	ft, fok := fr.MixingTime(eps)
	if !fok {
		t.Fatal("fast graph never mixed within budget")
	}
	st, sok := sr.MixingTime(eps)
	if sok && st <= ft {
		t.Errorf("slow graph mixed in %d <= fast %d; expected slower", st, ft)
	}
	if !sok {
		t.Logf("slow graph did not mix within %d steps (expected)", cfg.MaxSteps)
	}
}

func TestMeasureMixingCurvesMonotoneish(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MeasureMixing(context.Background(), g, MixingConfig{MaxSteps: 50, Sources: 10, Lazy: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MeanTVD) != 50 || len(r.MaxTVD) != 50 || len(r.MinTVD) != 50 {
		t.Fatalf("curve lengths = %d/%d/%d", len(r.MeanTVD), len(r.MaxTVD), len(r.MinTVD))
	}
	for tstep := range r.MeanTVD {
		if r.MinTVD[tstep] > r.MeanTVD[tstep]+1e-12 || r.MeanTVD[tstep] > r.MaxTVD[tstep]+1e-12 {
			t.Fatalf("step %d: min %v mean %v max %v out of order",
				tstep, r.MinTVD[tstep], r.MeanTVD[tstep], r.MaxTVD[tstep])
		}
	}
	// Lazy-walk TVD from a point mass is non-increasing in t.
	for tstep := 1; tstep < len(r.MaxTVD); tstep++ {
		if r.MaxTVD[tstep] > r.MaxTVD[tstep-1]+1e-9 {
			t.Fatalf("MaxTVD increased at step %d: %v -> %v", tstep, r.MaxTVD[tstep-1], r.MaxTVD[tstep])
		}
	}
	if _, ok := r.MixingTime(1e-9); ok {
		// Plausible but unlikely at 50 steps on 200 nodes; not an error.
		t.Log("graph mixed to 1e-9 within 50 steps")
	}
	if mt, ok := r.MeanMixingTime(0.25); !ok || mt < 1 {
		t.Errorf("MeanMixingTime(0.25) = %d,%v", mt, ok)
	}
}

func TestSourceMixingTimesDistribution(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MeasureMixing(context.Background(), g, MixingConfig{MaxSteps: 80, Sources: 15, Lazy: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 15 {
		t.Fatalf("curves = %d, want 15", len(r.Curves))
	}
	times := r.SourceMixingTimes(0.05)
	if len(times) != 15 {
		t.Fatalf("times = %d", len(times))
	}
	worst, ok := r.MixingTime(0.05)
	if !ok {
		t.Fatal("graph did not mix")
	}
	maxSrc := 0
	for i, tm := range times {
		if tm == 0 {
			t.Errorf("source %d never mixed despite worst-case mixing at %d", i, worst)
		}
		if tm > maxSrc {
			maxSrc = tm
		}
		if tm > worst {
			t.Errorf("source %d time %d exceeds worst-case %d", i, tm, worst)
		}
	}
	// The worst source defines the overall mixing time exactly.
	if maxSrc != worst {
		t.Errorf("max source time %d != MixingTime %d", maxSrc, worst)
	}
	// And the per-source curves reconstruct the aggregates.
	for tstep := 0; tstep < 80; tstep += 13 {
		maxT := 0.0
		for _, c := range r.Curves {
			if c[tstep] > maxT {
				maxT = c[tstep]
			}
		}
		if math.Abs(maxT-r.MaxTVD[tstep]) > 1e-12 {
			t.Errorf("step %d: curve max %v != MaxTVD %v", tstep, maxT, r.MaxTVD[tstep])
		}
	}
}

func TestMeasureMixingConfigValidation(t *testing.T) {
	g, err := gen.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureMixing(context.Background(), g, MixingConfig{MaxSteps: 0, Sources: 1}); err == nil {
		t.Error("MaxSteps=0: want error")
	}
	if _, err := MeasureMixing(context.Background(), g, MixingConfig{MaxSteps: 5, Sources: 0}); err == nil {
		t.Error("Sources=0: want error")
	}
	var empty graph.Graph
	if _, err := MeasureMixing(context.Background(), &empty, MixingConfig{MaxSteps: 5, Sources: 1}); err == nil {
		t.Error("empty graph: want error")
	}
}

func TestSampleSources(t *testing.T) {
	b := graph.NewBuilder(10)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	g := b.Build() // nodes 4..9 isolated
	srcs, err := SampleSources(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 4 {
		t.Fatalf("sampled %d sources, want 4 non-isolated", len(srcs))
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range srcs {
		if g.Degree(s) == 0 {
			t.Errorf("sampled isolated node %d", s)
		}
		if seen[s] {
			t.Errorf("duplicate source %d", s)
		}
		seen[s] = true
	}
	if _, err := SampleSources(g, 0, 1); err == nil {
		t.Error("SampleSources(k=0): want error")
	}
	var empty graph.Graph
	if _, err := SampleSources(&empty, 3, 1); !errors.Is(err, ErrNoEdges) {
		t.Errorf("SampleSources(empty) = %v, want ErrNoEdges", err)
	}
}

func TestWalkerTrajectory(t *testing.T) {
	g, err := gen.Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(g, 7)
	traj, err := w.Walk(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 26 {
		t.Fatalf("trajectory length = %d, want 26", len(traj))
	}
	if traj[0] != 0 {
		t.Errorf("trajectory starts at %d, want 0", traj[0])
	}
	for i := 1; i < len(traj); i++ {
		if !g.HasEdge(traj[i-1], traj[i]) {
			t.Fatalf("step %d: %d -> %d is not an edge", i, traj[i-1], traj[i])
		}
	}
}

func TestWalkerErrors(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	w := NewWalker(g, 1)
	if _, err := w.Walk(9, 5); err == nil {
		t.Error("Walk(out of range): want error")
	}
	if _, err := w.Walk(0, -1); err == nil {
		t.Error("Walk(negative length): want error")
	}
	if _, err := w.Walk(2, 5); err == nil {
		t.Error("Walk(isolated): want error")
	}
	if _, err := w.Endpoint(9, 5); err == nil {
		t.Error("Endpoint(out of range): want error")
	}
	if _, err := w.Endpoint(2, 5); err == nil {
		t.Error("Endpoint(isolated): want error")
	}
}

func TestWalkerDeterministic(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewWalker(g, 99).Walk(3, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWalker(g, 99).Walk(3, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWalkerEndpointMatchesStationary(t *testing.T) {
	// Empirical endpoint frequencies of long walks should approximate the
	// degree-proportional stationary distribution.
	g, err := gen.BarabasiAlbert(60, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(g, 123)
	counts := make([]float64, g.NumNodes())
	const trials = 6000
	for i := 0; i < trials; i++ {
		end, err := w.Endpoint(0, 80)
		if err != nil {
			t.Fatal(err)
		}
		counts[end]++
	}
	for i := range counts {
		counts[i] /= trials
	}
	tvd, err := TotalVariation(counts, pi)
	if err != nil {
		t.Fatal(err)
	}
	if tvd > 0.08 {
		t.Errorf("endpoint TVD to stationary = %v, want < 0.08", tvd)
	}
}

// Property: TVD is a metric-ish quantity in [0,1] for distributions, and
// symmetric.
func TestTotalVariationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		p := randomDist(rng, n)
		q := randomDist(rng, n)
		d1, err := TotalVariation(p, q)
		if err != nil {
			return false
		}
		d2, err := TotalVariation(q, p)
		if err != nil {
			return false
		}
		self, err := TotalVariation(p, p)
		if err != nil {
			return false
		}
		return d1 >= 0 && d1 <= 1+1e-12 && math.Abs(d1-d2) < 1e-12 && self == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomDist(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	sum := 0.0
	for i := range p {
		p[i] = rng.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func TestMeasureMixingHonorsCancellation(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the measurement must abort between steps
	if _, err := MeasureMixing(ctx, g, MixingConfig{MaxSteps: 1000, Sources: 10, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("MeasureMixing(cancelled ctx) = %v, want context.Canceled", err)
	}
}
