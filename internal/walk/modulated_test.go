package walk

import (
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func baGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(300, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestModulatedUniformMatchesPlain(t *testing.T) {
	g := baGraph(t)
	plain, err := NewDistribution(g, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModulatedDistribution(g, 3, ModulatedConfig{Strategy: StrategyUniform})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 25; s++ {
		plain.Step()
		mod.Step()
	}
	tvd, err := TotalVariation(plain.Probabilities(), mod.Probabilities())
	if err != nil {
		t.Fatal(err)
	}
	if tvd > 1e-12 {
		t.Errorf("uniform strategy diverges from plain walk: TVD %v", tvd)
	}
}

func TestModulatedLazyHalfMatchesLazyWalk(t *testing.T) {
	g := baGraph(t)
	lazy, err := NewDistribution(g, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModulatedDistribution(g, 0, ModulatedConfig{Strategy: StrategyLazy, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 20; s++ {
		lazy.Step()
		mod.Step()
	}
	tvd, err := TotalVariation(lazy.Probabilities(), mod.Probabilities())
	if err != nil {
		t.Fatal(err)
	}
	if tvd > 1e-12 {
		t.Errorf("lazy(0.5) diverges from built-in lazy walk: TVD %v", tvd)
	}
}

func TestModulationSlowsMixing(t *testing.T) {
	// The trade-off from [16]: more trust modulation, slower mixing.
	g := baGraph(t)
	pi, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	const steps = 30
	prev := -1.0
	for _, alpha := range []float64{0, 0.3, 0.6, 0.9} {
		curve, err := ModulatedMixingCurve(g, 0, ModulatedConfig{Strategy: StrategyLazy, Alpha: alpha}, pi, steps)
		if err != nil {
			t.Fatal(err)
		}
		final := curve[steps-1]
		if final < prev {
			t.Errorf("alpha=%v: final TVD %v < previous %v; laziness should slow mixing", alpha, final, prev)
		}
		prev = final
	}
}

func TestOriginatorBiasedNeverFullyMixes(t *testing.T) {
	g := baGraph(t)
	pi, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	curve, err := ModulatedMixingCurve(g, 0,
		ModulatedConfig{Strategy: StrategyOriginatorBiased, Alpha: 0.3}, pi, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The walk keeps teleporting home, so it converges to a personalized
	// distribution bounded away from π.
	if final := curve[len(curve)-1]; final < 0.05 {
		t.Errorf("originator-biased walk reached TVD %v to pi; expected a persistent gap", final)
	}
	// But it does converge (to its own stationary point): late deltas
	// are tiny.
	if delta := math.Abs(curve[199] - curve[150]); delta > 1e-3 {
		t.Errorf("late TVD still moving by %v; expected convergence", delta)
	}
}

func TestInteractionBiasedUniformWeightsMatchPlain(t *testing.T) {
	g := baGraph(t)
	plain, err := NewDistribution(g, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModulatedDistribution(g, 7, ModulatedConfig{
		Strategy: StrategyInteractionBiased,
		Weight:   func(_, _ graph.NodeID) float64 { return 2.5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 20; s++ {
		plain.Step()
		mod.Step()
	}
	tvd, err := TotalVariation(plain.Probabilities(), mod.Probabilities())
	if err != nil {
		t.Fatal(err)
	}
	if tvd > 1e-12 {
		t.Errorf("uniform-weight interaction walk diverges from plain: TVD %v", tvd)
	}
}

func TestInteractionBiasedConvergesToWeightedStationary(t *testing.T) {
	g := baGraph(t)
	// Symmetric trust weights: stronger between low-ID ("old friend")
	// pairs.
	weight := func(a, b graph.NodeID) float64 {
		if a > b {
			a, b = b, a
		}
		return 1 + 10/float64(b+1)
	}
	pi, err := WeightedStationary(g, weight)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weighted stationary sums to %v", sum)
	}
	curve, err := ModulatedMixingCurve(g, 0, ModulatedConfig{
		Strategy: StrategyInteractionBiased, Weight: weight,
	}, pi, 120)
	if err != nil {
		t.Fatal(err)
	}
	if final := curve[len(curve)-1]; final > 0.01 {
		t.Errorf("weighted walk TVD to weighted stationary = %v, want < 0.01", final)
	}
}

func TestModulatedValidation(t *testing.T) {
	g := baGraph(t)
	bad := []ModulatedConfig{
		{Strategy: 99},
		{Strategy: StrategyLazy, Alpha: 1},
		{Strategy: StrategyLazy, Alpha: -0.1},
		{Strategy: StrategyOriginatorBiased, Alpha: 1.5},
		{Strategy: StrategyInteractionBiased}, // nil weight
	}
	for _, cfg := range bad {
		if _, err := NewModulatedDistribution(g, 0, cfg); err == nil {
			t.Errorf("NewModulatedDistribution(%+v): want error", cfg)
		}
	}
	if _, err := NewModulatedDistribution(g, 0, ModulatedConfig{
		Strategy: StrategyInteractionBiased,
		Weight:   func(_, _ graph.NodeID) float64 { return -1 },
	}); err == nil {
		t.Error("negative weights: want error")
	}
	var empty graph.Graph
	if _, err := NewModulatedDistribution(&empty, 0, ModulatedConfig{Strategy: StrategyUniform}); err == nil {
		t.Error("empty graph: want error")
	}
	if _, err := NewModulatedDistribution(g, 9999, ModulatedConfig{Strategy: StrategyUniform}); err == nil {
		t.Error("bad source: want error")
	}
	if _, err := ModulatedMixingCurve(g, 0, ModulatedConfig{Strategy: StrategyUniform}, nil, 0); err == nil {
		t.Error("maxSteps=0: want error")
	}
	if _, err := WeightedStationary(g, nil); err == nil {
		t.Error("WeightedStationary(nil): want error")
	}
	if _, err := WeightedStationary(&empty, func(_, _ graph.NodeID) float64 { return 1 }); err == nil {
		t.Error("WeightedStationary(empty): want error")
	}
}

func TestStrategyString(t *testing.T) {
	tests := map[Strategy]string{
		StrategyUniform:           "uniform",
		StrategyLazy:              "lazy",
		StrategyOriginatorBiased:  "originator-biased",
		StrategyInteractionBiased: "interaction-biased",
		Strategy(42):              "Strategy(42)",
	}
	for s, want := range tests {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestModulatedConservesMass(t *testing.T) {
	g := baGraph(t)
	for _, cfg := range []ModulatedConfig{
		{Strategy: StrategyLazy, Alpha: 0.4},
		{Strategy: StrategyOriginatorBiased, Alpha: 0.25},
		{Strategy: StrategyInteractionBiased, Weight: func(a, b graph.NodeID) float64 { return float64(a+b) + 1 }},
	} {
		d, err := NewModulatedDistribution(g, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 15; s++ {
			d.Step()
			sum := 0.0
			for _, p := range d.Probabilities() {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%v step %d: mass %v", cfg.Strategy, s+1, sum)
			}
		}
		if d.StepCount() != 15 {
			t.Errorf("StepCount = %d", d.StepCount())
		}
	}
}
