// Package walk implements the random-walk machinery of §III-C of the
// paper: exact evolution of the walk distribution p ← pP over the simple
// random walk (Eq. 1), the total variation distance to the stationary
// distribution, and the sampling method for measuring the mixing time
// T(ε) (Eq. 2) from many sampled sources. It also provides the discrete
// random-walk trajectories that the Sybil defenses (SybilGuard, SybilLimit,
// GateKeeper, ...) are built on.
//
// Complexity: one exact walk step is O(m); measuring Eq. 2 over k sampled
// sources for T steps is O(k·T·m) total. On large graphs the sources fan
// out in blocks of MixingConfig.BlockSize over the blocked propagation
// kernel (kernels.WalkBlock), which streams the adjacency once per step
// for a whole block instead of once per source, for O(k·T·m/(workers·B))
// adjacency scans; small graphs keep the per-source dense loop (one
// Distribution per worker). Results are bit-for-bit independent of both
// the worker count and the block width: each source's curve is a pure
// function of the graph (blocked columns receive the same additions in
// the same order as the dense loop), and curves are folded in source
// order.
package walk

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kernels"
	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/parallel"
)

// Observability instruments for the mixing measurement, resolved once so
// the per-curve bookkeeping is a handful of atomic adds — never a map
// lookup or allocation on the measurement path. Counting happens per
// source curve / per block, not per walk step, so the walk inner loops
// are untouched and stay bit-identical with metrics enabled.
var (
	obsMixSteps        = obs.Default().Counter("walk.mixing.steps")
	obsMixDenseSources = obs.Default().Counter("walk.mixing.dense_sources")
	obsMixKernelBlocks = obs.Default().Counter("walk.mixing.kernel_blocks")
	obsMixHandovers    = obs.Default().Counter("walk.mixing.sparse_to_dense")
	obsMixPartial      = obs.Default().Counter("walk.mixing.partial")
	obsMixResumed      = obs.Default().Counter("walk.mixing.resumed_sources")
)

// ErrNoEdges is returned when the random walk is undefined because the
// graph has no edges.
var ErrNoEdges = errors.New("walk: graph has no edges")

// TotalVariation returns ||p - q||_TV = ½ Σ|p_i - q_i| for equal-length
// distributions.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("walk: total variation length mismatch %d vs %d", len(p), len(q))
	}
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2, nil
}

// Distribution tracks the exact probability distribution of a random walk
// as it evolves. A Distribution is bound to one graph; Step costs O(m).
// Distributions are not safe for concurrent use; create one per goroutine.
type Distribution struct {
	v    graph.View
	nbr  *graph.Adj
	n    int
	cur  []float64
	next []float64
	// Lazy selects the lazy walk P' = (I+P)/2, which is aperiodic on every
	// connected graph (the plain walk is periodic on bipartite graphs and
	// then never converges).
	lazy bool
	step int
	// support lists the nodes with (possibly) nonzero mass in cur, in
	// ascending order; every other cur entry is exactly zero. nil means
	// the walk has spread past half the graph and Step uses the dense
	// scan for the rest of the distribution's life.
	support []graph.NodeID
	// stale lists the entries of next still holding mass from two steps
	// ago — the only entries Step must zero on the sparse path, instead
	// of the unconditional O(n) clear.
	stale []graph.NodeID
	// mark is the first-touch scratch for building the next support list.
	mark []bool
}

// NewDistribution returns the distribution concentrated at source. It
// accepts any graph.View; on zero-copy views the walk evolves directly
// over the masked adjacency without materializing a copy.
func NewDistribution(g graph.View, source graph.NodeID, lazy bool) (*Distribution, error) {
	if g.NumEdges() == 0 {
		return nil, ErrNoEdges
	}
	if !g.Valid(source) {
		return nil, fmt.Errorf("walk: source %d out of range", source)
	}
	if g.Degree(source) == 0 {
		return nil, fmt.Errorf("walk: source %d is isolated", source)
	}
	d := &Distribution{
		v:       g,
		nbr:     graph.NewAdj(g),
		n:       g.NumNodes(),
		cur:     make([]float64, g.NumNodes()),
		next:    make([]float64, g.NumNodes()),
		lazy:    lazy,
		support: []graph.NodeID{source},
		mark:    make([]bool, g.NumNodes()),
	}
	d.cur[source] = 1
	return d, nil
}

// Step advances the distribution one walk step: p ← pP (or p ← p(I+P)/2
// for the lazy walk). While the walk's support is small, only the touched
// entries of the scratch buffer are zeroed and only support nodes are
// propagated, so a step on a slow-spreading walk costs O(edges incident
// to the support) instead of O(n+m); the propagation order (ascending
// node, CSR neighbor order) and hence every floating-point result is
// bit-identical to the dense scan.
func (d *Distribution) Step() {
	if d.support == nil {
		d.stepDense()
	} else {
		d.stepSparse()
	}
	d.cur, d.next = d.next, d.cur
	d.step++
}

func (d *Distribution) stepDense() {
	for i := range d.next {
		d.next[i] = 0
	}
	for v := graph.NodeID(0); int(v) < d.n; v++ {
		mass := d.cur[v]
		if mass == 0 {
			continue
		}
		ns := d.nbr.Neighbors(v)
		if len(ns) == 0 {
			d.next[v] += mass // isolated nodes hold their (zero-by-construction) mass
			continue
		}
		if d.lazy {
			d.next[v] += mass / 2
			mass /= 2
		}
		share := mass / float64(len(ns))
		for _, u := range ns {
			d.next[u] += share
		}
	}
}

func (d *Distribution) stepSparse() {
	for _, v := range d.stale {
		d.next[v] = 0
	}
	// stale's contents are consumed; its backing array becomes the new
	// support list built from first touches below.
	touched := d.stale[:0]
	for _, v := range d.support {
		mass := d.cur[v]
		if mass == 0 {
			continue
		}
		ns := d.nbr.Neighbors(v)
		if len(ns) == 0 {
			d.next[v] += mass
			if !d.mark[v] {
				d.mark[v] = true
				touched = append(touched, v)
			}
			continue
		}
		if d.lazy {
			d.next[v] += mass / 2
			mass /= 2
			if !d.mark[v] {
				d.mark[v] = true
				touched = append(touched, v)
			}
		}
		share := mass / float64(len(ns))
		for _, u := range ns {
			d.next[u] += share
			if !d.mark[u] {
				d.mark[u] = true
				touched = append(touched, u)
			}
		}
	}
	// The next step iterates this list as its support, so it must be
	// ascending for the addition order to keep matching the dense scan.
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	for _, v := range touched {
		d.mark[v] = false
	}
	d.stale = d.support
	d.support = touched
	if len(touched) > d.n/2 {
		// The support rarely shrinks below half once the walk has spread
		// this far; the dense scan's straight-line clear is cheaper than
		// list upkeep from here on.
		d.support = nil
		d.stale = nil
	}
}

// StepCount returns the number of steps taken so far.
func (d *Distribution) StepCount() int { return d.step }

// Dense reports whether the distribution has handed over from the
// sparse-frontier fast path to the permanent dense scan.
func (d *Distribution) Dense() bool { return d.support == nil }

// Probabilities returns the current distribution. The slice aliases
// internal state and is only valid until the next Step.
func (d *Distribution) Probabilities() []float64 { return d.cur }

// DistanceTo returns the total variation distance from the current
// distribution to target.
func (d *Distribution) DistanceTo(target []float64) (float64, error) {
	return TotalVariation(d.cur, target)
}

// MixingConfig parameterizes the sampling-method mixing measurement.
type MixingConfig struct {
	// MaxSteps bounds the walk length explored (the x-axis of Figure 1).
	MaxSteps int
	// Sources is the number of sampled walk sources; the paper samples
	// 1000 sources on its graphs, scaled-down graphs need fewer.
	Sources int
	// Lazy selects the lazy walk. The paper's graphs are non-bipartite so
	// it measures the plain walk; tests on bipartite structures need lazy.
	Lazy bool
	// Seed drives source sampling.
	Seed int64
	// Workers sets how many sources are measured concurrently; defaults
	// to GOMAXPROCS when <= 0. Results are deterministic regardless of
	// worker count because each source's curve is independent.
	Workers int
	// BlockSize selects the propagation kernel. 0 auto-selects: blocks of
	// kernels.DefaultBlockWidth sources per kernels.WalkBlock on graphs
	// with at least kernels.MinKernelNodes nodes, the per-source dense
	// loop otherwise (tiny graphs don't benefit from blocking). 1 forces
	// the per-source loop; values > 1 force that block width. Every
	// setting produces bit-identical results — the knob only trades
	// adjacency-scan amortization against fan-out granularity.
	BlockSize int
	// BestEffort salvages a deadline-hit measurement: when ctx is
	// canceled or times out mid-run, MeasureMixing returns the curves of
	// the sources completed so far (Result.Partial true, Coverage < 1)
	// instead of the context error, as long as at least one source
	// finished. Each completed curve is bit-identical to what the
	// uninterrupted run would have produced, so partial results compose
	// with Resume into exact continuations.
	BestEffort bool
	// Resume seeds the measurement with curves completed by an earlier
	// (interrupted) run of the *same* configuration: sources whose
	// checkpoint curve is non-nil are not re-measured. The checkpoint's
	// source list must match this run's sampled sources exactly —
	// anything else is stale state and an error.
	Resume *MixingCheckpoint
}

func (c MixingConfig) validate() error {
	if c.MaxSteps < 1 {
		return fmt.Errorf("walk: MaxSteps must be >= 1, got %d", c.MaxSteps)
	}
	if c.Sources < 1 {
		return fmt.Errorf("walk: Sources must be >= 1, got %d", c.Sources)
	}
	if c.BlockSize < 0 {
		return fmt.Errorf("walk: BlockSize must be >= 0, got %d", c.BlockSize)
	}
	return nil
}

// blockWidth resolves the BlockSize knob against the graph size.
func (c MixingConfig) blockWidth(g graph.View) int {
	if c.BlockSize != 0 {
		return c.BlockSize
	}
	if g.NumNodes() >= kernels.MinKernelNodes {
		return kernels.DefaultBlockWidth
	}
	return 1
}

// MixingCheckpoint is the resumable progress of a mixing measurement:
// the sampled sources and, per source, the completed TVD curve (nil for
// sources not yet measured). Because each curve is a pure function of
// (graph, source, config), merging a checkpoint into a resumed run
// reproduces the uninterrupted measurement bit-for-bit. The JSON
// encoding round-trips float64 exactly, so a checkpoint that passed
// through internal/resilience's store resumes losslessly.
type MixingCheckpoint struct {
	Sources []graph.NodeID `json:"sources"`
	Curves  [][]float64    `json:"curves"`
}

// matches reports whether the checkpoint belongs to a measurement with
// these sources and step budget.
func (c *MixingCheckpoint) matches(sources []graph.NodeID, maxSteps int) bool {
	if len(c.Sources) != len(sources) || len(c.Curves) != len(sources) {
		return false
	}
	for i, s := range c.Sources {
		if s != sources[i] {
			return false
		}
	}
	for _, curve := range c.Curves {
		if curve != nil && len(curve) != maxSteps {
			return false
		}
	}
	return true
}

// MixingResult is the outcome of the sampling-method measurement.
type MixingResult struct {
	// MeanTVD[t] is the mean total variation distance to stationarity
	// after t+1 steps, averaged over sources — one Figure 1 curve.
	MeanTVD []float64
	// MaxTVD[t] is the worst (max over sources) distance, matching the
	// max_i in Eq. 2 restricted to the sampled sources.
	MaxTVD []float64
	// MinTVD[t] is the best source's distance.
	MinTVD []float64
	// Sources records the sampled source nodes.
	Sources []graph.NodeID
	// Curves[i] is source i's full TVD trajectory — retained because the
	// paper's methodology (§III-C) is precisely to look at the
	// *distribution* of mixing across sources, not only the worst case
	// the eigenvalue bound captures. In a partial (best-effort) result,
	// sources the deadline cut off have a nil curve and are excluded
	// from every aggregate.
	Curves [][]float64
	// Completed counts the sources with a finished curve; it equals
	// len(Sources) on a complete run.
	Completed int
	// Partial reports that a best-effort run was cut short: the
	// aggregates cover only Completed of len(Sources) sources.
	Partial bool
}

// Coverage is the fraction of sampled sources with a completed curve —
// 1 for a complete measurement, in (0, 1) for a salvaged partial one.
func (r *MixingResult) Coverage() float64 {
	if len(r.Sources) == 0 {
		return 0
	}
	return float64(r.Completed) / float64(len(r.Sources))
}

// Checkpoint returns the result's resumable state. The checkpoint
// aliases the result's Sources and Curves slices — serialize it before
// mutating the result.
func (r *MixingResult) Checkpoint() *MixingCheckpoint {
	return &MixingCheckpoint{Sources: r.Sources, Curves: r.Curves}
}

// SourceMixingTimes returns, for each sampled source, the smallest walk
// length t (1-based) at which that source's TVD drops below eps, or 0 if
// it never does within the budget. The spread of these values is the
// "richer patterns of mixing" the paper samples for.
func (r *MixingResult) SourceMixingTimes(eps float64) []int {
	out := make([]int, len(r.Curves))
	for i, curve := range r.Curves {
		for t, d := range curve {
			if d < eps {
				out[i] = t + 1
				break
			}
		}
	}
	return out
}

// MixingTime returns the smallest walk length t (1-based) at which the
// worst sampled source is within eps of stationarity, or (0, false) if
// that never happens within MaxSteps.
func (r *MixingResult) MixingTime(eps float64) (int, bool) {
	for t, d := range r.MaxTVD {
		if d < eps {
			return t + 1, true
		}
	}
	return 0, false
}

// MeanMixingTime is MixingTime for the source-averaged curve, reflecting
// the "richer patterns of mixing" view the paper advocates over the
// worst-case eigenvalue bound.
func (r *MixingResult) MeanMixingTime(eps float64) (int, bool) {
	for t, d := range r.MeanTVD {
		if d < eps {
			return t + 1, true
		}
	}
	return 0, false
}

// MeasureMixing runs the sampling method of §III-C: it samples cfg.Sources
// walk sources uniformly (without replacement when possible), evolves the
// exact walk distribution from each, and aggregates the TVD-to-stationarity
// trajectory across sources. Cancellation of ctx is honored between walk
// steps, so a caller's timeout bounds even slow-mixing measurements.
//
// It accepts any graph.View. Below the kernel cutoff the walks evolve
// directly over the view; on the blocked-kernel path a non-CSR view is
// materialized once (graph.Materialize, cached by the view) and the copy
// is amortized across all sources and steps. Results are bit-identical
// either way.
func MeasureMixing(ctx context.Context, g graph.View, cfg MixingConfig) (*MixingResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if g.NumEdges() == 0 {
		return nil, ErrNoEdges
	}
	ctx, span := obs.StartSpan(ctx, "walk.mixing")
	defer span.End()
	pi, err := graph.Stationary(g)
	if err != nil {
		return nil, fmt.Errorf("measure mixing: %w", err)
	}
	sources, err := SampleSources(g, cfg.Sources, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("measure mixing: %w", err)
	}
	res := &MixingResult{
		MeanTVD: make([]float64, cfg.MaxSteps),
		MaxTVD:  make([]float64, cfg.MaxSteps),
		MinTVD:  make([]float64, cfg.MaxSteps),
		Sources: sources,
	}
	for t := range res.MinTVD {
		res.MinTVD[t] = math.Inf(1)
	}

	// curves[i] belongs to sources[i]; resumed curves are merged up
	// front and todo holds the indices still to measure. Each worker
	// task owns distinct curve slots, and parallel.ForEach joins every
	// worker before returning, so the post-fan-out read is race-free
	// even when a deadline stops the run mid-flight.
	curves := make([][]float64, len(sources))
	if cfg.Resume != nil {
		if !cfg.Resume.matches(sources, cfg.MaxSteps) {
			return nil, fmt.Errorf("measure mixing: resume checkpoint does not match this configuration (sources or step budget differ)")
		}
		copy(curves, cfg.Resume.Curves)
		for _, c := range curves {
			if c != nil {
				obsMixResumed.Inc()
			}
		}
	}
	todo := make([]int, 0, len(sources))
	for i, c := range curves {
		if c == nil {
			todo = append(todo, i)
		}
	}

	// One worker task per source (dense path) or per block of sources
	// (kernel path), each with its own propagation buffers; the fold
	// below runs in source order so the aggregate is bit-for-bit
	// identical at any worker count and block width.
	var runErr error
	if width := cfg.blockWidth(g); width <= 1 {
		obsMixDenseSources.Add(int64(len(todo)))
		runErr = parallel.ForEach(ctx, cfg.Workers, len(todo), func(_, k int) error {
			curve, err := sourceCurve(ctx, g, sources[todo[k]], pi, cfg)
			if err != nil {
				return err
			}
			curves[todo[k]] = curve
			return nil
		})
	} else if len(todo) > 0 {
		todoSources := make([]graph.NodeID, len(todo))
		for k, i := range todo {
			todoSources[k] = sources[i]
		}
		blocks := parallel.Blocks(len(todo), width)
		obsMixKernelBlocks.Add(int64(len(blocks)))
		if sg, ok := graph.AsSharded(g); ok {
			// Sharded substrate: parallelism moves inside each block step
			// (one worker per shard in ShardedWalkBlock.Step), so the
			// outer block loop runs inline. Bit-identical to the
			// monolithic kernel path — see internal/kernels/sharded.go.
			runErr = parallel.ForEach(ctx, 1, len(blocks), func(_, b int) error {
				part, err := shardedBlockCurves(ctx, sg, todoSources[blocks[b].Start:blocks[b].End], pi, cfg)
				if err != nil {
					return err
				}
				for j, curve := range part {
					curves[todo[blocks[b].Start+j]] = curve
				}
				return nil
			})
		} else {
			cg := graph.Materialize(g)
			runErr = parallel.ForEach(ctx, cfg.Workers, len(blocks), func(_, b int) error {
				part, err := blockCurves(ctx, cg, todoSources[blocks[b].Start:blocks[b].End], pi, cfg)
				if err != nil {
					return err
				}
				for j, curve := range part {
					curves[todo[blocks[b].Start+j]] = curve
				}
				return nil
			})
		}
	}
	if runErr != nil {
		if !cfg.BestEffort || !isInterrupt(runErr) {
			return nil, fmt.Errorf("measure mixing: %w", runErr)
		}
		// Deadline or cancellation in best-effort mode: salvage whatever
		// completed. Zero coverage has nothing to salvage.
		obsMixPartial.Inc()
		res.Partial = true
	}
	for _, curve := range curves {
		if curve == nil {
			continue
		}
		res.Completed++
		for t, tvd := range curve {
			res.MeanTVD[t] += tvd
			if tvd > res.MaxTVD[t] {
				res.MaxTVD[t] = tvd
			}
			if tvd < res.MinTVD[t] {
				res.MinTVD[t] = tvd
			}
		}
	}
	if res.Completed == 0 {
		if runErr != nil {
			return nil, fmt.Errorf("measure mixing: %w", runErr)
		}
		return nil, fmt.Errorf("measure mixing: no sources measured")
	}
	for t := range res.MeanTVD {
		res.MeanTVD[t] /= float64(res.Completed)
	}
	res.Curves = curves
	return res, nil
}

// isInterrupt reports whether err is a context cancellation or deadline
// — the two failure classes best-effort mode may salvage a partial
// result from.
func isInterrupt(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// sourceCurve evolves the exact walk distribution from one source and
// returns its TVD-to-stationarity trajectory, checking for cancellation
// between steps.
func sourceCurve(ctx context.Context, g graph.View, src graph.NodeID, pi []float64, cfg MixingConfig) ([]float64, error) {
	d, err := NewDistribution(g, src, cfg.Lazy)
	if err != nil {
		return nil, fmt.Errorf("source %d: %w", src, err)
	}
	curve := make([]float64, cfg.MaxSteps)
	for t := 0; t < cfg.MaxSteps; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d.Step()
		tvd, err := d.DistanceTo(pi)
		if err != nil {
			return nil, err
		}
		curve[t] = tvd
	}
	obsMixSteps.Add(int64(d.StepCount()))
	if d.Dense() {
		obsMixHandovers.Inc()
	}
	return curve, nil
}

// blockCurves evolves one block of sources through the blocked
// propagation kernel and returns their TVD trajectories, checking for
// cancellation between steps like sourceCurve does.
func blockCurves(ctx context.Context, g *graph.Graph, sources []graph.NodeID, pi []float64, cfg MixingConfig) ([][]float64, error) {
	wb, err := kernels.NewWalkBlock(g, sources, cfg.Lazy)
	if err != nil {
		return nil, fmt.Errorf("sources %v: %w", sources, err)
	}
	curves := make([][]float64, len(sources))
	for i := range curves {
		curves[i] = make([]float64, cfg.MaxSteps)
	}
	dist := make([]float64, len(sources))
	for t := 0; t < cfg.MaxSteps; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wb.Step()
		if err := wb.DistancesTo(pi, dist); err != nil {
			return nil, err
		}
		for i, tvd := range dist {
			curves[i][t] = tvd
		}
	}
	obsMixSteps.Add(int64(wb.StepCount()) * int64(len(sources)))
	if wb.Dense() {
		obsMixHandovers.Inc()
	}
	return curves, nil
}

// shardedBlockCurves is blockCurves over a sharded substrate: the same
// block of sources evolves through the gather-form sharded kernel, whose
// per-step fan-out is one worker per shard.
func shardedBlockCurves(ctx context.Context, sg *graph.ShardedGraph, sources []graph.NodeID, pi []float64, cfg MixingConfig) ([][]float64, error) {
	wb, err := kernels.NewShardedWalkBlock(sg, sources, cfg.Lazy)
	if err != nil {
		return nil, fmt.Errorf("sources %v: %w", sources, err)
	}
	curves := make([][]float64, len(sources))
	for i := range curves {
		curves[i] = make([]float64, cfg.MaxSteps)
	}
	dist := make([]float64, len(sources))
	for t := 0; t < cfg.MaxSteps; t++ {
		if err := wb.Step(ctx, cfg.Workers); err != nil {
			return nil, err
		}
		if err := wb.DistancesTo(pi, dist); err != nil {
			return nil, err
		}
		for i, tvd := range dist {
			curves[i][t] = tvd
		}
	}
	obsMixSteps.Add(int64(wb.StepCount()) * int64(len(sources)))
	return curves, nil
}

// SampleSources draws k distinct non-isolated nodes uniformly at random,
// or all of them if the graph has fewer than k. It is a thin wrapper over
// graph.SampleNodes, the seeded sampler shared with the expansion
// measurement; walk sources must be non-isolated because the walk is
// undefined on a degree-0 node.
func SampleSources(g graph.View, k int, seed int64) ([]graph.NodeID, error) {
	out, err := graph.SampleNodes(g, k, seed, true)
	if errors.Is(err, graph.ErrNoCandidates) {
		return nil, ErrNoEdges
	}
	if err != nil {
		return nil, fmt.Errorf("walk: %w", err)
	}
	return out, nil
}

// Walker generates discrete random-walk trajectories. It is the primitive
// the Sybil defenses use for their random routes. Walkers are not safe for
// concurrent use; create one per goroutine.
type Walker struct {
	g   graph.View
	nbr *graph.Adj
	rng *rand.Rand
}

// NewWalker returns a walker over g seeded deterministically.
func NewWalker(g graph.View, seed int64) *Walker {
	return &Walker{g: g, nbr: graph.NewAdj(g), rng: rand.New(rand.NewSource(seed))}
}

// Walk returns a trajectory of `length` steps starting at start (the
// returned slice has length+1 nodes, starting with start). Walking from an
// isolated node or an invalid start is an error.
func (w *Walker) Walk(start graph.NodeID, length int) ([]graph.NodeID, error) {
	if !w.g.Valid(start) {
		return nil, fmt.Errorf("walk: start %d out of range", start)
	}
	if length < 0 {
		return nil, fmt.Errorf("walk: negative length %d", length)
	}
	out := make([]graph.NodeID, 0, length+1)
	out = append(out, start)
	cur := start
	for i := 0; i < length; i++ {
		ns := w.nbr.Neighbors(cur)
		if len(ns) == 0 {
			return nil, fmt.Errorf("walk: node %d is isolated at step %d", cur, i)
		}
		cur = ns[w.rng.Intn(len(ns))]
		out = append(out, cur)
	}
	return out, nil
}

// Endpoint returns only the final node of a `length`-step walk from start,
// avoiding the trajectory allocation.
func (w *Walker) Endpoint(start graph.NodeID, length int) (graph.NodeID, error) {
	if !w.g.Valid(start) {
		return 0, fmt.Errorf("walk: start %d out of range", start)
	}
	cur := start
	for i := 0; i < length; i++ {
		ns := w.nbr.Neighbors(cur)
		if len(ns) == 0 {
			return 0, fmt.Errorf("walk: node %d is isolated at step %d", cur, i)
		}
		cur = ns[w.rng.Intn(len(ns))]
	}
	return cur, nil
}
