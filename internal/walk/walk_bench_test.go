package walk

import (
	"context"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
)

func BenchmarkDistributionStep(b *testing.B) {
	g, err := gen.BarabasiAlbert(5000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDistribution(g, 0, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step()
	}
}

func BenchmarkMeasureMixing(b *testing.B) {
	g, err := gen.BarabasiAlbert(2000, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeasureMixing(context.Background(), g, MixingConfig{MaxSteps: 30, Sources: 10, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkerEndpoint(b *testing.B) {
	g, err := gen.BarabasiAlbert(5000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := NewWalker(g, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Endpoint(0, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModulatedStep(b *testing.B) {
	g, err := gen.BarabasiAlbert(5000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		c    ModulatedConfig
	}{
		{"lazy", ModulatedConfig{Strategy: StrategyLazy, Alpha: 0.5}},
		{"originator", ModulatedConfig{Strategy: StrategyOriginatorBiased, Alpha: 0.2}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			d, err := NewModulatedDistribution(g, 0, cfg.c)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Step()
			}
		})
	}
}
